//! Network monitoring with a uniform distributed sample — the paper's
//! "network monitoring" application: switches **push** packet records into
//! the ingestion runtime, which cuts time/size-bounded mini-batches
//! (discretized streams) into a bounded channel per switch; the sampler
//! drains them collectively (`run_pipeline`) and the operator keeps a
//! fixed-size uniform sample of all packets ever seen to estimate
//! per-application traffic shares.
//!
//! Two things are fully distributed here:
//!
//! * **Ingestion** — each switch runs a producer thread
//!   ([`RecordSource`] → `Batcher` → bounded channel). If selection
//!   rounds ever fall behind the packet rate, the bounded channel blocks
//!   the producer (backpressure) instead of buffering without limit; the
//!   blocked time is reported per switch.
//! * **Output** (Section 5) — no switch ever ships its sample members
//!   anywhere. `run_pipeline` finalizes the sample in place, each switch
//!   learns which global output positions its members occupy, tallies its
//!   own slice, and one small all-reduce combines the per-application
//!   counts.
//!
//! ```text
//! cargo run --release --example network_telemetry
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use reservoir::comm::{run_threads, Collectives, Communicator};
use reservoir::dist::threaded::DistributedSampler;
use reservoir::dist::DistConfig;
use reservoir::rng::{default_rng, DefaultRng, Rng64};
use reservoir::stream::ingest::{spawn_source, BatchPolicy, RecordSource};
use reservoir::stream::Item;

/// Application mix: (label, share of packets).
const APPS: [(&str, f64); 4] = [("video", 0.55), ("web", 0.25), ("dns", 0.15), ("ssh", 0.05)];

fn draw_app(rng: &mut impl Rng64) -> usize {
    let x = rng.rand_co();
    let mut acc = 0.0;
    for (i, (_, share)) in APPS.iter().enumerate() {
        acc += share;
        if x < acc {
            return i;
        }
    }
    APPS.len() - 1
}

/// One switch's packet feed: a custom [`RecordSource`] standing in for the
/// real workload that pushes records at the PE. Packet ids encode
/// (switch, seq, app); the true per-app send counts are shared back to the
/// driver through atomics (the producer runs on its own thread).
struct PacketSource {
    switch: usize,
    remaining: u64,
    seq: u64,
    rng: DefaultRng,
    sent_per_app: Arc<[AtomicU64; APPS.len()]>,
}

impl RecordSource for PacketSource {
    fn next_record(&mut self) -> Option<Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let app = draw_app(&mut self.rng);
        self.sent_per_app[app].fetch_add(1, Ordering::Relaxed);
        let uid = ((self.switch as u64) << 48) | (self.seq << 2) | app as u64;
        self.seq += 1;
        // Uniform sampling: every packet equally likely to be retained.
        Some(Item::new(uid, 1.0))
    }

    fn remaining_hint(&self) -> Option<u64> {
        Some(self.remaining)
    }
}

fn main() {
    let switches = 8; // PEs
    let k = 20_000;
    let packets_per_switch = 360_000u64;
    let batch_size = 30_000usize;

    let results = run_threads(switches, |comm| {
        let sent_per_app: Arc<[AtomicU64; APPS.len()]> = Arc::new(Default::default());
        let source = PacketSource {
            switch: comm.rank(),
            remaining: packets_per_switch,
            seq: 0,
            rng: default_rng(17 + comm.rank() as u64),
            sent_per_app: Arc::clone(&sent_per_app),
        };
        // Mini-batches are cut every `batch_size` packets or 50 ms,
        // whichever comes first, over a channel holding at most 4 batches
        // in flight — the backpressure bound.
        let policy = BatchPolicy::by_size(batch_size).with_deadline(Duration::from_millis(50));
        let mut ingest = spawn_source(source, policy, 4);
        let rx = ingest.take_receiver();

        let mut sampler = DistributedSampler::new(&comm, DistConfig::uniform(k, 99));
        let words_before = comm.stats().words;
        let report = sampler.run_pipeline(&rx);
        let words = comm.stats().words - words_before;
        let counters = ingest.join();
        assert_eq!(counters.records_in, packets_per_switch);
        assert_eq!(report.records, packets_per_switch);

        // Root-free estimator: tally the local slice, all-reduce the tally.
        let mut local_counts = vec![0u64; APPS.len()];
        for (_pos, member) in report.handle.enumerate() {
            local_counts[(member.id & 0x3) as usize] += 1;
        }
        let global_counts = comm.sum_u64_vec(local_counts);
        let sent: Vec<u64> = sent_per_app
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        (report, counters, global_counts, words, sent)
    });

    let totals: [u64; APPS.len()] = {
        let mut t = [0u64; APPS.len()];
        for (_, _, _, _, sent) in &results {
            for (i, s) in sent.iter().enumerate() {
                t[i] += s;
            }
        }
        t
    };
    let total_packets: u64 = totals.iter().sum();
    let (report0, _, sampled, _, _) = &results[0];
    let sample_len = report0.sample_size();
    // Every switch computed the identical global tally.
    for (_, _, counts, _, _) in &results[1..] {
        assert_eq!(counts, sampled);
    }

    println!("per-switch ingestion and output (none of the members moved):");
    for (report, counters, _, words, _) in &results {
        let range = report.handle.global_range();
        println!(
            "  slice {:>6}..{:<6} ({:>5} members) — {} batches ({} size cuts, {} deadline \
             flushes), blocked {:.1} ms in backpressure, pipeline moved {words} words",
            range.start,
            range.end,
            range.end - range.start,
            counters.batches_cut,
            counters.size_cuts,
            counters.deadline_flushes,
            counters.blocked_send_s * 1e3,
        );
    }
    let phases_note: f64 =
        results.iter().map(|(r, ..)| r.ingest_wait_s).sum::<f64>() / results.len() as f64;
    println!("\nmean per-switch ingest wait (sampler faster than the feed): {phases_note:.3} s");

    println!(
        "\napplication traffic shares — stream vs sample (n = {total_packets} packets, k = {sample_len}):"
    );
    println!("| app | true share | sample share |");
    println!("|---|---|---|");
    for (i, (name, _)) in APPS.iter().enumerate() {
        let true_share = totals[i] as f64 / total_packets as f64;
        let est_share = sampled[i] as f64 / sample_len as f64;
        println!("| {name} | {true_share:.3} | {est_share:.3} |");
        assert!(
            (true_share - est_share).abs() < 0.02,
            "sample share diverges for {name}"
        );
    }
    println!("\nall estimates within ±0.02 — the sample is a faithful miniature of the stream,");
    println!("no switch ever transmitted a single sample member, and a slow sampler would");
    println!("throttle the switches through the bounded channels instead of running out of memory");
}
