//! Network monitoring with a uniform distributed sample — the paper's
//! "network monitoring" application: switches export packet records in
//! time-driven mini-batches (discretized streams), and the operator keeps
//! a fixed-size uniform sample of all packets ever seen to estimate
//! per-application traffic shares.
//!
//! The demo uses the Section 5 **fully distributed output collection**: no
//! switch ever ships its sample members anywhere. Each switch finalizes the
//! sample in place (`collect_output`), learns which global output positions
//! its members occupy, tallies its own slice, and one small all-reduce
//! combines the per-application counts — the estimator is computed without
//! any PE ever holding the sample.
//!
//! ```text
//! cargo run --release --example network_telemetry
//! ```

use reservoir::comm::{run_threads, Collectives, Communicator};
use reservoir::dist::threaded::DistributedSampler;
use reservoir::dist::DistConfig;
use reservoir::rng::{default_rng, Rng64};
use reservoir::stream::Item;

/// Application mix: (label, share of packets).
const APPS: [(&str, f64); 4] = [("video", 0.55), ("web", 0.25), ("dns", 0.15), ("ssh", 0.05)];

fn draw_app(rng: &mut impl Rng64) -> usize {
    let x = rng.rand_co();
    let mut acc = 0.0;
    for (i, (_, share)) in APPS.iter().enumerate() {
        acc += share;
        if x < acc {
            return i;
        }
    }
    APPS.len() - 1
}

fn main() {
    let switches = 8; // PEs
    let k = 20_000;
    let batches = 12;
    let packets_per_batch = 30_000u64;

    let results = run_threads(switches, |comm| {
        // Uniform sampling: every packet equally likely to be retained.
        let mut sampler = DistributedSampler::new(&comm, DistConfig::uniform(k, 99));
        let mut rng = default_rng(17 + comm.rank() as u64);
        let mut sent_per_app = [0u64; APPS.len()];
        for b in 0..batches {
            let items: Vec<Item> = (0..packets_per_batch)
                .map(|i| {
                    let app = draw_app(&mut rng);
                    sent_per_app[app] += 1;
                    // Packet id encodes (switch, seq, app).
                    let uid = ((comm.rank() as u64) << 48)
                        | ((b * packets_per_batch + i) << 2)
                        | app as u64;
                    Item::new(uid, 1.0)
                })
                .collect();
            let report = sampler.process_batch(&items);
            if comm.rank() == 0 && b % 4 == 0 {
                println!(
                    "t = {b}: {} packets seen, sample holds {}, threshold {:.2e}",
                    (b + 1) * packets_per_batch * switches as u64,
                    report.sample_size,
                    sampler.threshold().unwrap_or(1.0),
                );
            }
        }

        // Section 5 output: finalize in place; every switch learns only the
        // global positions of its own slice.
        let words_before = comm.stats().words;
        let handle = sampler.collect_output();
        let output_words = comm.stats().words - words_before;

        // Root-free estimator: tally the local slice, all-reduce the tally.
        let mut local_counts = vec![0u64; APPS.len()];
        for (_pos, member) in handle.enumerate() {
            local_counts[(member.id & 0x3) as usize] += 1;
        }
        let global_counts = comm.sum_u64_vec(local_counts);
        (
            handle.global_range(),
            handle.total_len(),
            global_counts,
            output_words,
            sent_per_app,
        )
    });

    let totals: [u64; APPS.len()] = {
        let mut t = [0u64; APPS.len()];
        for (_, _, _, _, sent) in &results {
            for (i, s) in sent.iter().enumerate() {
                t[i] += s;
            }
        }
        t
    };
    let total_packets: u64 = totals.iter().sum();
    let (_, sample_len, sampled, _, _) = &results[0];
    // Every switch computed the identical global tally.
    for (_, _, counts, _, _) in &results[1..] {
        assert_eq!(counts, sampled);
    }

    println!("\nper-switch output slices (global positions, none of them moved):");
    for (range, _, _, words, _) in &results {
        println!(
            "  switch slice {:>6}..{:<6} ({} members) — output collection moved {words} words",
            range.start,
            range.end,
            range.end - range.start,
        );
    }

    println!(
        "\napplication traffic shares — stream vs sample (n = {total_packets} packets, k = {sample_len}):"
    );
    println!("| app | true share | sample share |");
    println!("|---|---|---|");
    for (i, (name, _)) in APPS.iter().enumerate() {
        let true_share = totals[i] as f64 / total_packets as f64;
        let est_share = sampled[i] as f64 / *sample_len as f64;
        println!("| {name} | {true_share:.3} | {est_share:.3} |");
        assert!(
            (true_share - est_share).abs() < 0.02,
            "sample share diverges for {name}"
        );
    }
    println!("\nall estimates within ±0.02 — the sample is a faithful miniature of the stream,");
    println!("and no switch ever transmitted a single sample member");
}
