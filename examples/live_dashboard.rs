//! A live dashboard over a running pipeline — the always-fresh snapshot
//! service in its natural habitat: every PE ingests a pushed event
//! stream through `run_pipeline` while dashboard threads on the same
//! machine query the *current* weighted sample at any moment, with no
//! coordination with the pipeline and no pause in ingestion.
//!
//! Under [`ContinuousMode::EveryBatch`] each selection round publishes
//! an immutable [`SampleEpoch`](reservoir::dist::SampleEpoch) — the
//! sample finalized to exactly `k` through the paper's Section 5
//! finalize/place path — behind a seqlock-guarded pointer swap. A
//! dashboard read is a couple of atomic loads plus an `Arc` clone: it
//! never blocks a selection round, never sees a half-published view
//! (every epoch carries a verifiable checksum), and is never staler
//! than the one publication in flight.
//!
//! The dashboard here estimates the fraction of "alarm" events (the
//! heavy tail of the weight distribution) from each epoch it observes
//! and prints the estimate's trajectory as the stream unfolds.
//!
//! With `RESERVOIR_OBS=1` the dashboard threads also poll the process
//! metrics registry (same no-coordination discipline: an
//! [`obs::MetricsReader`](reservoir::obs::MetricsReader) refreshes its
//! directory only when the registry version moves), and the run dumps
//! `target/obs/metrics.prom`, `target/obs/metrics.json` and the flight
//! recorder's `target/obs/flight_recorder.jsonl` on exit — the artifacts
//! the CI obs job uploads.
//!
//! ```text
//! cargo run --release --example live_dashboard
//! RESERVOIR_OBS=1 cargo run --release --example live_dashboard
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use reservoir::comm::{run_threads, Communicator};
use reservoir::dist::threaded::DistributedSampler;
use reservoir::dist::{ContinuousMode, DistConfig};
use reservoir::rng::{default_rng, Rng64};
use reservoir::stream::ingest::{spawn_source, BatchPolicy, ReplayRecords};
use reservoir::stream::Item;

/// One observation a dashboard thread took: which epoch it read and the
/// weighted alarm-share estimate it computed from that epoch's slice.
struct Observation {
    epoch: u64,
    total: u64,
    local_alarms: u64,
    local_members: u64,
}

fn main() {
    let pes = 4;
    let k = 4_000;
    let events_per_pe = 400_000u64;
    let batch_size = 50_000usize;
    // True alarm rate: 2% of events, but alarms carry 50x the weight of
    // routine events, so they should dominate the weighted sample.
    let alarm_rate = 0.02;

    let results = run_threads(pes, |comm| {
        let mut rng = default_rng(0xDA5B ^ comm.rank() as u64);
        let events: Vec<Item> = (0..events_per_pe)
            .map(|i| {
                let alarm = rng.rand_co() < alarm_rate;
                let uid = ((comm.rank() as u64) << 48) | (i << 1) | alarm as u64;
                Item::new(uid, if alarm { 50.0 } else { 1.0 })
            })
            .collect();
        let true_alarms = events.iter().filter(|e| e.id & 1 == 1).count() as u64;

        let cfg = DistConfig::weighted(k, 0xDA5B).with_continuous(ContinuousMode::EveryBatch);
        let mut sampler = DistributedSampler::new(&comm, cfg);
        let reader = sampler.snapshot_reader();
        let stop = AtomicBool::new(false);

        let (report, observations) = std::thread::scope(|scope| {
            // Two dashboard threads per PE, polling the live sample while
            // the pipeline below ingests at full speed.
            let dashboards: Vec<_> = (0..2)
                .map(|_| {
                    let r = reader.clone();
                    let stop = &stop;
                    scope.spawn(move || {
                        let mut seen: Vec<Observation> = Vec::new();
                        // Metrics ride the same polling loop as the
                        // sample: version-disciplined, never blocking
                        // the pipeline. (An empty render when
                        // RESERVOIR_OBS is off.)
                        let mut metrics = reservoir::obs::global().reader();
                        loop {
                            let e = r.read();
                            assert!(e.verify(), "torn epoch on the dashboard");
                            let _ = metrics.snapshot();
                            if seen.last().map_or(e.epoch > 0, |o| o.epoch < e.epoch) {
                                seen.push(Observation {
                                    epoch: e.epoch,
                                    total: e.total,
                                    local_alarms: e.items.iter().filter(|m| m.id & 1 == 1).count()
                                        as u64,
                                    local_members: e.local_len(),
                                });
                            }
                            if stop.load(Ordering::Relaxed) {
                                return seen;
                            }
                            std::thread::sleep(Duration::from_micros(200));
                        }
                    })
                })
                .collect();

            let mut ingest = spawn_source(
                ReplayRecords::new(events),
                BatchPolicy::by_size(batch_size),
                4,
            );
            let rx = ingest.take_receiver();
            let report = sampler.run_pipeline(&rx);
            ingest.join();
            stop.store(true, Ordering::Relaxed);
            let observations: Vec<Vec<Observation>> = dashboards
                .into_iter()
                .map(|h| h.join().expect("dashboard thread"))
                .collect();
            (report, observations)
        });

        // After the pipeline ends, the slot keeps serving the final epoch
        // — which is exactly the collected output.
        let last = reader.read();
        assert_eq!(last.total, report.handle.total_len());
        assert_eq!(last.local_len(), report.handle.local_len());
        (report.sample_size(), true_alarms, observations)
    });

    let (sample_size, _, _) = &results[0];
    let true_alarms: u64 = results.iter().map(|r| r.1).sum();
    let true_rate = true_alarms as f64 / (pes as u64 * events_per_pe) as f64;

    println!("live dashboard over {pes} PEs, k = {sample_size}, {events_per_pe} events/PE");
    println!("true alarm rate {true_rate:.4} (weighted 50x — alarms dominate the sample)\n");

    // Fold rank 0's first dashboard trail into a trajectory (its slice
    // alone is an unbiased view of the alarm share at its epoch).
    let trail = &results[0].2[0];
    println!("| epoch | global sample | alarm share in rank 0's slice |");
    println!("|---|---|---|");
    for o in trail {
        let share = if o.local_members == 0 {
            0.0
        } else {
            o.local_alarms as f64 / o.local_members as f64
        };
        println!("| {} | {} | {:.3} |", o.epoch, o.total, share);
    }

    let epochs_seen: usize = results
        .iter()
        .flat_map(|r| r.2.iter())
        .map(Vec::len)
        .max()
        .unwrap_or(0);
    assert!(
        epochs_seen >= 2,
        "the dashboard never saw the sample evolve"
    );
    println!(
        "\nthe busiest dashboard thread saw {epochs_seen} distinct epochs mid-flight, every one \
         checksum-consistent;"
    );
    println!("no read ever paused ingestion, and the final epoch equals the collected output");

    if reservoir::obs::enabled() {
        let dir = std::path::Path::new("target/obs");
        std::fs::create_dir_all(dir).expect("create target/obs");
        let mut reader = reservoir::obs::global().reader();
        std::fs::write(dir.join("metrics.prom"), reader.prometheus()).expect("write metrics.prom");
        std::fs::write(dir.join("metrics.json"), reader.json()).expect("write metrics.json");
        std::fs::write(
            dir.join("flight_recorder.jsonl"),
            reservoir::obs::recorder().to_jsonl(),
        )
        .expect("write flight_recorder.jsonl");
        let events = reservoir::obs::recorder().dump().len();
        println!(
            "\nobservability armed: metrics + {events}-event flight recorder dumped to target/obs/"
        );
    }
}
