//! Heavy hitters from a weighted sample — one of the applications the
//! paper's introduction motivates ("maintaining the set of heavy hitters").
//!
//! Eight PEs observe streams of (flow, bytes) records with Pareto-like
//! weights: a handful of flows carry most of the traffic. A weighted
//! reservoir sample over the union, with each record weighted by its byte
//! count, surfaces the heavy flows: the probability a flow appears in the
//! sample grows with its share of total bytes, so counting sample
//! membership per flow estimates the traffic ranking without storing any
//! stream.
//!
//! ```text
//! cargo run --release --example heavy_hitters
//! ```

use std::collections::HashMap;

use reservoir::comm::{run_threads, Communicator};
use reservoir::dist::threaded::DistributedSampler;
use reservoir::dist::DistConfig;
use reservoir::rng::{default_rng, Rng64};
use reservoir::stream::Item;

/// Synthetic flow table: flow `f` sends records whose byte counts follow a
/// heavy-tailed law; flows 0..8 are the true heavy hitters.
fn record(pe: usize, i: u64, rng: &mut impl Rng64) -> (u64, f64) {
    // Zipf-ish flow popularity: low flow ids occur often...
    let flow = (rng.pareto(1.0, 1.1) as u64).min(9_999);
    // ...and heavy flows also send bigger packets.
    let bytes = if flow < 8 { 8_000.0 } else { 64.0 } + rng.rand_oc() * 64.0;
    let id = ((pe as u64) << 40) | i;
    let _ = id;
    (flow, bytes)
}

fn main() {
    let pes = 8;
    let k = 2_000;
    let batches = 10;
    let batch_size = 20_000u64;

    // Each sampled record's id encodes its flow so PE 0 can aggregate.
    let results = run_threads(pes, |comm| {
        let mut sampler = DistributedSampler::new(&comm, DistConfig::weighted(k, 1234));
        let mut rng = default_rng(5_000 + comm.rank() as u64);
        let mut true_bytes: HashMap<u64, f64> = HashMap::new();
        for b in 0..batches {
            let items: Vec<Item> = (0..batch_size)
                .map(|i| {
                    let (flow, bytes) = record(comm.rank(), b * batch_size + i, &mut rng);
                    *true_bytes.entry(flow).or_default() += bytes;
                    // Encode the flow in the item id's low bits.
                    let uid = ((comm.rank() as u64) << 48) | ((b * batch_size + i) << 14) | flow;
                    Item::new(uid, bytes)
                })
                .collect();
            sampler.process_batch(&items);
        }
        (sampler.gather_sample(), true_bytes)
    });

    // Aggregate ground truth over all PEs.
    let mut truth: HashMap<u64, f64> = HashMap::new();
    for (_, t) in &results {
        for (flow, bytes) in t {
            *truth.entry(*flow).or_default() += bytes;
        }
    }
    let total_bytes: f64 = truth.values().sum();
    let mut true_top: Vec<(u64, f64)> = truth.into_iter().collect();
    true_top.sort_by(|a, b| b.1.total_cmp(&a.1));

    // Estimate heavy hitters from sample membership counts.
    let sample = results[0].0.as_ref().expect("root gathered");
    let mut hits: HashMap<u64, u32> = HashMap::new();
    for item in sample {
        *hits.entry(item.id & 0x3FFF).or_default() += 1;
    }
    let mut est: Vec<(u64, u32)> = hits.into_iter().collect();
    est.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    println!(
        "true top-8 flows by bytes (of {:.1} MB total):",
        total_bytes / 1e6
    );
    for (flow, bytes) in true_top.iter().take(8) {
        println!(
            "  flow {flow:>5}: {:>6.2} MB ({:.1}%)",
            bytes / 1e6,
            100.0 * bytes / total_bytes
        );
    }
    println!("\nflows by sample membership (k = {k} weighted sample):");
    for (flow, count) in est.iter().take(8) {
        println!("  flow {flow:>5}: {count:>4} sample members");
    }

    // How many of the true top-8 does the sample's top-8 recover?
    let true_set: Vec<u64> = true_top.iter().take(8).map(|(f, _)| *f).collect();
    let est_set: Vec<u64> = est.iter().take(8).map(|(f, _)| *f).collect();
    let recovered = est_set.iter().filter(|f| true_set.contains(f)).count();
    println!("\nrecovered {recovered}/8 true heavy hitters in the sample's top 8");
    assert!(
        recovered >= 6,
        "weighted sampling should surface the heavy flows"
    );
}
