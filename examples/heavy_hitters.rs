//! Heavy hitters from per-flow samples — one of the applications the
//! paper's introduction motivates ("maintaining the set of heavy hitters"),
//! reshaped as a multi-tenant workload for the sharded sampler.
//!
//! Eight PEs observe streams of (flow, bytes) records with Pareto-like
//! weights: a handful of flows carry most of the traffic. Instead of one
//! global reservoir, a [`ShardedSampler`] keeps an independent weighted
//! reservoir per flow shard — 64 reservoirs behind one collective schedule
//! (one batched count round and one joint selection round sequence per
//! mini-batch, not 64 of each). Per shard, the finalized threshold `τ`
//! estimates the shard's total routed bytes: keys are `Exp(weight)`
//! variates, so ~`W·τ` of them fall below a small `τ`, and the rank-`k`
//! threshold gives `Ŵ ≈ k/τ`. Attributing each shard's estimate to flows
//! by their membership share of the shard's sample ranks the heavy flows
//! without storing any stream.
//!
//! ```text
//! cargo run --release --example heavy_hitters
//! ```

use std::collections::HashMap;

use reservoir::comm::{run_threads, Communicator};
use reservoir::dist::{DistConfig, ShardedSampler};
use reservoir::rng::{default_rng, Rng64};
use reservoir::stream::{Item, ShardRouter};
use reservoir::SampleItem;

/// Low 14 id bits carry the flow; bits 14..48 the per-PE sequence number;
/// bits 48.. the PE rank.
const FLOW_MASK: u64 = (1 << 14) - 1;

/// Synthetic flow table: flow `f` sends records whose byte counts follow a
/// heavy-tailed law; the single-digit flows are the true heavy hitters.
fn record(rng: &mut impl Rng64) -> (u64, f64) {
    // Zipf-ish flow popularity: low flow ids occur often...
    let flow = (rng.pareto(1.0, 1.1) as u64).min(9_999);
    // ...and heavy flows also send bigger packets.
    let bytes = if flow < 8 { 8_000.0 } else { 64.0 } + rng.rand_oc() * 64.0;
    (flow, bytes)
}

fn main() {
    let pes = 8;
    let shards = 64;
    let k = 256; // per-shard sample size
    let batches = 10;
    let batch_size = 20_000u64;

    let results = run_threads(pes, |comm| {
        // Route by flow: all records of a flow meet in one reservoir,
        // on every PE, regardless of arrival order or rank.
        let router = ShardRouter::new(shards, |item: &Item| item.id & FLOW_MASK);
        let mut fleet = ShardedSampler::new(&comm, DistConfig::weighted(k, 1234), shards);
        let mut rng = default_rng(5_000 + comm.rank() as u64);
        let mut true_bytes: HashMap<u64, f64> = HashMap::new();
        let mut buckets: Vec<Vec<Item>> = vec![Vec::new(); shards];
        for b in 0..batches {
            let items: Vec<Item> = (0..batch_size)
                .map(|i| {
                    let (flow, bytes) = record(&mut rng);
                    *true_bytes.entry(flow).or_default() += bytes;
                    let seq = b * batch_size + i;
                    // The packed fields must not overlap: flows cap at
                    // 9 999 < 2^14 and this run emits far fewer than 2^34
                    // records per PE.
                    debug_assert!(
                        flow <= FLOW_MASK && seq < (1 << 34),
                        "uid bit-packing overlap: flow {flow}, seq {seq}"
                    );
                    let uid = ((comm.rank() as u64) << 48) | (seq << 14) | flow;
                    Item::new(uid, bytes)
                })
                .collect();
            for bucket in &mut buckets {
                bucket.clear();
            }
            router.route_into(items, &mut buckets);
            fleet.process_batch(&buckets);
        }
        // Finalize all 64 shards (again: one batched schedule, not 64
        // finalizations' worth of collective launches) and let every PE
        // assemble each shard's full sample.
        let per_shard: Vec<(Option<f64>, Vec<SampleItem>)> = fleet
            .collect_output()
            .iter()
            .map(|h| (h.threshold(), h.all_items(&comm)))
            .collect();
        (per_shard, true_bytes)
    });

    // Aggregate ground truth over all PEs.
    let mut truth: HashMap<u64, f64> = HashMap::new();
    for (_, t) in &results {
        for (flow, bytes) in t {
            *truth.entry(*flow).or_default() += bytes;
        }
    }
    let total_bytes: f64 = truth.values().sum();
    let mut true_top: Vec<(u64, f64)> = truth.into_iter().collect();
    true_top.sort_by(|a, b| b.1.total_cmp(&a.1));

    // Estimate per-flow bytes from the per-shard samples: Ŵ = k/τ per
    // shard (the whole routed substream when the shard never outgrew k),
    // attributed to flows by sample-membership share. Heavy flows
    // dominate their shard's weighted sample, so their share is robust.
    let (per_shard, _) = &results[0];
    let mut est: HashMap<u64, f64> = HashMap::new();
    for (threshold, sample) in per_shard {
        if sample.is_empty() {
            continue;
        }
        let w_est = match threshold {
            Some(t) => k as f64 / t,
            None => sample.iter().map(|s| s.weight).sum(),
        };
        let share = w_est / sample.len() as f64;
        for s in sample {
            *est.entry(s.id & FLOW_MASK).or_default() += share;
        }
    }
    let mut est_top: Vec<(u64, f64)> = est.into_iter().collect();
    est_top.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));

    println!(
        "true top-8 flows by bytes (of {:.1} MB total):",
        total_bytes / 1e6
    );
    for (flow, bytes) in true_top.iter().take(8) {
        println!(
            "  flow {flow:>5}: {:>8.2} MB ({:.1}%)",
            bytes / 1e6,
            100.0 * bytes / total_bytes
        );
    }
    println!("\nestimated top-8 flows ({shards} shards, k = {k} per shard):");
    for (flow, bytes) in est_top.iter().take(8) {
        println!("  flow {flow:>5}: {:>8.2} MB estimated", bytes / 1e6);
    }

    // How many of the true top-8 does the estimate's top-8 recover?
    let true_set: Vec<u64> = true_top.iter().take(8).map(|(f, _)| *f).collect();
    let est_set: Vec<u64> = est_top.iter().take(8).map(|(f, _)| *f).collect();
    let recovered = est_set.iter().filter(|f| true_set.contains(f)).count();
    println!("\nrecovered {recovered}/8 true heavy hitters in the estimated top 8");
    assert!(
        recovered >= 6,
        "per-flow weighted sampling should surface the heavy flows"
    );
}
