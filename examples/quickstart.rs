//! Quickstart: weighted reservoir sampling, sequential and distributed.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use reservoir::comm::{run_threads, Communicator};
use reservoir::dist::threaded::DistributedSampler;
use reservoir::dist::DistConfig;
use reservoir::rng::default_rng;
use reservoir::seq::WeightedJumpSampler;
use reservoir::stream::{StreamSpec, WeightGen};

fn main() {
    // ---------------------------------------------------------------
    // 1. Sequential: sample 10 of a million weighted items in one pass.
    // ---------------------------------------------------------------
    let k = 10;
    let mut sampler = WeightedJumpSampler::new(k, default_rng(42));
    for id in 0..1_000_000u64 {
        // Item weights: a few heavy hitters among light items.
        let weight = if id % 100_000 == 0 { 10_000.0 } else { 1.0 };
        sampler.process(id, weight);
    }
    println!("sequential sample (k = {k}):");
    let mut sample = sampler.sample();
    sample.sort_by(|a, b| a.key.total_cmp(&b.key));
    for item in &sample {
        println!(
            "  id {:>7}  weight {:>7.0}  key {:.3e}",
            item.id, item.weight, item.key
        );
    }
    let stats = sampler.stats();
    println!(
        "processed {} items with only {} reservoir insertions ({} skip jumps)\n",
        stats.processed, stats.inserted, stats.jumps
    );

    // ---------------------------------------------------------------
    // 2. Distributed: 4 PEs (threads) sample the union of their streams.
    // ---------------------------------------------------------------
    let pes = 4;
    let spec = StreamSpec {
        pes,
        batch_size: 50_000,
        weights: WeightGen::paper_uniform(),
        seed: 7,
    };
    let results = run_threads(pes, |comm| {
        let mut sampler = DistributedSampler::new(&comm, DistConfig::weighted(20, 7));
        let mut source = spec.source_for(comm.rank());
        let mut batch = Vec::new();
        for round in 0..5 {
            source.next_batch_into(&mut batch);
            let report = sampler.process_batch(&batch);
            if comm.rank() == 0 {
                println!(
                    "batch {round}: sample size {}, {} selection rounds, threshold {:?}",
                    report.sample_size,
                    report.select_rounds,
                    sampler.threshold().map(|t| format!("{t:.2e}")),
                );
            }
        }
        sampler.gather_sample()
    });
    let sample = results[0].as_ref().expect("PE 0 gathers the sample");
    println!(
        "\ndistributed sample of {} items over {} PEs:",
        sample.len(),
        pes
    );
    for item in sample.iter().take(5) {
        println!("  id {:#018x}  weight {:>6.2}", item.id, item.weight);
    }
    println!("  ... ({} more)", sample.len().saturating_sub(5));
}
