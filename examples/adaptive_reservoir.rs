//! Variable-size reservoirs (paper Section 4.4): when the application
//! tolerates a sample size anywhere in `k..k̄`, the sampler can let the
//! sample grow across batches and only occasionally run an *approximate*
//! selection (amsSelect) — far fewer selection rounds than re-selecting an
//! exact rank every batch.
//!
//! This demo runs both modes on the same stream and compares selection
//! effort.
//!
//! ```text
//! cargo run --release --example adaptive_reservoir
//! ```

use reservoir::comm::run_threads;
use reservoir::comm::Communicator;
use reservoir::dist::threaded::DistributedSampler;
use reservoir::dist::DistConfig;
use reservoir::stream::{StreamSpec, WeightGen};

fn run(pes: usize, window: Option<(u64, u64)>) -> (u64, u64, Vec<u64>) {
    let spec = StreamSpec {
        pes,
        batch_size: 30_000,
        weights: WeightGen::paper_uniform(),
        seed: 4242,
    };
    let results = run_threads(pes, |comm| {
        let mut cfg = DistConfig::weighted(1_000, 4242);
        if let Some((lo, hi)) = window {
            cfg = cfg.with_size_window(lo, hi);
        }
        let mut sampler = DistributedSampler::new(&comm, cfg);
        let mut src = spec.source_for(comm.rank());
        let mut buf = Vec::new();
        let mut rounds = 0u64;
        let mut selections = 0u64;
        let mut sizes = Vec::new();
        for _ in 0..20 {
            src.next_batch_into(&mut buf);
            let rep = sampler.process_batch(&buf);
            rounds += rep.select_rounds as u64;
            if rep.select_rounds > 0 {
                selections += 1;
            }
            sizes.push(rep.sample_size);
        }
        (rounds, selections, sizes)
    });
    results.into_iter().next().expect("PE 0")
}

fn main() {
    let pes = 4;
    println!("20 batches × {pes} PEs, k = 1000\n");

    let (rounds_exact, sels_exact, _) = run(pes, None);
    println!("exact-size reservoir   : {sels_exact:>2} selections, {rounds_exact:>3} total rounds");

    let (rounds_window, sels_window, sizes) = run(pes, Some((900, 1_500)));
    println!(
        "variable-size (900..1500): {sels_window:>2} selections, {rounds_window:>3} total rounds"
    );
    println!("\nsample size trajectory (variable mode):");
    print!("  ");
    for (i, s) in sizes.iter().enumerate() {
        print!("{s}{}", if i + 1 == sizes.len() { "\n" } else { " → " });
        if i % 7 == 6 {
            print!("\n  ");
        }
    }
    println!(
        "\nthe window mode ran {}x fewer selection rounds while keeping the size in [900, 1500]",
        (rounds_exact as f64 / rounds_window.max(1) as f64).round()
    );
    assert!(
        rounds_window < rounds_exact,
        "lazy selection must reduce rounds"
    );
    assert!(sizes.iter().skip(2).all(|&s| (900..=1500).contains(&s)));
}
