//! Golden test for the observability exporters: a fixed-seed pipeline
//! run, with instrumentation armed, must render byte-identical
//! Prometheus text and JSON — pinning the export formats *and* the
//! deterministic subset of the metric values (collective launches,
//! message/word counts, engine batch accounting) against silent drift.
//!
//! The goldens live in `tests/golden/obs_export.{prom,json}`. On
//! mismatch the fresh renders are written to `target/obs-export/` for
//! diffing; regenerate deliberately with
//! `UPDATE_OBS_GOLDEN=1 cargo test --test obs_export`.
//!
//! Only deterministic metrics are pinned: the snapshot is filtered to an
//! explicit allowlist before rendering, excluding wall-clock gauges
//! (`phase_*`, `sim_collective_seconds`) and contention tallies
//! (seqlock/OLC retries, pool steals) that legitimately vary run to run.
//! The run pins `threads = 1`, the epilogue merge and disabled
//! continuous publication explicitly, so the CI matrix's
//! `RESERVOIR_THREADS`/`MERGE`/`CONTINUOUS` environment cannot perturb
//! the pinned counts.

use std::fs;
use std::path::PathBuf;

use reservoir::comm::run_threads;
use reservoir::dist::threaded::DistributedSampler;
use reservoir::dist::{ContinuousMode, DistConfig, MergeMode};
use reservoir::stream::Item;

/// Metrics whose fixed-seed values are exactly reproducible. Everything
/// else (timings, contention) is dropped before rendering. The pooled
/// node-storage metrics (`pool_bytes`, `pool_pages_allocated`,
/// `pool_recycles`) and `shards_skipped_sparse_total` stay off this list
/// deliberately: they depend on merge mode, thread count, and pool
/// sharing (one fleet-wide pool vs one per sampler), so their fixed-seed
/// values are mode-dependent, not run-reproducible.
const DETERMINISTIC: &[&str] = &[
    "comm_bcast_total",
    "comm_collective_words",
    "comm_exscan_total",
    "comm_message_words",
    "comm_messages_total",
    "comm_reduce_total",
    "engine_batches_total",
    "engine_items_total",
    "engine_select_rounds_total",
    "scan_inserted_total",
    "select_rounds_total",
];

fn golden_path(ext: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("tests/golden/obs_export.{ext}"))
}

fn check(ext: &str, actual: &str) -> Result<(), String> {
    if std::env::var("UPDATE_OBS_GOLDEN").is_ok() {
        fs::write(golden_path(ext), actual).expect("write golden");
        eprintln!("obs golden rewritten at {:?}", golden_path(ext));
        return Ok(());
    }
    let golden = fs::read_to_string(golden_path(ext)).unwrap_or_else(|_| {
        panic!("missing tests/golden/obs_export.{ext} — run UPDATE_OBS_GOLDEN=1 once")
    });
    if golden == actual {
        return Ok(());
    }
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target/obs-export");
    fs::create_dir_all(&dir).expect("create target/obs-export");
    fs::write(dir.join(format!("actual.{ext}")), actual).expect("write actual");
    Err(format!(
        "obs {ext} export drifted from tests/golden/obs_export.{ext}; \
         fresh render at target/obs-export/actual.{ext} \
         (UPDATE_OBS_GOLDEN=1 to accept)"
    ))
}

#[test]
fn exports_match_golden_snapshot() {
    reservoir::obs::set_enabled(true);
    let cfg = DistConfig::weighted(16, 7)
        .with_threads(1)
        .with_merge(MergeMode::Epilogue)
        .with_continuous(ContinuousMode::Disabled);
    let totals = run_threads(2, |comm| {
        use reservoir::comm::Communicator;
        let mut s = DistributedSampler::new(&comm, cfg);
        for b in 0..3u64 {
            let batch: Vec<Item> = (0..200u64)
                .map(|i| {
                    Item::new(
                        ((comm.rank() as u64) << 40) | (b << 20) | i,
                        1.0 + (i % 5) as f64,
                    )
                })
                .collect();
            s.process_batch(&batch);
        }
        s.collect_output().total_len()
    });
    assert!(totals.iter().all(|&t| t == 16));

    let mut snap = reservoir::obs::global().snapshot();
    snap.retain(|name| DETERMINISTIC.contains(&name));
    let missing: Vec<&&str> = DETERMINISTIC
        .iter()
        .filter(|n| snap.get(n).is_none())
        .collect();
    assert!(
        missing.is_empty(),
        "pinned metrics never registered: {missing:?}"
    );

    let mut failures = Vec::new();
    if let Err(e) = check("prom", &snap.prometheus()) {
        failures.push(e);
    }
    if let Err(e) = check("json", &snap.json()) {
        failures.push(e);
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}
