//! Consistency-first stress suite for the always-fresh snapshot service
//! (`dist::snapshot`): readers racing live ingestion must never observe a
//! torn epoch — epoch id, placement, and the item checksum always
//! mutually consistent — every publication must become readable, and a
//! publisher that dies must leave the last epoch served forever.
//!
//! The seqlock behind the epoch slot fires the `reservoir_btree::sched`
//! hooks, so the same seeded [`YieldInjector`] that widens the OLC race
//! windows drives genuine reader/writer interleavings here: normal mode
//! sprays yields at every hook, aggressive mode parks the publisher
//! mid-critical-section for ~120µs while readers hammer the slot.
//!
//! Scaled by `RESERVOIR_STRESS_ROUNDS` (batches per run); CI's
//! snapshot-stress step sweeps four seed families at 40 rounds each via
//! `RESERVOIR_TEST_SEED`.

use std::sync::atomic::{AtomicBool, Ordering};

use reservoir::comm::{run_threads, Communicator};
use reservoir::dist::gather::GatherSampler;
use reservoir::dist::threaded::DistributedSampler;
use reservoir::dist::{ContinuousMode, DistConfig, MergeMode, SnapshotReader};
use reservoir::par::YieldInjector;
use reservoir::rng::test_base_seed;
use reservoir::stream::Item;

fn stress_rounds(default: u64) -> u64 {
    std::env::var("RESERVOIR_STRESS_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn unit_batch(rank: usize, batch: u64, n: u64) -> Vec<Item> {
    (0..n)
        .map(|i| {
            Item::new(
                ((rank as u64) << 40) | (batch << 20) | i,
                1.0 + (i % 5) as f64,
            )
        })
        .collect()
}

/// Per-read invariants every stress reader enforces. `probe` is
/// `latest_epoch()` sampled *before* the read: the publisher bumps the
/// counter only after the swap completes, so a read that starts after
/// observing `probe = n` must return epoch `>= n` — the "never stale
/// beyond a concurrent publication" guarantee, checked on every read.
fn check_read(reader: &SnapshotReader, last: &mut u64) -> u64 {
    let probe = reader.latest_epoch();
    let e = reader.read();
    assert!(
        e.verify(),
        "torn epoch {}: checksum does not cover the payload read",
        e.epoch
    );
    assert!(
        e.epoch >= probe,
        "stale read: epoch {} after observing publication {probe}",
        e.epoch
    );
    assert!(
        e.epoch >= *last,
        "epoch went backwards: {} after {}",
        e.epoch,
        *last
    );
    assert!(
        e.offset + e.local_len() <= e.total,
        "epoch {}: placement {}+{} overruns total {}",
        e.epoch,
        e.offset,
        e.local_len(),
        e.total
    );
    if let Some(t) = e.threshold {
        assert!(
            e.items.iter().all(|m| m.key <= t),
            "epoch {}: item key above the finalization threshold",
            e.epoch
        );
    }
    *last = e.epoch;
    e.epoch
}

/// Spawn `readers` threads hammering `reader` until `stop`; each returns
/// its read count and the highest epoch it saw.
fn spawn_readers<'s>(
    scope: &'s std::thread::Scope<'s, '_>,
    reader: &SnapshotReader,
    stop: &'s AtomicBool,
    readers: usize,
) -> Vec<std::thread::ScopedJoinHandle<'s, (u64, u64)>> {
    (0..readers)
        .map(|_| {
            let r = reader.clone();
            scope.spawn(move || {
                let (mut reads, mut last) = (0u64, 0u64);
                while !stop.load(Ordering::Relaxed) {
                    check_read(&r, &mut last);
                    reads += 1;
                    std::thread::yield_now();
                }
                // One read after quiescence: must serve the final epoch.
                let last_epoch = check_read(&r, &mut last);
                (reads + 1, last_epoch)
            })
        })
        .collect()
}

/// The acceptance-criterion race: 4 reader threads per PE against live
/// ingestion in `MergeMode::Concurrent` at 2 scan threads, with the
/// yield injector widening every seqlock window. Distributed policy;
/// each batch publishes an epoch and `collect_output` publishes the
/// final one, so readers must converge on epoch `batches + 1`.
#[test]
fn live_ingestion_never_serves_torn_epochs() {
    let batches = stress_rounds(10).max(4);
    let base = test_base_seed();
    for round in 0..2u64 {
        let seed = base.wrapping_add(0x51AB_0000).wrapping_add(round);
        let _guard = if round % 2 == 0 {
            YieldInjector::install(seed)
        } else {
            YieldInjector::install_aggressive(seed)
        };
        let p = 3;
        let cfg = DistConfig::weighted(48, seed)
            .with_threads(2)
            .with_merge(MergeMode::Concurrent)
            .with_continuous(ContinuousMode::EveryBatch);
        let results = run_threads(p, |comm| {
            let mut s = DistributedSampler::new(&comm, cfg);
            let reader = s.snapshot_reader();
            let stop = AtomicBool::new(false);
            std::thread::scope(|scope| {
                let handles = spawn_readers(scope, &reader, &stop, 4);
                for b in 0..batches {
                    s.process_batch(&unit_batch(comm.rank(), b, 120));
                }
                let handle = s.collect_output();
                stop.store(true, Ordering::Relaxed);
                let mut reads = 0;
                for h in handles {
                    let (n, last) = h.join().expect("reader panicked");
                    assert_eq!(
                        last,
                        batches + 1,
                        "reader quiesced before the final epoch became visible"
                    );
                    reads += n;
                }
                let e = reader.read();
                (e.local_len(), e.total, handle.total_len(), reads)
            })
        });
        let total = results[0].1;
        assert_eq!(
            results.iter().map(|r| r.0).sum::<u64>(),
            total,
            "per-PE epoch slices must tile the global sample"
        );
        for (_, epoch_total, handle_total, reads) in &results {
            assert_eq!(*epoch_total, *handle_total);
            assert!(*reads >= 4, "readers never ran");
        }
    }
}

/// Same race through the gather policy: the root's epochs carry the
/// whole sample, every other rank publishes empty slices — and none of
/// them may tear.
#[test]
fn gather_policy_publishes_readably_under_stress() {
    let batches = stress_rounds(8).max(4);
    let seed = test_base_seed().wrapping_add(0x6A77);
    let _guard = YieldInjector::install_aggressive(seed);
    let p = 3;
    let cfg = DistConfig::weighted(32, seed)
        .with_threads(2)
        .with_continuous(ContinuousMode::EveryBatch);
    let results = run_threads(p, |comm| {
        let mut s = GatherSampler::new(&comm, cfg);
        let reader = s.snapshot_reader();
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let handles = spawn_readers(scope, &reader, &stop, 4);
            for b in 0..batches {
                s.process_batch(&unit_batch(comm.rank(), b, 90));
            }
            let handle = s.collect_output();
            stop.store(true, Ordering::Relaxed);
            for h in handles {
                let (_, last) = h.join().expect("reader panicked");
                assert_eq!(last, batches + 1);
            }
            let e = reader.read();
            (comm.rank(), e.local_len(), e.total, handle.total_len())
        })
    });
    for (rank, local, total, handle_total) in &results {
        assert_eq!(*total, *handle_total);
        if *rank == 0 {
            assert_eq!(*local, *total, "root epochs carry the whole sample");
        } else {
            assert_eq!(*local, 0, "non-root gather epochs are empty slices");
        }
    }
}

/// Every publication becomes readable: a lone publisher drives numbered
/// epochs through the slot while readers track the publication counter;
/// whenever a reader has seen `latest_epoch() = n`, its next read
/// returns at least `n` (checked inside `check_read`), and once the
/// writer quiesces every reader's final read is exactly the last epoch.
#[test]
fn every_publication_is_eventually_readable() {
    use reservoir::dist::{EpochPublisher, SampleEpoch};
    let publications = stress_rounds(10).max(4) * 25;
    let base = test_base_seed();
    for round in 0..2u64 {
        let seed = base.wrapping_add(0xEB0C).wrapping_add(round);
        let _guard = if round % 2 == 0 {
            YieldInjector::install(seed)
        } else {
            YieldInjector::install_aggressive(seed)
        };
        let mut p = EpochPublisher::new(0, 1);
        let reader = p.reader();
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let handles = spawn_readers(scope, &reader, &stop, 4);
            for n in 1..=publications {
                let items = (0..n % 9)
                    .map(|i| reservoir::SampleItem {
                        id: n * 100 + i,
                        weight: 1.0,
                        key: i as f64 / 9.0,
                    })
                    .collect();
                p.publish(SampleEpoch::new(
                    p.next_epoch(),
                    items,
                    0,
                    n % 9,
                    0,
                    1,
                    Some(1.0),
                    0,
                ));
            }
            stop.store(true, Ordering::Relaxed);
            for h in handles {
                let (_, last) = h.join().expect("reader panicked");
                assert_eq!(last, publications, "a publication never became readable");
            }
        });
        assert_eq!(p.published(), publications);
    }
}

/// A publisher that dies must not take the sample service down with it:
/// the seqlock's write guard releases the version word on unwind and the
/// previously installed epoch stays behind the pointer, so readers keep
/// being served the last successful publication forever.
#[test]
fn writer_panic_leaves_the_last_epoch_readable() {
    use reservoir::dist::{EpochPublisher, SampleEpoch};
    let seed = test_base_seed().wrapping_add(0xDEAD);
    let _guard = YieldInjector::install_aggressive(seed);
    let mut p = EpochPublisher::new(0, 1);
    let reader = p.reader();
    let writer = std::thread::spawn(move || {
        for n in 1..=3u64 {
            p.publish(SampleEpoch::new(n, Vec::new(), 0, 0, 0, 1, None, 0));
        }
        panic!("publisher dies after epoch 3");
    });
    assert!(writer.join().is_err(), "writer must have panicked");
    // The slot outlives its publisher: still consistent, still current.
    for _ in 0..100 {
        let e = reader.read();
        assert!(e.verify());
        assert_eq!(e.epoch, 3, "last epoch must survive the writer's death");
    }
    assert_eq!(reader.latest_epoch(), 3);
    let another = reader.clone();
    assert_eq!(another.read().epoch, 3);
}
