//! Statistical goodness of fit for the always-fresh snapshot service: a
//! published [`SampleEpoch`](reservoir::dist::SampleEpoch) is not merely
//! un-torn, it is a *correct sample* — each epoch must obey the weighted
//! without-replacement inclusion law over exactly the stream prefix it
//! was published at, as if the stream had ended there and
//! `collect_output` had run.
//!
//! Three laws, each over many independent seeded trials:
//!
//! 1. Mid-stream epochs vs a reference sampler run on just the prefix —
//!    two-sample chi-square must accept (same law).
//! 2. Positive control: the same mid-stream epochs against the *full*
//!    stream's law must blow the limit — otherwise the statistic has no
//!    power at these trial counts.
//! 3. Final epoch reads vs an independent non-continuous run's
//!    `collect_output` — the read path serves the true sample law.
//!
//! The always-on tests keep trial counts modest; the `stats_`-prefixed
//! variants behind the `stats` feature run CI-scale trial counts
//! (`cargo test --release --features stats -- stats_`).

mod common;

use common::{chi_square_upper, skewed_weight, two_sample_chi_square};
use reservoir::comm::run_threads;
use reservoir::dist::threaded::DistributedSampler;
use reservoir::dist::{ContinuousMode, DistConfig};
use reservoir::rng::test_base_seed;
use reservoir::stream::Item;

/// Deal items 0..n round-robin over `p` PEs, split each PE's share into
/// `batches` mini-batches (same scheme as the dist chi-square suite).
fn batches_for(rank: usize, p: usize, n: u64, batches: usize) -> Vec<Vec<Item>> {
    let mine: Vec<Item> = (0..n)
        .filter(|i| *i as usize % p == rank)
        .map(|i| Item::new(i, skewed_weight(i)))
        .collect();
    let per = mine.len().div_ceil(batches).max(1);
    mine.chunks(per).map(<[Item]>::to_vec).collect()
}

/// Per-item inclusion counts of the epoch published after mini-batch
/// `cut`, read through `SnapshotReader` while ingestion *continues* to
/// the end of the stream — the epoch is immutable, so the counts are a
/// clean snapshot of the prefix sample even though the pipeline keeps
/// running past the read.
fn epoch_counts(
    n: u64,
    k: usize,
    p: usize,
    batches: usize,
    cut: usize,
    trials: u64,
    seed_base: u64,
) -> Vec<u64> {
    assert!(cut <= batches);
    let mut counts = vec![0u64; n as usize];
    for t in 0..trials {
        let ids = run_threads(p, |comm| {
            use reservoir::comm::Communicator;
            let cfg = DistConfig::weighted(k, seed_base.wrapping_add(t))
                .with_continuous(ContinuousMode::EveryBatch);
            let mut s = DistributedSampler::new(&comm, cfg);
            let reader = s.snapshot_reader();
            let mut mid: Vec<u64> = Vec::new();
            for (j, batch) in batches_for(comm.rank(), p, n, batches).iter().enumerate() {
                s.process_batch(batch);
                if j + 1 == cut {
                    let e = reader.read();
                    assert!(e.verify(), "torn epoch (trial {t})");
                    assert_eq!(e.epoch, cut as u64, "one publication per batch");
                    mid = e.items.iter().map(|m| m.id).collect();
                }
            }
            let _ = s.collect_output();
            mid
        });
        let picked: usize = ids.iter().map(Vec::len).sum();
        assert_eq!(picked, k, "mid-stream epoch must be finalized to k");
        for rank_ids in ids {
            for id in rank_ids {
                counts[id as usize] += 1;
            }
        }
    }
    counts
}

/// Reference law: a plain (non-continuous) sampler run over only the
/// first `cut` mini-batches per PE, read through `collect_output`.
fn prefix_reference_counts(
    n: u64,
    k: usize,
    p: usize,
    batches: usize,
    cut: usize,
    trials: u64,
    seed_base: u64,
) -> Vec<u64> {
    let mut counts = vec![0u64; n as usize];
    for t in 0..trials {
        let ids = run_threads(p, |comm| {
            use reservoir::comm::Communicator;
            let mut s =
                DistributedSampler::new(&comm, DistConfig::weighted(k, seed_base.wrapping_add(t)));
            for batch in batches_for(comm.rank(), p, n, batches).iter().take(cut) {
                s.process_batch(batch);
            }
            let handle = s.collect_output();
            handle
                .local_items()
                .iter()
                .map(|m| m.id)
                .collect::<Vec<u64>>()
        });
        for rank_ids in ids {
            for id in rank_ids {
                counts[id as usize] += 1;
            }
        }
    }
    counts
}

/// The body shared by the quick and the CI-scale variants of law 1.
fn check_mid_stream_epoch_law(n: u64, k: usize, p: usize, trials: u64, z: f64) {
    let base = test_base_seed();
    let (batches, cut) = (4usize, 2usize);
    let epochs = epoch_counts(n, k, p, batches, cut, trials, base.wrapping_add(21_000_000));
    let prefix =
        prefix_reference_counts(n, k, p, batches, cut, trials, base.wrapping_add(23_000_000));
    assert_eq!(epochs.iter().sum::<u64>(), trials * k as u64);
    assert_eq!(prefix.iter().sum::<u64>(), trials * k as u64);
    // The epoch can only contain prefix items: anything drawn past the
    // cut would be a leak from the sample's own future.
    for (i, &c) in epochs.iter().enumerate() {
        if c > 0 {
            assert!(
                prefix_member(i as u64, p, n, batches, cut),
                "item {i} from beyond the publication prefix appeared in an epoch"
            );
        }
    }
    let (stat, df) = two_sample_chi_square(&epochs, &prefix);
    let limit = chi_square_upper(df, z);
    assert!(
        stat < limit,
        "chi-square {stat:.1} exceeds χ²({df}) limit {limit:.1}: mid-stream epochs \
         do not follow the prefix sample law (base seed {base}; set \
         RESERVOIR_TEST_SEED to reproduce/vary)"
    );
}

/// Whether item `i` lies in the first `cut` of `batches` mini-batches of
/// its PE's share under the round-robin deal.
fn prefix_member(i: u64, p: usize, n: u64, batches: usize, cut: usize) -> bool {
    let rank = i as usize % p;
    let share = (0..n).filter(|j| *j as usize % p == rank).count();
    let per = share.div_ceil(batches).max(1);
    let pos = (0..n).filter(|j| *j as usize % p == rank && *j < i).count();
    pos / per < cut
}

#[test]
fn mid_stream_epochs_obey_the_prefix_sample_law() {
    // z = 2.33 is the 99th χ² percentile (p > 0.01). Deterministic under
    // the default base seed.
    check_mid_stream_epoch_law(96, 16, 2, 600, 2.33);
}

#[test]
fn epoch_chi_square_detects_the_wrong_prefix() {
    // Positive control: the mid-stream epoch law against the full
    // stream's law. Half the items never even reach the prefix, so the
    // statistic must blow far past the limit — otherwise these trial
    // counts prove nothing.
    let base = test_base_seed();
    let (n, k, p, trials) = (96u64, 16usize, 2usize, 300u64);
    let epochs = epoch_counts(n, k, p, 4, 2, trials, base.wrapping_add(25_000_000));
    let full = prefix_reference_counts(n, k, p, 4, 4, trials, base.wrapping_add(27_000_000));
    let (stat, df) = two_sample_chi_square(&epochs, &full);
    let limit = chi_square_upper(df, 2.33);
    assert!(
        stat > limit,
        "control failed: {stat:.1} should exceed {limit:.1} — a prefix sample is \
         not a full-stream sample (base seed {base})"
    );
}

/// Law 3: reading the sample through the final published epoch follows
/// the same inclusion law as an independent non-continuous run's
/// `collect_output` (exact same-seed equality is pinned separately in
/// `engine_equivalence`; this checks the *law* with disjoint seeds).
fn check_final_epoch_read_law(n: u64, k: usize, p: usize, trials: u64, z: f64) {
    let base = test_base_seed();
    let batches = 4usize;
    // Reading the epoch after the last batch plus collect_output's final
    // publication: cut = batches reads the last per-batch epoch.
    let via_epochs = epoch_counts(
        n,
        k,
        p,
        batches,
        batches,
        trials,
        base.wrapping_add(31_000_000),
    );
    let via_collect = prefix_reference_counts(
        n,
        k,
        p,
        batches,
        batches,
        trials,
        base.wrapping_add(33_000_000),
    );
    let (stat, df) = two_sample_chi_square(&via_epochs, &via_collect);
    let limit = chi_square_upper(df, z);
    assert!(
        stat < limit,
        "chi-square {stat:.1} exceeds χ²({df}) limit {limit:.1}: the epoch read \
         path distorts the sample law (base seed {base})"
    );
}

#[test]
fn final_epoch_reads_follow_the_collect_output_law() {
    check_final_epoch_read_law(96, 16, 2, 600, 2.33);
}

/// CI-scale versions (release build, `stats` feature): more items, more
/// PEs, an order of magnitude more trials.
#[cfg(feature = "stats")]
#[test]
fn stats_mid_stream_epoch_law_at_scale() {
    check_mid_stream_epoch_law(240, 30, 3, 4_000, 2.33);
}

#[cfg(feature = "stats")]
#[test]
fn stats_final_epoch_read_law_at_scale() {
    check_final_epoch_read_law(240, 30, 3, 4_000, 2.33);
}
