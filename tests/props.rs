//! Property-based integration tests over the public API.

use proptest::prelude::*;
use reservoir::comm::run_threads;
use reservoir::dist::threaded::DistributedSampler;
use reservoir::dist::DistConfig;
use reservoir::rng::{default_rng, Rng64};
use reservoir::seq::{UniformJumpSampler, WeightedJumpSampler};
use reservoir::stream::Item;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sequential weighted sampler: for arbitrary weights and k, the sample
    /// has min(k, n) distinct members, all seen, threshold = max key.
    #[test]
    fn seq_weighted_invariants(
        weights in prop::collection::vec(1e-3f64..1e3, 1..400),
        k in 1usize..50,
        seed in 0u64..1000,
    ) {
        let mut s = WeightedJumpSampler::new(k, default_rng(seed));
        for (i, &w) in weights.iter().enumerate() {
            s.process(i as u64, w);
        }
        let sample = s.sample();
        prop_assert_eq!(sample.len(), k.min(weights.len()));
        let mut ids: Vec<u64> = sample.iter().map(|x| x.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), sample.len());
        prop_assert!(ids.iter().all(|&i| (i as usize) < weights.len()));
        if let Some(t) = s.threshold() {
            prop_assert!(sample.iter().all(|x| x.key <= t));
        }
        // Weights in the sample are the original weights.
        for x in &sample {
            prop_assert_eq!(x.weight, weights[x.id as usize]);
        }
    }

    /// Sequential uniform sampler via runs: same invariants, and the
    /// processed count matches exactly.
    #[test]
    fn seq_uniform_run_invariants(n in 1u64..100_000, k in 1usize..64, seed in 0u64..1000) {
        let mut s = UniformJumpSampler::new(k, default_rng(seed));
        s.process_run(0, n);
        prop_assert_eq!(s.stats().processed, n);
        let sample = s.sample();
        prop_assert_eq!(sample.len(), k.min(n as usize));
        prop_assert!(sample.iter().all(|x| x.id < n && x.key > 0.0 && x.key <= 1.0));
    }

    /// Distributed sampler with arbitrary (small) batch plans: the union
    /// sample always has size min(k, total items); ids unique.
    #[test]
    fn distributed_union_size(
        batch_plan in prop::collection::vec(0usize..120, 1..5),
        k in 1usize..80,
        p in 1usize..4,
        seed in 0u64..500,
    ) {
        let plan = batch_plan.clone();
        let results = run_threads(p, move |comm| {
            use reservoir::comm::Communicator;
            let mut s = DistributedSampler::new(&comm, DistConfig::weighted(k, seed));
            let mut rng = default_rng(seed ^ comm.rank() as u64);
            let mut next_id = (comm.rank() as u64) << 32;
            let mut total = 0u64;
            for &b in &plan {
                let items: Vec<Item> = (0..b)
                    .map(|_| {
                        next_id += 1;
                        Item::new(next_id, 0.5 + rng.rand_oc() * 10.0)
                    })
                    .collect();
                total += b as u64;
                s.process_batch(&items);
            }
            (s.gather_sample(), total)
        });
        let total: u64 = results.iter().map(|(_, t)| t).sum::<u64>() / p as u64 * p as u64;
        let sample = results[0].0.as_ref().expect("root");
        prop_assert_eq!(sample.len() as u64, (k as u64).min(total));
        let mut ids: Vec<u64> = sample.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), sample.len());
    }
}
