//! Property-based integration tests over the public API.

use proptest::prelude::*;
use reservoir::comm::run_threads;
use reservoir::dist::threaded::DistributedSampler;
use reservoir::dist::{DistConfig, ShardedSampler};
use reservoir::rng::{default_rng, Rng64};
use reservoir::seq::{UniformJumpSampler, WeightedJumpSampler};
use reservoir::stream::{route_by_id, Item, ShardRouter};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sequential weighted sampler: for arbitrary weights and k, the sample
    /// has min(k, n) distinct members, all seen, threshold = max key.
    #[test]
    fn seq_weighted_invariants(
        weights in prop::collection::vec(1e-3f64..1e3, 1..400),
        k in 1usize..50,
        seed in 0u64..1000,
    ) {
        let mut s = WeightedJumpSampler::new(k, default_rng(seed));
        for (i, &w) in weights.iter().enumerate() {
            s.process(i as u64, w);
        }
        let sample = s.sample();
        prop_assert_eq!(sample.len(), k.min(weights.len()));
        let mut ids: Vec<u64> = sample.iter().map(|x| x.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), sample.len());
        prop_assert!(ids.iter().all(|&i| (i as usize) < weights.len()));
        if let Some(t) = s.threshold() {
            prop_assert!(sample.iter().all(|x| x.key <= t));
        }
        // Weights in the sample are the original weights.
        for x in &sample {
            prop_assert_eq!(x.weight, weights[x.id as usize]);
        }
    }

    /// Sequential uniform sampler via runs: same invariants, and the
    /// processed count matches exactly.
    #[test]
    fn seq_uniform_run_invariants(n in 1u64..100_000, k in 1usize..64, seed in 0u64..1000) {
        let mut s = UniformJumpSampler::new(k, default_rng(seed));
        s.process_run(0, n);
        prop_assert_eq!(s.stats().processed, n);
        let sample = s.sample();
        prop_assert_eq!(sample.len(), k.min(n as usize));
        prop_assert!(sample.iter().all(|x| x.id < n && x.key > 0.0 && x.key <= 1.0));
    }

    /// Size-window (Section 4.4) invariants under arbitrary geometry: the
    /// reported sample size stays at or below `hi` and — once the sample
    /// filled — at or above `lo`; the threshold is monotonically
    /// non-increasing; finalization cuts the output back to exactly
    /// min(lo, total); and no item id appears on two PEs afterwards.
    #[test]
    fn size_window_invariants(
        lo in 5u64..40,
        extra in 1u64..40,
        p in 1usize..4,
        batch in 20usize..150,
        seed in 0u64..400,
    ) {
        let hi = lo + extra;
        let results = run_threads(p, move |comm| {
            use reservoir::comm::Communicator;
            let cfg = DistConfig::weighted(lo as usize, seed ^ 0x517E_AB1E).with_size_window(lo, hi);
            let mut s = DistributedSampler::new(&comm, cfg);
            let mut sizes = Vec::new();
            let mut thresholds = Vec::new();
            let mut total = 0u64;
            for b in 0..4u64 {
                let items: Vec<Item> = (0..batch as u64)
                    .map(|i| {
                        let id = ((comm.rank() as u64) << 40) | (b << 20) | i;
                        Item::new(id, 0.25 + (i % 13) as f64)
                    })
                    .collect();
                total += items.len() as u64;
                let rep = s.process_batch(&items);
                sizes.push(rep.sample_size);
                thresholds.push(s.threshold());
            }
            let handle = s.collect_output();
            (sizes, thresholds, handle, total)
        });
        let (sizes, thresholds, _, per_pe_total) = &results[0];
        let total: u64 = per_pe_total * p as u64;
        // The size never exceeds the window top; once the sample has
        // filled (a threshold exists), it never drops below the bottom.
        for (sz, t) in sizes.iter().zip(thresholds) {
            prop_assert!(*sz <= hi, "size {sz} above window top {hi}");
            if t.is_some() {
                prop_assert!(*sz >= lo, "size {sz} under window bottom {lo}");
            }
        }
        // Thresholds are non-increasing once established.
        let established: Vec<f64> = thresholds.iter().flatten().copied().collect();
        prop_assert!(established.windows(2).all(|w| w[1] <= w[0]));
        // Every PE agrees on sizes and thresholds.
        for r in &results[1..] {
            prop_assert_eq!(&r.0, sizes);
            prop_assert_eq!(&r.1, thresholds);
        }
        // Finalized output: exactly min(lo, total) members, disjoint ids
        // across PEs, offsets partitioning the global range in rank order.
        let expect = lo.min(total);
        let grand: u64 = results.iter().map(|(_, _, h, _)| h.local_len()).sum();
        prop_assert_eq!(grand, expect);
        let mut next = 0u64;
        let mut all_ids = Vec::new();
        for (_, _, h, _) in &results {
            prop_assert_eq!(h.total_len(), expect);
            prop_assert_eq!(h.offset(), next);
            next += h.local_len();
            all_ids.extend(h.local_items().iter().map(|m| m.id));
            if let Some(t) = h.threshold() {
                prop_assert!(h.local_items().iter().all(|m| m.key <= t));
            }
        }
        let distinct = all_ids.len();
        all_ids.sort_unstable();
        all_ids.dedup();
        prop_assert_eq!(all_ids.len(), distinct, "duplicate ids across PEs");
    }

    /// Distributed sampler with arbitrary (small) batch plans: the union
    /// sample always has size min(k, total items); ids unique.
    #[test]
    fn distributed_union_size(
        batch_plan in prop::collection::vec(0usize..120, 1..5),
        k in 1usize..80,
        p in 1usize..4,
        seed in 0u64..500,
    ) {
        let plan = batch_plan.clone();
        let results = run_threads(p, move |comm| {
            use reservoir::comm::Communicator;
            let mut s = DistributedSampler::new(&comm, DistConfig::weighted(k, seed));
            let mut rng = default_rng(seed ^ comm.rank() as u64);
            let mut next_id = (comm.rank() as u64) << 32;
            let mut total = 0u64;
            for &b in &plan {
                let items: Vec<Item> = (0..b)
                    .map(|_| {
                        next_id += 1;
                        Item::new(next_id, 0.5 + rng.rand_oc() * 10.0)
                    })
                    .collect();
                total += b as u64;
                s.process_batch(&items);
            }
            (s.gather_sample(), total)
        });
        let total: u64 = results.iter().map(|(_, t)| t).sum::<u64>() / p as u64 * p as u64;
        let sample = results[0].0.as_ref().expect("root");
        prop_assert_eq!(sample.len() as u64, (k as u64).min(total));
        let mut ids: Vec<u64> = sample.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), sample.len());
    }

    /// `SampleHandle::shards` edge cases on real collected outputs — an
    /// empty stream (total == 0) yields no assignments, more shards than
    /// members gives every member its own shard (its global position), a
    /// single member lands in shard 0 — and in every case assignments
    /// stay in range, cover all members exactly once, and are monotone in
    /// global position.
    #[test]
    fn sample_handle_shard_routing_edges(
        n in 0u64..6,
        shards in 1u64..96,
        k in 1usize..8,
        p in 1usize..4,
        seed in 0u64..300,
    ) {
        let results = run_threads(p, move |comm| {
            use reservoir::comm::Communicator;
            let mut s = DistributedSampler::new(&comm, DistConfig::weighted(k, seed ^ 0xD1CE));
            // All records arrive at PE 0: the edge geometry where most
            // PEs own no slice of the output.
            let items: Vec<Item> = if comm.rank() == 0 {
                (0..n).map(|i| Item::new(i, 1.0 + i as f64)).collect()
            } else {
                Vec::new()
            };
            s.process_batch(&items);
            s.collect_output()
        });
        let total = n.min(k as u64);
        let mut assigned: Vec<(u64, u64)> = Vec::new();
        for h in &results {
            prop_assert_eq!(h.total_len(), total);
            prop_assert_eq!(h.is_empty(), total == 0);
            for ((pos, _), (shard, _)) in h.enumerate().zip(h.shards(shards)) {
                prop_assert!(shard < shards);
                assigned.push((pos, shard));
            }
        }
        prop_assert_eq!(assigned.len() as u64, total, "every member assigned once");
        assigned.sort_unstable();
        prop_assert!(
            assigned.windows(2).all(|w| w[0].1 <= w[1].1),
            "shard indices monotone in global position"
        );
        if shards >= total {
            // More shards than members: one member per shard, at the
            // shard matching its global position.
            for &(pos, shard) in &assigned {
                prop_assert_eq!(shard, pos);
            }
        }
        if total == 1 {
            prop_assert_eq!(assigned[0], (0, 0));
        }
    }

    /// Router invariants under arbitrary keys and shard counts: every
    /// record lands in exactly one shard (the buckets partition the
    /// input), and the assignment is a pure function of the key —
    /// `shard_of` reproduces it record by record.
    #[test]
    fn shard_router_partitions_exactly(
        ids in prop::collection::vec(0u64..10_000, 0..300),
        shards in 1usize..40,
        modulus in 1u64..64,
    ) {
        let router = ShardRouter::new(shards, move |item: &Item| item.id % modulus);
        let items: Vec<Item> = ids.iter().map(|&i| Item::new(i, 1.0)).collect();
        let buckets = router.route(items);
        prop_assert_eq!(buckets.len(), shards);
        let mut seen: Vec<u64> = buckets.iter().flatten().map(|i| i.id).collect();
        prop_assert_eq!(seen.len(), ids.len(), "exactly one shard per record");
        seen.sort_unstable();
        let mut expect = ids.clone();
        expect.sort_unstable();
        prop_assert_eq!(seen, expect);
        for (s, bucket) in buckets.iter().enumerate() {
            for it in bucket {
                prop_assert_eq!(router.shard_of(it), s);
            }
        }
    }

    /// A shard's sample is a function of its own routed substream alone:
    /// adding empty shards to the fleet (same buckets, larger shard
    /// count) leaves every original shard's threshold and members
    /// byte-identical.
    #[test]
    fn per_shard_sample_independent_of_fleet_size(
        shards in 1usize..5,
        extra in 1usize..4,
        k in 1usize..10,
        n in 0u64..400,
        seed in 0u64..200,
    ) {
        let results = run_threads(1, move |comm| {
            let cfg = DistConfig::weighted(k, seed ^ 0x5AFE);
            let router = route_by_id(shards);
            let items: Vec<Item> =
                (0..n).map(|i| Item::new(i, 0.5 + (i % 9) as f64)).collect();
            let mut small = ShardedSampler::new(&comm, cfg, shards);
            let mut big = ShardedSampler::new(&comm, cfg, shards + extra);
            let mut buckets = router.route(items);
            small.process_batch(&buckets);
            buckets.resize(shards + extra, Vec::new());
            big.process_batch(&buckets);
            (small.collect_output(), big.collect_output())
        });
        let (small, big) = &results[0];
        for s in 0..shards {
            prop_assert_eq!(small[s].threshold(), big[s].threshold(), "shard {}", s);
            let a: Vec<u64> = small[s].local_items().iter().map(|m| m.id).collect();
            let b: Vec<u64> = big[s].local_items().iter().map(|m| m.id).collect();
            prop_assert_eq!(a, b, "shard {} members", s);
        }
    }
}
