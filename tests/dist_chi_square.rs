//! End-to-end statistical goodness of fit for the **distributed** sampler
//! (threaded backend, skewed weights, many independent trials), mirroring
//! the sequential jump-vs-naive test in `crates/core/tests/chi_square.rs`.
//!
//! The paper's Section 5 output collection must be a pure re-packaging of
//! the sample: the members every PE keeps under the distributed output
//! path must be (a) *identical* to what the root funnel would have
//! gathered from the same sampler, and (b) drawn from the *same inclusion
//! law* as the centralized `GatherSampler` baseline, which computes the
//! sample with a completely different protocol. (a) is checked exactly
//! inside every trial; (b) with a two-sample chi-square over per-item
//! inclusion counts.
//!
//! The always-on tests keep trial counts modest; the `stats_`-prefixed
//! tests behind the `stats` feature run the same laws at CI scale
//! (`cargo test --release --features stats -- stats_`).

mod common;

use common::{chi_square_upper, skewed_weight, two_sample_chi_square};
use reservoir::comm::run_threads;
use reservoir::dist::gather::GatherSampler;
use reservoir::dist::threaded::DistributedSampler;
use reservoir::dist::DistConfig;
use reservoir::rng::test_base_seed;
use reservoir::stream::Item;

/// Deal items 0..n round-robin over `p` PEs, split each PE's share into
/// `batches` mini-batches.
fn batches_for(rank: usize, p: usize, n: u64, batches: usize) -> Vec<Vec<Item>> {
    let mine: Vec<Item> = (0..n)
        .filter(|i| *i as usize % p == rank)
        .map(|i| Item::new(i, skewed_weight(i)))
        .collect();
    let per = mine.len().div_ceil(batches).max(1);
    mine.chunks(per).map(<[Item]>::to_vec).collect()
}

/// Per-item inclusion counts of the distributed sampler over `trials`
/// runs, collected through the Section 5 distributed output path. Each
/// trial also pins the output paths against each other: the all-gathered
/// distributed output must equal the root-funnel `gather_sample` exactly.
#[allow(clippy::too_many_arguments)]
fn distributed_counts(
    n: u64,
    k: usize,
    p: usize,
    batches: usize,
    trials: u64,
    seed_base: u64,
    window: Option<(u64, u64)>,
) -> Vec<u64> {
    let mut counts = vec![0u64; n as usize];
    for t in 0..trials {
        let ids = run_threads(p, |comm| {
            use reservoir::comm::Communicator;
            let mut cfg = DistConfig::weighted(k, seed_base.wrapping_add(t));
            if let Some((lo, hi)) = window {
                cfg = cfg.with_size_window(lo, hi);
            }
            let mut s = DistributedSampler::new(&comm, cfg);
            for batch in batches_for(comm.rank(), p, n, batches) {
                s.process_batch(&batch);
            }
            let rooted = s.gather_sample();
            let handle = s.collect_output();
            let all = handle.all_items(&comm);
            // Both output paths expose the same member set — except in
            // window mode, where the distributed path finalizes to exact k
            // while the funnel ships the current (wider) window.
            if window.is_none() {
                let mut a: Vec<u64> = all.iter().map(|s| s.id).collect();
                a.sort_unstable();
                if let Some(r) = rooted {
                    let mut b: Vec<u64> = r.iter().map(|s| s.id).collect();
                    b.sort_unstable();
                    assert_eq!(a, b, "output paths diverged (trial {t})");
                }
            }
            assert_eq!(handle.total_len(), k as u64);
            all.into_iter().map(|s| s.id).collect::<Vec<u64>>()
        });
        assert_eq!(ids[0].len(), k);
        for &id in &ids[0] {
            counts[id as usize] += 1;
        }
    }
    counts
}

/// Per-item inclusion counts of the centralized `GatherSampler` baseline,
/// read through its own output handle.
fn gather_baseline_counts(
    n: u64,
    k: usize,
    p: usize,
    batches: usize,
    trials: u64,
    seed_base: u64,
) -> Vec<u64> {
    let mut counts = vec![0u64; n as usize];
    for t in 0..trials {
        let results = run_threads(p, |comm| {
            use reservoir::comm::Communicator;
            let mut s =
                GatherSampler::new(&comm, DistConfig::weighted(k, seed_base.wrapping_add(t)));
            for batch in batches_for(comm.rank(), p, n, batches) {
                s.process_batch(&batch);
            }
            s.collect_output()
        });
        assert_eq!(results[0].local_len(), k as u64, "root holds the sample");
        for m in results[0].local_items() {
            counts[m.id as usize] += 1;
        }
    }
    counts
}

/// The body shared by the quick and the CI-scale variants.
fn check_distributed_matches_gather_law(n: u64, k: usize, p: usize, trials: u64, z: f64) {
    let base = test_base_seed();
    let dist = distributed_counts(n, k, p, 2, trials, base.wrapping_add(1_000_000), None);
    let gather = gather_baseline_counts(n, k, p, 2, trials, base.wrapping_add(9_000_000));
    // Sanity: both produced exactly k members per trial.
    assert_eq!(dist.iter().sum::<u64>(), trials * k as u64);
    assert_eq!(gather.iter().sum::<u64>(), trials * k as u64);
    // Heavy items must dominate light ones (weights span three decades).
    assert!(dist[0] > dist[59] * 3, "{} vs {}", dist[0], dist[59]);
    let (stat, df) = two_sample_chi_square(&dist, &gather);
    let limit = chi_square_upper(df, z);
    assert!(
        stat < limit,
        "chi-square {stat:.1} exceeds χ²({df}) limit {limit:.1}: distributed and \
         gather-baseline inclusion laws differ (base seed {base}; \
         set RESERVOIR_TEST_SEED to reproduce/vary)"
    );
}

#[test]
fn distributed_and_gather_inclusion_laws_match() {
    // z = 2.33 is the 99th χ² percentile — the observed statistic
    // corresponds to p > 0.01. Deterministic under the default base seed.
    check_distributed_matches_gather_law(96, 16, 2, 600, 2.33);
}

#[test]
fn dist_chi_square_detects_a_genuinely_different_law() {
    // Positive control: distributed k vs gather 3k/2 on the same stream
    // must blow far past the same limit — otherwise the statistic has no
    // power at these trial counts.
    let base = test_base_seed();
    let (n, p, trials) = (96u64, 2usize, 300u64);
    let a = distributed_counts(n, 16, p, 2, trials, base.wrapping_add(3_000_000), None);
    let b = gather_baseline_counts(n, 24, p, 2, trials, base.wrapping_add(5_000_000));
    let (stat, df) = two_sample_chi_square(&a, &b);
    let limit = chi_square_upper(df, 2.33);
    assert!(
        stat > limit,
        "control failed: {stat:.1} should exceed {limit:.1} for different laws \
         (base seed {base})"
    );
}

#[test]
fn window_mode_output_has_the_exact_k_law() {
    // Variable-size mode holds up to k̄ members mid-stream; collect_output
    // must cut it back to an exact-k sample with the same law as an
    // exact-k run. Compare window-mode distributed output against the
    // plain gather baseline at k.
    let base = test_base_seed();
    let (n, k, p, trials) = (96u64, 16usize, 2usize, 600u64);
    let windowed = distributed_counts(
        n,
        k,
        p,
        2,
        trials,
        base.wrapping_add(7_000_000),
        Some((k as u64, 2 * k as u64 + 8)),
    );
    let gather = gather_baseline_counts(n, k, p, 2, trials, base.wrapping_add(8_000_000));
    assert_eq!(windowed.iter().sum::<u64>(), trials * k as u64);
    let (stat, df) = two_sample_chi_square(&windowed, &gather);
    let limit = chi_square_upper(df, 2.33);
    assert!(
        stat < limit,
        "chi-square {stat:.1} exceeds χ²({df}) limit {limit:.1}: window-mode \
         finalization distorts the sample law (base seed {base})"
    );
}

/// CI-scale version (release build, `stats` feature): more items, more
/// PEs, an order of magnitude more trials.
#[cfg(feature = "stats")]
#[test]
fn stats_distributed_matches_gather_law_at_scale() {
    check_distributed_matches_gather_law(240, 30, 3, 4_000, 2.33);
}

#[cfg(feature = "stats")]
#[test]
fn stats_window_mode_matches_exact_mode_law_at_scale() {
    let base = test_base_seed();
    let (n, k, p, trials) = (240u64, 30usize, 3usize, 3_000u64);
    let windowed = distributed_counts(
        n,
        k,
        p,
        3,
        trials,
        base.wrapping_add(11_000_000),
        Some((k as u64, 3 * k as u64)),
    );
    let exact = distributed_counts(n, k, p, 3, trials, base.wrapping_add(13_000_000), None);
    let (stat, df) = two_sample_chi_square(&windowed, &exact);
    let limit = chi_square_upper(df, 2.33);
    assert!(
        stat < limit,
        "chi-square {stat:.1} exceeds χ²({df}) limit {limit:.1} (base seed {base})"
    );
}
