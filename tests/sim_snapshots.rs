//! Cost-model regression snapshots: fig4/5/6-style gather-vs-distributed
//! tables from `SimCluster`, pinned as a golden file so silent drift in
//! the α–β model, the local cost model, or the selection protocol fails
//! CI.
//!
//! The golden table lives in `tests/golden/sim_costs.tsv`. On mismatch the
//! test writes the freshly computed table (and a cell-level diff) to
//! `target/sim-snapshot/` — CI uploads that directory as an artifact. To
//! re-baseline after an *intentional* cost-model change:
//!
//! ```text
//! UPDATE_SIM_GOLDEN=1 cargo test --test sim_snapshots
//! ```
//!
//! The grid runs a fixed literal seed (not `RESERVOIR_TEST_SEED`): the
//! snapshot pins one concrete trajectory, it is not a statistical test.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

use reservoir::comm::CostModel;
use reservoir::dist::sim::{AnalyticLocalCosts, OutputPath, SimAlgo, SimCluster, SimConfig};
use reservoir::dist::{ContinuousMode, SamplingMode};

/// PE counts (nodes × 20 as in the paper's grid), sample sizes, scan
/// threads per PE, and variable-size-window factors pinned by the
/// snapshot. The thread dimension models multicore PEs running
/// `reservoir_par`'s chunked scan (the cost model divides the scan +
/// keygen charge by the Amdahl speedup); the window dimension is the
/// Section 4.4 `k̄/k` ratio — `1` is exact-size mode, `2` runs with a
/// `(k, 2k)` window, whose mid-window output collections pay real
/// finalization selection rounds through the engine's shared finalize
/// step (visible in `dist_rounds` / `dist_out_s`).
const P_GRID: [usize; 3] = [20, 320, 5120];
const K_GRID: [usize; 3] = [1_000, 10_000, 100_000];
const T_GRID: [usize; 2] = [1, 4];
const W_GRID: [u64; 2] = [1, 2];
const SNAPSHOT_SEED: u64 = 0xC0FFEE;
const BATCHES: usize = 3;

/// Relative tolerance for modeled seconds and word counts: wide enough to
/// absorb cross-platform libm wiggle shifting a selection by a round or
/// two, narrow enough that any real cost-model change trips it.
const REL_TOL: f64 = 0.35;
/// Selection rounds may drift by a couple across platforms.
const ROUNDS_TOL: i64 = 4;

#[derive(Clone, Copy, Debug, PartialEq)]
struct Row {
    p: usize,
    k: usize,
    /// Scan threads per PE.
    t: usize,
    /// Variable-size window factor `k̄/k` (1 = exact-size mode).
    w: u64,
    /// Mean modeled seconds per mini-batch, Algorithm 1 (8 pivots).
    ours_batch_s: f64,
    /// Mean modeled seconds per mini-batch, gather baseline.
    gather_batch_s: f64,
    /// Output collection, Section 5 distributed path: seconds + busiest
    /// endpoint's words + finalization rounds.
    dist_out_s: f64,
    dist_out_words: u64,
    dist_rounds: u32,
    /// Output collection through the root funnel.
    gather_out_s: f64,
    gather_out_words: u64,
}

const COLUMNS: &str = "p\tk\tt\tw\tours_batch_s\tgather_batch_s\tdist_out_s\tdist_out_words\tdist_rounds\tgather_out_s\tgather_out_words";

fn compute_table() -> Vec<Row> {
    let mut rows = Vec::new();
    for &p in &P_GRID {
        for &k in &K_GRID {
            for &t in &T_GRID {
                for &w in &W_GRID {
                    let mk = |algo| {
                        let mut cfg = SimConfig::new(
                            p,
                            k,
                            k as u64,
                            SamplingMode::Weighted,
                            algo,
                            SNAPSHOT_SEED ^ ((p as u64) << 32) ^ k as u64,
                        )
                        .with_threads(t)
                        // The snapshot pins the baseline (non-continuous)
                        // trajectory even when the suite runs under
                        // RESERVOIR_CONTINUOUS=1: per-batch epoch
                        // publication bills extra output rounds that the
                        // golden table deliberately excludes.
                        .with_continuous(ContinuousMode::Disabled);
                        if w > 1 {
                            cfg = cfg.with_size_window(k as u64, w * k as u64);
                        }
                        cfg
                    };
                    let net = CostModel::infiniband_edr();
                    let costs = AnalyticLocalCosts::default();
                    let mut ours = SimCluster::new(mk(SimAlgo::Ours { pivots: 8 }), net, costs);
                    // The gather baseline has no variable-size mode; its
                    // batch column stays the exact-size run on every row.
                    let mut gather = SimCluster::new(
                        SimConfig::new(
                            p,
                            k,
                            k as u64,
                            SamplingMode::Weighted,
                            SimAlgo::Gather,
                            SNAPSHOT_SEED ^ ((p as u64) << 32) ^ k as u64,
                        )
                        .with_threads(t)
                        .with_continuous(ContinuousMode::Disabled),
                        net,
                        costs,
                    );
                    let mut ours_s = 0.0;
                    let mut gather_s = 0.0;
                    for _ in 0..BATCHES {
                        ours_s += ours.process_batch().times.total();
                        gather_s += gather.process_batch().times.total();
                    }
                    let dist_out = ours.collect_output(OutputPath::Distributed);
                    let gather_out = ours.collect_output(OutputPath::Gather);
                    rows.push(Row {
                        p,
                        k,
                        t,
                        w,
                        ours_batch_s: ours_s / BATCHES as f64,
                        gather_batch_s: gather_s / BATCHES as f64,
                        dist_out_s: dist_out.times.total(),
                        dist_out_words: dist_out.bottleneck_words,
                        dist_rounds: dist_out.rounds,
                        gather_out_s: gather_out.times.total(),
                        gather_out_words: gather_out.bottleneck_words,
                    });
                }
            }
        }
    }
    rows
}

fn format_table(rows: &[Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# SimCluster cost snapshot — seed {SNAPSHOT_SEED:#x}, {BATCHES} batches, b_per_pe = k,\n\
         # InfiniBand EDR α–β model, AnalyticLocalCosts. Regenerate with\n\
         # UPDATE_SIM_GOLDEN=1 cargo test --test sim_snapshots\n\
         # {COLUMNS}"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{}\t{}\t{}\t{}\t{:.6e}\t{:.6e}\t{:.6e}\t{}\t{}\t{:.6e}\t{}",
            r.p,
            r.k,
            r.t,
            r.w,
            r.ours_batch_s,
            r.gather_batch_s,
            r.dist_out_s,
            r.dist_out_words,
            r.dist_rounds,
            r.gather_out_s,
            r.gather_out_words,
        );
    }
    out
}

fn parse_table(text: &str) -> Vec<Row> {
    text.lines()
        .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
        .map(|l| {
            let f: Vec<&str> = l.split('\t').collect();
            assert_eq!(f.len(), 11, "malformed golden row: {l:?}");
            Row {
                p: f[0].parse().expect("p"),
                k: f[1].parse().expect("k"),
                t: f[2].parse().expect("t"),
                w: f[3].parse().expect("w"),
                ours_batch_s: f[4].parse().expect("ours_batch_s"),
                gather_batch_s: f[5].parse().expect("gather_batch_s"),
                dist_out_s: f[6].parse().expect("dist_out_s"),
                dist_out_words: f[7].parse().expect("dist_out_words"),
                dist_rounds: f[8].parse().expect("dist_rounds"),
                gather_out_s: f[9].parse().expect("gather_out_s"),
                gather_out_words: f[10].parse().expect("gather_out_words"),
            }
        })
        .collect()
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/sim_costs.tsv")
}

fn rel_close(a: f64, b: f64) -> bool {
    (a - b).abs() <= REL_TOL * a.abs().max(b.abs()) + 1e-12
}

#[test]
fn sim_cost_tables_match_golden_snapshot() {
    let rows = compute_table();
    let actual_text = format_table(&rows);
    if std::env::var("UPDATE_SIM_GOLDEN").is_ok() {
        fs::write(golden_path(), &actual_text).expect("write golden");
        eprintln!("sim golden snapshot rewritten at {:?}", golden_path());
        return;
    }
    let golden_text = fs::read_to_string(golden_path())
        .expect("missing tests/golden/sim_costs.tsv — run UPDATE_SIM_GOLDEN=1 once");
    let golden = parse_table(&golden_text);
    assert_eq!(
        golden.len(),
        rows.len(),
        "snapshot grid changed; re-baseline"
    );

    let mut diffs = String::new();
    for (g, a) in golden.iter().zip(&rows) {
        assert_eq!(
            (g.p, g.k, g.t, g.w),
            (a.p, a.k, a.t, a.w),
            "grid order changed; re-baseline"
        );
        let mut cell = |name: &str, gv: f64, av: f64| {
            if !rel_close(gv, av) {
                let _ = writeln!(
                    diffs,
                    "p={} k={} t={} w={} {name}: golden {gv:.6e} vs actual {av:.6e} ({:+.1}%)",
                    g.p,
                    g.k,
                    g.t,
                    g.w,
                    100.0 * (av - gv) / gv.abs().max(1e-300)
                );
            }
        };
        cell("ours_batch_s", g.ours_batch_s, a.ours_batch_s);
        cell("gather_batch_s", g.gather_batch_s, a.gather_batch_s);
        cell("dist_out_s", g.dist_out_s, a.dist_out_s);
        cell("gather_out_s", g.gather_out_s, a.gather_out_s);
        cell(
            "dist_out_words",
            g.dist_out_words as f64,
            a.dist_out_words as f64,
        );
        cell(
            "gather_out_words",
            g.gather_out_words as f64,
            a.gather_out_words as f64,
        );
        if (g.dist_rounds as i64 - a.dist_rounds as i64).abs() > ROUNDS_TOL {
            let _ = writeln!(
                diffs,
                "p={} k={} t={} w={} dist_rounds: golden {} vs actual {}",
                g.p, g.k, g.t, g.w, g.dist_rounds, a.dist_rounds
            );
        }
    }
    if !diffs.is_empty() {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target/sim-snapshot");
        fs::create_dir_all(&dir).expect("create target/sim-snapshot");
        fs::write(dir.join("actual.tsv"), &actual_text).expect("write actual");
        fs::write(dir.join("diff.txt"), &diffs).expect("write diff");
        panic!(
            "sim cost snapshot drifted (full table + diff written to \
             target/sim-snapshot/):\n{diffs}\n\
             If the change is intentional, re-baseline with \
             UPDATE_SIM_GOLDEN=1 cargo test --test sim_snapshots"
        );
    }
}

/// The acceptance-criterion crossover, read off the pinned table (which
/// the companion test keeps equal to the live computation): the Section 5
/// distributed output beats the root funnel — in bottleneck words
/// everywhere the sample is non-trivial, and in modeled time on large
/// machines.
/// Multicore PEs (t = 4) must batch at least as fast as single-threaded
/// ones in the modeled grid — the thread dimension only divides the
/// scan + keygen charge, everything else is equal.
#[test]
fn sim_multicore_rows_are_no_slower() {
    let rows = parse_table(&fs::read_to_string(golden_path()).expect("golden table present"));
    // Rows per (p, k): t × w, with w innermost — pair equal-w rows across
    // the two thread counts.
    for block in rows.chunks(T_GRID.len() * W_GRID.len()) {
        for wi in 0..W_GRID.len() {
            let (one, four) = (&block[wi], &block[W_GRID.len() + wi]);
            assert_eq!((one.p, one.k, one.w, one.t), (four.p, four.k, four.w, 1));
            assert_eq!(four.t, 4);
            assert!(
                four.ours_batch_s <= one.ours_batch_s * 1.0001,
                "p={} k={} w={}: 4-thread batch {:.3e}s slower than 1-thread {:.3e}s",
                one.p,
                one.k,
                one.w,
                four.ours_batch_s,
                one.ours_batch_s
            );
        }
    }
}

#[test]
fn sim_distributed_output_beats_gather_for_large_p() {
    let rows = parse_table(&fs::read_to_string(golden_path()).expect("golden table present"));
    assert_eq!(
        rows.len(),
        P_GRID.len() * K_GRID.len() * T_GRID.len() * W_GRID.len()
    );
    for r in &rows {
        assert!(
            r.dist_out_words < r.gather_out_words,
            "p={} k={} w={}: distributed output moves {} bottleneck words, \
             gather {} — the funnel should always carry more",
            r.p,
            r.k,
            r.w,
            r.dist_out_words,
            r.gather_out_words
        );
    }
    // The paper's time crossover is about exact-size output (w = 1). A
    // mid-window output additionally pays O(α log p) finalization rounds,
    // so its time win over the funnel needs the bandwidth term to
    // dominate — which it does once k is large.
    for r in rows
        .iter()
        .filter(|r| (r.w == 1 && r.p >= 320 && r.k >= 10_000) || (r.w == 2 && r.k >= 100_000))
    {
        assert!(
            r.dist_out_s < r.gather_out_s,
            "p={} k={} w={}: distributed output {:.3e}s should beat gather {:.3e}s",
            r.p,
            r.k,
            r.w,
            r.dist_out_s,
            r.gather_out_s
        );
    }
}

/// The new window rows (w = 2) must show what exact-size rows cannot: a
/// mid-window output collection pays real finalization selection rounds,
/// charged through the engine's shared finalize step.
#[test]
fn sim_window_rows_pay_finalization_rounds() {
    let rows = parse_table(&fs::read_to_string(golden_path()).expect("golden table present"));
    for block in rows.chunks(W_GRID.len()) {
        let (exact, window) = (&block[0], &block[1]);
        assert_eq!((exact.w, window.w), (1, 2), "w must be the innermost dim");
        assert_eq!(
            exact.dist_rounds, 0,
            "p={} k={} t={}: exact-size mode is already finalized at output",
            exact.p, exact.k, exact.t
        );
        assert!(
            window.dist_rounds >= 1,
            "p={} k={} t={}: a (k, 2k) window must finalize at output",
            window.p,
            window.k,
            window.t
        );
        assert!(
            window.dist_out_s > exact.dist_out_s,
            "p={} k={} t={}: finalization rounds must cost output time \
             ({:.3e}s vs {:.3e}s)",
            window.p,
            window.k,
            window.t,
            window.dist_out_s,
            exact.dist_out_s
        );
    }
}
