//! The multi-tenant sharded sampler: per-shard law, batched-schedule
//! amortization, and pipeline integration.
//!
//! The cornerstone is **byte-equivalence**: shard `s` of a
//! [`ShardedSampler`] must produce exactly the sample a standalone
//! [`DistributedSampler`] with seed `shard_seed(seed, s)` produces when
//! fed exactly that shard's records — the batched collective schedule
//! is a pure communication optimization, invisible to the law. On top
//! of that, a χ² goodness-of-fit pins a shard's inclusion law against
//! an *independently seeded* single-tenant reference at several shard
//! counts, and the round accounting asserts the fleet pays max (not
//! sum) of the per-shard selection rounds.

mod common;

use common::{chi_square_upper, skewed_weight, two_sample_chi_square};
use reservoir::btree::PAGE_NODES;
use reservoir::comm::run_threads;
use reservoir::dist::threaded::DistributedSampler;
use reservoir::dist::{shard_seed, ContinuousMode, DistConfig, MergeMode, ShardedSampler};
use reservoir::rng::test_base_seed;
use reservoir::stream::ingest::{spawn_source, BatchPolicy, SyntheticRecords};
use reservoir::stream::{route_by_id, Item, ShardRouter, StreamSpec, WeightGen};

/// This PE's slice of items 0..n (round-robin over `p`), split into
/// `batches` mini-batches, with the suite's skewed weight profile.
fn batches_for(rank: usize, p: usize, n: u64, batches: usize) -> Vec<Vec<Item>> {
    let mine: Vec<Item> = (0..n)
        .filter(|i| *i as usize % p == rank)
        .map(|i| Item::new(i, skewed_weight(i)))
        .collect();
    let per = mine.len().div_ceil(batches).max(1);
    mine.chunks(per).map(<[Item]>::to_vec).collect()
}

fn sorted_ids(items: &[reservoir::SampleItem]) -> Vec<u64> {
    let mut ids: Vec<u64> = items.iter().map(|m| m.id).collect();
    ids.sort_unstable();
    ids
}

/// Shard `s` of the fleet == a standalone sampler with `shard_seed(seed, s)`
/// fed exactly shard `s`'s bucket stream: byte-identical local samples,
/// thresholds, and Section 5 handles, at several PE and shard counts.
#[test]
fn shard_matches_standalone_sampler_exactly() {
    let seed = test_base_seed();
    for (p, shards, k) in [(1usize, 4usize, 15usize), (3, 5, 20)] {
        let results = run_threads(p, |comm| {
            use reservoir::comm::Communicator;
            let router = route_by_id(shards);
            let cfg = DistConfig::weighted(k, seed);
            let mut fleet = ShardedSampler::new(&comm, cfg, shards);
            let mut solo: Vec<DistributedSampler<_>> = (0..shards)
                .map(|s| {
                    let cfg = DistConfig::weighted(k, shard_seed(seed, s));
                    DistributedSampler::new(&comm, cfg)
                })
                .collect();
            for batch in batches_for(comm.rank(), p, 4_000, 4) {
                let buckets = router.route(batch);
                fleet.process_batch(&buckets);
                for (s, solo) in solo.iter_mut().enumerate() {
                    solo.process_batch(&buckets[s]);
                }
            }
            // Streaming state matches per shard...
            for (s, solo) in solo.iter().enumerate() {
                assert_eq!(fleet.threshold(s), solo.threshold(), "threshold, shard {s}");
                assert_eq!(
                    sorted_ids(&fleet.local_sample(s)),
                    sorted_ids(&solo.local_sample()),
                    "local sample, shard {s}"
                );
            }
            // ...and so do the Section 5 output handles.
            let handles = fleet.collect_output();
            for (s, solo) in solo.iter_mut().enumerate() {
                let h = &handles[s];
                let r = solo.collect_output();
                assert_eq!(h.local_items(), r.local_items(), "handle items, shard {s}");
                assert_eq!(h.offset(), r.offset(), "offset, shard {s}");
                assert_eq!(h.total_len(), r.total_len(), "total, shard {s}");
                assert_eq!(h.threshold(), r.threshold(), "fin threshold, shard {s}");
            }
            handles.len()
        });
        assert!(results.iter().all(|&n| n == shards), "p={p}");
    }
}

/// A shard's sample does not depend on how many *other* shards exist:
/// the same buckets fed to a 4-shard fleet and to the first 4 shards of
/// an 8-shard fleet (rest idle) yield identical samples.
#[test]
fn shard_sample_independent_of_other_shard_count() {
    let seed = test_base_seed() ^ 0x5A;
    let results = run_threads(2, |comm| {
        use reservoir::comm::Communicator;
        let router = route_by_id(4);
        let cfg = DistConfig::weighted(12, seed);
        let mut small = ShardedSampler::new(&comm, cfg, 4);
        let mut big = ShardedSampler::new(&comm, cfg, 8);
        for batch in batches_for(comm.rank(), 2, 2_500, 3) {
            let buckets = router.route(batch);
            small.process_batch(&buckets);
            let mut wide = buckets.clone();
            wide.resize(8, Vec::new());
            big.process_batch(&wide);
        }
        (0..4)
            .map(|s| {
                assert_eq!(small.threshold(s), big.threshold(s), "shard {s}");
                sorted_ids(&small.local_sample(s))
            })
            .zip((0..4).map(|s| sorted_ids(&big.local_sample(s))))
            .all(|(a, b)| a == b)
    });
    assert!(results.into_iter().all(|same| same));
}

/// Per-item inclusion counts for one observed shard of a sharded fleet
/// over `trials` independently seeded runs.
fn sharded_counts(
    ids: &[u64],
    shards: usize,
    watch: usize,
    k: usize,
    p: usize,
    trials: u64,
    seed_base: u64,
) -> Vec<u64> {
    let mut counts = vec![0u64; ids.len()];
    let slot: std::collections::HashMap<u64, usize> =
        ids.iter().enumerate().map(|(j, &id)| (id, j)).collect();
    for t in 0..trials {
        let picked = run_threads(p, |comm| {
            use reservoir::comm::Communicator;
            let router = route_by_id(shards);
            let cfg = DistConfig::weighted(k, seed_base.wrapping_add(t));
            let mut fleet = ShardedSampler::new(&comm, cfg, shards);
            for batch in batches_for(comm.rank(), p, 1_500, 3) {
                fleet.process_batch(&router.route(batch));
            }
            let handles = fleet.collect_output();
            handles[watch].all_items(&comm)
        });
        for item in &picked[0] {
            counts[slot[&item.id]] += 1;
        }
    }
    counts
}

/// Single-tenant reference inclusion counts over the same item subset.
fn reference_counts(ids: &[u64], k: usize, p: usize, trials: u64, seed_base: u64) -> Vec<u64> {
    let members: std::collections::HashSet<u64> = ids.iter().copied().collect();
    let slot: std::collections::HashMap<u64, usize> =
        ids.iter().enumerate().map(|(j, &id)| (id, j)).collect();
    let mut counts = vec![0u64; ids.len()];
    for t in 0..trials {
        let picked = run_threads(p, |comm| {
            use reservoir::comm::Communicator;
            let cfg = DistConfig::weighted(k, seed_base.wrapping_add(t));
            let mut sampler = DistributedSampler::new(&comm, cfg);
            for batch in batches_for(comm.rank(), p, 1_500, 3) {
                let mine: Vec<Item> = batch
                    .into_iter()
                    .filter(|i| members.contains(&i.id))
                    .collect();
                sampler.process_batch(&mine);
            }
            sampler.collect_output().all_items(&comm)
        });
        for item in &picked[0] {
            counts[slot[&item.id]] += 1;
        }
    }
    counts
}

/// χ² goodness-of-fit: a shard's inclusion law equals the single-tenant
/// law over the same records, at three shard counts, under *different*
/// seed streams on the two sides (so this is a genuinely statistical
/// check, not the byte-equality above in disguise).
#[test]
fn per_shard_law_matches_single_tenant_reference() {
    let base = test_base_seed();
    let trials = 60u64;
    let (k, p) = (25usize, 2usize);
    for shards in [2usize, 3, 6] {
        let router = route_by_id(shards);
        let ids: Vec<u64> = (0..1_500u64)
            .filter(|&i| router.shard_of(&Item::new(i, 1.0)) == 0)
            .collect();
        let obs = sharded_counts(&ids, shards, 0, k, p, trials, base.wrapping_add(1_000));
        let exp = reference_counts(&ids, k, p, trials, base.wrapping_add(900_000));
        assert_eq!(
            obs.iter().sum::<u64>(),
            trials * k as u64,
            "shard 0 must finalize to k every run (shards={shards})"
        );
        assert_eq!(exp.iter().sum::<u64>(), trials * k as u64);
        let (stat, df) = two_sample_chi_square(&obs, &exp);
        let bar = chi_square_upper(df, 4.0);
        assert!(
            stat < bar,
            "sharded-vs-reference law diverges at shards={shards}: chi2 {stat:.1} > {bar:.1} \
             (df {df}, base seed {base})"
        );
    }
}

/// The fleet pays max (not sum) of the per-shard selection rounds, and
/// a fixed number of vectorized collectives per superstep regardless of
/// the shard count.
#[test]
fn batched_schedule_amortizes_rounds() {
    let seed = test_base_seed() ^ 0xA11;
    let per_batch = run_threads(2, |comm| {
        use reservoir::comm::Communicator;
        let shards = 12;
        let router = route_by_id(shards);
        let cfg = DistConfig::weighted(10, seed);
        let mut fleet = ShardedSampler::new(&comm, cfg, shards);
        let mut reports = Vec::new();
        for batch in batches_for(comm.rank(), 2, 6_000, 4) {
            reports.push(fleet.process_batch(&router.route(batch)));
        }
        reports
    });
    let mut saw_multi_select = false;
    for report in &per_batch[0] {
        assert!(
            report.collective_calls <= 2 + 2 * report.joint_select_rounds,
            "superstep issued {} collectives for {} joint rounds",
            report.collective_calls,
            report.joint_select_rounds
        );
        if report.shards_selected > 1 {
            saw_multi_select = true;
            assert!(
                u64::from(report.joint_select_rounds) < report.solo_select_rounds,
                "joint rounds {} not amortized vs per-shard sum {} ({} shards selecting)",
                report.joint_select_rounds,
                report.solo_select_rounds,
                report.shards_selected
            );
        }
    }
    assert!(
        saw_multi_select,
        "workload never made several shards select at once; the test is vacuous"
    );
}

/// Continuous mode: every shard publishes a verifiable epoch per
/// superstep, and publication leaves the final samples byte-identical
/// to a continuous-off run (the single-tenant guarantee, per shard).
#[test]
fn continuous_sharded_snapshots_verify_and_do_not_perturb() {
    let seed = test_base_seed() ^ 0xC0;
    let results = run_threads(2, |comm| {
        use reservoir::comm::Communicator;
        let shards = 3;
        let router = route_by_id(shards);
        let cfg = DistConfig::weighted(15, seed);
        let mut plain = ShardedSampler::new(&comm, cfg, shards);
        let mut cont = ShardedSampler::new(
            &comm,
            cfg.with_continuous(ContinuousMode::EveryBatch),
            shards,
        );
        let readers: Vec<_> = (0..shards).map(|s| cont.snapshot_reader(s)).collect();
        let batches = batches_for(comm.rank(), 2, 3_000, 3);
        let total_batches = batches.len() as u64;
        for batch in batches {
            let buckets = router.route(batch);
            plain.process_batch(&buckets);
            cont.process_batch(&buckets);
        }
        for (s, reader) in readers.iter().enumerate() {
            let epoch = reader.read();
            assert!(epoch.verify(), "torn epoch, shard {s}");
            assert_eq!(epoch.epoch, total_batches, "one epoch per superstep");
            assert_eq!(epoch.total, 15, "finalized to k, shard {s}");
        }
        let plain_handles = plain.collect_output();
        let cont_handles = cont.collect_output();
        for s in 0..shards {
            assert_eq!(
                plain_handles[s].local_items(),
                cont_handles[s].local_items(),
                "continuous publication perturbed shard {s}"
            );
        }
        // After collection, the freshest epoch is the collection itself.
        for (s, reader) in readers.iter().enumerate() {
            assert_eq!(reader.read().epoch, total_batches + 1, "shard {s}");
        }
        true
    });
    assert!(results.into_iter().all(|ok| ok));
}

/// Variable-size windows work per shard behind the batched schedule.
#[test]
fn sharded_size_window_finalizes_to_k() {
    let seed = test_base_seed() ^ 0x11D0;
    let totals = run_threads(2, |comm| {
        use reservoir::comm::Communicator;
        let shards = 4;
        let router = route_by_id(shards);
        // Window mode is the subject here — pin continuous publication off
        // so the test is independent of the RESERVOIR_CONTINUOUS default
        // (the fleet rejects combining the two).
        let cfg = DistConfig::weighted(10, seed)
            .with_size_window(10, 25)
            .with_continuous(ContinuousMode::Disabled);
        let mut fleet = ShardedSampler::new(&comm, cfg, shards);
        for batch in batches_for(comm.rank(), 2, 3_000, 3) {
            fleet.process_batch(&router.route(batch));
        }
        fleet
            .collect_output()
            .into_iter()
            .map(|h| h.total_len())
            .collect::<Vec<_>>()
    });
    for totals in &totals {
        assert_eq!(totals, &vec![10u64; 4], "every shard finalizes to k");
    }
}

/// The sharded pipeline: push-based ingestion, keyed routing, one
/// collective schedule, per-shard Section 5 handles.
#[test]
fn sharded_pipeline_end_to_end() {
    let seed = test_base_seed() ^ 0x1919;
    let p = 2;
    let spec = StreamSpec {
        pes: p,
        batch_size: 400,
        weights: WeightGen::paper_uniform(),
        seed,
    };
    let reports = run_threads(p, |comm| {
        use reservoir::comm::Communicator;
        let shards = 5;
        let source = SyntheticRecords::new(spec.source_for(comm.rank()), 2_400);
        let mut ingest = spawn_source(source, BatchPolicy::by_size(400), 4);
        let rx = ingest.take_receiver();
        let router = route_by_id(shards);
        let cfg = DistConfig::weighted(20, seed);
        let mut fleet = ShardedSampler::new(&comm, cfg, shards);
        let report = fleet.run_pipeline(&rx, &router);
        (report, ingest.join())
    });
    for (pe, (report, counters)) in reports.iter().enumerate() {
        assert_eq!(counters.records_in, 2_400, "pe {pe}");
        assert_eq!(report.records, 2_400, "pe {pe}");
        assert_eq!(report.handles.len(), 5, "pe {pe}");
        for (s, handle) in report.handles.iter().enumerate() {
            assert_eq!(handle.total_len(), 20, "pe {pe} shard {s}");
            if let Some(t) = handle.threshold() {
                assert!(
                    handle.local_items().iter().all(|m| m.key <= t),
                    "pe {pe} shard {s}: member above the finalize threshold"
                );
            }
        }
    }
    // The two PEs' handles describe the same global samples.
    let (a, b) = (&reports[0].0, &reports[1].0);
    for s in 0..5 {
        assert_eq!(a.handles[s].total_len(), b.handles[s].total_len());
        assert_eq!(
            a.handles[s].local_len() + b.handles[s].local_len(),
            a.handles[s].total_len(),
            "shard {s}: PE slices must partition the sample"
        );
    }
}

/// The fleet-scale storage guarantee: a 4096-shard concurrent-merge
/// fleet draws every tree node from ONE shared pool, so construction
/// costs O(pages) heap allocations (64 pages back 4096 root leaves) —
/// not one arena per shard — and a 95%-sparse superstep plans and steps
/// only the active shards.
#[test]
fn shared_pool_fleet_is_page_granular_and_sparse_supersteps_plan_active_shards_only() {
    let seed = test_base_seed() ^ 0x4096;
    run_threads(1, |comm| {
        use reservoir::comm::Communicator;
        let _ = comm.rank();
        let shards = 4096usize;
        let cfg = DistConfig::weighted(8, seed)
            .with_merge(MergeMode::Concurrent)
            .with_threads(1);
        let mut fleet = ShardedSampler::new(&comm, cfg, shards);
        let pool = fleet
            .node_pool()
            .expect("concurrent fleets share one node pool")
            .clone();
        let stats = pool.stats();
        assert_eq!(
            stats.fresh, shards as u64,
            "construction allocates exactly one root leaf per shard"
        );
        assert_eq!(
            stats.pages,
            (shards as u64).div_ceil(PAGE_NODES as u64),
            "4096 roots must be backed by page-granular allocations, not per-shard arenas"
        );
        assert_eq!(pool.live_slots(), shards as u64);

        // A 95%-sparse superstep: records land in 5% of the shards.
        let active = shards / 20;
        let mut buckets = vec![Vec::new(); shards];
        for i in 0..4_000u64 {
            buckets[i as usize % active].push(Item::new(i, 1.0 + (i % 7) as f64));
        }
        let report = fleet.process_batch(&buckets);
        assert_eq!(
            report.shards_skipped,
            shards - active,
            "every fleet-empty shard must be skipped"
        );
        for (s, rep) in report.per_shard.iter().enumerate() {
            if s < active {
                assert!(rep.scan.processed > 0, "active shard {s} must scan");
            } else {
                assert_eq!(rep.scan.processed, 0, "skipped shard {s} must not scan");
                assert_eq!(rep.select_rounds, 0, "skipped shard {s} must not select");
            }
        }
        // The active shards' trees grew from the same shared pool; the
        // sparse fleet still holds page-granular storage only.
        assert!(
            pool.stats().pages * PAGE_NODES as u64 >= pool.live_slots(),
            "every live node must be page-backed"
        );
        true
    });
}

/// Routing sanity at the integration level: every record lands in
/// exactly one shard, for any key extractor.
#[test]
fn routing_partitions_every_batch() {
    let router = ShardRouter::new(7, |item: &Item| item.id / 10);
    let items: Vec<Item> = (0..700).map(|i| Item::new(i, 1.0)).collect();
    let buckets = router.route(items.clone());
    assert_eq!(buckets.iter().map(Vec::len).sum::<usize>(), items.len());
    for (s, bucket) in buckets.iter().enumerate() {
        for item in bucket {
            assert_eq!(router.shard_of(item), s);
        }
    }
}
