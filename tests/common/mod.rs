//! Helpers shared by the statistical integration tests.
//!
//! All randomized tests derive their seeds from
//! [`reservoir::rng::test_base_seed`] (override with `RESERVOIR_TEST_SEED`)
//! and print that base seed when an assertion fires, so every failure is
//! reproducible from the environment alone.

/// A strongly skewed weight profile: geometric decay over items, spanning
/// three orders of magnitude, with a few heavy hitters up front — the same
/// profile as the sequential jump-vs-naive goodness-of-fit test.
pub fn skewed_weight(i: u64) -> f64 {
    1000.0 * 0.9f64.powi((i % 60) as i32) + 0.5
}

/// Two-sample chi-square statistic between equal-trial count vectors:
/// Σ (a_i − b_i)² / (a_i + b_i) over items with a_i + b_i > 0.
///
/// Under H₀ (same inclusion law) this is asymptotically χ²(df) with
/// df = #used items − 1.
pub fn two_sample_chi_square(a: &[u64], b: &[u64]) -> (f64, usize) {
    assert_eq!(a.len(), b.len());
    let mut stat = 0.0;
    let mut df = 0usize;
    for (&x, &y) in a.iter().zip(b) {
        let total = x + y;
        if total == 0 {
            continue;
        }
        let diff = x as f64 - y as f64;
        stat += diff * diff / total as f64;
        df += 1;
    }
    (stat, df.saturating_sub(1))
}

/// One-sample chi-square statistic of observed counts against a single
/// analytic expectation per item: Σ (o_i − e)² / e, df = #items − 1.
/// Used where the inclusion law is known in closed form (uniform
/// sampling: every item is included with probability k/n).
#[allow(dead_code)] // not every test binary links every helper
pub fn one_sample_chi_square(observed: &[u64], expected_per_item: f64) -> (f64, usize) {
    assert!(expected_per_item > 0.0);
    let stat = observed
        .iter()
        .map(|&o| {
            let diff = o as f64 - expected_per_item;
            diff * diff / expected_per_item
        })
        .sum();
    (stat, observed.len().saturating_sub(1))
}

/// Normal-approximation upper quantile of χ²(df): df + z·√(2df) + z²·2/3.
/// z = 2.33 is the 99th percentile (the "p > 0.01" acceptance bar);
/// z = 4 keeps the false-failure probability around 3e-5.
pub fn chi_square_upper(df: usize, z: f64) -> f64 {
    let df = df as f64;
    df + z * (2.0 * df).sqrt() + z * z * 2.0 / 3.0
}
