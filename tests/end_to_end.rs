//! Cross-crate integration tests: full mini-batch pipelines through the
//! public API, checking the paper's correctness claims end to end.

use reservoir::comm::{run_threads, Collectives, Communicator};
use reservoir::dist::gather::GatherSampler;
use reservoir::dist::threaded::DistributedSampler;
use reservoir::dist::DistConfig;
use reservoir::rng::test_base_seed;
use reservoir::stream::{Item, StreamSpec, WeightGen};

/// The union of local reservoirs is a size-k sample with distinct ids and
/// all keys at or below the agreed threshold — across PE counts, modes and
/// pivot counts.
#[test]
fn distributed_sample_invariants() {
    for (p, pivots, uniform) in [(1, 1, false), (3, 1, false), (4, 8, false), (2, 2, true)] {
        let k = 150;
        let spec = StreamSpec {
            pes: p,
            batch_size: 400,
            weights: if uniform {
                WeightGen::Unit
            } else {
                WeightGen::paper_uniform()
            },
            seed: 31 + p as u64,
        };
        let results = run_threads(p, |comm| {
            let base = if uniform {
                DistConfig::uniform(k, 31)
            } else {
                DistConfig::weighted(k, 31)
            };
            let mut sampler = DistributedSampler::new(&comm, base.with_pivots(pivots));
            let mut src = spec.source_for(comm.rank());
            let mut buf = Vec::new();
            let mut thresholds = Vec::new();
            for _ in 0..5 {
                src.next_batch_into(&mut buf);
                sampler.process_batch(&buf);
                thresholds.push(sampler.threshold());
            }
            (sampler.gather_sample(), thresholds)
        });
        let sample = results[0].0.as_ref().expect("root");
        assert_eq!(sample.len(), k, "p={p} pivots={pivots}");
        let mut ids: Vec<u64> = sample.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), k, "duplicate ids in sample");
        let t = results[0]
            .1
            .last()
            .expect("batches ran")
            .expect("threshold");
        assert!(sample.iter().all(|s| s.key <= t));
        // Thresholds are non-increasing once established.
        let established: Vec<f64> = results[0].1.iter().flatten().copied().collect();
        assert!(established.windows(2).all(|w| w[1] <= w[0]));
        // Every PE reports the same threshold history.
        for r in &results[1..] {
            assert_eq!(r.1, results[0].1);
        }
    }
}

/// Uniform sampling: every item's inclusion probability is k/n, regardless
/// of which PE it arrived at or when.
#[test]
fn uniform_inclusion_probability_is_k_over_n() {
    let p = 2;
    let k = 30;
    let n_per_pe = 150u64; // n = 300, inclusion 0.1
    let trials = 500;
    let base = test_base_seed();
    let mut early_hits = 0u32; // an item from batch 1
    let mut late_hits = 0u32; // an item from the last batch
    for t in 0..trials {
        let results = run_threads(p, |comm| {
            let mut s =
                DistributedSampler::new(&comm, DistConfig::uniform(k, base.wrapping_add(1000 + t)));
            let rank = comm.rank() as u64;
            for b in 0..3u64 {
                let items: Vec<Item> = (0..n_per_pe / 3)
                    .map(|i| Item::new((rank << 32) | (b << 16) | i, 1.0))
                    .collect();
                s.process_batch(&items);
            }
            s.gather_sample()
        });
        let sample = results[0].as_ref().expect("root");
        assert_eq!(sample.len(), k);
        if sample.iter().any(|s| s.id == 0) {
            early_hits += 1; // PE0, batch 0, first item
        }
        if sample.iter().any(|s| s.id == (1 << 32) | (2 << 16) | 7) {
            late_hits += 1; // PE1, batch 2
        }
    }
    let expect = k as f64 / (p as f64 * n_per_pe as f64);
    for (name, hits) in [("early", early_hits), ("late", late_hits)] {
        let frac = hits as f64 / trials as f64;
        assert!(
            (frac - expect).abs() < 0.04,
            "{name} item inclusion {frac:.3} vs expected {expect:.3} \
             (base seed {base}; set RESERVOIR_TEST_SEED to reproduce/vary)"
        );
    }
}

/// The distributed algorithm and the centralized baseline agree on the
/// sample law: their thresholds over the same stream length concentrate on
/// the same value.
#[test]
fn gather_and_distributed_threshold_laws_agree() {
    let p = 2;
    let k = 100;
    let trials = 40;
    let base = test_base_seed();
    let mut dist_sum = 0.0;
    let mut gather_sum = 0.0;
    for t in 0..trials {
        let seed = base.wrapping_add(5_000 + t);
        let spec = StreamSpec {
            pes: p,
            batch_size: 1_000,
            weights: WeightGen::paper_uniform(),
            seed,
        };
        let d = run_threads(p, |comm| {
            let mut s = DistributedSampler::new(&comm, DistConfig::weighted(k, seed));
            let mut src = spec.source_for(comm.rank());
            let mut buf = Vec::new();
            for _ in 0..3 {
                src.next_batch_into(&mut buf);
                s.process_batch(&buf);
            }
            s.threshold()
        });
        let g = run_threads(p, |comm| {
            let mut s = GatherSampler::new(&comm, DistConfig::weighted(k, seed));
            let mut src = spec.source_for(comm.rank());
            let mut buf = Vec::new();
            for _ in 0..3 {
                src.next_batch_into(&mut buf);
                s.process_batch(&buf);
            }
            s.threshold()
        });
        dist_sum += d[0].expect("established");
        gather_sum += g[0].expect("established");
    }
    let (dm, gm) = (dist_sum / trials as f64, gather_sum / trials as f64);
    assert!(
        (dm - gm).abs() < 0.2 * dm.max(gm),
        "threshold means diverge: distributed {dm:.3e} vs gather {gm:.3e} \
         (base seed {base}; set RESERVOIR_TEST_SEED to reproduce/vary)"
    );
}

/// Communication efficiency (the paper's core claim): the distributed
/// algorithm's per-batch communication volume is tiny and independent of
/// the batch size; the centralized baseline's root volume is not.
#[test]
fn communication_volume_is_batch_size_independent() {
    let p = 4;
    let k = 200;
    let volume_for = |batch_size: usize, centralized: bool| -> u64 {
        let spec = StreamSpec {
            pes: p,
            batch_size,
            weights: WeightGen::paper_uniform(),
            seed: 77,
        };
        let words = run_threads(p, |comm| {
            let mut src = spec.source_for(comm.rank());
            let mut buf = Vec::new();
            // Skip the first batch (growing phase is special), then
            // measure three steady batches.
            if centralized {
                let mut s = GatherSampler::new(&comm, DistConfig::weighted(k, 77));
                src.next_batch_into(&mut buf);
                s.process_batch(&buf);
                let before = comm.stats().words;
                for _ in 0..3 {
                    src.next_batch_into(&mut buf);
                    s.process_batch(&buf);
                }
                comm.stats().words - before
            } else {
                let mut s = DistributedSampler::new(&comm, DistConfig::weighted(k, 77));
                src.next_batch_into(&mut buf);
                s.process_batch(&buf);
                let before = comm.stats().words;
                for _ in 0..3 {
                    src.next_batch_into(&mut buf);
                    s.process_batch(&buf);
                }
                comm.stats().words - before
            }
        });
        words.iter().sum()
    };
    let ours_small = volume_for(2_000, false);
    let ours_large = volume_for(40_000, false);
    // 20x more items per batch: communication must stay within a small
    // constant factor (selection rounds fluctuate a little).
    assert!(
        ours_large < ours_small * 4,
        "ours volume grew with batch size: {ours_small} -> {ours_large} words"
    );

    // The centralized baseline's bottleneck is the first batch, where every
    // PE ships its min(b, k) best candidates to the root — Θ(p·k) words —
    // while the distributed algorithm only runs its selection collectives.
    let first_batch_volume = |centralized: bool| -> u64 {
        let spec = StreamSpec {
            pes: p,
            batch_size: 40_000,
            weights: WeightGen::paper_uniform(),
            seed: 78,
        };
        let words = run_threads(p, |comm| {
            let mut src = spec.source_for(comm.rank());
            let mut buf = Vec::new();
            src.next_batch_into(&mut buf);
            if centralized {
                let mut s = GatherSampler::new(&comm, DistConfig::weighted(k, 78));
                s.process_batch(&buf);
            } else {
                let mut s = DistributedSampler::new(&comm, DistConfig::weighted(k, 78));
                s.process_batch(&buf);
            }
            comm.stats().words
        });
        words.iter().sum()
    };
    let ours_first = first_batch_volume(false);
    let gather_first = first_batch_volume(true);
    assert!(
        gather_first > ours_first * 2,
        "gather's first batch should move far more data: ours {ours_first}, gather {gather_first}"
    );
    // And it must at least carry the p·k candidate payload.
    assert!(gather_first as usize >= p * k * 3);
}

/// Collectives compose with sampling: a user can run their own reductions
/// on the same communicator between batches.
#[test]
fn user_collectives_interleave_with_sampling() {
    let p = 3;
    let results = run_threads(p, |comm| {
        let mut s = DistributedSampler::new(&comm, DistConfig::weighted(50, 9));
        let spec = StreamSpec {
            pes: p,
            batch_size: 300,
            weights: WeightGen::paper_uniform(),
            seed: 9,
        };
        let mut src = spec.source_for(comm.rank());
        let mut total_weight = 0.0f64;
        let mut buf = Vec::new();
        for _ in 0..3 {
            src.next_batch_into(&mut buf);
            let local: f64 = buf.iter().map(|it| it.weight).sum();
            total_weight = comm.allreduce(total_weight + local, f64::max);
            s.process_batch(&buf);
        }
        (s.local_len(), total_weight)
    });
    let union: u64 = results.iter().map(|(n, _)| n).sum();
    assert_eq!(union, 50);
    assert!(results.windows(2).all(|w| w[0].1 == w[1].1));
}
