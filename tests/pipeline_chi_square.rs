//! End-to-end statistical goodness of fit for the **push-based pipeline
//! path** (`run_pipeline`): records enter through the ingestion runtime
//! (`RecordSource` → `Batcher` → bounded channel), are drained
//! collectively, and leave through the Section 5 output collection. The
//! sampling law must not care which front door the records used.
//!
//! Checks, per backend (distributed and gather baseline):
//!
//! * **weighted mode** — the pipeline path's per-item inclusion counts
//!   must match the *pull* path's (`process_batch` fed directly) under a
//!   two-sample chi-square, and the two output paths (root funnel vs
//!   Section 5 distributed handle) must expose the identical member set
//!   inside every trial;
//! * **uniform mode** — inclusion probabilities are known in closed form
//!   (k/n), so the pipeline counts face a one-sample chi-square against
//!   the analytic law itself.
//!
//! The always-on tests keep trial counts modest; the `stats_`-prefixed
//! variants behind the `stats` feature run the same laws at CI scale
//! (`cargo test --release --features stats -- stats_`). All seeds derive
//! from `RESERVOIR_TEST_SEED` (printed on failure).

mod common;

use common::{chi_square_upper, one_sample_chi_square, skewed_weight, two_sample_chi_square};
use reservoir::comm::{run_threads, Communicator};
use reservoir::dist::gather::GatherSampler;
use reservoir::dist::threaded::DistributedSampler;
use reservoir::dist::DistConfig;
use reservoir::rng::test_base_seed;
use reservoir::stream::ingest::{spawn_source, BatchPolicy, ReplayRecords};
use reservoir::stream::Item;

/// Which sampler drives the pipeline.
#[derive(Clone, Copy, PartialEq)]
enum Backend {
    Distributed,
    Gather,
}

/// This PE's share of the stream: items 0..n dealt round-robin over `p`
/// PEs; weight 1 in uniform mode, strongly skewed otherwise.
fn my_records(rank: usize, p: usize, n: u64, uniform: bool) -> Vec<Item> {
    (0..n)
        .filter(|i| *i as usize % p == rank)
        .map(|i| Item::new(i, if uniform { 1.0 } else { skewed_weight(i) }))
        .collect()
}

/// Per-item inclusion counts over `trials` pipeline runs. Every trial
/// pushes the records through the full ingestion runtime (producer thread,
/// size-cut batches, bounded channel) and reads the sample back through
/// the Section 5 handle; on the distributed backend each trial also pins
/// the handle against the root funnel (`gather_sample`) exactly.
#[allow(clippy::too_many_arguments)]
fn pipeline_counts(
    backend: Backend,
    uniform: bool,
    n: u64,
    k: usize,
    p: usize,
    batch: usize,
    trials: u64,
    seed_base: u64,
) -> Vec<u64> {
    let mut counts = vec![0u64; n as usize];
    for t in 0..trials {
        let ids = run_threads(p, |comm| {
            let seed = seed_base.wrapping_add(t);
            let cfg = if uniform {
                DistConfig::uniform(k, seed)
            } else {
                DistConfig::weighted(k, seed)
            };
            let records = my_records(comm.rank(), p, n, uniform);
            let pushed = records.len() as u64;
            let mut ingest =
                spawn_source(ReplayRecords::new(records), BatchPolicy::by_size(batch), 2);
            let rx = ingest.take_receiver();
            match backend {
                Backend::Distributed => {
                    let mut s = DistributedSampler::new(&comm, cfg);
                    let report = s.run_pipeline(&rx);
                    assert_eq!(ingest.join().records_in, pushed);
                    assert_eq!(report.records, pushed);
                    assert_eq!(report.sample_size(), k as u64);
                    // Both output paths must expose the same member set.
                    let rooted = s.gather_sample();
                    let all = report.handle.all_items(&comm);
                    let mut a: Vec<u64> = all.iter().map(|m| m.id).collect();
                    a.sort_unstable();
                    if let Some(r) = rooted {
                        let mut b: Vec<u64> = r.iter().map(|m| m.id).collect();
                        b.sort_unstable();
                        assert_eq!(a, b, "output paths diverged (trial {t})");
                    }
                    a
                }
                Backend::Gather => {
                    let mut s = GatherSampler::new(&comm, cfg);
                    let report = s.run_pipeline(&rx);
                    assert_eq!(ingest.join().records_in, pushed);
                    assert_eq!(report.handle.total_len(), k as u64);
                    // The gather handle holds the whole sample at the root.
                    report.handle.local_items().iter().map(|m| m.id).collect()
                }
            }
        });
        let root_ids = &ids[0];
        assert_eq!(root_ids.len(), k, "trial {t} sample size");
        for &id in root_ids {
            counts[id as usize] += 1;
        }
    }
    counts
}

/// Per-item inclusion counts of the pull path (`process_batch` fed
/// directly), the reference law for the weighted two-sample test.
fn direct_counts(
    n: u64,
    k: usize,
    p: usize,
    batch: usize,
    trials: u64,
    seed_base: u64,
) -> Vec<u64> {
    let mut counts = vec![0u64; n as usize];
    for t in 0..trials {
        let ids = run_threads(p, |comm| {
            let mut s =
                DistributedSampler::new(&comm, DistConfig::weighted(k, seed_base.wrapping_add(t)));
            let mine = my_records(comm.rank(), p, n, false);
            for chunk in mine.chunks(batch.max(1)) {
                s.process_batch(chunk);
            }
            let handle = s.collect_output();
            handle
                .all_items(&comm)
                .iter()
                .map(|m| m.id)
                .collect::<Vec<u64>>()
        });
        for &id in &ids[0] {
            counts[id as usize] += 1;
        }
    }
    counts
}

/// Weighted law: pipeline counts vs pull-path counts, two-sample χ².
fn check_pipeline_matches_pull_law(
    backend: Backend,
    n: u64,
    k: usize,
    p: usize,
    batch: usize,
    trials: u64,
    z: f64,
) {
    let base = test_base_seed();
    let piped = pipeline_counts(
        backend,
        false,
        n,
        k,
        p,
        batch,
        trials,
        base.wrapping_add(21_000_000),
    );
    let pulled = direct_counts(n, k, p, batch, trials, base.wrapping_add(23_000_000));
    assert_eq!(piped.iter().sum::<u64>(), trials * k as u64);
    assert_eq!(pulled.iter().sum::<u64>(), trials * k as u64);
    // The skew must show: heavy items dominate light ones.
    assert!(piped[0] > piped[59] * 3, "{} vs {}", piped[0], piped[59]);
    let (stat, df) = two_sample_chi_square(&piped, &pulled);
    let limit = chi_square_upper(df, z);
    assert!(
        stat < limit,
        "chi-square {stat:.1} exceeds χ²({df}) limit {limit:.1}: the push-based \
         pipeline changes the weighted inclusion law (base seed {base}; \
         set RESERVOIR_TEST_SEED to reproduce/vary)"
    );
}

/// Uniform law: pipeline counts vs the analytic k/n inclusion, one-sample χ².
fn check_pipeline_uniform_gof(
    backend: Backend,
    n: u64,
    k: usize,
    p: usize,
    batch: usize,
    trials: u64,
    z: f64,
) {
    let base = test_base_seed();
    let counts = pipeline_counts(
        backend,
        true,
        n,
        k,
        p,
        batch,
        trials,
        base.wrapping_add(27_000_000),
    );
    assert_eq!(counts.iter().sum::<u64>(), trials * k as u64);
    let expected = trials as f64 * k as f64 / n as f64;
    let (stat, df) = one_sample_chi_square(&counts, expected);
    let limit = chi_square_upper(df, z);
    assert!(
        stat < limit,
        "chi-square {stat:.1} exceeds χ²({df}) limit {limit:.1}: pipeline uniform \
         inclusion deviates from k/n (base seed {base}; \
         set RESERVOIR_TEST_SEED to reproduce/vary)"
    );
}

#[test]
fn pipeline_weighted_law_matches_pull_path_on_distributed_backend() {
    // z = 2.33 is the 99th χ² percentile; deterministic under the default
    // base seed.
    check_pipeline_matches_pull_law(Backend::Distributed, 96, 16, 2, 24, 500, 2.33);
}

#[test]
fn pipeline_weighted_law_matches_pull_path_on_gather_backend() {
    check_pipeline_matches_pull_law(Backend::Gather, 96, 16, 2, 24, 500, 2.33);
}

#[test]
fn pipeline_uniform_inclusion_is_k_over_n_on_distributed_backend() {
    check_pipeline_uniform_gof(Backend::Distributed, 96, 16, 2, 24, 500, 2.33);
}

#[test]
fn pipeline_uniform_inclusion_is_k_over_n_on_gather_backend() {
    check_pipeline_uniform_gof(Backend::Gather, 96, 16, 2, 24, 500, 2.33);
}

#[test]
fn pipeline_chi_square_detects_a_genuinely_different_law() {
    // Positive control: pipeline at k vs pull path at 3k/2 must blow past
    // the same limit, or the statistic has no power at these counts.
    let base = test_base_seed();
    let (n, p, batch, trials) = (96u64, 2usize, 24usize, 300u64);
    let a = pipeline_counts(
        Backend::Distributed,
        false,
        n,
        16,
        p,
        batch,
        trials,
        base.wrapping_add(31_000_000),
    );
    let b = direct_counts(n, 24, p, batch, trials, base.wrapping_add(33_000_000));
    let (stat, df) = two_sample_chi_square(&a, &b);
    let limit = chi_square_upper(df, 2.33);
    assert!(
        stat > limit,
        "control failed: {stat:.1} should exceed {limit:.1} for different laws \
         (base seed {base})"
    );
}

/// CI-scale versions (release build, `stats` feature): more items, more
/// PEs, far more trials.
#[cfg(feature = "stats")]
#[test]
fn stats_pipeline_weighted_law_matches_pull_path_at_scale() {
    check_pipeline_matches_pull_law(Backend::Distributed, 240, 30, 3, 20, 3_000, 2.33);
    check_pipeline_matches_pull_law(Backend::Gather, 240, 30, 3, 20, 3_000, 2.33);
}

#[cfg(feature = "stats")]
#[test]
fn stats_pipeline_uniform_gof_at_scale() {
    check_pipeline_uniform_gof(Backend::Distributed, 240, 30, 3, 20, 3_000, 2.33);
    check_pipeline_uniform_gof(Backend::Gather, 240, 30, 3, 20, 3_000, 2.33);
}
