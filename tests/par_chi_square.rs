//! Statistical acceptance tests for the parallel local scan
//! (`reservoir-par`): the chunked work-stealing scan must draw from
//! **exactly the same weighted law** as the sequential `LocalReservoir` —
//! locally (threshold scan and growing mode) and end-to-end through both
//! distributed backends (`DistributedSampler` and the `GatherSampler`
//! baseline) under the `threads_per_pe` knob — plus the fixed-seed
//! determinism guarantees of the merge epilogue.
//!
//! The concurrent shared-tree merge (`MergeMode::Concurrent`, workers
//! inserting straight into the OLC tree) is held to the same bar: its
//! local scans and its end-to-end pipelines are two-sample-χ²-tested
//! against the sequential law on both backends.
//!
//! The always-on tests keep trial counts modest; the `stats_`-prefixed
//! tests behind the `stats` feature run the same laws at CI scale
//! (`cargo test --release --features stats -- stats_`).

mod common;

use common::{chi_square_upper, skewed_weight, two_sample_chi_square};
use reservoir::comm::run_threads;
use reservoir::dist::gather::GatherSampler;
use reservoir::dist::threaded::DistributedSampler;
use reservoir::dist::{DistConfig, LocalReservoir, MergeMode};
use reservoir::par::{ConcurrentReservoir, ParLocalReservoir};
use reservoir::rng::{default_rng, test_base_seed};
use reservoir::stream::Item;

/// Moderate weights so every item's threshold-mode inclusion probability
/// lands in a chi-square-friendly band (no near-empty cells).
fn moderate_weight(i: u64) -> f64 {
    1.0 + (i % 10) as f64
}

fn batch(n: u64, weight: impl Fn(u64) -> f64) -> Vec<Item> {
    (0..n).map(|i| Item::new(i, weight(i))).collect()
}

/// Deal items 0..n round-robin over `p` PEs, split into `batches`
/// mini-batches per PE (the dist_chi_square layout).
fn batches_for(rank: usize, p: usize, n: u64, batches: usize) -> Vec<Vec<Item>> {
    let mine: Vec<Item> = (0..n)
        .filter(|i| *i as usize % p == rank)
        .map(|i| Item::new(i, skewed_weight(i)))
        .collect();
    let per = mine.len().div_ceil(batches).max(1);
    mine.chunks(per).map(<[Item]>::to_vec).collect()
}

/// Per-item inclusion counts of the *sequential* threshold scan.
fn seq_scan_counts(n: u64, t: f64, trials: u64, seed_base: u64) -> Vec<u64> {
    let mut counts = vec![0u64; n as usize];
    for trial in 0..trials {
        let mut r = LocalReservoir::new(8, 32);
        let mut rng = default_rng(seed_base.wrapping_add(trial));
        r.process_weighted(&batch(n, moderate_weight), Some(t), &mut rng);
        for m in r.items() {
            counts[m.id as usize] += 1;
        }
    }
    counts
}

/// Per-item inclusion counts of the *parallel* threshold scan at
/// `threads` workers (small chunks so even these batch sizes span many
/// chunks — and real steals happen).
fn par_scan_counts(n: u64, t: f64, threads: usize, trials: u64, seed_base: u64) -> Vec<u64> {
    let mut counts = vec![0u64; n as usize];
    for trial in 0..trials {
        let mut r = ParLocalReservoir::new(8, 32, threads, seed_base.wrapping_add(trial))
            .with_chunk_items(64);
        r.process_weighted(&batch(n, moderate_weight), Some(t));
        for (k, _) in r.tree().iter() {
            counts[k.id as usize] += 1;
        }
    }
    counts
}

/// Per-item inclusion counts of the *concurrent shared-tree* threshold
/// scan: workers insert into the OLC tree as they go instead of merging
/// in the epilogue.
fn conc_scan_counts(n: u64, t: f64, threads: usize, trials: u64, seed_base: u64) -> Vec<u64> {
    let mut counts = vec![0u64; n as usize];
    for trial in 0..trials {
        let mut r = ConcurrentReservoir::new(8, threads, seed_base.wrapping_add(trial))
            .with_chunk_items(64);
        r.process_weighted(&batch(n, moderate_weight), Some(t));
        r.tree().for_each(|k, _| counts[k.id as usize] += 1);
    }
    counts
}

/// End-to-end per-item inclusion counts through `DistributedSampler` (or
/// the `GatherSampler` baseline) at the given `threads_per_pe` and merge
/// schedule.
#[allow(clippy::too_many_arguments)]
fn pipeline_counts(
    gather_backend: bool,
    threads: usize,
    merge: MergeMode,
    n: u64,
    k: usize,
    p: usize,
    trials: u64,
    seed_base: u64,
) -> Vec<u64> {
    let mut counts = vec![0u64; n as usize];
    for trial in 0..trials {
        let cfg = DistConfig::weighted(k, seed_base.wrapping_add(trial))
            .with_threads(threads)
            .with_merge(merge);
        let ids = run_threads(p, |comm| {
            use reservoir::comm::Communicator;
            let ids: Vec<u64> = if gather_backend {
                let mut s = GatherSampler::new(&comm, cfg);
                for b in batches_for(comm.rank(), p, n, 2) {
                    s.process_batch(&b);
                }
                let handle = s.collect_output();
                handle.local_items().iter().map(|m| m.id).collect()
            } else {
                let mut s = DistributedSampler::new(&comm, cfg);
                for b in batches_for(comm.rank(), p, n, 2) {
                    s.process_batch(&b);
                }
                let handle = s.collect_output();
                handle.local_items().iter().map(|m| m.id).collect()
            };
            ids
        });
        let total: usize = ids.iter().map(Vec::len).sum();
        assert_eq!(total, k, "trial {trial} produced {total} members, not k");
        for pe_ids in ids {
            for id in pe_ids {
                counts[id as usize] += 1;
            }
        }
    }
    counts
}

fn assert_same_law(a: &[u64], b: &[u64], z: f64, what: &str) {
    let base = test_base_seed();
    let (stat, df) = two_sample_chi_square(a, b);
    let limit = chi_square_upper(df, z);
    assert!(
        stat < limit,
        "{what}: chi-square {stat:.1} exceeds χ²({df}) limit {limit:.1} — parallel \
         and sequential laws differ (base seed {base}; set RESERVOIR_TEST_SEED to \
         reproduce/vary)"
    );
}

// --- threshold-mode local law ------------------------------------------

fn check_threshold_scan_law(n: u64, t: f64, trials: u64, z: f64) {
    let base = test_base_seed();
    let seq = seq_scan_counts(n, t, trials, base.wrapping_add(21_000_000));
    let par = par_scan_counts(n, t, 4, trials, base.wrapping_add(22_000_000));
    // Heavier items must be included more often in both.
    assert!(seq[9] > seq[0], "{} vs {}", seq[9], seq[0]);
    assert!(par[9] > par[0], "{} vs {}", par[9], par[0]);
    assert_same_law(&seq, &par, z, "threshold scan (t=4 vs sequential)");
}

fn check_conc_threshold_scan_law(n: u64, t: f64, trials: u64, z: f64) {
    let base = test_base_seed();
    let seq = seq_scan_counts(n, t, trials, base.wrapping_add(25_000_000));
    let conc = conc_scan_counts(n, t, 4, trials, base.wrapping_add(26_000_000));
    assert!(conc[9] > conc[0], "{} vs {}", conc[9], conc[0]);
    assert_same_law(
        &seq,
        &conc,
        z,
        "concurrent threshold scan (t=4 vs sequential)",
    );
}

#[test]
fn par_threshold_scan_matches_sequential_law() {
    check_threshold_scan_law(512, 0.1, 200, 4.0);
}

#[test]
fn conc_threshold_scan_matches_sequential_law() {
    check_conc_threshold_scan_law(512, 0.1, 200, 4.0);
}

#[test]
fn par_chi_square_detects_a_genuinely_different_law() {
    // Positive control: scanning under a 60% larger threshold is a
    // different inclusion law and must blow past the same limit.
    let base = test_base_seed();
    let (n, trials) = (512u64, 200u64);
    let seq = seq_scan_counts(n, 0.1, trials, base.wrapping_add(23_000_000));
    let par = par_scan_counts(n, 0.16, 4, trials, base.wrapping_add(24_000_000));
    let (stat, df) = two_sample_chi_square(&seq, &par);
    let limit = chi_square_upper(df, 2.33);
    assert!(
        stat > limit,
        "control failed: {stat:.1} should exceed {limit:.1} for different \
         thresholds (base seed {base})"
    );
}

// --- growing-mode local law --------------------------------------------

#[test]
fn par_growing_mode_matches_sequential_law() {
    // No global threshold: keep the cap smallest keys. Sequential jump
    // reservoir vs parallel draw-and-re-prune — same weighted law.
    let base = test_base_seed();
    let (n, cap, trials) = (256u64, 32usize, 300u64);
    let mut seq = vec![0u64; n as usize];
    let mut par = vec![0u64; n as usize];
    for trial in 0..trials {
        let mut r = LocalReservoir::new(cap, 32);
        let mut rng = default_rng(base.wrapping_add(31_000_000 + trial));
        r.process_weighted(&batch(n, skewed_weight), None, &mut rng);
        assert_eq!(r.len(), cap as u64);
        for m in r.items() {
            seq[m.id as usize] += 1;
        }
        let mut r = ParLocalReservoir::new(cap, 32, 4, base.wrapping_add(32_000_000 + trial))
            .with_chunk_items(48);
        r.process_weighted(&batch(n, skewed_weight), None);
        assert_eq!(r.len(), cap as u64);
        for (k, _) in r.tree().iter() {
            par[k.id as usize] += 1;
        }
    }
    assert_same_law(&seq, &par, 4.0, "growing mode (t=4 vs sequential)");
}

#[test]
fn conc_growing_mode_matches_sequential_law() {
    // Growing mode under the concurrent merge: chunk-local draw into
    // per-worker buffers, insert into the shared tree, truncate to cap.
    let base = test_base_seed();
    let (n, cap, trials) = (256u64, 32usize, 300u64);
    let mut seq = vec![0u64; n as usize];
    let mut conc = vec![0u64; n as usize];
    for trial in 0..trials {
        let mut r = LocalReservoir::new(cap, 32);
        let mut rng = default_rng(base.wrapping_add(33_000_000 + trial));
        r.process_weighted(&batch(n, skewed_weight), None, &mut rng);
        assert_eq!(r.len(), cap as u64);
        for m in r.items() {
            seq[m.id as usize] += 1;
        }
        let mut r = ConcurrentReservoir::new(cap, 4, base.wrapping_add(34_000_000 + trial))
            .with_chunk_items(48);
        r.process_weighted(&batch(n, skewed_weight), None);
        assert_eq!(r.len(), cap as u64);
        r.tree().for_each(|k, _| conc[k.id as usize] += 1);
    }
    assert_same_law(
        &seq,
        &conc,
        4.0,
        "concurrent growing mode (t=4 vs sequential)",
    );
}

// --- end-to-end law on both backends -----------------------------------

fn check_pipeline_law(gather_backend: bool, merge: MergeMode, trials: u64, z: f64) {
    let base = test_base_seed();
    let (n, k, p) = (96u64, 16usize, 2usize);
    // Distinct salt per (backend, merge) cell so the cells stay
    // independent trials of the law.
    let salt = match (gather_backend, merge) {
        (true, MergeMode::Epilogue) => 41_000_000,
        (false, MergeMode::Epilogue) => 45_000_000,
        (true, MergeMode::Concurrent) => 51_000_000,
        (false, MergeMode::Concurrent) => 55_000_000,
    };
    let seq = pipeline_counts(
        gather_backend,
        1,
        MergeMode::Epilogue,
        n,
        k,
        p,
        trials,
        base.wrapping_add(salt),
    );
    let par = pipeline_counts(
        gather_backend,
        4,
        merge,
        n,
        k,
        p,
        trials,
        base.wrapping_add(salt + 2_000_000),
    );
    assert_eq!(seq.iter().sum::<u64>(), trials * k as u64);
    assert_eq!(par.iter().sum::<u64>(), trials * k as u64);
    let backend = if gather_backend {
        "GatherSampler"
    } else {
        "DistributedSampler"
    };
    let name = format!("{backend} backend, {merge:?} merge (threads 4 vs 1)");
    assert_same_law(&seq, &par, z, &name);
}

#[test]
fn par_matches_sequential_law_on_distributed_backend() {
    check_pipeline_law(false, MergeMode::Epilogue, 250, 4.0);
}

#[test]
fn par_matches_sequential_law_on_gather_backend() {
    check_pipeline_law(true, MergeMode::Epilogue, 250, 4.0);
}

#[test]
fn conc_matches_sequential_law_on_distributed_backend() {
    check_pipeline_law(false, MergeMode::Concurrent, 250, 4.0);
}

#[test]
fn conc_matches_sequential_law_on_gather_backend() {
    check_pipeline_law(true, MergeMode::Concurrent, 250, 4.0);
}

// --- determinism of the merge epilogue ---------------------------------

#[test]
fn par_merge_epilogue_is_deterministic_for_fixed_seed_and_threads() {
    // Same seed + same thread count ⇒ bitwise the same reservoir, across
    // a growing phase, a threshold transition, and steady-state batches —
    // even though chunk-to-worker assignment (stealing) varies run to run.
    let run = |threads: usize| {
        let mut r = ParLocalReservoir::new(64, 32, threads, 0xD15C0).with_chunk_items(128);
        r.process_weighted(&batch(2_000, skewed_weight), None);
        let t = {
            let (key, _) = r.tree().max().expect("filled");
            key.key
        };
        r.process_weighted(&batch(4_000, skewed_weight), Some(t));
        r.process_uniform(&batch(4_000, |_| 1.0), Some(0.01));
        let mut entries: Vec<(u64, u64)> = r
            .tree()
            .iter()
            .map(|(k, _)| (k.id, k.key.to_bits()))
            .collect();
        entries.sort_unstable();
        entries
    };
    let a = run(4);
    let b = run(4);
    assert_eq!(a, b, "fixed seed + fixed threads must reproduce exactly");
    // Stronger: the fixed chunk geometry makes the result independent of
    // the thread count entirely.
    assert_eq!(a, run(1), "thread count must not change the sample");
    assert_eq!(a, run(3));
}

#[test]
fn par_distributed_sampler_is_deterministic_for_fixed_seed_and_threads() {
    let run = || {
        run_threads(2, |comm| {
            use reservoir::comm::Communicator;
            let cfg = DistConfig::weighted(24, 0xFEED).with_threads(4);
            let mut s = DistributedSampler::new(&comm, cfg);
            for b in batches_for(comm.rank(), 2, 200, 3) {
                s.process_batch(&b);
            }
            let mut ids: Vec<u64> = s.local_sample().iter().map(|m| m.id).collect();
            ids.sort_unstable();
            (ids, s.threshold())
        })
    };
    assert_eq!(run(), run(), "distributed parallel scan must reproduce");
}

// --- CI-scale variants (release build, `stats` feature) ----------------

#[cfg(feature = "stats")]
#[test]
fn stats_par_threshold_scan_matches_sequential_law_at_scale() {
    check_threshold_scan_law(1024, 0.1, 2_000, 2.33);
}

#[cfg(feature = "stats")]
#[test]
fn stats_conc_threshold_scan_matches_sequential_law_at_scale() {
    check_conc_threshold_scan_law(1024, 0.1, 2_000, 2.33);
}

#[cfg(feature = "stats")]
#[test]
fn stats_par_matches_sequential_law_on_distributed_backend_at_scale() {
    check_pipeline_law(false, MergeMode::Epilogue, 1_500, 2.33);
}

#[cfg(feature = "stats")]
#[test]
fn stats_par_matches_sequential_law_on_gather_backend_at_scale() {
    check_pipeline_law(true, MergeMode::Epilogue, 1_500, 2.33);
}

#[cfg(feature = "stats")]
#[test]
fn stats_conc_matches_sequential_law_on_distributed_backend_at_scale() {
    check_pipeline_law(false, MergeMode::Concurrent, 1_500, 2.33);
}

#[cfg(feature = "stats")]
#[test]
fn stats_conc_matches_sequential_law_on_gather_backend_at_scale() {
    check_pipeline_law(true, MergeMode::Concurrent, 1_500, 2.33);
}
