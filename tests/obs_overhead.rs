//! The observability overhead guard: with the registry and flight
//! recorder fully armed, a fixed pipeline run must keep at least 0.9× of
//! its disarmed throughput. This is the teeth behind the "near-zero cost"
//! claim — the hot paths carry one relaxed load and a predictable branch
//! (or nothing at all on the uncontended seqlock/OLC paths), so losing
//! more than 10% means an instrumentation site leaked onto a hot path.
//!
//! `stats`-gated (run via `cargo test --release --features stats --
//! stats_`): a throughput ratio needs a release build and a quiet-ish
//! machine, like the chi-square suites. Best-of-N on both sides damps
//! scheduler noise.

#![cfg(feature = "stats")]

use std::time::Instant;

use reservoir::comm::run_threads;
use reservoir::dist::threaded::DistributedSampler;
use reservoir::dist::{ContinuousMode, DistConfig, MergeMode};
use reservoir::stream::{StreamSpec, WeightGen};

/// One timed fixed-seed run; returns items/second.
fn throughput(seed: u64) -> f64 {
    let pes = 2;
    let batches = 8u64;
    let batch_size = 50_000usize;
    let spec = StreamSpec {
        pes,
        batch_size,
        weights: WeightGen::paper_uniform(),
        seed,
    };
    let cfg = DistConfig::weighted(1_000, seed)
        .with_threads(1)
        .with_merge(MergeMode::Epilogue)
        .with_continuous(ContinuousMode::Disabled);
    let start = Instant::now();
    run_threads(pes, |comm| {
        use reservoir::comm::Communicator;
        let mut s = DistributedSampler::new(&comm, cfg);
        let mut source = spec.source_for(comm.rank());
        for _ in 0..batches {
            s.process_batch(&source.next_batch());
        }
        s.collect_output().total_len()
    });
    (pes as u64 * batches * batch_size as u64) as f64 / start.elapsed().as_secs_f64()
}

#[test]
fn stats_armed_observability_keeps_90_percent_throughput() {
    let best = |armed: bool| -> f64 {
        reservoir::obs::set_enabled(armed);
        (0..5)
            .map(|rep| throughput(900 + rep))
            .fold(0.0f64, f64::max)
    };
    // Warm-up run so allocator and thread-spawn costs hit neither side.
    let _ = throughput(899);
    let off = best(false);
    let on = best(true);
    reservoir::obs::set_enabled(false);
    let ratio = on / off;
    assert!(
        ratio >= 0.9,
        "armed observability lost too much throughput: \
         {on:.3e} vs {off:.3e} items/s (ratio {ratio:.3}, floor 0.9)"
    );
    eprintln!("obs overhead guard: armed/disarmed throughput ratio {ratio:.3}");
}
