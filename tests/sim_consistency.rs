//! The cluster simulator must agree with the real threaded backend on
//! everything observable about the *algorithm* (sample law, threshold law,
//! selection round counts) — time attribution is the only thing it models.

use reservoir::comm::{run_threads, CostModel};
use reservoir::dist::sim::{AnalyticLocalCosts, SimAlgo, SimCluster, SimConfig};
use reservoir::dist::threaded::DistributedSampler;
use reservoir::dist::{DistConfig, SamplingMode};
use reservoir::rng::test_base_seed;
use reservoir::stream::{StreamSpec, WeightGen};

fn sim(p: usize, k: usize, b: u64, batches: usize, seed: u64) -> (f64, f64) {
    let cfg = SimConfig::new(
        p,
        k,
        b,
        SamplingMode::Weighted,
        SimAlgo::Ours { pivots: 1 },
        seed,
    );
    let mut cluster = SimCluster::new(
        cfg,
        CostModel::infiniband_edr(),
        AnalyticLocalCosts::default(),
    );
    let mut rounds = 0u64;
    let mut selections = 0u64;
    for _ in 0..batches {
        let r = cluster.process_batch();
        if r.rounds > 0 {
            rounds += r.rounds as u64;
            selections += 1;
        }
    }
    (
        cluster.threshold().expect("threshold established"),
        rounds as f64 / selections.max(1) as f64,
    )
}

fn threaded(p: usize, k: usize, b: usize, batches: usize, seed: u64) -> (f64, f64) {
    let spec = StreamSpec {
        pes: p,
        batch_size: b,
        weights: WeightGen::paper_uniform(),
        seed,
    };
    let results = run_threads(p, |comm| {
        use reservoir::comm::Communicator;
        let mut s = DistributedSampler::new(&comm, DistConfig::weighted(k, seed));
        let mut src = spec.source_for(comm.rank());
        let mut buf = Vec::new();
        let mut rounds = 0u64;
        let mut selections = 0u64;
        for _ in 0..batches {
            src.next_batch_into(&mut buf);
            let r = s.process_batch(&buf);
            if r.select_rounds > 0 {
                rounds += r.select_rounds as u64;
                selections += 1;
            }
        }
        (
            s.threshold().expect("established"),
            rounds as f64 / selections.max(1) as f64,
        )
    });
    results[0]
}

/// Thresholds after the same stream length must have the same law.
#[test]
fn threshold_law_matches_threaded_backend() {
    let (p, k, b, batches) = (4, 200, 2_000u64, 4);
    let trials = 25;
    let base = test_base_seed();
    let mut sim_mean = 0.0;
    let mut thr_mean = 0.0;
    for t in 0..trials {
        sim_mean += sim(p, k, b, batches, base.wrapping_add(100 + t)).0;
        thr_mean += threaded(p, k, b as usize, batches, base.wrapping_add(100 + t)).0;
    }
    sim_mean /= trials as f64;
    thr_mean /= trials as f64;
    // Theory: for weighted U(0,100] items the threshold solves
    // n·q(t) ≈ k; both implementations must concentrate near it.
    assert!(
        (sim_mean - thr_mean).abs() < 0.15 * thr_mean,
        "threshold law diverges: sim {sim_mean:.4e} vs threaded {thr_mean:.4e} \
         (base seed {base}; set RESERVOIR_TEST_SEED to reproduce/vary)"
    );
}

/// Selection round counts (the protocol's communication behaviour) must
/// match between the conductor-driven simulator and the real protocol.
#[test]
fn selection_rounds_match_threaded_backend() {
    let (p, k, b, batches) = (4, 500, 5_000u64, 6);
    let trials = 15;
    let base = test_base_seed();
    let mut sim_rounds = 0.0;
    let mut thr_rounds = 0.0;
    for t in 0..trials {
        sim_rounds += sim(p, k, b, batches, base.wrapping_add(300 + t)).1;
        thr_rounds += threaded(p, k, b as usize, batches, base.wrapping_add(300 + t)).1;
    }
    sim_rounds /= trials as f64;
    thr_rounds /= trials as f64;
    assert!(
        (sim_rounds - thr_rounds).abs() < 0.30 * thr_rounds.max(sim_rounds),
        "avg selection rounds diverge: sim {sim_rounds:.2} vs threaded {thr_rounds:.2} \
         (base seed {base}; set RESERVOIR_TEST_SEED to reproduce/vary)"
    );
}

/// The simulated thresholds must track the theoretical value k ≈ n·q(t)
/// for the paper's uniform-weight workload.
#[test]
fn simulated_threshold_matches_theory() {
    let (p, k, b) = (16, 1_000, 20_000u64);
    let cfg = SimConfig::new(
        p,
        k,
        b,
        SamplingMode::Weighted,
        SimAlgo::Ours { pivots: 8 },
        11,
    );
    let mut cluster = SimCluster::new(
        cfg,
        CostModel::infiniband_edr(),
        AnalyticLocalCosts::default(),
    );
    for _ in 0..6 {
        cluster.process_batch();
    }
    let n = cluster.items_seen() as f64;
    let t = cluster.threshold().expect("established");
    // q(t) = 1 - (1 - e^{-100t})/(100t); with t tiny, q ≈ 50t.
    let x = 100.0 * t;
    let q = 1.0 + (-x).exp_m1() / x;
    let implied_k = n * q;
    assert!(
        (implied_k - k as f64).abs() < 0.15 * k as f64,
        "n·q(threshold) = {implied_k:.0} should approximate k = {k}"
    );
}

/// Gather and ours must see the same candidate stream (same seed → the
/// simulator's workload RNG is algorithm-independent).
#[test]
fn sim_algorithms_share_workload_law() {
    let mk = |algo| SimConfig::new(8, 300, 5_000, SamplingMode::Weighted, algo, 777);
    let mut ours = SimCluster::new(
        mk(SimAlgo::Ours { pivots: 1 }),
        CostModel::infiniband_edr(),
        AnalyticLocalCosts::default(),
    );
    let mut gather = SimCluster::new(
        mk(SimAlgo::Gather),
        CostModel::infiniband_edr(),
        AnalyticLocalCosts::default(),
    );
    for _ in 0..4 {
        ours.process_batch();
        gather.process_batch();
    }
    assert_eq!(ours.sample().len(), 300);
    assert_eq!(gather.sample().len(), 300);
    let (to, tg) = (
        ours.threshold().expect("set"),
        gather.threshold().expect("set"),
    );
    assert!(
        (to - tg).abs() < 0.5 * to.max(tg),
        "same-seed thresholds far apart: ours {to:.3e}, gather {tg:.3e}"
    );
}
