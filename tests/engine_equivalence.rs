//! Engine equivalence: the stable sampler APIs are thin wrappers over
//! `ReservoirProtocol<Backend>`, and nothing may hide in the wrapping —
//! driving the engine directly must reproduce the wrapper's samples **byte
//! for byte** under a fixed seed, on both real backend policies, at both
//! scan widths the CI matrix runs (`RESERVOIR_THREADS ∈ {1, 4}` via
//! explicit `with_threads`), and on the simulated backend. Plus the
//! unified pipeline driver's unequal-stream-length edge cases, which every
//! policy now shares through the engine's single drain loop.

use reservoir::comm::{run_threads, Communicator, CostModel};
use reservoir::dist::engine::ReservoirProtocol;
use reservoir::dist::gather::{GatherBackend, GatherSampler};
use reservoir::dist::sim::{AnalyticLocalCosts, SimAlgo, SimBackend, SimCluster, SimConfig};
use reservoir::dist::threaded::{CommBackend, DistributedSampler};
use reservoir::dist::{ContinuousMode, DistConfig, MergeMode, SamplingMode};
use reservoir::stream::ingest::{spawn_source, BatchPolicy, ReplayRecords};
use reservoir::stream::Item;

fn unit_batch(rank: usize, batch: u64, n: u64) -> Vec<Item> {
    (0..n)
        .map(|i| {
            Item::new(
                ((rank as u64) << 40) | (batch << 20) | i,
                1.0 + (i % 5) as f64,
            )
        })
        .collect()
}

/// Byte-exact fingerprint of a sample: sorted `(id, key bits)` pairs.
fn fingerprint(items: impl IntoIterator<Item = (u64, f64)>) -> Vec<(u64, u64)> {
    let mut v: Vec<(u64, u64)> = items
        .into_iter()
        .map(|(id, key)| (id, key.to_bits()))
        .collect();
    v.sort_unstable();
    v
}

#[test]
fn distributed_wrapper_equals_engine_driven_path_at_both_widths() {
    for &threads in &[1usize, 4] {
        let cfg = DistConfig::weighted(40, 2024).with_threads(threads);
        let p = 3;
        let wrapper = run_threads(p, |comm| {
            let mut s = DistributedSampler::new(&comm, cfg);
            for b in 0..4u64 {
                s.process_batch(&unit_batch(comm.rank(), b, 150));
            }
            let handle = s.collect_output();
            (
                fingerprint(handle.local_items().iter().map(|m| (m.id, m.key))),
                s.threshold().map(f64::to_bits),
            )
        });
        let engine = run_threads(p, |comm| {
            let mut e = ReservoirProtocol::new(CommBackend::new(&comm, &cfg), cfg);
            for b in 0..4u64 {
                e.step(&unit_batch(comm.rank(), b, 150));
            }
            let (handle, _, _) = e.collect_output();
            (
                fingerprint(handle.local_items().iter().map(|m| (m.id, m.key))),
                e.threshold().map(f64::to_bits),
            )
        });
        assert_eq!(
            wrapper, engine,
            "threads={threads}: wrapper and engine-driven samples diverged"
        );
    }
}

#[test]
fn gather_wrapper_equals_engine_driven_path_at_both_widths() {
    for &threads in &[1usize, 4] {
        let cfg = DistConfig::weighted(30, 77).with_threads(threads);
        let p = 3;
        let wrapper = run_threads(p, |comm| {
            let mut s = GatherSampler::new(&comm, cfg);
            let mut candidates = 0u64;
            for b in 0..4u64 {
                candidates += s.process_batch(&unit_batch(comm.rank(), b, 120));
            }
            let handle = s.collect_output();
            (
                fingerprint(handle.local_items().iter().map(|m| (m.id, m.key))),
                s.threshold().map(f64::to_bits),
                candidates,
            )
        });
        let engine = run_threads(p, |comm| {
            let mut e = ReservoirProtocol::new(GatherBackend::new(&comm, &cfg), cfg);
            let mut candidates = 0u64;
            for b in 0..4u64 {
                candidates += e.step(&unit_batch(comm.rank(), b, 120)).inserted;
            }
            let (handle, _, _) = e.collect_output();
            (
                fingerprint(handle.local_items().iter().map(|m| (m.id, m.key))),
                e.threshold().map(f64::to_bits),
                candidates,
            )
        });
        assert_eq!(
            wrapper, engine,
            "threads={threads}: gather wrapper and engine-driven samples diverged"
        );
    }
}

/// The merge schedule is not allowed to change the sample. Parallel scans
/// draw candidates from per-(batch, chunk) RNG streams, so the candidate
/// multiset is a function of (seed, chunking) alone — whether candidates
/// are merged in the scan epilogue or inserted concurrently into the
/// shared tree, and at whatever thread count, the fixed-seed output must
/// be byte-identical. (Epilogue at threads=1 is the sequential scan arm,
/// which draws from a single RNG stream and legitimately differs; it is
/// covered by the chunked-equivalence tests in `reservoir-par`.)
#[test]
fn merge_mode_and_thread_count_never_change_the_sample() {
    let p = 3;
    let run = |threads: usize, merge: MergeMode| {
        let cfg = DistConfig::weighted(40, 2024)
            .with_threads(threads)
            .with_merge(merge);
        run_threads(p, |comm| {
            let mut s = DistributedSampler::new(&comm, cfg);
            for b in 0..4u64 {
                s.process_batch(&unit_batch(comm.rank(), b, 150));
            }
            let handle = s.collect_output();
            (
                fingerprint(handle.local_items().iter().map(|m| (m.id, m.key))),
                s.threshold().map(f64::to_bits),
            )
        })
    };
    let reference = run(2, MergeMode::Epilogue);
    for &threads in &[1usize, 2, 4, 8] {
        let conc = run(threads, MergeMode::Concurrent);
        assert_eq!(
            conc, reference,
            "concurrent merge at threads={threads} diverged from the epilogue reference"
        );
        if threads >= 2 {
            let epi = run(threads, MergeMode::Epilogue);
            assert_eq!(
                epi, reference,
                "epilogue merge at threads={threads} diverged from the reference"
            );
        }
    }
}

/// Continuous epoch publication must be *observationally free*: each
/// publication runs a real finalize (whose selection consumes collective
/// RNG draws) bracketed by a checkpoint/restore of the selection
/// generators, so a fixed-seed run with per-batch publication enabled
/// must produce the byte-identical final sample to the same run without
/// it — on both real backend policies, at both CI scan widths, under
/// both merge schedules. The continuous arm additionally checks the last
/// published epoch against the collected output: the snapshot service
/// really serves the sample, it does not just not-perturb it.
#[test]
fn continuous_publication_never_changes_the_final_sample() {
    let p = 3;
    for policy in ["distributed", "gather"] {
        for &threads in &[1usize, 4] {
            for &merge in &[MergeMode::Epilogue, MergeMode::Concurrent] {
                let run = |continuous: ContinuousMode| {
                    let cfg = DistConfig::weighted(40, 2024)
                        .with_threads(threads)
                        .with_merge(merge)
                        .with_continuous(continuous);
                    run_threads(p, |comm| {
                        let (handle, threshold, reader) = if policy == "distributed" {
                            let mut s = DistributedSampler::new(&comm, cfg);
                            let reader = s.snapshot_reader();
                            for b in 0..4u64 {
                                s.process_batch(&unit_batch(comm.rank(), b, 150));
                            }
                            (s.collect_output(), s.threshold(), reader)
                        } else {
                            let mut s = GatherSampler::new(&comm, cfg);
                            let reader = s.snapshot_reader();
                            for b in 0..4u64 {
                                s.process_batch(&unit_batch(comm.rank(), b, 150));
                            }
                            (s.collect_output(), s.threshold(), reader)
                        };
                        let fp = fingerprint(handle.local_items().iter().map(|m| (m.id, m.key)));
                        if continuous == ContinuousMode::EveryBatch {
                            // 4 batches + the final collect_output epoch.
                            let epoch = reader.read();
                            assert!(epoch.verify(), "{policy}: torn final epoch");
                            assert_eq!(epoch.epoch, 5, "{policy}: missing publications");
                            assert_eq!(
                                fingerprint(epoch.items.iter().map(|m| (m.id, m.key))),
                                fp,
                                "{policy}: final epoch diverged from collected output"
                            );
                        } else {
                            assert_eq!(
                                reader.latest_epoch(),
                                0,
                                "{policy}: publication leaked into disabled mode"
                            );
                        }
                        (fp, threshold.map(f64::to_bits))
                    })
                };
                assert_eq!(
                    run(ContinuousMode::Disabled),
                    run(ContinuousMode::EveryBatch),
                    "{policy} threads={threads} merge={merge:?}: continuous \
                     publication changed the fixed-seed sample"
                );
            }
        }
    }
}

#[test]
fn distributed_and_gather_policies_run_the_same_scan_per_pe() {
    // Both policies share the engine's insert step over the identical
    // PeReservoir scan; under equal seeds their *candidate generation* is
    // driven by the same RNG streams even though the protocols differ.
    // This pins the policy split to the collective steps only: same
    // config, same per-batch candidate counts in the growing phase (no
    // threshold yet ⇒ candidate sets are config-determined).
    let p = 2;
    let cfg = DistConfig::weighted(400, 55);
    let dist_candidates = run_threads(p, |comm| {
        let mut s = DistributedSampler::new(&comm, cfg);
        s.process_batch(&unit_batch(comm.rank(), 0, 100)).inserted
    });
    let gather_candidates = run_threads(p, |comm| {
        let mut s = GatherSampler::new(&comm, cfg);
        s.process_batch(&unit_batch(comm.rank(), 0, 100))
    });
    // Below the fill point every item is a candidate on both policies.
    assert_eq!(dist_candidates, vec![100, 100]);
    assert_eq!(gather_candidates, vec![100, 100]);
}

#[test]
fn sim_cluster_equals_engine_driven_sim_backend() {
    let mk_cfg = || {
        SimConfig::new(
            6,
            200,
            2_000,
            SamplingMode::Weighted,
            SimAlgo::Ours { pivots: 2 },
            909,
        )
    };
    let net = CostModel::infiniband_edr();
    let costs = AnalyticLocalCosts::default();

    let mut cluster = SimCluster::new(mk_cfg(), net, costs);
    let mut direct = ReservoirProtocol::new(
        SimBackend::new(mk_cfg(), net, costs),
        // The engine config SimCluster derives: same k/pivots/mode.
        DistConfig::weighted(200, 909)
            .with_pivots(2)
            .with_threads(1),
    );
    let mut cluster_rounds = Vec::new();
    let mut direct_rounds = Vec::new();
    for _ in 0..4 {
        cluster_rounds.push(cluster.process_batch().rounds);
        direct_rounds.push(direct.step(&[]).select_rounds);
    }
    assert_eq!(cluster_rounds, direct_rounds);
    assert_eq!(
        cluster.threshold().map(f64::to_bits),
        direct.threshold().map(f64::to_bits),
        "same seed must give the identical simulated trajectory"
    );
    let a = fingerprint(cluster.sample().iter().map(|m| (m.id, m.key)));
    let b = fingerprint(direct.backend().sample().iter().map(|m| (m.id, m.key)));
    assert_eq!(a, b, "simulated samples diverged");
}

/// Unequal stream lengths through the engine's single drain loop, on both
/// real policies: PE r gets r+1 batches; everyone must run the longest
/// stream's rounds and agree on the final sample size.
#[test]
fn unified_drain_survives_unequal_streams_on_both_policies() {
    let p = 3;
    for policy in ["distributed", "gather"] {
        let results = run_threads(p, |comm| {
            use reservoir::comm::Communicator;
            let cfg = DistConfig::uniform(25, 5);
            let mine: Vec<Item> = (0..=comm.rank() as u64)
                .flat_map(|batch| unit_batch(comm.rank(), batch, 60))
                .collect();
            let mut ingest = spawn_source(ReplayRecords::new(mine), BatchPolicy::by_size(60), 1);
            let rx = ingest.take_receiver();
            let report = if policy == "distributed" {
                let mut s = DistributedSampler::new(&comm, cfg);
                s.run_pipeline(&rx)
            } else {
                let mut s = GatherSampler::new(&comm, cfg);
                s.run_pipeline(&rx)
            };
            ingest.join();
            (report.batches, report.rounds, report.handle.total_len())
        });
        for (rank, (batches, rounds, total)) in results.iter().enumerate() {
            assert_eq!(*batches, rank as u64 + 1, "{policy}");
            assert_eq!(*rounds, 3, "{policy}: all PEs must run max rounds");
            assert_eq!(*total, 25, "{policy}");
        }
    }
}

/// One PE's stream is completely empty: the drain must still terminate
/// collectively and produce the right sample, on both policies.
#[test]
fn unified_drain_tolerates_a_completely_empty_pe() {
    let p = 3;
    for policy in ["distributed", "gather"] {
        let results = run_threads(p, |comm| {
            use reservoir::comm::Communicator;
            let cfg = DistConfig::weighted(15, 31);
            let mine: Vec<Item> = if comm.rank() == 1 {
                Vec::new()
            } else {
                unit_batch(comm.rank(), 0, 80)
            };
            let mut ingest = spawn_source(ReplayRecords::new(mine), BatchPolicy::by_size(40), 1);
            let rx = ingest.take_receiver();
            let report = if policy == "distributed" {
                let mut s = DistributedSampler::new(&comm, cfg);
                s.run_pipeline(&rx)
            } else {
                let mut s = GatherSampler::new(&comm, cfg);
                s.run_pipeline(&rx)
            };
            ingest.join();
            (
                comm.rank(),
                report.batches,
                report.rounds,
                report.handle.total_len(),
            )
        });
        for (rank, batches, rounds, total) in &results {
            assert_eq!(*batches, if *rank == 1 { 0 } else { 2 }, "{policy}");
            assert_eq!(*rounds, 2, "{policy}");
            assert_eq!(*total, 15, "{policy}");
        }
    }
}

/// A pipeline drain mid-window must finalize its output to exactly k —
/// the engine's finalize step is the only implementation, so the window
/// path needs no pipeline-specific handling.
#[test]
fn unified_drain_finalizes_window_mode_output() {
    let p = 2;
    let (lo, hi) = (20u64, 50u64);
    let results = run_threads(p, |comm| {
        use reservoir::comm::Communicator;
        let cfg = DistConfig::weighted(20, 67).with_size_window(lo, hi);
        let mine: Vec<Item> = (0..3u64)
            .flat_map(|batch| unit_batch(comm.rank(), batch, 100))
            .collect();
        let mut ingest = spawn_source(ReplayRecords::new(mine), BatchPolicy::by_size(100), 1);
        let rx = ingest.take_receiver();
        let mut s = DistributedSampler::new(&comm, cfg);
        let report = s.run_pipeline(&rx);
        ingest.join();
        report.handle.total_len()
    });
    assert!(results.iter().all(|t| *t == lo));
}

/// Pooled node storage and the sparse-batch fast path are invisible to
/// the sampling law: at both CI scan widths × both merge schedules, a
/// shard fleet — whose concurrent trees share ONE node pool, with the
/// sparse skip on or off — reproduces byte for byte the samples of
/// standalone per-shard samplers, each with its own private storage.
/// Shard 3 never receives a record, so the skip-on fleet genuinely
/// skips it every superstep while the standalone reference processes
/// its empty batches; identical output pins the skip as law-free.
#[test]
fn pooled_fleet_and_sparse_skip_match_private_samplers_on_the_grid() {
    use reservoir::dist::{shard_seed, ShardedSampler};
    const SHARDS: usize = 4;
    fn route(batch: Vec<Item>) -> Vec<Vec<Item>> {
        let mut buckets = vec![Vec::new(); SHARDS];
        for item in batch {
            let s = (item.id % SHARDS as u64) as usize;
            if s < SHARDS - 1 {
                // Shard 3 stays empty fleet-wide: the sparse-skip arm.
                buckets[s].push(item);
            }
        }
        buckets
    }
    let p = 2;
    for &threads in &[1usize, 4] {
        for &merge in &[MergeMode::Epilogue, MergeMode::Concurrent] {
            let private = run_threads(p, |comm| {
                (0..SHARDS)
                    .map(|s| {
                        let cfg = DistConfig::weighted(25, shard_seed(808, s))
                            .with_threads(threads)
                            .with_merge(merge);
                        let mut solo = DistributedSampler::new(&comm, cfg);
                        for b in 0..4u64 {
                            let buckets = route(unit_batch(comm.rank(), b, 120));
                            solo.process_batch(&buckets[s]);
                        }
                        let handle = solo.collect_output();
                        (
                            fingerprint(handle.local_items().iter().map(|m| (m.id, m.key))),
                            solo.threshold().map(f64::to_bits),
                        )
                    })
                    .collect::<Vec<_>>()
            });
            for &skip in &[true, false] {
                let fleet = run_threads(p, |comm| {
                    let cfg = DistConfig::weighted(25, 808)
                        .with_threads(threads)
                        .with_merge(merge);
                    let mut fleet = ShardedSampler::new(&comm, cfg, SHARDS).with_sparse_skip(skip);
                    let mut skipped = 0usize;
                    for b in 0..4u64 {
                        skipped += fleet
                            .process_batch(&route(unit_batch(comm.rank(), b, 120)))
                            .shards_skipped;
                    }
                    assert_eq!(
                        skipped,
                        if skip { 4 } else { 0 },
                        "the always-empty shard must skip exactly when enabled"
                    );
                    if merge == MergeMode::Concurrent {
                        assert!(
                            fleet.node_pool().is_some(),
                            "concurrent fleets must share one node pool"
                        );
                    }
                    let thresholds: Vec<_> = (0..SHARDS).map(|s| fleet.threshold(s)).collect();
                    fleet
                        .collect_output()
                        .iter()
                        .zip(thresholds)
                        .map(|(h, t)| {
                            (
                                fingerprint(h.local_items().iter().map(|m| (m.id, m.key))),
                                t.map(f64::to_bits),
                            )
                        })
                        .collect::<Vec<_>>()
                });
                assert_eq!(
                    fleet, private,
                    "threads={threads} merge={merge:?} sparse_skip={skip}: \
                     pooled fleet diverged from private standalone samplers"
                );
            }
        }
    }
}

/// The contention-aware insertion toggle reorders concurrent inserts
/// (key-sorted micro-batches) but never changes the inserted set — the
/// fixed-seed sample is byte-identical with it on or off, at both CI
/// scan widths × both merge schedules (the epilogue arm ignores it).
#[test]
fn leaf_affinity_toggle_never_changes_the_sample() {
    let p = 3;
    let run = |threads: usize, merge: MergeMode, affinity: bool| {
        let cfg = DistConfig::weighted(40, 2024)
            .with_threads(threads)
            .with_merge(merge)
            .with_leaf_affinity(affinity);
        run_threads(p, |comm| {
            let mut s = DistributedSampler::new(&comm, cfg);
            for b in 0..4u64 {
                s.process_batch(&unit_batch(comm.rank(), b, 150));
            }
            let handle = s.collect_output();
            (
                fingerprint(handle.local_items().iter().map(|m| (m.id, m.key))),
                s.threshold().map(f64::to_bits),
            )
        })
    };
    for &threads in &[1usize, 4] {
        for &merge in &[MergeMode::Epilogue, MergeMode::Concurrent] {
            assert_eq!(
                run(threads, merge, true),
                run(threads, merge, false),
                "threads={threads} merge={merge:?}: leaf affinity changed the sample"
            );
        }
    }
}

/// Observability must be observationally free: arming the metrics
/// registry + flight recorder changes neither a single sample byte nor
/// the wire traffic — a fixed seed draws the identical sample with the
/// identical point-to-point message/word counts whether `RESERVOIR_OBS`
/// is on or off, at both scan widths. (Instrumentation never touches an
/// RNG and never launches a collective; this is the test that keeps it
/// that way.)
#[test]
fn obs_gate_never_changes_samples_or_wire_traffic() {
    let run = |armed: bool, threads: usize| {
        reservoir::obs::set_enabled(armed);
        let cfg = DistConfig::weighted(40, 4242).with_threads(threads);
        run_threads(3, |comm| {
            let mut s = DistributedSampler::new(&comm, cfg);
            for b in 0..4u64 {
                s.process_batch(&unit_batch(comm.rank(), b, 150));
            }
            let handle = s.collect_output();
            let stats = comm.stats();
            (
                fingerprint(handle.local_items().iter().map(|m| (m.id, m.key))),
                s.threshold().map(f64::to_bits),
                stats.messages,
                stats.words,
            )
        })
    };
    for &threads in &[1usize, 4] {
        let off = run(false, threads);
        let on = run(true, threads);
        assert_eq!(
            off, on,
            "threads={threads}: arming observability changed the sample or wire traffic"
        );
    }
    // Leave the gate the way the environment wants it (the obs CI job
    // runs this binary with RESERVOIR_OBS=1).
    let armed = std::env::var("RESERVOIR_OBS")
        .ok()
        .and_then(|v| reservoir::obs::parse_obs(&v).ok())
        .unwrap_or(false);
    reservoir::obs::set_enabled(armed);
}
