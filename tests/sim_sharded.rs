//! Multi-tenant schedule accounting: `SimShardedCluster` prices one
//! mini-batch of an `S`-shard fleet under the naive schedule (every shard
//! launches its own collectives) and the batched schedule (the sharded
//! backend's single vectorized count + joint selection rounds), pinning
//! the acceptance claim in a golden grid: **batched cross-shard rounds
//! are O(1) per mini-batch — shard-count independent — while the naive
//! launch count grows linearly with `S`.**
//!
//! The golden table lives in `tests/golden/sim_sharded.tsv`. On mismatch
//! the test writes the fresh table and a cell diff to
//! `target/sim-sharded/` (CI uploads them). Re-baseline after an
//! intentional cost-model or protocol change with:
//!
//! ```text
//! UPDATE_SIM_GOLDEN=1 cargo test --test sim_sharded
//! ```

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

use reservoir::comm::CostModel;
use reservoir::dist::sim::{AnalyticLocalCosts, SimAlgo, SimConfig, SimShardedCluster};
use reservoir::dist::{ContinuousMode, SamplingMode};

/// PE counts and fleet sizes pinned by the snapshot. Each shard samples
/// `k` from its own per-shard stream of `b_per_pe` items per PE per
/// batch — the multi-tenant workload of a per-key reservoir service.
const P_GRID: [usize; 2] = [20, 320];
const S_GRID: [usize; 4] = [1, 4, 16, 64];
const K: usize = 1_000;
const B_PER_PE: u64 = 250;
const SNAPSHOT_SEED: u64 = 0xC0FFEE;
const BATCHES: usize = 4;

/// Relative tolerance for modeled seconds and launch counts: selection
/// round counts wiggle by a round or two across platforms, which moves
/// both the collective tallies and the α terms.
const REL_TOL: f64 = 0.35;
/// The batched launch count is small (1 + max rounds per batch), so an
/// absolute slack is fairer than a relative one.
const BATCHED_TOL: i64 = 2 * BATCHES as i64;

#[derive(Clone, Copy, Debug, PartialEq)]
struct Row {
    p: usize,
    s: usize,
    /// Collective launches over all batches, naive schedule.
    naive_coll: u64,
    /// Collective launches over all batches, batched schedule.
    batched_coll: u64,
    /// α–β network seconds over all batches, naive schedule.
    naive_net_s: f64,
    /// α–β network seconds over all batches, batched schedule.
    batched_net_s: f64,
}

const COLUMNS: &str = "p\ts\tnaive_coll\tbatched_coll\tnaive_net_s\tbatched_net_s";

fn run_fleet(p: usize, shards: usize) -> Row {
    let cfg = SimConfig::new(
        p,
        K,
        B_PER_PE,
        SamplingMode::Weighted,
        SimAlgo::Ours { pivots: 8 },
        SNAPSHOT_SEED ^ ((p as u64) << 32),
    )
    // Pin the baseline trajectory even under RESERVOIR_CONTINUOUS=1
    // (and the sharded sim models batch steps only).
    .with_continuous(ContinuousMode::Disabled);
    let mut fleet = SimShardedCluster::new(
        cfg,
        shards,
        CostModel::infiniband_edr(),
        AnalyticLocalCosts::default(),
    );
    let mut row = Row {
        p,
        s: shards,
        naive_coll: 0,
        batched_coll: 0,
        naive_net_s: 0.0,
        batched_net_s: 0.0,
    };
    for _ in 0..BATCHES {
        let r = fleet.process_batch();
        // Structural invariants of the two schedules, per batch: the
        // naive one launches at least one count per shard; the batched
        // one launches one vectorized count plus the joint rounds, and
        // a joint round never exceeds the busiest shard's own rounds.
        assert!(r.naive_collectives >= shards as u64);
        let max_rounds = r
            .per_shard
            .iter()
            .map(|b| b.rounds as u64)
            .max()
            .unwrap_or(0);
        assert_eq!(r.batched_collectives, 1 + max_rounds);
        assert!(r.batched_net_s <= r.naive_net_s + 1e-12);
        row.naive_coll += r.naive_collectives;
        row.batched_coll += r.batched_collectives;
        row.naive_net_s += r.naive_net_s;
        row.batched_net_s += r.batched_net_s;
    }
    row
}

fn compute_table() -> Vec<Row> {
    let mut rows = Vec::new();
    for &p in &P_GRID {
        for &s in &S_GRID {
            rows.push(run_fleet(p, s));
        }
    }
    rows
}

fn format_table(rows: &[Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# SimShardedCluster schedule snapshot — seed {SNAPSHOT_SEED:#x}, {BATCHES} batches,\n\
         # k = {K}, b_per_pe = {B_PER_PE}, 8 pivots, InfiniBand EDR α–β model.\n\
         # Regenerate with UPDATE_SIM_GOLDEN=1 cargo test --test sim_sharded\n\
         # {COLUMNS}"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{}\t{}\t{}\t{}\t{:.6e}\t{:.6e}",
            r.p, r.s, r.naive_coll, r.batched_coll, r.naive_net_s, r.batched_net_s,
        );
    }
    out
}

fn parse_table(text: &str) -> Vec<Row> {
    text.lines()
        .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
        .map(|l| {
            let f: Vec<&str> = l.split('\t').collect();
            assert_eq!(f.len(), 6, "malformed golden row: {l:?}");
            Row {
                p: f[0].parse().expect("p"),
                s: f[1].parse().expect("s"),
                naive_coll: f[2].parse().expect("naive_coll"),
                batched_coll: f[3].parse().expect("batched_coll"),
                naive_net_s: f[4].parse().expect("naive_net_s"),
                batched_net_s: f[5].parse().expect("batched_net_s"),
            }
        })
        .collect()
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/sim_sharded.tsv")
}

fn rel_close(a: f64, b: f64) -> bool {
    (a - b).abs() <= REL_TOL * a.abs().max(b.abs()) + 1e-12
}

#[test]
fn sim_sharded_schedule_matches_golden_snapshot() {
    let rows = compute_table();
    let actual_text = format_table(&rows);
    if std::env::var("UPDATE_SIM_GOLDEN").is_ok() {
        fs::write(golden_path(), &actual_text).expect("write golden");
        eprintln!(
            "sharded sim golden snapshot rewritten at {:?}",
            golden_path()
        );
        return;
    }
    let golden_text = fs::read_to_string(golden_path())
        .expect("missing tests/golden/sim_sharded.tsv — run UPDATE_SIM_GOLDEN=1 once");
    let golden = parse_table(&golden_text);
    assert_eq!(
        golden.len(),
        rows.len(),
        "snapshot grid changed; re-baseline"
    );

    let mut diffs = String::new();
    for (g, a) in golden.iter().zip(&rows) {
        assert_eq!((g.p, g.s), (a.p, a.s), "grid order changed; re-baseline");
        let mut cell = |name: &str, gv: f64, av: f64| {
            if !rel_close(gv, av) {
                let _ = writeln!(
                    diffs,
                    "p={} s={} {name}: golden {gv:.6e} vs actual {av:.6e} ({:+.1}%)",
                    g.p,
                    g.s,
                    100.0 * (av - gv) / gv.abs().max(1e-300)
                );
            }
        };
        cell("naive_coll", g.naive_coll as f64, a.naive_coll as f64);
        cell("naive_net_s", g.naive_net_s, a.naive_net_s);
        cell("batched_net_s", g.batched_net_s, a.batched_net_s);
        if (g.batched_coll as i64 - a.batched_coll as i64).abs() > BATCHED_TOL {
            let _ = writeln!(
                diffs,
                "p={} s={} batched_coll: golden {} vs actual {}",
                g.p, g.s, g.batched_coll, a.batched_coll
            );
        }
    }
    if !diffs.is_empty() {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target/sim-sharded");
        fs::create_dir_all(&dir).expect("create target/sim-sharded");
        fs::write(dir.join("actual.tsv"), &actual_text).expect("write actual");
        fs::write(dir.join("diff.txt"), &diffs).expect("write diff");
        panic!(
            "sharded sim schedule snapshot drifted (full table + diff written \
             to target/sim-sharded/):\n{diffs}\n\
             If the change is intentional, re-baseline with \
             UPDATE_SIM_GOLDEN=1 cargo test --test sim_sharded"
        );
    }
}

/// The acceptance claim, asserted on the live computation (not the golden
/// file, so it can never be baselined away): growing the fleet 64× leaves
/// the batched launch count essentially flat — O(1) collective rounds per
/// mini-batch — while the naive launch count grows with the shard count.
#[test]
fn batched_rounds_are_shard_count_independent() {
    for &p in &P_GRID {
        let rows: Vec<Row> = S_GRID.iter().map(|&s| run_fleet(p, s)).collect();
        let single = &rows[0];
        let largest = rows.last().unwrap();
        // A 64× fleet may add a few joint rounds (the max over more
        // shards' round counts creeps up logarithmically) but never
        // multiplies: well under 2× where linear scaling would be 64×.
        assert!(
            largest.batched_coll < 2 * single.batched_coll,
            "p={p}: batched launches must not scale with shards \
             ({} at S={} vs {} at S={})",
            largest.batched_coll,
            largest.s,
            single.batched_coll,
            single.s,
        );
        // Naive launches scale linearly: each 4× fleet growth must cost
        // at least 3× the launches (slack for round-count variation).
        for pair in rows.windows(2) {
            assert!(
                pair[1].naive_coll >= 3 * pair[0].naive_coll,
                "p={p}: naive launches should grow ~linearly, got {} at S={} \
                 vs {} at S={}",
                pair[1].naive_coll,
                pair[1].s,
                pair[0].naive_coll,
                pair[0].s,
            );
        }
        // And the α savings are real: at S=64 the batched schedule's
        // network time is a small fraction of the naive schedule's.
        assert!(
            largest.batched_net_s < 0.25 * largest.naive_net_s,
            "p={p}: batched schedule should amortize latency, got \
             {:.3e}s vs naive {:.3e}s",
            largest.batched_net_s,
            largest.naive_net_s,
        );
    }
}
