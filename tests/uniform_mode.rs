//! End-to-end coverage for the uniform (unweighted) sampling mode,
//! including the gather baseline, which the paper treats as a trivial
//! adaptation (Section 4.3) — the tests pin down that our implementation
//! really is distribution-correct, not just the weighted path.

use reservoir::comm::run_threads;
use reservoir::comm::Communicator;
use reservoir::dist::gather::GatherSampler;
use reservoir::dist::threaded::DistributedSampler;
use reservoir::dist::DistConfig;
use reservoir::rng::test_base_seed;
use reservoir::stream::Item;

fn uniform_batch(rank: usize, batch: u64, size: u64) -> Vec<Item> {
    (0..size)
        .map(|i| Item::new(((rank as u64) << 40) | (batch << 20) | i, 1.0))
        .collect()
}

#[test]
fn gather_uniform_inclusion_probability() {
    let (p, k, per_batch, batches) = (2usize, 25, 100u64, 3u64);
    let n = p as u64 * per_batch * batches;
    let trials = 400;
    let base = test_base_seed();
    let mut hits = 0u32;
    let probe = (1u64 << 40) | (2 << 20) | 42; // PE 1, last batch
    for t in 0..trials {
        let results = run_threads(p, |comm| {
            let mut s =
                GatherSampler::new(&comm, DistConfig::uniform(k, base.wrapping_add(40_000 + t)));
            for b in 0..batches {
                let items = uniform_batch(comm.rank(), b, per_batch);
                s.process_batch(&items);
            }
            s.sample()
        });
        assert_eq!(results[0].len(), k);
        if results[0].iter().any(|s| s.id == probe) {
            hits += 1;
        }
    }
    let frac = hits as f64 / trials as f64;
    let expect = k as f64 / n as f64;
    assert!(
        (frac - expect).abs() < 0.035,
        "inclusion {frac:.3} vs k/n = {expect:.3} \
         (base seed {base}; set RESERVOIR_TEST_SEED to reproduce/vary)"
    );
}

#[test]
fn distributed_uniform_threshold_tracks_k_over_n() {
    let (p, k) = (4usize, 500);
    let results = run_threads(p, |comm| {
        let mut s = DistributedSampler::new(&comm, DistConfig::uniform(k, 3));
        let mut thresholds = Vec::new();
        for b in 0..6u64 {
            let items = uniform_batch(comm.rank(), b, 2_000);
            s.process_batch(&items);
            thresholds.push(s.threshold().expect("n > k after batch 1"));
        }
        thresholds
    });
    // After batch i, n = 4·2000·(i+1); threshold ≈ k/n.
    for (i, &t) in results[0].iter().enumerate() {
        let n = (4 * 2_000 * (i + 1)) as f64;
        let expect = 500.0 / n;
        assert!(
            (t - expect).abs() < 0.4 * expect,
            "batch {i}: threshold {t:.4e} vs k/n {expect:.4e}"
        );
    }
}

#[test]
fn uniform_and_weighted_with_unit_weights_agree() {
    // Uniform mode and weighted mode with all weights 1 have different key
    // *distributions* (uniform vs Exp(1)) but identical sample laws.
    let (p, k, per_batch) = (2usize, 40, 500u64);
    let trials = 300;
    let base = test_base_seed();
    let probe = 7u64; // an id on PE 0, batch 0
    let mut hits = [0u32; 2];
    for (mode_idx, uniform) in [true, false].into_iter().enumerate() {
        for t in 0..trials {
            let seed = base.wrapping_add(60_000 + t);
            let results = run_threads(p, |comm| {
                let cfg = if uniform {
                    DistConfig::uniform(k, seed)
                } else {
                    DistConfig::weighted(k, seed)
                };
                let mut s = DistributedSampler::new(&comm, cfg);
                for b in 0..2u64 {
                    let items = uniform_batch(comm.rank(), b, per_batch);
                    s.process_batch(&items);
                }
                s.gather_sample()
            });
            if results[0]
                .as_ref()
                .expect("root")
                .iter()
                .any(|s| s.id == probe)
            {
                hits[mode_idx] += 1;
            }
        }
    }
    let f0 = hits[0] as f64 / trials as f64;
    let f1 = hits[1] as f64 / trials as f64;
    let expect = k as f64 / (p as u64 * per_batch * 2) as f64;
    assert!(
        (f0 - expect).abs() < 0.035,
        "uniform mode inclusion {f0} (base seed {base})"
    );
    assert!(
        (f1 - expect).abs() < 0.035,
        "unit-weight mode inclusion {f1} (base seed {base})"
    );
}

#[test]
fn variable_batch_sizes_across_pes_and_time() {
    // The mini-batch model allows b to differ across PEs and batches; the
    // sampler must not care.
    let p = 3usize;
    let k = 60;
    let results = run_threads(p, |comm| {
        let mut s = DistributedSampler::new(&comm, DistConfig::uniform(k, 8));
        let mut total = 0u64;
        for b in 0..5u64 {
            // PE r gets (r+1)·(b+1)·37 items in batch b.
            let size = (comm.rank() as u64 + 1) * (b + 1) * 37;
            total += size;
            let items = uniform_batch(comm.rank(), b, size);
            s.process_batch(&items);
        }
        (s.gather_sample(), total)
    });
    let n: u64 = results.iter().map(|(_, t)| t).sum();
    let sample = results[0].0.as_ref().expect("root");
    assert_eq!(sample.len() as u64, (k as u64).min(n));
    let mut ids: Vec<u64> = sample.iter().map(|s| s.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), sample.len());
}

#[test]
fn empty_batches_are_tolerated() {
    let p = 2usize;
    let results = run_threads(p, |comm| {
        let mut s = DistributedSampler::new(&comm, DistConfig::uniform(10, 5));
        // Batch 1: only PE 0 has data. Batch 2: only PE 1. Batch 3: none.
        for b in 0..3u64 {
            let mine = (b as usize % 2) == comm.rank() && b < 2;
            let items = if mine {
                uniform_batch(comm.rank(), b, 50)
            } else {
                Vec::new()
            };
            s.process_batch(&items);
        }
        s.gather_sample()
    });
    let sample = results[0].as_ref().expect("root");
    assert_eq!(sample.len(), 10);
}
