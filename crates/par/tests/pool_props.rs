//! Property tests for the work-stealing pool shim: exactly-once task
//! execution, join-before-return, panic propagation, and exact chunk
//! partitioning — over arbitrary task counts, thread counts and chunk
//! geometries.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use proptest::prelude::*;
use reservoir_par::{chunk_ranges, Pool};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_spawned_task_runs_exactly_once(
        threads in 1usize..6,
        tasks in 0usize..200,
    ) {
        let pool = Pool::new(threads);
        let ran: Vec<AtomicU64> = (0..tasks).map(|_| AtomicU64::new(0)).collect();
        let (_, report) = pool.scope(|s| {
            for slot in &ran {
                s.spawn(move |_| {
                    slot.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        prop_assert!(ran.iter().all(|r| r.load(Ordering::SeqCst) == 1));
        prop_assert_eq!(report.tasks, tasks as u64);
        prop_assert_eq!(report.worker_busy_s.len(), threads);
        // One worker cannot steal from itself.
        if threads == 1 {
            prop_assert_eq!(report.steals, 0);
        }
    }

    #[test]
    fn scope_joins_before_returning(
        threads in 1usize..6,
        tasks in 1usize..100,
    ) {
        // Every task flips its flag; if scope returned before a task
        // finished, the flag read below would race — the SeqCst flag plus
        // the join guarantee make this deterministic.
        let pool = Pool::new(threads);
        let done: Vec<AtomicBool> = (0..tasks).map(|_| AtomicBool::new(false)).collect();
        pool.scope(|s| {
            for flag in &done {
                s.spawn(move |_| {
                    // A little work so tasks are still in flight when the
                    // registrar returns.
                    std::hint::black_box((0..50).sum::<u64>());
                    flag.store(true, Ordering::SeqCst);
                });
            }
        });
        prop_assert!(done.iter().all(|f| f.load(Ordering::SeqCst)));
    }

    #[test]
    fn nested_spawns_also_run_exactly_once(
        threads in 1usize..5,
        parents in 1usize..30,
        children in 0usize..4,
    ) {
        let pool = Pool::new(threads);
        let count = AtomicU64::new(0);
        let (_, report) = pool.scope(|s| {
            for _ in 0..parents {
                let count = &count;
                s.spawn(move |inner| {
                    count.fetch_add(1, Ordering::SeqCst);
                    for _ in 0..children {
                        inner.spawn(move |_| {
                            count.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                });
            }
        });
        let expect = (parents * (1 + children)) as u64;
        prop_assert_eq!(count.load(Ordering::SeqCst), expect);
        prop_assert_eq!(report.tasks, expect);
    }

    #[test]
    fn panics_propagate_and_pool_survives(
        threads in 1usize..5,
        tasks in 1usize..20,
        panicker in 0usize..20,
    ) {
        prop_assume!(panicker < tasks);
        let pool = Pool::new(threads);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.scope(|s| {
                for i in 0..tasks {
                    s.spawn(move |_| {
                        if i == panicker {
                            panic!("deliberate task panic");
                        }
                    });
                }
            });
        }));
        prop_assert!(caught.is_err(), "a task panic must reach the caller");
        // The same pool value still runs later scopes to completion.
        let ok = AtomicU64::new(0);
        pool.scope(|s| {
            let ok = &ok;
            s.spawn(move |_| {
                ok.fetch_add(1, Ordering::SeqCst);
            });
        });
        prop_assert_eq!(ok.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn chunk_partition_covers_input_without_overlap(
        len in 0usize..5_000,
        chunk in 1usize..600,
    ) {
        let mut next = 0usize;
        let mut chunks = 0usize;
        for r in chunk_ranges(len, chunk) {
            prop_assert_eq!(r.start, next, "gap or overlap at chunk boundary");
            prop_assert!(r.end > r.start, "empty chunk");
            prop_assert!(r.end - r.start <= chunk, "oversized chunk");
            next = r.end;
            chunks += 1;
        }
        prop_assert_eq!(next, len, "partition must end at len");
        prop_assert_eq!(chunks, len.div_ceil(chunk));
    }

    #[test]
    fn par_for_chunks_marks_every_index_once(
        threads in 1usize..5,
        len in 0usize..3_000,
        chunk in 1usize..500,
    ) {
        let pool = Pool::new(threads);
        let marks: Vec<AtomicU64> = (0..len).map(|_| AtomicU64::new(0)).collect();
        let report = pool.par_for_chunks(len, chunk, |_, range| {
            for i in range {
                marks[i].fetch_add(1, Ordering::SeqCst);
            }
        });
        prop_assert!(marks.iter().all(|m| m.load(Ordering::SeqCst) == 1));
        prop_assert_eq!(report.tasks as usize, len.div_ceil(chunk));
    }
}
