//! Seeded yield-injection scheduler shim for the concurrent tree layer.
//!
//! Real-thread interleavings cannot be replayed exactly, but they can be
//! *forced wider*: [`YieldInjector`] installs a
//! [`reservoir_btree::sched`] hook whose per-thread pseudo-random
//! decision streams (splitmix over a master seed) yield, and occasionally
//! sleep, at the protocol's instrumentation points. A yield between a
//! node read and its validation stretches the read-validate race window;
//! a sleep right after `LockAcquired` (the *aggressive* profile) parks a
//! writer mid-critical-section long enough that every optimistic reader
//! of that node exhausts its bounded spin and takes the conflict path —
//! which is how the stress suites force retry storms and
//! split-during-descend interleavings on demand, and why they can assert
//! `retries > 0` instead of hoping for contention.
//!
//! Decisions are a pure function of `(master seed, thread registration
//! order, event sequence)`: reruns under one seed explore closely related
//! interleavings, and failures print the seed (`RESERVOIR_TEST_SEED`
//! reproduces/varies the whole sweep). The hook registry is
//! process-global, so the guard also holds
//! [`reservoir_btree::sched::hook_test_guard`] for its lifetime —
//! installing an injector serializes stress tests automatically.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, MutexGuard};
use std::time::Duration;

use reservoir_btree::sched::{self, SchedEvent};

/// Probability denominators, in events: one yield roughly every `YIELD_1_IN`
/// events, one short sleep roughly every `SLEEP_1_IN`.
const YIELD_1_IN: u64 = 6;
const SLEEP_1_IN: u64 = 96;
/// Aggressive profile: fraction of exclusive lock acquisitions that hold
/// the lock for [`LOCK_HOLD`] — long enough to outlast any reader's
/// bounded spin, guaranteeing conflicts under contention.
const LOCK_HOLD_1_IN: u64 = 3;
const LOCK_HOLD: Duration = Duration::from_micros(120);

fn splitmix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A scheduler shim forcing adversarial interleavings; see module docs.
pub struct YieldInjector {
    seed: u64,
    /// Hand each hooked thread its own decision stream, in registration
    /// order.
    next_thread: AtomicU64,
    /// Whether `LockAcquired` events park the writer (see module docs).
    aggressive: bool,
    /// Events the hook processed (all threads).
    events: AtomicU64,
    /// Yields + sleeps actually injected.
    injected: AtomicU64,
}

impl YieldInjector {
    /// Install the standard profile: yields that widen race windows
    /// without forcing lock-hold conflicts.
    pub fn install(seed: u64) -> YieldGuard {
        Self::install_profile(seed, false)
    }

    /// Install the aggressive profile: additionally parks writers inside
    /// their critical sections so optimistic readers *must* take the
    /// bounded-spin conflict path under contention.
    pub fn install_aggressive(seed: u64) -> YieldGuard {
        Self::install_profile(seed, true)
    }

    fn install_profile(seed: u64, aggressive: bool) -> YieldGuard {
        let serial = sched::hook_test_guard();
        let injector = Arc::new(YieldInjector {
            seed,
            next_thread: AtomicU64::new(0),
            aggressive,
            events: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        });
        let hooked = injector.clone();
        let prev = sched::set_hook(Some(Arc::new(move |ev| hooked.on_event(ev))));
        YieldGuard {
            injector,
            prev: Some(prev),
            _serial: serial,
        }
    }

    fn on_event(&self, event: SchedEvent) {
        thread_local! {
            /// (injector identity seed, decision stream state).
            static STREAM: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
        }
        self.events.fetch_add(1, Ordering::Relaxed);
        let r = STREAM.with(|s| {
            let (id, mut state) = s.get();
            if id != self.seed {
                // First event from this thread under this injector:
                // derive its stream from the master seed + registration
                // index.
                let idx = self.next_thread.fetch_add(1, Ordering::Relaxed);
                state = self.seed ^ idx.wrapping_mul(0xA076_1D64_78BD_642F);
                // Burn one draw so streams differ even when idx == 0
                // leaves state == seed.
                splitmix(&mut state);
            }
            let r = splitmix(&mut state);
            s.set((self.seed, state));
            r
        });
        if self.aggressive && event == SchedEvent::LockAcquired && r.is_multiple_of(LOCK_HOLD_1_IN)
        {
            self.injected.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(LOCK_HOLD);
            return;
        }
        if r % SLEEP_1_IN == 1 {
            self.injected.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_micros(20));
        } else if r.is_multiple_of(YIELD_1_IN) {
            self.injected.fetch_add(1, Ordering::Relaxed);
            std::thread::yield_now();
        }
    }
}

/// Keeps a [`YieldInjector`] installed; uninstalling (and restoring any
/// previous hook) on drop. Also holds the global hook-test serialization
/// lock for its lifetime.
pub struct YieldGuard {
    injector: Arc<YieldInjector>,
    prev: Option<Option<sched::Hook>>,
    _serial: MutexGuard<'static, ()>,
}

impl YieldGuard {
    /// Events the injector saw so far (all threads).
    pub fn events(&self) -> u64 {
        self.injector.events.load(Ordering::Relaxed)
    }

    /// Yields/sleeps the injector actually forced so far.
    pub fn injected(&self) -> u64 {
        self.injector.injected.load(Ordering::Relaxed)
    }
}

impl Drop for YieldGuard {
    fn drop(&mut self) {
        sched::set_hook(self.prev.take().unwrap_or(None));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reservoir_btree::{OlcTree, SampleKey};

    #[test]
    fn injector_fires_and_uninstalls() {
        let tree = OlcTree::new();
        {
            let guard = YieldInjector::install(0xA5A5);
            for i in 0..200u64 {
                tree.insert(SampleKey::new(1.0 + i as f64, i), 1.0);
            }
            assert!(guard.events() > 0, "hooks must fire while installed");
        }
        let before = {
            let guard = YieldInjector::install(0x5A5A);
            guard.events()
        };
        // After the guard dropped, inserts no longer reach any hook.
        tree.insert(SampleKey::new(0.5, 999), 1.0);
        assert_eq!(before, 0, "fresh injector starts at zero events");
        tree.check_consistency().unwrap();
    }

    #[test]
    fn aggressive_profile_forces_retries() {
        let tree = OlcTree::new();
        let _guard = YieldInjector::install_aggressive(0xBEEF);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let tree = &tree;
                s.spawn(move || {
                    for i in 0..300u64 {
                        let id = t * 1_000 + i;
                        // Same narrow key band on purpose: all threads
                        // hammer the same few nodes.
                        tree.insert(SampleKey::new((id % 13) as f64 + id as f64 * 1e-9, id), 1.0);
                    }
                });
            }
        });
        tree.check_consistency().unwrap();
        assert_eq!(tree.len(), 1_200);
        assert!(
            tree.stats().retries > 0,
            "held locks must force bounded-spin conflicts"
        );
    }
}
