//! The parallel per-PE local reservoir: chunked jump scans on the
//! work-stealing pool, merged into the B+ tree by a sequential epilogue.
//!
//! ## Why chunking preserves the sampling law
//!
//! In threshold mode the sequential scan realizes, for every item `i`, the
//! event `key_i < T` with probability `1 − e^{−T·w_i}` (weighted) or `T`
//! (uniform), independently across items, and gives each survivor a key
//! from the conditional law given `key < T`. Exponential and geometric
//! skips are **memoryless**, so a scan that restarts its skip clock at a
//! chunk boundary draws each item's inclusion from exactly the same law —
//! the chunk partition changes which RNG stream serves an item, never the
//! item's inclusion probability or conditional key law. Each chunk owns a
//! dedicated RNG stream derived from `(seed, batch, chunk)` through
//! [`SeedSequence`], so the candidate set depends only on the seed and the
//! batch sequence — **not** on the worker that ran the chunk or on the
//! thread count. That is what the fixed-seed determinism tests pin.
//!
//! ## Growing mode and the shared threshold snapshot
//!
//! Before a global threshold exists, the reservoir keeps its local `cap`
//! smallest keys. Each chunk draws every item's unconditioned key and
//! keeps candidates below a **relaxed snapshot of the shared threshold**:
//! an `AtomicU64` (f64 bits — bit order equals numeric order for the
//! positive keys) that starts at the pre-batch local threshold (or +∞) and
//! is `fetch_min`-lowered to each chunk buffer's own `cap`-th smallest key
//! as buffers fill. Every published value is the `cap`-th smallest of a
//! *subset* of the final merged key multiset, hence an upper bound on the
//! final threshold — so the filter only ever discards items that cannot be
//! among the final `cap` smallest, no matter how stale the snapshot a
//! worker read. The sequential epilogue merges all surviving candidates
//! into the tree and re-prunes it to the `cap` smallest (the post-merge
//! threshold), which makes the final reservoir *exactly* the `cap`
//! smallest of the full key multiset — independent of snapshot timing,
//! steal order, and thread count.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use reservoir_btree::{BPlusTree, SampleKey};
use reservoir_rng::{DefaultRng, Rng64, SeedSequence, StreamKind};
use reservoir_stream::Item;

use crate::pool::{chunk_ranges, Pool};

/// Block width of the weighted skip scan (matches the sequential scan).
const SCAN_BLOCK: usize = 32;

/// Items per chunk. Fixed (not derived from the thread count) so the
/// candidate set — and therefore the merged reservoir — is identical for
/// every thread count under the same seed.
pub const DEFAULT_CHUNK_ITEMS: usize = 4096;

/// Stream tag for the per-batch seed derivation level. Shared with the
/// concurrent merge mode: both modes must consume identical streams for
/// the candidate multiset to be identical.
pub(crate) const BATCH_STREAM: u16 = 0x7062;
/// Stream tag for the per-chunk seed derivation level.
pub(crate) const CHUNK_STREAM: u16 = 0x7063;

/// Work counters and timings for one parallel scan call.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ParScanStats {
    /// Items offered.
    pub processed: u64,
    /// Candidates merged into the tree (in growing mode, counted before
    /// the epilogue's re-prune to `cap`).
    pub inserted: u64,
    /// Skip values drawn across all chunks.
    pub jumps: u64,
    /// Chunks the batch was split into.
    pub chunks: u64,
    /// Chunk tasks executed by a worker other than the one they were
    /// queued on.
    pub steals: u64,
    /// OS threads spawned for this scan's scope: `threads − 1` on a
    /// per-scope pool, 0 on a persistent crew ([`Pool::persistent`]) —
    /// the counter that shows what the persistent pool saves per batch.
    pub spawns: u64,
    /// Seconds each worker spent scanning (index = worker id; worker 0 is
    /// the calling thread).
    pub worker_scan_s: Vec<f64>,
    /// Seconds of the sequential merge epilogue (tree insertion and the
    /// growing-mode re-prune). In the concurrent merge mode this is only
    /// the post-scan re-prune + size refresh — insertion happened inside
    /// the workers.
    pub merge_s: f64,
    /// Seqlock conflicts retried by the concurrent merge mode's shared
    /// tree during this scan (always 0 in epilogue mode).
    pub retries: u64,
}

impl ParScanStats {
    /// The busiest worker's scan seconds — the parallel region's critical
    /// path.
    pub fn max_worker_scan_s(&self) -> f64 {
        self.worker_scan_s.iter().copied().fold(0.0, f64::max)
    }
}

/// Where a threshold-scan kernel puts its survivors: a buffered per-chunk
/// vector (epilogue merge) or the shared concurrent tree (direct insert).
/// The kernels draw randomness identically either way, so the sink choice
/// never changes the candidate multiset.
pub(crate) trait ScanSink {
    /// A surviving candidate.
    fn emit(&mut self, key: SampleKey, weight: f64);
    /// One skip value was drawn.
    fn jump(&mut self);
}

/// Per-chunk scan output, written once by whichever worker ran the chunk.
#[derive(Default)]
pub(crate) struct ChunkOut {
    pub(crate) candidates: Vec<(SampleKey, f64)>,
    pub(crate) jumps: u64,
}

impl ScanSink for ChunkOut {
    fn emit(&mut self, key: SampleKey, weight: f64) {
        self.candidates.push((key, weight));
    }

    fn jump(&mut self) {
        self.jumps += 1;
    }
}

/// The multicore counterpart of `reservoir_core::dist::LocalReservoir`:
/// same regimes (threshold scan / growing mode), same sampling law, but
/// the batch scan runs chunked across a [`Pool`]'s workers and owns its
/// RNG streams (derived per `(seed, batch, chunk)`) instead of consuming a
/// caller-supplied generator.
pub struct ParLocalReservoir {
    cap: usize,
    tree: BPlusTree<SampleKey, f64>,
    pool: Pool,
    chunk_items: usize,
    seeds: SeedSequence,
    batch_no: u64,
}

impl ParLocalReservoir {
    /// Reservoir capped at `cap` entries in growing mode, B+ tree node
    /// degree `degree`, scans run on `threads` workers, RNG streams rooted
    /// at `seed` (derive it per PE so PEs stay independent).
    pub fn new(cap: usize, degree: usize, threads: usize, seed: u64) -> Self {
        assert!(cap >= 1, "reservoir capacity must be at least 1");
        ParLocalReservoir {
            cap,
            tree: BPlusTree::with_degree(degree),
            pool: Pool::new(threads),
            chunk_items: DEFAULT_CHUNK_ITEMS,
            seeds: SeedSequence::new(seed),
            batch_no: 0,
        }
    }

    /// Override the items-per-chunk granularity (testing / benchmarking).
    pub fn with_chunk_items(mut self, chunk_items: usize) -> Self {
        assert!(chunk_items >= 1, "chunks must hold at least one item");
        self.chunk_items = chunk_items;
        self
    }

    /// Run the scans on `pool` instead of the default per-scope pool —
    /// pass [`Pool::persistent`] to reuse one helper crew across every
    /// `process_*` call, removing the per-batch thread-spawn cost. The
    /// pool's worker count must match the reservoir's `threads` (the
    /// per-worker stat widths are sized at construction).
    pub fn with_pool(mut self, pool: Pool) -> Self {
        assert_eq!(
            pool.threads(),
            self.pool.threads(),
            "replacement pool must keep the worker count"
        );
        self.pool = pool;
        self
    }

    /// Whether the scans reuse a persistent helper crew.
    pub fn pool_is_persistent(&self) -> bool {
        self.pool.is_persistent()
    }

    /// Worker count the scans run on.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Number of entries currently held.
    pub fn len(&self) -> u64 {
        self.tree.len() as u64
    }

    /// Whether the reservoir holds no entries.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// The underlying tree (a `reservoir_select::CandidateSet` for the
    /// distributed selection).
    pub fn tree(&self) -> &BPlusTree<SampleKey, f64> {
        &self.tree
    }

    /// Drop every entry with a key strictly above `t`.
    pub fn prune_above(&mut self, t: &SampleKey) {
        let _ = self.tree.split_at_key(t, true);
    }

    /// Remove all entries.
    pub fn clear(&mut self) {
        self.tree.clear();
    }

    /// Account for a mini-batch this reservoir never saw (the sharded
    /// sparse-batch fast path): advances the per-batch RNG stream index
    /// exactly as processing an empty `items` slice would, so a skipped
    /// shard's future samples stay byte-identical to a scanned-empty
    /// one's. O(1) — no scan scope, no RNG draws.
    pub fn note_empty_batch(&mut self) {
        self.batch_no += 1;
    }

    /// Scan a weighted mini-batch: with `threshold = Some(t)` insert every
    /// item whose key falls below `t` (chunked exponential jumps,
    /// conditional keys); with `None` keep the local `cap` smallest keys.
    pub fn process_weighted(&mut self, items: &[Item], threshold: Option<f64>) -> ParScanStats {
        self.process(items, threshold, false)
    }

    /// Scan a uniform mini-batch (all weights 1): geometric jumps and
    /// `U(0, t]` conditional keys; same regimes as
    /// [`Self::process_weighted`].
    pub fn process_uniform(&mut self, items: &[Item], threshold: Option<f64>) -> ParScanStats {
        self.process(items, threshold, true)
    }

    fn process(&mut self, items: &[Item], threshold: Option<f64>, uniform: bool) -> ParScanStats {
        self.batch_no += 1;
        let mut stats = ParScanStats {
            processed: items.len() as u64,
            worker_scan_s: vec![0.0; self.pool.threads()],
            ..ParScanStats::default()
        };
        if items.is_empty() {
            return stats;
        }
        if let Some(t) = threshold {
            debug_assert!(t > 0.0, "threshold must be positive");
        }

        // The shared threshold: the fixed global T in threshold mode, or
        // the monotonically lowered growing-mode upper bound (pre-batch
        // local threshold when the tree is at capacity, +∞ otherwise).
        let shared = AtomicU64::new(
            match threshold {
                Some(t) => t,
                None if self.tree.len() >= self.cap => self.tree.max().expect("at capacity").0.key,
                None => f64::INFINITY,
            }
            .to_bits(),
        );

        let nchunks = items.len().div_ceil(self.chunk_items);
        let slots: Vec<Mutex<ChunkOut>> = (0..nchunks)
            .map(|_| Mutex::new(ChunkOut::default()))
            .collect();
        let batch_seeds = SeedSequence::new(
            self.seeds
                .seed_for(self.batch_no as usize, StreamKind::Custom(BATCH_STREAM)),
        );
        let growing = threshold.is_none();
        let cap = self.cap;

        let (_, report) = self.pool.scope(|s| {
            for (c, range) in chunk_ranges(items.len(), self.chunk_items).enumerate() {
                let slot = &slots[c];
                let shared = &shared;
                let chunk = &items[range];
                s.spawn(move |_| {
                    let mut rng = batch_seeds.rng_for(c, StreamKind::Custom(CHUNK_STREAM));
                    let mut out = ChunkOut::default();
                    match (growing, uniform) {
                        (true, _) => grow_chunk(chunk, cap, shared, uniform, &mut rng, &mut out),
                        (false, false) => {
                            let t = f64::from_bits(shared.load(Ordering::Relaxed));
                            scan_chunk_weighted(chunk, t, &mut rng, &mut out);
                        }
                        (false, true) => {
                            let t = f64::from_bits(shared.load(Ordering::Relaxed));
                            scan_chunk_uniform(chunk, t, &mut rng, &mut out);
                        }
                    }
                    *slot.lock().expect("chunk slot poisoned") = out;
                });
            }
        });

        // Sequential epilogue: merge every chunk's survivors (chunk order)
        // into the tree, then re-prune growing mode to the post-merge
        // threshold — the cap-th smallest key of the merged multiset.
        let t0 = Instant::now();
        for slot in &slots {
            let out = std::mem::take(&mut *slot.lock().expect("chunk slot poisoned"));
            stats.jumps += out.jumps;
            stats.inserted += out.candidates.len() as u64;
            for (key, weight) in out.candidates {
                self.tree.insert(key, weight);
            }
        }
        if growing && self.tree.len() > self.cap {
            let _ = self.tree.split_at_rank(self.cap);
        }
        stats.merge_s = t0.elapsed().as_secs_f64();
        stats.chunks = nchunks as u64;
        stats.steals = report.steals;
        stats.spawns = report.spawns;
        stats.worker_scan_s = report.worker_busy_s;
        stats
    }
}

/// Fixed-threshold weighted chunk scan: blocked exponential jumps, the
/// same kernel as the sequential scan but emitting into a [`ScanSink`].
pub(crate) fn scan_chunk_weighted(
    items: &[Item],
    t: f64,
    rng: &mut DefaultRng,
    out: &mut impl ScanSink,
) {
    let mut skip = rng.exponential(t);
    out.jump();
    let mut i = 0;
    while i < items.len() {
        let end = (i + SCAN_BLOCK).min(items.len());
        let block_weight: f64 = items[i..end].iter().map(|it| it.weight).sum();
        if skip > block_weight {
            skip -= block_weight;
            i = end;
            continue;
        }
        for item in &items[i..end] {
            skip -= item.weight;
            if skip <= 0.0 {
                // Conditional key given `key < t` (paper Section 4.1).
                let x = (-t * item.weight).exp();
                let v = -rng.rand_range_oc(x, 1.0).ln() / item.weight;
                out.emit(SampleKey::new(v, item.id), item.weight);
                skip = rng.exponential(t);
                out.jump();
            }
        }
        i = end;
    }
}

/// Fixed-threshold uniform chunk scan: geometric jumps over item counts.
pub(crate) fn scan_chunk_uniform(
    items: &[Item],
    t: f64,
    rng: &mut DefaultRng,
    out: &mut impl ScanSink,
) {
    if t >= 1.0 {
        // Degenerate threshold: every key qualifies.
        for item in items {
            let v = rng.rand_oc();
            out.emit(SampleKey::new(v, item.id), item.weight);
        }
        return;
    }
    let mut next = 0u64;
    let n = items.len() as u64;
    while next < n {
        let skip = rng.geometric_skips(t);
        out.jump();
        if skip >= n - next {
            break;
        }
        next += skip;
        let item = &items[next as usize];
        let v = rng.rand_oc() * t;
        out.emit(SampleKey::new(v, item.id), item.weight);
        next += 1;
    }
}

/// Growing-mode chunk scan: draw every item's unconditioned key, keep the
/// candidates below the relaxed shared-threshold snapshot, prune the local
/// buffer to `cap` when it spills and publish its own cap-th smallest key
/// back into the shared bound.
pub(crate) fn grow_chunk(
    items: &[Item],
    cap: usize,
    shared: &AtomicU64,
    uniform: bool,
    rng: &mut DefaultRng,
    out: &mut ChunkOut,
) {
    let spill = cap + cap / 2 + 64;
    let mut snapshot = f64::from_bits(shared.load(Ordering::Relaxed));
    for item in items {
        // Every item draws exactly one key, filtered or not, so the RNG
        // stream — and hence the candidate law — is deterministic even
        // though the snapshot evolves with arbitrary timing.
        let key = if uniform {
            rng.rand_oc()
        } else {
            rng.exponential(item.weight)
        };
        if key >= snapshot {
            // The shared bound only ever tightens, so a refreshed snapshot
            // cannot rescue this key — re-cache it and discard.
            snapshot = f64::from_bits(shared.load(Ordering::Relaxed));
            continue;
        }
        out.candidates
            .push((SampleKey::new(key, item.id), item.weight));
        if out.candidates.len() >= spill {
            prune_to_cap(&mut out.candidates, cap);
            let top = out.candidates.last().expect("cap >= 1").0.key;
            shared.fetch_min(top.to_bits(), Ordering::Relaxed);
            snapshot = f64::from_bits(shared.load(Ordering::Relaxed));
        }
    }
}

/// Keep the `cap` smallest candidates; afterwards the buffer's last entry
/// is its largest (the publishable cap-th smallest).
fn prune_to_cap(buf: &mut Vec<(SampleKey, f64)>, cap: usize) {
    debug_assert!(buf.len() > cap);
    buf.select_nth_unstable_by(cap - 1, |a, b| a.0.cmp(&b.0));
    buf.truncate(cap);
    // select_nth leaves the maximum at position cap-1.
    debug_assert!(buf[..buf.len() - 1]
        .iter()
        .all(|(k, _)| k <= &buf[buf.len() - 1].0));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(n: u64, weight: impl Fn(u64) -> f64) -> Vec<Item> {
        (0..n).map(|i| Item::new(i, weight(i))).collect()
    }

    fn ids(r: &ParLocalReservoir) -> Vec<u64> {
        let mut v: Vec<u64> = r.tree().iter().map(|(k, _)| k.id).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn threshold_scan_matches_bernoulli_rate() {
        // P(key < t) = 1 - e^{-t w}; aggregate insertion rate must track it.
        let t = 0.05;
        let w = 2.0f64;
        let expect = 1.0 - (-t * w).exp();
        let n = 20_000u64;
        let mut total = 0u64;
        for seed in 0..10 {
            let mut r = ParLocalReservoir::new(8, 32, 4, seed).with_chunk_items(1024);
            total += r.process_weighted(&batch(n, |_| w), Some(t)).inserted;
        }
        let rate = total as f64 / (10 * n) as f64;
        assert!(
            (rate - expect).abs() < 0.1 * expect,
            "rate {rate} vs {expect}"
        );
    }

    #[test]
    fn threshold_scan_keys_below_threshold_and_stats_consistent() {
        let mut r = ParLocalReservoir::new(8, 32, 3, 1).with_chunk_items(512);
        let t = 0.01;
        let stats = r.process_weighted(&batch(10_000, |_| 1.0), Some(t));
        assert_eq!(stats.processed, 10_000);
        assert_eq!(stats.inserted, r.len());
        assert_eq!(stats.chunks, 20);
        assert_eq!(stats.worker_scan_s.len(), 3);
        assert!(r.tree().iter().all(|(k, _)| k.key <= t));
    }

    #[test]
    fn results_are_deterministic_and_thread_count_independent() {
        let run = |threads: usize| {
            let mut r = ParLocalReservoir::new(50, 32, threads, 99).with_chunk_items(256);
            // Growing phase first, then threshold scans.
            r.process_weighted(&batch(3_000, |i| 1.0 + (i % 7) as f64), None);
            let t = r.tree().max().unwrap().0.key;
            r.process_weighted(&batch(5_000, |i| 1.0 + (i % 5) as f64), Some(t));
            ids(&r)
        };
        let four_a = run(4);
        let four_b = run(4);
        assert_eq!(four_a, four_b, "same seed + threads must reproduce");
        let one = run(1);
        let two = run(2);
        assert_eq!(
            four_a, one,
            "chunk streams make results thread-count independent"
        );
        assert_eq!(four_a, two);
    }

    #[test]
    fn growing_mode_keeps_cap_smallest() {
        let mut r = ParLocalReservoir::new(50, 32, 4, 3).with_chunk_items(300);
        let stats = r.process_weighted(&batch(5_000, |i| 1.0 + (i % 7) as f64), None);
        assert_eq!(r.len(), 50);
        assert_eq!(stats.processed, 5_000);
        // The shared-threshold filter keeps candidate counts far below n.
        assert!(stats.inserted < 3_000, "{}", stats.inserted);
        // The kept keys are exactly the 50 smallest drawn: every key in the
        // tree is at most the tree's max, and the tree holds exactly cap.
        let max = r.tree().max().unwrap().0.key;
        assert!(r.tree().iter().all(|(k, _)| k.key <= max));
    }

    #[test]
    fn growing_mode_partial_fill_then_spill() {
        let mut r = ParLocalReservoir::new(100, 32, 2, 4).with_chunk_items(64);
        r.process_weighted(&batch(30, |_| 1.0), None);
        assert_eq!(r.len(), 30);
        r.process_weighted(&batch(500, |_| 1.0), None);
        assert_eq!(r.len(), 100);
    }

    #[test]
    fn uniform_threshold_scan_rate_and_range() {
        let t = 0.02;
        let n = 50_000u64;
        let mut r = ParLocalReservoir::new(8, 32, 4, 5).with_chunk_items(2048);
        let stats = r.process_uniform(&batch(n, |_| 1.0), Some(t));
        let expect = n as f64 * t;
        assert!(
            (stats.inserted as f64 - expect).abs() < 6.0 * expect.sqrt() + 10.0,
            "inserted {} vs {expect}",
            stats.inserted
        );
        assert!(r.tree().iter().all(|(k, _)| k.key > 0.0 && k.key <= t));
    }

    #[test]
    fn uniform_growing_inclusion_is_cap_over_n() {
        let n = 400u64;
        let cap = 20usize;
        let trials = 2_000u64;
        let mut hits = 0u32;
        for seed in 0..trials {
            let mut r = ParLocalReservoir::new(cap, 32, 4, seed).with_chunk_items(96);
            r.process_uniform(&batch(n, |_| 1.0), None);
            if r.tree().iter().any(|(k, _)| k.id == n - 1) {
                hits += 1;
            }
        }
        let frac = hits as f64 / trials as f64;
        let expect = cap as f64 / n as f64;
        assert!((frac - expect).abs() < 0.02, "{frac} vs {expect}");
    }

    #[test]
    fn empty_batches_are_noops() {
        let mut r = ParLocalReservoir::new(10, 32, 4, 7);
        let s1 = r.process_weighted(&[], Some(0.5));
        let s2 = r.process_weighted(&[], None);
        let s3 = r.process_uniform(&[], Some(0.5));
        assert_eq!(s1.inserted + s2.inserted + s3.inserted, 0);
        assert!(r.is_empty());
        assert_eq!(s1.chunks, 0);
    }

    #[test]
    fn persistent_pool_same_sample_zero_spawns() {
        // The worker strategy may not touch the sampling law: chunk RNG
        // streams carry the randomness, so per-scope and persistent pools
        // must produce the identical reservoir under one seed — only the
        // spawn accounting differs.
        let run = |persistent: bool| {
            let mut r = ParLocalReservoir::new(50, 32, 4, 99).with_chunk_items(256);
            if persistent {
                r = r.with_pool(Pool::persistent(4));
            }
            r.process_weighted(&batch(3_000, |i| 1.0 + (i % 7) as f64), None);
            let t = r.tree().max().unwrap().0.key;
            let stats = r.process_weighted(&batch(5_000, |i| 1.0 + (i % 5) as f64), Some(t));
            (ids(&r), stats.spawns)
        };
        let (per_scope_ids, per_scope_spawns) = run(false);
        let (crew_ids, crew_spawns) = run(true);
        assert_eq!(
            per_scope_ids, crew_ids,
            "worker strategy changed the sample"
        );
        assert_eq!(per_scope_spawns, 3, "per-scope pool spawns threads − 1");
        assert_eq!(crew_spawns, 0, "persistent crew spawns nothing per batch");
    }

    #[test]
    fn prune_above_and_clear() {
        let mut r = ParLocalReservoir::new(10, 32, 2, 6).with_chunk_items(50);
        r.process_weighted(&batch(200, |_| 1.0), None);
        let mut keys: Vec<f64> = r.tree().iter().map(|(k, _)| k.key).collect();
        keys.sort_by(f64::total_cmp);
        let cut = SampleKey::new(keys[4], u64::MAX);
        r.prune_above(&cut);
        assert_eq!(r.len(), 5);
        r.clear();
        assert!(r.is_empty());
    }
}
