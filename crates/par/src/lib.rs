//! Intra-PE parallelism: a scoped work-stealing thread pool plus the
//! parallel local scan ([`ParLocalReservoir`]).
//!
//! The distributed protocol (Algorithm 1) is communication-efficient per
//! *PE*, but each PE still scans its mini-batch sequentially. Its
//! companion work — *Parallel Weighted Random Sampling* (Hübschle-Schneider
//! & Sanders) — observes that the jump-scan/insertion phase parallelizes
//! cleanly across cores: exponential jumps are memoryless, so a scan that
//! restarts its skip clock at every chunk boundary draws each item's
//! inclusion from exactly the same law as one long sequential scan.
//!
//! Two layers live here:
//!
//! * [`pool`] — an offline dev-shim-style stand-in for the `rayon` API
//!   subset this workspace needs (`scope`, `join`, chunked `par_for`),
//!   built on `std::thread::scope` with per-worker deques and
//!   back-stealing. No crates.io access is assumed; swap for `rayon` by
//!   replacing the `Pool` internals when the registry is reachable.
//! * [`reservoir`] — [`ParLocalReservoir`], the multicore counterpart of
//!   `reservoir_core::dist::LocalReservoir`: split the batch into fixed
//!   `DEFAULT_CHUNK_ITEMS` chunks, jump-scan each chunk independently with
//!   a per-chunk RNG stream (derived through `reservoir_rng::seeding`, so
//!   results are reproducible and independent of the worker that ran the
//!   chunk), filter against a relaxed snapshot of the shared threshold,
//!   and merge the surviving candidates into the B+ tree in one short
//!   sequential epilogue that re-prunes against the post-merge threshold.
//! * [`concurrent`] — [`ConcurrentReservoir`], the shared-tree variant
//!   (`RESERVOIR_MERGE=concurrent`): the same chunk kernels and RNG
//!   streams, but workers insert survivors directly into one
//!   `reservoir_btree::OlcTree` through seqlock-based optimistic lock
//!   coupling, removing the sequential merge epilogue entirely.
//! * [`stress`] — [`YieldInjector`], a seeded yield-injection scheduler
//!   shim over `reservoir_btree::sched` that forces read-validate races,
//!   split-during-descend interleavings, and retry storms for the
//!   concurrency stress suites.
//!
//! This crate sits below `reservoir-core` (which selects between the
//! sequential and parallel reservoir behind its `threads_per_pe` knob), so
//! it only depends on `btree`, `rng` and `stream`.

pub mod concurrent;
pub mod pool;
pub mod reservoir;
pub mod stress;

pub use concurrent::ConcurrentReservoir;
pub use pool::{chunk_ranges, join, Pool, Scope, ScopeReport};
pub use reservoir::{ParLocalReservoir, ParScanStats, DEFAULT_CHUNK_ITEMS};
pub use stress::{YieldGuard, YieldInjector};
