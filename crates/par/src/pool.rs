//! A scoped work-stealing thread pool: the `rayon` API subset the
//! workspace needs, vendored dev-shim-style (the build environment has no
//! crates.io access).
//!
//! Design: [`Pool::scope`] collects tasks into per-worker FIFO deques
//! (round-robin at spawn time), then runs them on `threads` workers — the
//! calling thread plus `threads − 1` helpers. A worker pops its own deque
//! from the front and, when dry, **steals from the back** of a victim's
//! deque; steals are counted and reported. Tasks may spawn further tasks
//! (they receive the [`Scope`]); the scope returns only when every task
//! has finished. A panicking task poisons the scope — the other workers
//! bail out and the panic resumes on the caller once every worker has
//! left the scope.
//!
//! Two worker strategies share the execution path:
//!
//! * [`Pool::new`] spawns helpers per [`Pool::scope`] call through
//!   `std::thread::scope` — zero idle threads, but each scope pays the
//!   OS spawn cost (~100 µs per helper), which dominates small batches.
//! * [`Pool::persistent`] keeps a crew of parked helper threads alive for
//!   the pool's lifetime and wakes them per scope over a condvar — the
//!   per-scope spawn count drops to zero (reported in
//!   [`ScopeReport::spawns`]), which is the knob the streaming samplers
//!   use when mini-batches are too small to amortize per-scope spawning.
//!
//! Safety of the persistent crew: the caller publishes a type-erased
//! pointer to the [`Scope`] under the crew mutex, helpers register
//! themselves (`working += 1`) under that same mutex before dereferencing
//! it, and the caller blocks until the job is retracted **and** `working`
//! is back to zero before the scope frame is allowed to unwind — so no
//! helper can touch the scope after it dies. Task panics are caught on
//! whichever worker runs them and resume on the caller once the scope is
//! quiescent, leaving crew threads alive.

use std::any::Any;
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use reservoir_obs::LazyCounter;

/// Registry view of the per-scope `steals` tally (slow path only: a
/// worker popping its own queue never touches it).
static POOL_STEALS: LazyCounter = LazyCounter::new(
    "pool_steals_total",
    "tasks stolen from another worker's deque (all scopes, process-wide)",
);
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A task queued inside a scope; receives the scope so it can spawn more.
type Task<'scope> = Box<dyn FnOnce(&Scope<'scope>) + Send + 'scope>;

/// What one [`Pool::scope`] execution did.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ScopeReport {
    /// Tasks executed to completion.
    pub tasks: u64,
    /// Tasks a worker took from another worker's deque.
    pub steals: u64,
    /// OS threads spawned for this scope: `threads − 1` on a per-scope
    /// pool, 0 on a persistent crew (its helpers were spawned once at
    /// [`Pool::persistent`] time).
    pub spawns: u64,
    /// Seconds each worker spent executing tasks (index = worker id; the
    /// calling thread is worker 0). Idle spinning is not counted.
    pub worker_busy_s: Vec<f64>,
}

impl ScopeReport {
    /// The busiest worker's task-execution seconds (the critical path of
    /// the parallel region).
    pub fn max_busy_s(&self) -> f64 {
        self.worker_busy_s.iter().copied().fold(0.0, f64::max)
    }

    /// Total task-execution seconds across all workers (CPU seconds).
    pub fn total_busy_s(&self) -> f64 {
        self.worker_busy_s.iter().sum()
    }
}

/// The execution context of one [`Pool::scope`] call. Tasks registered
/// with [`Scope::spawn`] run exactly once, on some worker of the scope.
pub struct Scope<'scope> {
    queues: Box<[Mutex<VecDeque<Task<'scope>>>]>,
    /// Tasks queued or running, not yet finished.
    pending: AtomicUsize,
    /// Round-robin cursor for queue assignment at spawn time.
    next: AtomicUsize,
    steals: AtomicU64,
    executed: AtomicU64,
    /// Set when a task panicked: the other workers stop taking tasks.
    panicked: AtomicBool,
    /// First caught panic payload; resumed on the caller once the scope
    /// is quiescent.
    panic_payload: Mutex<Option<Box<dyn Any + Send>>>,
    busy_s: Box<[Mutex<f64>]>,
}

/// Decrements `pending` when a task finishes — including by panic, where
/// it also poisons the scope so the remaining workers exit.
struct TaskGuard<'a, 'scope> {
    scope: &'a Scope<'scope>,
}

impl Drop for TaskGuard<'_, '_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.scope.panicked.store(true, Ordering::SeqCst);
        }
        self.scope.pending.fetch_sub(1, Ordering::SeqCst);
    }
}

impl<'scope> Scope<'scope> {
    fn new(workers: usize) -> Self {
        Scope {
            queues: (0..workers)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            pending: AtomicUsize::new(0),
            next: AtomicUsize::new(0),
            steals: AtomicU64::new(0),
            executed: AtomicU64::new(0),
            panicked: AtomicBool::new(false),
            panic_payload: Mutex::new(None),
            busy_s: (0..workers)
                .map(|_| Mutex::new(0.0))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
        }
    }

    /// Queue a task; it will run exactly once before the scope returns
    /// (unless another task panics first, which aborts the scope).
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.pending.fetch_add(1, Ordering::SeqCst);
        let w = self.next.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        self.queues[w]
            .lock()
            .expect("pool queue poisoned")
            .push_back(Box::new(f));
    }

    /// Own queue front first; then steal from the *back* of the first
    /// non-empty victim.
    fn pop(&self, me: usize) -> Option<Task<'scope>> {
        if let Some(t) = self.queues[me]
            .lock()
            .expect("pool queue poisoned")
            .pop_front()
        {
            return Some(t);
        }
        let n = self.queues.len();
        for off in 1..n {
            let victim = (me + off) % n;
            if let Some(t) = self.queues[victim]
                .lock()
                .expect("pool queue poisoned")
                .pop_back()
            {
                self.steals.fetch_add(1, Ordering::Relaxed);
                POOL_STEALS.inc();
                return Some(t);
            }
        }
        None
    }

    /// Worker loop: run tasks until none are pending anywhere (or the
    /// scope was poisoned by a panic). Task panics are caught here — the
    /// first payload is stashed for the caller to resume — so the loop
    /// works unchanged on per-scope threads and on persistent crew
    /// threads, which must outlive a panicking scope.
    fn work(&self, me: usize) {
        let mut busy = 0.0f64;
        let mut idle_spins = 0u32;
        loop {
            if self.panicked.load(Ordering::Relaxed) {
                break;
            }
            match self.pop(me) {
                Some(task) => {
                    idle_spins = 0;
                    let start = Instant::now();
                    let guard = TaskGuard { scope: self };
                    let result = std::panic::catch_unwind(AssertUnwindSafe(|| task(self)));
                    drop(guard);
                    if let Err(payload) = result {
                        self.panicked.store(true, Ordering::SeqCst);
                        let mut slot = self.panic_payload.lock().expect("payload slot poisoned");
                        slot.get_or_insert(payload);
                        break;
                    }
                    busy += start.elapsed().as_secs_f64();
                    self.executed.fetch_add(1, Ordering::Relaxed);
                }
                None => {
                    // A running task elsewhere may still spawn more work;
                    // only an all-idle scope with nothing pending is done.
                    if self.pending.load(Ordering::SeqCst) == 0 {
                        break;
                    }
                    idle_spins += 1;
                    if idle_spins > 64 {
                        std::thread::sleep(Duration::from_micros(20));
                    } else {
                        std::thread::yield_now();
                    }
                }
            }
        }
        *self.busy_s[me].lock().expect("busy slot poisoned") += busy;
    }

    fn report(&self) -> ScopeReport {
        ScopeReport {
            tasks: self.executed.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            spawns: 0,
            worker_busy_s: self
                .busy_s
                .iter()
                .map(|m| *m.lock().expect("busy slot poisoned"))
                .collect(),
        }
    }
}

/// The job a persistent crew's helpers run: a type-erased pointer to the
/// live [`Scope`] plus the epoch that distinguishes it from the previous
/// scope. Helpers only dereference the pointer between job publication and
/// retraction, both of which happen under the crew mutex.
#[derive(Clone, Copy)]
struct CrewJob {
    scope: *const (),
    epoch: u64,
}

// The pointer is only handed between threads under the crew's mutex and
// the caller outlives every dereference (see `scope_persistent`).
unsafe impl Send for CrewJob {}

/// State shared between a persistent crew's caller and helper threads.
struct CrewShared {
    state: Mutex<CrewState>,
    /// Wakes helpers when a job is published (or shutdown is requested).
    job_cv: Condvar,
    /// Wakes the caller when the last helper leaves the current job.
    done_cv: Condvar,
}

thread_local! {
    /// Crews this thread is currently executing a scope of (caller or
    /// helper side). A nested `Pool::scope` on the same crew would
    /// deadlock — the inner publish waits for the outer job to drain,
    /// which waits for the nested task to finish — so `scope` consults
    /// this stack and falls back to per-scope helpers for reentrant
    /// calls, matching `Pool::new` semantics.
    static ACTIVE_CREWS: std::cell::RefCell<Vec<*const CrewShared>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Marks `shared` active on this thread for the guard's lifetime.
struct CrewActivation(*const CrewShared);

impl CrewActivation {
    fn enter(shared: &CrewShared) -> CrewActivation {
        let p = shared as *const CrewShared;
        ACTIVE_CREWS.with(|v| v.borrow_mut().push(p));
        CrewActivation(p)
    }

    fn is_active(shared: &CrewShared) -> bool {
        let p = shared as *const CrewShared;
        ACTIVE_CREWS.with(|v| v.borrow().contains(&p))
    }
}

impl Drop for CrewActivation {
    fn drop(&mut self) {
        ACTIVE_CREWS.with(|v| {
            let popped = v.borrow_mut().pop();
            debug_assert_eq!(popped, Some(self.0), "crew activations must nest");
        });
    }
}

struct CrewState {
    job: Option<CrewJob>,
    /// Helpers currently inside the published scope.
    working: usize,
    shutdown: bool,
}

/// The long-lived helper threads of a [`Pool::persistent`] pool. Dropping
/// the last `Pool` clone shuts the crew down and joins every helper.
struct PersistentCrew {
    shared: Arc<CrewShared>,
    handles: Vec<JoinHandle<()>>,
}

impl PersistentCrew {
    /// Spawn `threads − 1` helpers (worker ids `1..threads`).
    fn spawn(threads: usize) -> PersistentCrew {
        let shared = Arc::new(CrewShared {
            state: Mutex::new(CrewState {
                job: None,
                working: 0,
                shutdown: false,
            }),
            job_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (1..threads)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || helper_loop(&shared, w))
            })
            .collect();
        PersistentCrew { shared, handles }
    }
}

impl Drop for PersistentCrew {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("crew state poisoned");
            st.shutdown = true;
        }
        self.shared.job_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// A persistent helper: park on the condvar, register into each published
/// job under the lock, run the scope's worker loop, sign off.
fn helper_loop(shared: &CrewShared, me: usize) {
    let mut last_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().expect("crew state poisoned");
            loop {
                if st.shutdown {
                    return;
                }
                match st.job {
                    Some(job) if job.epoch != last_epoch => {
                        st.working += 1;
                        break job;
                    }
                    _ => st = shared.job_cv.wait(st).expect("crew state poisoned"),
                }
            }
        };
        last_epoch = job.epoch;
        // SAFETY: `working` was incremented under the lock while the job
        // was still published, and the caller cannot leave its scope frame
        // until `working` drops back to zero — the Scope outlives this
        // dereference. The 'static lifetime is a lie confined to this
        // call: `Scope::work` never stores the reference.
        let scope = unsafe { &*(job.scope as *const Scope<'static>) };
        let _active = CrewActivation::enter(shared);
        scope.work(me);
        drop(_active);
        let mut st = shared.state.lock().expect("crew state poisoned");
        st.working -= 1;
        if st.working == 0 {
            shared.done_cv.notify_all();
        }
    }
}

/// A fixed-width scoped thread pool over two worker strategies: per-scope
/// helpers ([`Pool::new`] — spawned through `std::thread::scope` on every
/// [`Pool::scope`] call) or a persistent crew ([`Pool::persistent`] —
/// spawned once, woken per scope, amortizing the spawn cost across
/// batches). `threads == 1` runs everything on the calling thread with no
/// helper threads at all. Cloning a persistent pool shares its crew.
#[derive(Clone)]
pub struct Pool {
    threads: usize,
    crew: Option<Arc<PersistentCrew>>,
    /// Monotone epoch source for crew jobs (shared by clones).
    epoch: Arc<AtomicU64>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.threads)
            .field("persistent", &self.is_persistent())
            .finish()
    }
}

impl Pool {
    /// A pool of `threads` workers (the calling thread counts as one),
    /// spawning helpers per [`Pool::scope`] call.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "a pool needs at least one worker");
        Pool {
            threads,
            crew: None,
            epoch: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A pool of `threads` workers whose `threads − 1` helpers are spawned
    /// now and reused by every [`Pool::scope`] call — the per-scope spawn
    /// count ([`ScopeReport::spawns`]) drops to zero. Prefer this when
    /// scopes are small and frequent (streaming mini-batches); the helpers
    /// sleep on a condvar between scopes.
    pub fn persistent(threads: usize) -> Self {
        assert!(threads >= 1, "a pool needs at least one worker");
        Pool {
            crew: (threads > 1).then(|| Arc::new(PersistentCrew::spawn(threads))),
            threads,
            epoch: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Worker count, including the calling thread.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether this pool reuses a persistent helper crew across scopes.
    pub fn is_persistent(&self) -> bool {
        self.crew.is_some()
    }

    /// Run `f` to register tasks, then execute every task (including tasks
    /// spawned by tasks) on this pool's workers, returning `f`'s result
    /// and the execution report once **all** tasks have finished.
    ///
    /// Unlike `rayon::scope`, the registering closure runs to completion
    /// on the calling thread *before* workers start — the registration
    /// order is the FIFO order of each worker's initial deque.
    ///
    /// A panic in any task propagates out of this call after every worker
    /// has stopped; tasks not yet started are dropped unexecuted. On a
    /// persistent pool the crew survives the panic and serves later
    /// scopes.
    pub fn scope<'env, R>(&self, f: impl FnOnce(&Scope<'env>) -> R) -> (R, ScopeReport) {
        let scope = Scope::new(self.threads);
        let result = f(&scope);
        let mut spawns = 0u64;
        // A scope nested inside a task already running on this crew would
        // deadlock the publish/retract protocol; serve reentrant calls
        // with per-scope helpers instead (same semantics as Pool::new).
        let crew = self
            .crew
            .as_ref()
            .filter(|c| !CrewActivation::is_active(&c.shared));
        if self.threads == 1 {
            scope.work(0);
        } else if let Some(crew) = crew {
            self.run_on_crew(crew, &scope);
        } else {
            spawns = (self.threads - 1) as u64;
            std::thread::scope(|s| {
                let sr = &scope;
                for w in 1..self.threads {
                    s.spawn(move || sr.work(w));
                }
                sr.work(0);
            });
        }
        if let Some(payload) = scope
            .panic_payload
            .lock()
            .expect("payload slot poisoned")
            .take()
        {
            std::panic::resume_unwind(payload);
        }
        let mut report = scope.report();
        report.spawns = spawns;
        (result, report)
    }

    /// Publish `scope` to the persistent crew, work it from the calling
    /// thread too, then retract the job and wait until every helper has
    /// signed off — only then may the scope die.
    fn run_on_crew<'env>(&self, crew: &PersistentCrew, scope: &Scope<'env>) {
        let shared = &crew.shared;
        let _active = CrewActivation::enter(shared);
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        {
            let mut st = shared.state.lock().expect("crew state poisoned");
            // Pool clones share the crew; serialize scopes so one job's
            // pointer can never clobber another's.
            while st.job.is_some() || st.working > 0 {
                st = shared.done_cv.wait(st).expect("crew state poisoned");
            }
            st.job = Some(CrewJob {
                scope: scope as *const Scope<'env> as *const (),
                epoch,
            });
        }
        shared.job_cv.notify_all();
        scope.work(0);
        // The caller's worker loop only returns once no tasks are pending,
        // but helpers may still be inside (or just entering) the scope:
        // retract the job so late wakers skip it, then wait them out.
        let mut st = shared.state.lock().expect("crew state poisoned");
        st.job = None;
        while st.working > 0 {
            st = shared.done_cv.wait(st).expect("crew state poisoned");
        }
        drop(st);
        // A sibling clone may be parked in the pre-publish wait above.
        shared.done_cv.notify_all();
    }

    /// Run `body(chunk_index, chunk_range)` over the `chunk`-sized chunks
    /// of `0..len` (the last chunk may be short), one task per chunk.
    pub fn par_for_chunks<F>(&self, len: usize, chunk: usize, body: F) -> ScopeReport
    where
        F: Fn(usize, Range<usize>) + Sync,
    {
        let body = &body;
        let (_, report) = self.scope(|s| {
            for (i, r) in chunk_ranges(len, chunk).enumerate() {
                s.spawn(move |_| body(i, r));
            }
        });
        report
    }
}

/// Run two closures, `b` on a scoped thread and `a` on the caller, and
/// return both results (`rayon::join`'s shape). A panic in either side
/// propagates.
pub fn join<RA, RB>(a: impl FnOnce() -> RA + Send, b: impl FnOnce() -> RB + Send) -> (RA, RB)
where
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().unwrap_or_else(|p| std::panic::resume_unwind(p));
        (ra, rb)
    })
}

/// The `chunk`-sized chunk ranges of `0..len`, in order; the partition the
/// parallel scan distributes over workers. `len == 0` yields no chunks.
pub fn chunk_ranges(len: usize, chunk: usize) -> impl Iterator<Item = Range<usize>> {
    assert!(chunk >= 1, "chunk size must be at least 1");
    (0..len.div_ceil(chunk)).map(move |i| (i * chunk)..((i + 1) * chunk).min(len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn every_task_runs_and_scope_joins() {
        let pool = Pool::new(4);
        let counter = AtomicU32::new(0);
        let (_, report) = pool.scope(|s| {
            for _ in 0..100 {
                let c = &counter;
                s.spawn(move |_| {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        assert_eq!(report.tasks, 100);
        assert_eq!(report.worker_busy_s.len(), 4);
    }

    #[test]
    fn tasks_can_spawn_tasks() {
        let pool = Pool::new(3);
        let counter = AtomicU32::new(0);
        let (_, report) = pool.scope(|s| {
            let c = &counter;
            for _ in 0..5 {
                s.spawn(move |inner| {
                    c.fetch_add(1, Ordering::SeqCst);
                    inner.spawn(move |_| {
                        c.fetch_add(10, Ordering::SeqCst);
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 55);
        assert_eq!(report.tasks, 10);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = Pool::new(1);
        let mut hits = 0u32;
        {
            let hits_ref = Mutex::new(&mut hits);
            let (_, report) = pool.scope(|s| {
                for _ in 0..7 {
                    let h = &hits_ref;
                    s.spawn(move |_| {
                        **h.lock().unwrap() += 1;
                    });
                }
            });
            assert_eq!(report.steals, 0, "one worker cannot steal");
        }
        assert_eq!(hits, 7);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok".len());
        assert_eq!((a, b), (4, 2));
    }

    #[test]
    fn panics_propagate_out_of_scope() {
        let pool = Pool::new(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|_| panic!("task boom"));
            });
        }));
        assert!(caught.is_err(), "task panic must reach the caller");
        // The pool stays usable afterwards.
        let (_, report) = pool.scope(|s| {
            s.spawn(|_| {});
        });
        assert_eq!(report.tasks, 1);
    }

    #[test]
    fn chunk_ranges_partition_exactly() {
        let ranges: Vec<_> = chunk_ranges(10, 4).collect();
        assert_eq!(ranges, vec![0..4, 4..8, 8..10]);
        assert_eq!(chunk_ranges(0, 4).count(), 0);
        assert_eq!(chunk_ranges(4, 4).collect::<Vec<_>>(), vec![0..4]);
    }

    #[test]
    fn par_for_chunks_covers_every_index_once() {
        let pool = Pool::new(4);
        let len = 1000;
        let marks: Vec<AtomicU32> = (0..len).map(|_| AtomicU32::new(0)).collect();
        let report = pool.par_for_chunks(len, 64, |_, range| {
            for i in range {
                marks[i].fetch_add(1, Ordering::SeqCst);
            }
        });
        assert!(marks.iter().all(|m| m.load(Ordering::SeqCst) == 1));
        assert_eq!(report.tasks as usize, len.div_ceil(64));
    }

    #[test]
    fn per_scope_pool_reports_spawns_persistent_reports_none() {
        let per_scope = Pool::new(3);
        let (_, r) = per_scope.scope(|s| s.spawn(|_| {}));
        assert_eq!(r.spawns, 2, "per-scope pool spawns threads − 1 helpers");
        let persistent = Pool::persistent(3);
        assert!(persistent.is_persistent());
        for _ in 0..4 {
            let (_, r) = persistent.scope(|s| s.spawn(|_| {}));
            assert_eq!(r.spawns, 0, "crew helpers are reused, never respawned");
        }
        let single = Pool::new(1);
        let (_, r) = single.scope(|s| s.spawn(|_| {}));
        assert_eq!(r.spawns, 0);
    }

    #[test]
    fn persistent_crew_runs_every_task_across_many_scopes() {
        // Tasks must borrow the caller's stack exactly like the per-scope
        // pool — the unsafe pointer hand-off may not lose or repeat work.
        let pool = Pool::persistent(4);
        for round in 0..50u32 {
            let counter = AtomicU32::new(0);
            let tasks = 1 + (round % 13);
            let (_, report) = pool.scope(|s| {
                for _ in 0..tasks {
                    let c = &counter;
                    s.spawn(move |_| {
                        c.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
            assert_eq!(counter.load(Ordering::SeqCst), tasks);
            assert_eq!(report.tasks, tasks as u64);
            assert_eq!(report.worker_busy_s.len(), 4);
        }
    }

    #[test]
    fn persistent_crew_survives_task_panics() {
        let pool = Pool::persistent(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|_| panic!("crew task boom"));
            });
        }));
        assert!(caught.is_err(), "task panic must reach the caller");
        // The crew threads are still alive and serving.
        let counter = AtomicU32::new(0);
        let (_, report) = pool.scope(|s| {
            for _ in 0..10 {
                let c = &counter;
                s.spawn(move |_| {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 10);
        assert_eq!(report.tasks, 10);
    }

    #[test]
    fn reentrant_scope_on_a_persistent_pool_falls_back_instead_of_deadlocking() {
        // A task that opens another scope on (a clone of) its own crew
        // must be served by per-scope helpers, not wedge the crew.
        let pool = Pool::persistent(2);
        let inner_pool = pool.clone();
        let hits = AtomicU32::new(0);
        let (_, outer) = pool.scope(|s| {
            let h = &hits;
            let q = &inner_pool;
            s.spawn(move |_| {
                let (_, inner) = q.scope(|inner_s| {
                    for _ in 0..5 {
                        inner_s.spawn(move |_| {
                            h.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                });
                assert_eq!(inner.tasks, 5);
                assert_eq!(inner.spawns, 1, "reentrant scope uses per-scope helpers");
                h.fetch_add(100, Ordering::SeqCst);
            });
        });
        assert_eq!(hits.load(Ordering::SeqCst), 105);
        assert_eq!(outer.tasks, 1);
        // The crew still serves non-reentrant scopes afterwards.
        let (_, after) = pool.scope(|s| s.spawn(|_| {}));
        assert_eq!(after.spawns, 0);
    }

    #[test]
    fn cloned_persistent_pools_share_one_crew() {
        let a = Pool::persistent(3);
        let b = a.clone();
        let hits = AtomicU32::new(0);
        let ha = &hits;
        // Serialized scopes from two clones must both run fine.
        a.scope(|s| {
            s.spawn(move |_| {
                ha.fetch_add(1, Ordering::SeqCst);
            })
        });
        b.scope(|s| {
            s.spawn(move |_| {
                ha.fetch_add(1, Ordering::SeqCst);
            })
        });
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }
}
