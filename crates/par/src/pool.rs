//! A scoped work-stealing thread pool: the `rayon` API subset the
//! workspace needs, vendored dev-shim-style (the build environment has no
//! crates.io access).
//!
//! Design: [`Pool::scope`] collects tasks into per-worker FIFO deques
//! (round-robin at spawn time), then runs them on `threads` workers — the
//! calling thread plus `threads − 1` `std::thread::scope` threads, so
//! tasks may borrow the caller's stack. A worker pops its own deque from
//! the front and, when dry, **steals from the back** of a victim's deque;
//! steals are counted and reported. Tasks may spawn further tasks (they
//! receive the [`Scope`]); the scope returns only when every task has
//! finished. A panicking task poisons the scope — the other workers bail
//! out and the panic resumes on the caller once all workers have joined
//! (the `std::thread::scope` contract).

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A task queued inside a scope; receives the scope so it can spawn more.
type Task<'scope> = Box<dyn FnOnce(&Scope<'scope>) + Send + 'scope>;

/// What one [`Pool::scope`] execution did.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ScopeReport {
    /// Tasks executed to completion.
    pub tasks: u64,
    /// Tasks a worker took from another worker's deque.
    pub steals: u64,
    /// Seconds each worker spent executing tasks (index = worker id; the
    /// calling thread is worker 0). Idle spinning is not counted.
    pub worker_busy_s: Vec<f64>,
}

impl ScopeReport {
    /// The busiest worker's task-execution seconds (the critical path of
    /// the parallel region).
    pub fn max_busy_s(&self) -> f64 {
        self.worker_busy_s.iter().copied().fold(0.0, f64::max)
    }

    /// Total task-execution seconds across all workers (CPU seconds).
    pub fn total_busy_s(&self) -> f64 {
        self.worker_busy_s.iter().sum()
    }
}

/// The execution context of one [`Pool::scope`] call. Tasks registered
/// with [`Scope::spawn`] run exactly once, on some worker of the scope.
pub struct Scope<'scope> {
    queues: Box<[Mutex<VecDeque<Task<'scope>>>]>,
    /// Tasks queued or running, not yet finished.
    pending: AtomicUsize,
    /// Round-robin cursor for queue assignment at spawn time.
    next: AtomicUsize,
    steals: AtomicU64,
    executed: AtomicU64,
    /// Set when a task panicked: the other workers stop taking tasks.
    panicked: AtomicBool,
    busy_s: Box<[Mutex<f64>]>,
}

/// Decrements `pending` when a task finishes — including by panic, where
/// it also poisons the scope so the remaining workers exit.
struct TaskGuard<'a, 'scope> {
    scope: &'a Scope<'scope>,
}

impl Drop for TaskGuard<'_, '_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.scope.panicked.store(true, Ordering::SeqCst);
        }
        self.scope.pending.fetch_sub(1, Ordering::SeqCst);
    }
}

impl<'scope> Scope<'scope> {
    fn new(workers: usize) -> Self {
        Scope {
            queues: (0..workers)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            pending: AtomicUsize::new(0),
            next: AtomicUsize::new(0),
            steals: AtomicU64::new(0),
            executed: AtomicU64::new(0),
            panicked: AtomicBool::new(false),
            busy_s: (0..workers)
                .map(|_| Mutex::new(0.0))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
        }
    }

    /// Queue a task; it will run exactly once before the scope returns
    /// (unless another task panics first, which aborts the scope).
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.pending.fetch_add(1, Ordering::SeqCst);
        let w = self.next.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        self.queues[w]
            .lock()
            .expect("pool queue poisoned")
            .push_back(Box::new(f));
    }

    /// Own queue front first; then steal from the *back* of the first
    /// non-empty victim.
    fn pop(&self, me: usize) -> Option<Task<'scope>> {
        if let Some(t) = self.queues[me]
            .lock()
            .expect("pool queue poisoned")
            .pop_front()
        {
            return Some(t);
        }
        let n = self.queues.len();
        for off in 1..n {
            let victim = (me + off) % n;
            if let Some(t) = self.queues[victim]
                .lock()
                .expect("pool queue poisoned")
                .pop_back()
            {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(t);
            }
        }
        None
    }

    /// Worker loop: run tasks until none are pending anywhere (or the
    /// scope was poisoned by a panic).
    fn work(&self, me: usize) {
        let mut busy = 0.0f64;
        let mut idle_spins = 0u32;
        loop {
            if self.panicked.load(Ordering::Relaxed) {
                break;
            }
            match self.pop(me) {
                Some(task) => {
                    idle_spins = 0;
                    let start = Instant::now();
                    let guard = TaskGuard { scope: self };
                    task(self);
                    drop(guard);
                    busy += start.elapsed().as_secs_f64();
                    self.executed.fetch_add(1, Ordering::Relaxed);
                }
                None => {
                    // A running task elsewhere may still spawn more work;
                    // only an all-idle scope with nothing pending is done.
                    if self.pending.load(Ordering::SeqCst) == 0 {
                        break;
                    }
                    idle_spins += 1;
                    if idle_spins > 64 {
                        std::thread::sleep(Duration::from_micros(20));
                    } else {
                        std::thread::yield_now();
                    }
                }
            }
        }
        *self.busy_s[me].lock().expect("busy slot poisoned") += busy;
    }

    fn report(&self) -> ScopeReport {
        ScopeReport {
            tasks: self.executed.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            worker_busy_s: self
                .busy_s
                .iter()
                .map(|m| *m.lock().expect("busy slot poisoned"))
                .collect(),
        }
    }
}

/// A fixed-width scoped thread pool. Cheap to construct (workers are
/// spawned per [`Pool::scope`] call through `std::thread::scope`, so tasks
/// may borrow the caller's stack); `threads == 1` runs everything on the
/// calling thread with no spawning at all.
#[derive(Clone, Debug)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool of `threads` workers (the calling thread counts as one).
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "a pool needs at least one worker");
        Pool { threads }
    }

    /// Worker count, including the calling thread.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `f` to register tasks, then execute every task (including tasks
    /// spawned by tasks) on this pool's workers, returning `f`'s result
    /// and the execution report once **all** tasks have finished.
    ///
    /// Unlike `rayon::scope`, the registering closure runs to completion
    /// on the calling thread *before* workers start — the registration
    /// order is the FIFO order of each worker's initial deque.
    ///
    /// A panic in any task propagates out of this call after every worker
    /// has stopped; tasks not yet started are dropped unexecuted.
    pub fn scope<'env, R>(&self, f: impl FnOnce(&Scope<'env>) -> R) -> (R, ScopeReport) {
        let scope = Scope::new(self.threads);
        let result = f(&scope);
        if self.threads == 1 {
            scope.work(0);
        } else {
            std::thread::scope(|s| {
                let sr = &scope;
                for w in 1..self.threads {
                    s.spawn(move || sr.work(w));
                }
                sr.work(0);
            });
        }
        (result, scope.report())
    }

    /// Run `body(chunk_index, chunk_range)` over the `chunk`-sized chunks
    /// of `0..len` (the last chunk may be short), one task per chunk.
    pub fn par_for_chunks<F>(&self, len: usize, chunk: usize, body: F) -> ScopeReport
    where
        F: Fn(usize, Range<usize>) + Sync,
    {
        let body = &body;
        let (_, report) = self.scope(|s| {
            for (i, r) in chunk_ranges(len, chunk).enumerate() {
                s.spawn(move |_| body(i, r));
            }
        });
        report
    }
}

/// Run two closures, `b` on a scoped thread and `a` on the caller, and
/// return both results (`rayon::join`'s shape). A panic in either side
/// propagates.
pub fn join<RA, RB>(a: impl FnOnce() -> RA + Send, b: impl FnOnce() -> RB + Send) -> (RA, RB)
where
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().unwrap_or_else(|p| std::panic::resume_unwind(p));
        (ra, rb)
    })
}

/// The `chunk`-sized chunk ranges of `0..len`, in order; the partition the
/// parallel scan distributes over workers. `len == 0` yields no chunks.
pub fn chunk_ranges(len: usize, chunk: usize) -> impl Iterator<Item = Range<usize>> {
    assert!(chunk >= 1, "chunk size must be at least 1");
    (0..len.div_ceil(chunk)).map(move |i| (i * chunk)..((i + 1) * chunk).min(len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn every_task_runs_and_scope_joins() {
        let pool = Pool::new(4);
        let counter = AtomicU32::new(0);
        let (_, report) = pool.scope(|s| {
            for _ in 0..100 {
                let c = &counter;
                s.spawn(move |_| {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        assert_eq!(report.tasks, 100);
        assert_eq!(report.worker_busy_s.len(), 4);
    }

    #[test]
    fn tasks_can_spawn_tasks() {
        let pool = Pool::new(3);
        let counter = AtomicU32::new(0);
        let (_, report) = pool.scope(|s| {
            let c = &counter;
            for _ in 0..5 {
                s.spawn(move |inner| {
                    c.fetch_add(1, Ordering::SeqCst);
                    inner.spawn(move |_| {
                        c.fetch_add(10, Ordering::SeqCst);
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 55);
        assert_eq!(report.tasks, 10);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = Pool::new(1);
        let mut hits = 0u32;
        {
            let hits_ref = Mutex::new(&mut hits);
            let (_, report) = pool.scope(|s| {
                for _ in 0..7 {
                    let h = &hits_ref;
                    s.spawn(move |_| {
                        **h.lock().unwrap() += 1;
                    });
                }
            });
            assert_eq!(report.steals, 0, "one worker cannot steal");
        }
        assert_eq!(hits, 7);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok".len());
        assert_eq!((a, b), (4, 2));
    }

    #[test]
    fn panics_propagate_out_of_scope() {
        let pool = Pool::new(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|_| panic!("task boom"));
            });
        }));
        assert!(caught.is_err(), "task panic must reach the caller");
        // The pool stays usable afterwards.
        let (_, report) = pool.scope(|s| {
            s.spawn(|_| {});
        });
        assert_eq!(report.tasks, 1);
    }

    #[test]
    fn chunk_ranges_partition_exactly() {
        let ranges: Vec<_> = chunk_ranges(10, 4).collect();
        assert_eq!(ranges, vec![0..4, 4..8, 8..10]);
        assert_eq!(chunk_ranges(0, 4).count(), 0);
        assert_eq!(chunk_ranges(4, 4).collect::<Vec<_>>(), vec![0..4]);
    }

    #[test]
    fn par_for_chunks_covers_every_index_once() {
        let pool = Pool::new(4);
        let len = 1000;
        let marks: Vec<AtomicU32> = (0..len).map(|_| AtomicU32::new(0)).collect();
        let report = pool.par_for_chunks(len, 64, |_, range| {
            for i in range {
                marks[i].fetch_add(1, Ordering::SeqCst);
            }
        });
        assert!(marks.iter().all(|m| m.load(Ordering::SeqCst) == 1));
        assert_eq!(report.tasks as usize, len.div_ceil(64));
    }
}
