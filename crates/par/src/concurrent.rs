//! The shared-tree parallel local reservoir: every scan worker inserts
//! its surviving candidates **directly into one concurrent B+ tree**
//! ([`OlcTree`], seqlock-based optimistic lock coupling) instead of
//! buffering them for [`ParLocalReservoir`]'s sequential merge epilogue.
//!
//! ## What changes vs the epilogue mode — and what must not
//!
//! The chunk geometry, the per-`(seed, batch, chunk)` RNG streams, and the
//! relaxed shared-threshold snapshot are *identical* to the epilogue mode
//! (the kernels are literally shared — see [`crate::reservoir::ScanSink`]).
//! Randomness is consumed per chunk in a fixed order, so the **candidate
//! multiset** a batch produces is a pure function of `(seed, batch
//! sequence, chunk size)` — independent of thread count, steal order, and
//! of which reservoir mode runs the scan. Only the *route* of a candidate
//! into the tree differs: the epilogue inserts buffered candidates
//! sequentially after the scan scope joins; here workers race their
//! inserts through the seqlock protocol while the scan is still running.
//! Tree-internal insertion order is therefore nondeterministic — but a set
//! is a set: after the growing-mode re-prune to the `cap` smallest keys,
//! both modes hold exactly the same entries, which is what the
//! `engine_equivalence` determinism grid pins.
//!
//! ## Growing mode
//!
//! Growing-mode chunks still draw into a chunk-local buffer first
//! ([`crate::reservoir::grow_chunk`] unchanged): the spill-prune needs
//! random access to the chunk's own candidates to publish its `cap`-th
//! smallest key into the shared bound, and batching the survivors keeps
//! the shared tree out of the per-item hot loop. Each worker then pushes
//! its chunk's survivors into the shared tree *inside the scan scope* —
//! concurrently with other chunks scanning and inserting — and the
//! post-scope epilogue shrinks to a `cap` re-prune plus the sequential
//! subtree-size refresh the selection queries need.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use reservoir_btree::{NodePool, OlcStats, OlcTree, SampleKey};
use reservoir_rng::{SeedSequence, StreamKind};
use reservoir_stream::Item;

use crate::pool::{chunk_ranges, Pool};
use crate::reservoir::{
    grow_chunk, scan_chunk_uniform, scan_chunk_weighted, ChunkOut, ParScanStats, ScanSink,
    BATCH_STREAM, CHUNK_STREAM, DEFAULT_CHUNK_ITEMS,
};

/// Pending inserts a worker batches up before descending (leaf-affinity
/// mode): sorting this many candidates groups same-leaf keys into
/// consecutive descents, so hot leaves are hit in runs instead of being
/// re-raced from scratch by every survivor.
const MICRO_BATCH: usize = 128;

/// A [`ScanSink`] that routes each survivor into the shared concurrent
/// tree, counting locally and flushing the counters into the scan's
/// shared totals when the chunk ends. With `affinity` set (the default),
/// survivors are micro-batched and key-sorted before descending; the
/// insertion *order* into the tree changes, the inserted *set* —
/// and therefore the fixed-seed sample — does not.
struct DirectSink<'a> {
    tree: &'a OlcTree,
    affinity: bool,
    pending: Vec<(SampleKey, f64)>,
    inserted: u64,
    jumps: u64,
}

impl DirectSink<'_> {
    fn new(tree: &OlcTree, affinity: bool) -> DirectSink<'_> {
        DirectSink {
            tree,
            affinity,
            pending: Vec::new(),
            inserted: 0,
            jumps: 0,
        }
    }

    /// Key-sort and insert the pending micro-batch. Consecutive inserts
    /// then walk the same root-to-leaf path while it is cache-hot, and
    /// same-leaf conflicts serialize in key order instead of thrashing.
    fn flush(&mut self) {
        self.pending.sort_unstable_by_key(|a| a.0);
        for (key, weight) in self.pending.drain(..) {
            self.tree.insert(key, weight);
        }
    }
}

impl ScanSink for DirectSink<'_> {
    fn emit(&mut self, key: SampleKey, weight: f64) {
        self.inserted += 1;
        if self.affinity {
            self.pending.push((key, weight));
            if self.pending.len() >= MICRO_BATCH {
                self.flush();
            }
        } else {
            self.tree.insert(key, weight);
        }
    }

    fn jump(&mut self) {
        self.jumps += 1;
    }
}

/// [`ParLocalReservoir`]'s shared-tree sibling: same chunked scans on the
/// same [`Pool`], same sampling law and fixed-seed candidate multiset, but
/// candidates go into one [`OlcTree`] concurrently instead of through a
/// sequential merge epilogue. Node degree is fixed at
/// [`reservoir_btree::OLC_DEGREE`].
///
/// [`ParLocalReservoir`]: crate::ParLocalReservoir
pub struct ConcurrentReservoir {
    cap: usize,
    tree: OlcTree,
    pool: Pool,
    chunk_items: usize,
    seeds: SeedSequence,
    batch_no: u64,
    leaf_affinity: bool,
}

impl ConcurrentReservoir {
    /// Reservoir capped at `cap` entries in growing mode, scans run on
    /// `threads` workers, RNG streams rooted at `seed` (derive it per PE
    /// so PEs stay independent).
    pub fn new(cap: usize, threads: usize, seed: u64) -> Self {
        Self::new_in_pool(cap, threads, seed, Arc::new(NodePool::new()))
    }

    /// [`Self::new`] drawing node storage from `pool` from the start —
    /// the fleet constructor's path: no transient private pool is built
    /// and discarded, so constructing S reservoirs on one shared pool
    /// costs O(pages) heap allocations, not O(S).
    pub fn new_in_pool(cap: usize, threads: usize, seed: u64, pool: Arc<NodePool>) -> Self {
        assert!(cap >= 1, "reservoir capacity must be at least 1");
        ConcurrentReservoir {
            cap,
            tree: OlcTree::with_pool(pool),
            pool: Pool::new(threads),
            chunk_items: DEFAULT_CHUNK_ITEMS,
            seeds: SeedSequence::new(seed),
            batch_no: 0,
            leaf_affinity: true,
        }
    }

    /// Override the items-per-chunk granularity (testing / benchmarking).
    pub fn with_chunk_items(mut self, chunk_items: usize) -> Self {
        assert!(chunk_items >= 1, "chunks must hold at least one item");
        self.chunk_items = chunk_items;
        self
    }

    /// Borrow node storage from a shared [`NodePool`] instead of a
    /// private one — the multi-tenant lever: a fleet of reservoirs on
    /// one pool costs O(pages) heap allocations, and every rebuild
    /// recycles slots for the other tenants. Must be called before the
    /// first batch (the tree is re-rooted in the new pool).
    pub fn with_node_pool(mut self, pool: Arc<NodePool>) -> Self {
        assert!(
            self.tree.is_empty(),
            "the node pool must be chosen before the first batch"
        );
        self.tree = OlcTree::with_pool(pool);
        self
    }

    /// Toggle contention-aware insertion (default on): workers
    /// micro-batch pending survivors and insert them in key order, so
    /// same-leaf keys descend consecutively instead of interleaving with
    /// every other worker's traffic. The inserted set — and the sample —
    /// is identical either way.
    pub fn with_leaf_affinity(mut self, on: bool) -> Self {
        self.leaf_affinity = on;
        self
    }

    /// Run the scans on `pool` instead of the default per-scope pool (see
    /// [`Pool::persistent`]). The worker count must match.
    pub fn with_pool(mut self, pool: Pool) -> Self {
        assert_eq!(
            pool.threads(),
            self.pool.threads(),
            "replacement pool must keep the worker count"
        );
        self.pool = pool;
        self
    }

    /// Whether the scans reuse a persistent helper crew.
    pub fn pool_is_persistent(&self) -> bool {
        self.pool.is_persistent()
    }

    /// Worker count the scans run on.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Number of entries currently held.
    pub fn len(&self) -> u64 {
        self.tree.len() as u64
    }

    /// Whether the reservoir holds no entries.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// The shared tree (a `reservoir_select::CandidateSet` for the
    /// distributed selection; sizes are fresh after every `process_*`).
    pub fn tree(&self) -> &OlcTree {
        &self.tree
    }

    /// The tree's cumulative concurrency counters (seqlock retries,
    /// splits) — what the stress suites assert on.
    pub fn tree_stats(&self) -> OlcStats {
        self.tree.stats()
    }

    /// Drop every entry with a key strictly above `t`.
    pub fn prune_above(&mut self, t: &SampleKey) {
        self.tree.prune_above(t);
    }

    /// Remove all entries.
    pub fn clear(&mut self) {
        self.tree.clear();
    }

    /// Account for a mini-batch this reservoir never saw (the sharded
    /// sparse-batch fast path): advances the per-batch RNG stream index
    /// exactly as processing an empty `items` slice would, so a skipped
    /// shard's future samples stay byte-identical to a scanned-empty
    /// one's. O(1) — no scan scope, no RNG draws.
    pub fn note_empty_batch(&mut self) {
        self.batch_no += 1;
    }

    /// Scan a weighted mini-batch; regimes as
    /// [`crate::ParLocalReservoir::process_weighted`].
    pub fn process_weighted(&mut self, items: &[Item], threshold: Option<f64>) -> ParScanStats {
        self.process(items, threshold, false)
    }

    /// Scan a uniform mini-batch; regimes as
    /// [`crate::ParLocalReservoir::process_uniform`].
    pub fn process_uniform(&mut self, items: &[Item], threshold: Option<f64>) -> ParScanStats {
        self.process(items, threshold, true)
    }

    fn process(&mut self, items: &[Item], threshold: Option<f64>, uniform: bool) -> ParScanStats {
        self.batch_no += 1;
        let mut stats = ParScanStats {
            processed: items.len() as u64,
            worker_scan_s: vec![0.0; self.pool.threads()],
            ..ParScanStats::default()
        };
        if items.is_empty() {
            return stats;
        }
        if let Some(t) = threshold {
            debug_assert!(t > 0.0, "threshold must be positive");
        }
        let retries_before = self.tree.stats().retries;

        // Same shared-threshold seeding as the epilogue mode: the fixed
        // global T, or the growing-mode upper bound (pre-batch local
        // threshold at capacity, +∞ otherwise).
        let shared = AtomicU64::new(
            match threshold {
                Some(t) => t,
                None if self.tree.len() >= self.cap => self.tree.max().expect("at capacity").0.key,
                None => f64::INFINITY,
            }
            .to_bits(),
        );
        let inserted = AtomicU64::new(0);
        let jumps = AtomicU64::new(0);

        let nchunks = items.len().div_ceil(self.chunk_items);
        let batch_seeds = SeedSequence::new(
            self.seeds
                .seed_for(self.batch_no as usize, StreamKind::Custom(BATCH_STREAM)),
        );
        let growing = threshold.is_none();
        let cap = self.cap;
        let tree = &self.tree;
        let affinity = self.leaf_affinity;

        let (_, report) = self.pool.scope(|s| {
            for (c, range) in chunk_ranges(items.len(), self.chunk_items).enumerate() {
                let shared = &shared;
                let inserted = &inserted;
                let jumps = &jumps;
                let chunk = &items[range];
                s.spawn(move |_| {
                    let mut rng = batch_seeds.rng_for(c, StreamKind::Custom(CHUNK_STREAM));
                    if growing {
                        // Chunk-local draw + spill-prune (identical RNG
                        // consumption and shared-bound publishes as the
                        // epilogue mode), then the survivors race into the
                        // shared tree while other chunks still scan.
                        let mut out = ChunkOut::default();
                        grow_chunk(chunk, cap, shared, uniform, &mut rng, &mut out);
                        jumps.fetch_add(out.jumps, Ordering::Relaxed);
                        inserted.fetch_add(out.candidates.len() as u64, Ordering::Relaxed);
                        let mut candidates = out.candidates;
                        if affinity {
                            // Same set, leaf-affine order (see DirectSink).
                            candidates.sort_unstable_by_key(|a| a.0);
                        }
                        for (key, weight) in candidates {
                            tree.insert(key, weight);
                        }
                    } else {
                        let t = f64::from_bits(shared.load(Ordering::Relaxed));
                        let mut sink = DirectSink::new(tree, affinity);
                        if uniform {
                            scan_chunk_uniform(chunk, t, &mut rng, &mut sink);
                        } else {
                            scan_chunk_weighted(chunk, t, &mut rng, &mut sink);
                        }
                        sink.flush();
                        jumps.fetch_add(sink.jumps, Ordering::Relaxed);
                        inserted.fetch_add(sink.inserted, Ordering::Relaxed);
                    }
                });
            }
        });

        // Sequential tail: the growing-mode re-prune to the cap smallest
        // of the merged multiset (same set the epilogue mode ends with),
        // plus the subtree-size refresh the rank/select queries need.
        let t0 = Instant::now();
        if growing && self.tree.len() > self.cap {
            self.tree.truncate_to(self.cap);
        }
        self.tree.refresh_sizes();
        stats.merge_s = t0.elapsed().as_secs_f64();
        stats.inserted = inserted.load(Ordering::Relaxed);
        stats.jumps = jumps.load(Ordering::Relaxed);
        stats.chunks = nchunks as u64;
        stats.steals = report.steals;
        stats.spawns = report.spawns;
        stats.worker_scan_s = report.worker_busy_s;
        stats.retries = self.tree.stats().retries - retries_before;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(n: u64, weight: impl Fn(u64) -> f64) -> Vec<Item> {
        (0..n).map(|i| Item::new(i, weight(i))).collect()
    }

    fn ids(r: &ConcurrentReservoir) -> Vec<u64> {
        let mut v: Vec<u64> = r.tree().entries().iter().map(|(k, _)| k.id).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn threshold_scan_keys_below_threshold_and_stats_consistent() {
        let mut r = ConcurrentReservoir::new(8, 3, 1).with_chunk_items(512);
        let t = 0.01;
        let stats = r.process_weighted(&batch(10_000, |_| 1.0), Some(t));
        assert_eq!(stats.processed, 10_000);
        assert_eq!(stats.inserted, r.len());
        assert_eq!(stats.chunks, 20);
        assert_eq!(stats.worker_scan_s.len(), 3);
        let mut ok = true;
        r.tree().for_each(|k, _| ok &= k.key <= t);
        assert!(ok);
    }

    #[test]
    fn matches_epilogue_mode_candidates_at_every_thread_count() {
        // The tentpole invariant, at unit scope: same seed ⇒ the same
        // reservoir as ParLocalReservoir, for every thread count, across
        // growing, threshold, and uniform batches.
        let epilogue = {
            let mut r = crate::ParLocalReservoir::new(50, 32, 4, 99).with_chunk_items(256);
            r.process_weighted(&batch(3_000, |i| 1.0 + (i % 7) as f64), None);
            let t = r.tree().max().unwrap().0.key;
            r.process_weighted(&batch(5_000, |i| 1.0 + (i % 5) as f64), Some(t));
            r.process_uniform(&batch(2_000, |_| 1.0), Some(0.02));
            let mut v: Vec<(u64, u64)> = r
                .tree()
                .iter()
                .map(|(k, _)| (k.key.to_bits(), k.id))
                .collect();
            v.sort_unstable();
            v
        };
        for threads in [1, 2, 4, 8] {
            let mut r = ConcurrentReservoir::new(50, threads, 99).with_chunk_items(256);
            r.process_weighted(&batch(3_000, |i| 1.0 + (i % 7) as f64), None);
            let t = r.tree().max().unwrap().0.key;
            r.process_weighted(&batch(5_000, |i| 1.0 + (i % 5) as f64), Some(t));
            r.process_uniform(&batch(2_000, |_| 1.0), Some(0.02));
            let mut v: Vec<(u64, u64)> = r
                .tree()
                .entries()
                .iter()
                .map(|(k, _)| (k.key.to_bits(), k.id))
                .collect();
            v.sort_unstable();
            assert_eq!(v, epilogue, "diverged at {threads} threads");
            r.tree().check_consistency().unwrap();
        }
    }

    #[test]
    fn growing_mode_keeps_cap_smallest() {
        let mut r = ConcurrentReservoir::new(50, 4, 3).with_chunk_items(300);
        let stats = r.process_weighted(&batch(5_000, |i| 1.0 + (i % 7) as f64), None);
        assert_eq!(r.len(), 50);
        assert_eq!(stats.processed, 5_000);
        assert!(stats.inserted < 3_000, "{}", stats.inserted);
        r.tree().check_consistency().unwrap();
    }

    #[test]
    fn persistent_pool_same_sample_zero_spawns() {
        let run = |persistent: bool| {
            let mut r = ConcurrentReservoir::new(50, 4, 99).with_chunk_items(256);
            if persistent {
                r = r.with_pool(Pool::persistent(4));
            }
            r.process_weighted(&batch(3_000, |i| 1.0 + (i % 7) as f64), None);
            let t = r.tree().max().unwrap().0.key;
            let stats = r.process_weighted(&batch(5_000, |i| 1.0 + (i % 5) as f64), Some(t));
            (ids(&r), stats.spawns)
        };
        let (per_scope_ids, per_scope_spawns) = run(false);
        let (crew_ids, crew_spawns) = run(true);
        assert_eq!(
            per_scope_ids, crew_ids,
            "worker strategy changed the sample"
        );
        assert_eq!(per_scope_spawns, 3);
        assert_eq!(crew_spawns, 0);
    }

    #[test]
    fn empty_batches_are_noops() {
        let mut r = ConcurrentReservoir::new(10, 4, 7);
        let s1 = r.process_weighted(&[], Some(0.5));
        let s2 = r.process_weighted(&[], None);
        let s3 = r.process_uniform(&[], Some(0.5));
        assert_eq!(s1.inserted + s2.inserted + s3.inserted, 0);
        assert!(r.is_empty());
        assert_eq!(s1.chunks, 0);
    }

    #[test]
    fn leaf_affinity_off_and_shared_pool_never_change_the_sample() {
        let run = |affinity: bool, shared_pool: bool| {
            let mut r = ConcurrentReservoir::new(50, 4, 99)
                .with_chunk_items(256)
                .with_leaf_affinity(affinity);
            if shared_pool {
                r = r.with_node_pool(Arc::new(NodePool::new()));
            }
            r.process_weighted(&batch(3_000, |i| 1.0 + (i % 7) as f64), None);
            let t = r.tree().max().unwrap().0.key;
            r.process_weighted(&batch(5_000, |i| 1.0 + (i % 5) as f64), Some(t));
            r.tree().check_consistency().unwrap();
            ids(&r)
        };
        let reference = run(true, false);
        assert_eq!(run(false, false), reference, "affinity changed the sample");
        assert_eq!(run(true, true), reference, "pooling changed the sample");
        assert_eq!(run(false, true), reference);
    }

    #[test]
    fn two_reservoirs_share_one_pool() {
        let pool = Arc::new(NodePool::new());
        let mut a = ConcurrentReservoir::new(20, 2, 1).with_node_pool(Arc::clone(&pool));
        let mut b = ConcurrentReservoir::new(20, 2, 2).with_node_pool(Arc::clone(&pool));
        a.process_weighted(&batch(2_000, |_| 1.0), None);
        b.process_weighted(&batch(2_000, |_| 2.0), None);
        assert_eq!(a.len(), 20);
        assert_eq!(b.len(), 20);
        a.tree().check_consistency().unwrap();
        b.tree().check_consistency().unwrap();
        assert_eq!(
            pool.live_slots(),
            a.tree().node_count() + b.tree().node_count()
        );
    }

    #[test]
    fn note_empty_batch_matches_processing_an_empty_slice() {
        let feed = |r: &mut ConcurrentReservoir, skip: bool| {
            r.process_weighted(&batch(2_000, |i| 1.0 + (i % 7) as f64), None);
            if skip {
                r.note_empty_batch();
            } else {
                r.process_weighted(&[], None);
            }
            r.process_weighted(&batch(2_000, |i| 1.0 + (i % 5) as f64), None);
        };
        let mut scanned = ConcurrentReservoir::new(30, 4, 7).with_chunk_items(256);
        feed(&mut scanned, false);
        let mut skipped = ConcurrentReservoir::new(30, 4, 7).with_chunk_items(256);
        feed(&mut skipped, true);
        assert_eq!(
            ids(&scanned),
            ids(&skipped),
            "a noted empty batch must leave the RNG streams exactly where \
             a scanned empty batch would"
        );
    }

    #[test]
    fn prune_above_and_clear() {
        let mut r = ConcurrentReservoir::new(10, 2, 6).with_chunk_items(50);
        r.process_weighted(&batch(200, |_| 1.0), None);
        let entries = r.tree().entries();
        let cut = SampleKey::new(entries[4].0.key, u64::MAX);
        r.prune_above(&cut);
        assert_eq!(r.len(), 5);
        r.clear();
        assert!(r.is_empty());
    }
}
