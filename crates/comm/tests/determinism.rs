//! The threaded collectives must be **deterministic** — identical results
//! across repeated runs with the same inputs, regardless of thread
//! scheduling — and their communication volume must match the binomial-tree
//! O(α log p + βℓ) structure exactly.

use reservoir_comm::{run_threads, Collectives, CommStats, Communicator, CostModel};

/// A deterministic per-rank value for seeding collective inputs.
fn value_for(rank: usize, seed: u64) -> u64 {
    (rank as u64 + 1)
        .wrapping_mul(seed | 1)
        .rotate_left(rank as u32)
}

/// Per-PE outcome of one scripted collective sequence.
type RunOutcome = (u64, Option<u64>, Vec<u64>, Vec<u64>);

#[test]
fn collectives_are_deterministic_across_repeated_runs() {
    for p in [1usize, 2, 3, 5, 8] {
        let run = |seed: u64| -> Vec<RunOutcome> {
            run_threads(p, |comm| {
                let mine = value_for(comm.rank(), seed);
                let bcast = comm.broadcast(p - 1, (comm.rank() == p - 1).then_some(mine));
                let reduced = comm.reduce(0, mine, |a, b| a.wrapping_add(b));
                let gathered = comm.allgather(mine);
                let summed = comm.sum_u64_vec(vec![mine, comm.rank() as u64, 7]);
                (bcast, reduced, gathered, summed)
            })
        };
        for seed in [1u64, 99, 12345] {
            let a = run(seed);
            let b = run(seed);
            let c = run(seed);
            assert_eq!(a, b, "p={p} seed={seed}: repeated run diverged");
            assert_eq!(a, c, "p={p} seed={seed}: third run diverged");
            // And the results are what the collectives promise.
            let expect_sum = (0..p).fold(0u64, |acc, r| acc.wrapping_add(value_for(r, seed)));
            assert!(a.iter().all(|(bc, _, _, _)| *bc == value_for(p - 1, seed)));
            assert_eq!(a[0].1, Some(expect_sum));
            assert!(a[1..].iter().all(|(_, red, _, _)| red.is_none()));
            let expect_gather: Vec<u64> = (0..p).map(|r| value_for(r, seed)).collect();
            assert!(a.iter().all(|(_, _, g, _)| g == &expect_gather));
        }
    }
}

/// Total words over all endpoints of one binomial-tree broadcast or
/// reduction of an `ℓ`-word payload: every non-root node receives the
/// payload exactly once, so `(p − 1) · ℓ` words in `p − 1` messages.
fn stats_for<F>(p: usize, f: F) -> CommStats
where
    F: Fn(&reservoir_comm::ThreadComm) + Sync,
{
    run_threads(p, |comm| {
        f(&comm);
        comm.stats()
    })
    .into_iter()
    .fold(CommStats::default(), CommStats::merged)
}

#[test]
fn broadcast_words_match_binomial_tree_expectation() {
    for p in [2usize, 3, 4, 7, 8, 16] {
        for payload_len in [1usize, 10, 100] {
            let stats = stats_for(p, |comm| {
                let v = (comm.rank() == 0).then(|| vec![7u64; payload_len]);
                let got = comm.broadcast(0, v);
                assert_eq!(got.len(), payload_len);
            });
            let words_per_msg = payload_len as u64 + 1; // Vec framing word
            assert_eq!(stats.messages, p as u64 - 1, "p={p}");
            assert_eq!(
                stats.words,
                (p as u64 - 1) * words_per_msg,
                "p={p} ℓ={words_per_msg}"
            );
        }
    }
}

#[test]
fn reduce_words_match_binomial_tree_expectation() {
    for p in [2usize, 5, 8, 13] {
        let stats = stats_for(p, |comm| {
            comm.reduce(0, comm.rank() as u64, |a, b| a + b);
        });
        assert_eq!(stats.messages, p as u64 - 1, "p={p}");
        assert_eq!(stats.words, p as u64 - 1, "p={p}");
    }
}

#[test]
fn allreduce_words_are_twice_one_tree_pass() {
    // Reduce-then-broadcast: both legs move the bare one-word value along
    // p − 1 tree edges each.
    for p in [2usize, 4, 9] {
        let stats = stats_for(p, |comm| {
            let _ = comm.sum_u64(comm.rank() as u64);
        });
        assert_eq!(stats.messages, 2 * (p as u64 - 1), "p={p}");
        assert_eq!(stats.words, 2 * (p as u64 - 1), "p={p}");
    }
}

#[test]
fn per_batch_volume_is_independent_of_payload_history() {
    // Counters are monotone and exact: running the same collective twice
    // doubles the counts.
    let p = 4;
    let (once, twice) = {
        let one = stats_for(p, |comm| {
            let _ = comm.allgather(comm.rank() as u64);
        });
        let two = stats_for(p, |comm| {
            let _ = comm.allgather(comm.rank() as u64);
            let _ = comm.allgather(comm.rank() as u64);
        });
        (one, two)
    };
    assert_eq!(twice.messages, 2 * once.messages);
    assert_eq!(twice.words, 2 * once.words);
}

#[test]
fn exscan_computes_exclusive_prefix_sums() {
    // Correctness for arbitrary (including non-power-of-two) PE counts,
    // plus determinism across repeated runs.
    for p in [1usize, 2, 3, 5, 6, 8, 13] {
        let run = || -> Vec<(u64, Option<u64>)> {
            run_threads(p, |comm| {
                let mine = value_for(comm.rank(), 42) % 1000;
                (
                    comm.exscan_sum_u64(mine),
                    comm.exscan(mine, |a, b| a.max(b)),
                )
            })
        };
        let a = run();
        assert_eq!(a, run(), "p={p}: exscan nondeterministic");
        let mut prefix = 0u64;
        let mut prefix_max: Option<u64> = None;
        for (rank, (sum, max)) in a.iter().enumerate() {
            let mine = value_for(rank, 42) % 1000;
            assert_eq!(*sum, prefix, "p={p} rank={rank}");
            assert_eq!(*max, prefix_max, "p={p} rank={rank}");
            prefix += mine;
            prefix_max = Some(prefix_max.map_or(mine, |m| m.max(mine)));
        }
    }
}

#[test]
fn exscan_rounds_match_cost_model() {
    // Hillis–Steele: every PE sends at most one message per doubling round,
    // so the maximum per-endpoint message count is ⌈log₂ p⌉ — exactly what
    // CostModel::exscan charges.
    for p in [2usize, 3, 4, 7, 8, 16] {
        let per_pe = run_threads(p, |comm| {
            let _ = comm.exscan_sum_u64(comm.rank() as u64);
            comm.stats().messages
        });
        let max_sends = per_pe.iter().copied().max().expect("nonempty");
        assert_eq!(max_sends, CostModel::tree_rounds(p) as u64, "p={p}");
    }
}

#[test]
fn allgatherv_concatenates_in_rank_order() {
    for p in [1usize, 2, 4, 5] {
        let results = run_threads(p, |comm| {
            // PE r contributes r+1 values tagged with its rank.
            let mine: Vec<u64> = (0..=comm.rank() as u64)
                .map(|i| ((comm.rank() as u64) << 32) | i)
                .collect();
            comm.allgatherv(mine)
        });
        let expect_counts: Vec<u64> = (1..=p as u64).collect();
        let expect_flat: Vec<u64> = (0..p as u64)
            .flat_map(|r| (0..=r).map(move |i| (r << 32) | i))
            .collect();
        for (flat, counts) in &results {
            assert_eq!(counts, &expect_counts, "p={p}");
            assert_eq!(flat, &expect_flat, "p={p}");
        }
    }
}

#[test]
fn latency_rounds_match_cost_model_tree_depth() {
    // The number of sequential rounds the α term charges: a PE sends at
    // most once per broadcast round, so the *maximum per-endpoint message
    // count* of one broadcast is exactly ⌈log₂ p⌉ — the tree depth the
    // CostModel charges.
    for p in [2usize, 3, 4, 8, 13, 16] {
        let per_pe = run_threads(p, |comm| {
            let v = (comm.rank() == 0).then_some(1u64);
            let _ = comm.broadcast(0, v);
            comm.stats().messages
        });
        let max_sends = per_pe.iter().copied().max().expect("nonempty");
        assert_eq!(
            max_sends,
            CostModel::tree_rounds(p) as u64,
            "p={p}: root sends once per tree round"
        );
    }
}
