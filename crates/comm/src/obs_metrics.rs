//! The comm layer's registry names. Measured (`comm_*`) and predicted
//! (`sim_*`) collectives share one naming scheme — per-op launch counters
//! plus payload accounting — so a dashboard can diff the α–β model's
//! predictions against what the threaded runtime actually moved.

use reservoir_obs::{LazyCounter, LazyGauge, LazyHistogram};

pub static COMM_MESSAGES: LazyCounter = LazyCounter::new(
    "comm_messages_total",
    "point-to-point messages sent (all PEs in this process)",
);
pub static COMM_MESSAGE_WORDS: LazyHistogram = LazyHistogram::new(
    "comm_message_words",
    "payload size in 64-bit words per point-to-point message",
);

pub static COMM_BCAST: LazyCounter = LazyCounter::new(
    "comm_bcast_total",
    "broadcast tree passes launched (per PE, summed process-wide)",
);
pub static COMM_REDUCE: LazyCounter = LazyCounter::new(
    "comm_reduce_total",
    "reduce tree passes launched (per PE, summed process-wide)",
);
pub static COMM_GATHER: LazyCounter = LazyCounter::new(
    "comm_gather_total",
    "gather tree passes launched (per PE, summed process-wide)",
);
pub static COMM_EXSCAN: LazyCounter = LazyCounter::new(
    "comm_exscan_total",
    "exscan passes launched (per PE, summed process-wide)",
);
pub static COMM_COLLECTIVE_WORDS: LazyHistogram = LazyHistogram::new(
    "comm_collective_words",
    "local payload size in 64-bit words per collective launch",
);

/// Op codes carried in `TraceKind::Collective` events' `a` payload.
pub const OP_BCAST: u64 = 1;
pub const OP_REDUCE: u64 = 2;
pub const OP_GATHER: u64 = 3;
pub const OP_EXSCAN: u64 = 4;

pub static SIM_ALLREDUCE: LazyCounter = LazyCounter::new(
    "sim_allreduce_total",
    "all-reduces charged to the alpha-beta cost model",
);
pub static SIM_GATHER: LazyCounter = LazyCounter::new(
    "sim_gather_total",
    "gathers charged to the alpha-beta cost model",
);
pub static SIM_EXSCAN: LazyCounter = LazyCounter::new(
    "sim_exscan_total",
    "exscans charged to the alpha-beta cost model",
);
pub static SIM_ALLGATHER: LazyCounter = LazyCounter::new(
    "sim_allgather_total",
    "all-gathers charged to the alpha-beta cost model",
);
pub static SIM_COLLECTIVE_WORDS: LazyCounter = LazyCounter::new(
    "sim_collective_words_total",
    "payload words charged to the alpha-beta cost model",
);
pub static SIM_COLLECTIVE_SECONDS: LazyGauge = LazyGauge::new(
    "sim_collective_seconds",
    "predicted seconds accumulated by the alpha-beta cost model",
);
