//! Message-passing substrate: the library's stand-in for MPI.
//!
//! The paper runs on a 256-node InfiniBand cluster with one MPI rank per
//! core. This crate reproduces the *protocol-level* behaviour of that stack
//! on a single machine:
//!
//! * [`Communicator`] — the abstract endpoint a PE program talks to:
//!   point-to-point `send`/`recv` plus the collectives the algorithms use
//!   (broadcast, reduce, all-reduce, gather, all-gather, barrier). The
//!   collectives are implemented **generically over send/recv** with
//!   binomial trees, so every implementation inherits the same
//!   O(βℓ + α log p) message pattern the paper assumes (Section 3,
//!   "Collective Communication").
//! * [`ThreadComm`] — a real parallel runtime: one OS thread per PE,
//!   `std::sync::mpsc` channels as the interconnect, typed mailboxes with
//!   tag matching. Used by tests, examples and the real-speedup benches.
//! * [`CommStats`] — per-endpoint message/word/round counters, so
//!   experiments can report exact communication volumes.
//! * [`CostModel`] — the α–β (latency/bandwidth) model used by the cluster
//!   simulator to attribute time to communication when the benchmark
//!   emulates thousands of PEs (substitution documented in `DESIGN.md`).

mod collectives;
mod cost;
pub(crate) mod obs_metrics;
mod stats;
mod thread_comm;

pub use collectives::Collectives;
pub use cost::{CostModel, SimTime};
pub use stats::CommStats;
pub use thread_comm::{run_threads, ThreadComm};

use std::any::Any;

/// A payload that can travel between PEs.
///
/// `words()` reports the message size in 64-bit machine words, matching the
/// paper's cost accounting (time `α + βℓ` for `ℓ` machine words).
pub trait Message: Send + 'static {
    /// Size in 64-bit machine words.
    fn words(&self) -> u64;
}

macro_rules! scalar_message {
    ($($t:ty),*) => {$(
        impl Message for $t {
            #[inline]
            fn words(&self) -> u64 { 1 }
        }
    )*};
}
scalar_message!(u8, u16, u32, u64, usize, i32, i64, f32, f64, bool);

impl Message for () {
    fn words(&self) -> u64 {
        0
    }
}

impl<T: Message> Message for Option<T> {
    fn words(&self) -> u64 {
        1 + self.as_ref().map_or(0, Message::words)
    }
}

impl<T: Message> Message for Vec<T> {
    fn words(&self) -> u64 {
        1 + self.iter().map(Message::words).sum::<u64>()
    }
}

impl<A: Message, B: Message> Message for (A, B) {
    fn words(&self) -> u64 {
        self.0.words() + self.1.words()
    }
}

impl<A: Message, B: Message, C: Message> Message for (A, B, C) {
    fn words(&self) -> u64 {
        self.0.words() + self.1.words() + self.2.words()
    }
}

/// One endpoint of a `p`-PE communicator.
///
/// Collectives must be invoked by **all** PEs of the communicator in the
/// same order (the usual MPI contract); they are provided as default
/// methods in terms of `send_raw`/`recv_raw` — see [`collectives`] for the
/// algorithms.
pub trait Communicator {
    /// This PE's rank in `0..size()`.
    fn rank(&self) -> usize;

    /// Number of PEs.
    fn size(&self) -> usize;

    /// Send `msg` to PE `to` under `tag`. Non-blocking (buffered).
    fn send_raw(&self, to: usize, tag: u64, msg: Box<dyn Any + Send>, words: u64);

    /// Receive the message sent by PE `from` under `tag`. Blocking.
    fn recv_raw(&self, from: usize, tag: u64) -> Box<dyn Any + Send>;

    /// Record communication for stats (called by provided methods).
    fn record(&self, messages: u64, words: u64);

    /// A per-endpoint sequence number used to separate successive
    /// collectives' tag spaces. Every call returns a fresh value, and all
    /// PEs observe the same sequence because collectives are globally
    /// ordered.
    fn next_collective_seq(&self) -> u64;

    /// Snapshot of this endpoint's communication statistics.
    fn stats(&self) -> CommStats;

    /// Typed send; counts the message in the stats (and, when
    /// observability is armed, in the process-wide metrics registry).
    fn send<T: Message>(&self, to: usize, tag: u64, msg: T) {
        let words = msg.words();
        self.record(1, words);
        obs_metrics::COMM_MESSAGES.inc();
        obs_metrics::COMM_MESSAGE_WORDS.observe(words);
        self.send_raw(to, tag, Box::new(msg), words);
    }

    /// Typed receive; panics if the arriving payload has a different type.
    fn recv<T: Message>(&self, from: usize, tag: u64) -> T {
        *self
            .recv_raw(from, tag)
            .downcast::<T>()
            .expect("received message of unexpected type")
    }
}
