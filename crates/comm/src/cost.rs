//! The α–β communication cost model used by the cluster simulator.
//!
//! The paper's machine model (Section 3) charges `α + βℓ` for a message of
//! `ℓ` machine words — `α` is the startup latency, `β` the per-word cost —
//! and all collectives run in O(βℓ + α log p). When the benchmark harness
//! emulates more PEs than the laptop has cores, communication time is
//! *charged* through this model instead of measured; the defaults are
//! calibrated to the paper's InfiniBand 4X EDR interconnect.

/// Simulated wall-clock time in seconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, PartialOrd)]
pub struct SimTime(pub f64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0.0);

    pub fn seconds(self) -> f64 {
        self.0
    }
}

impl std::ops::Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl std::iter::Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        SimTime(iter.map(|t| t.0).sum())
    }
}

/// Latency/bandwidth parameters of the simulated interconnect.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Message startup latency in seconds (the paper's α).
    pub alpha: f64,
    /// Per-machine-word (8 byte) transfer time in seconds (the paper's β).
    pub beta: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self::infiniband_edr()
    }
}

impl CostModel {
    /// InfiniBand 4X EDR-like parameters (ForHLR II, the paper's testbed):
    /// ~1.5 µs MPI latency, ~100 Gbit/s ≈ 12 GB/s effective bandwidth.
    pub fn infiniband_edr() -> Self {
        CostModel {
            alpha: 1.5e-6,
            beta: 8.0 / 12.0e9,
        }
    }

    /// Ethernet-like parameters (for ablation: slower network, same CPU).
    pub fn ethernet_10g() -> Self {
        CostModel {
            alpha: 20.0e-6,
            beta: 8.0 / 1.2e9,
        }
    }

    /// Rounds of a binomial tree over `p` PEs.
    #[inline]
    pub fn tree_rounds(p: usize) -> u32 {
        debug_assert!(p > 0);
        usize::BITS - (p - 1).leading_zeros()
    }

    /// One point-to-point message of `words` machine words.
    #[inline]
    pub fn message(&self, words: u64) -> SimTime {
        SimTime(self.alpha + self.beta * words as f64)
    }

    /// Binomial-tree broadcast or reduction of a `words`-word payload:
    /// `⌈log₂ p⌉ · (α + β·words)`.
    #[inline]
    pub fn tree_collective(&self, p: usize, words: u64) -> SimTime {
        let rounds = Self::tree_rounds(p) as f64;
        SimTime(rounds * (self.alpha + self.beta * words as f64))
    }

    /// All-reduce / all-gather built as reduce + broadcast (2 tree passes),
    /// matching [`crate::collectives::Collectives`].
    #[inline]
    pub fn allreduce(&self, p: usize, words: u64) -> SimTime {
        let t = SimTime(2.0 * self.tree_collective(p, words).0);
        charged(&crate::obs_metrics::SIM_ALLREDUCE, words, t);
        t
    }

    /// Gather of `total_words` spread over `p` PEs at a single root: the
    /// root's downlink is the bottleneck (`β·total_words`), plus tree
    /// latency — the paper's O(βpℓ + α log p) gather bound.
    #[inline]
    pub fn gather(&self, p: usize, total_words: u64) -> SimTime {
        let t = SimTime(Self::tree_rounds(p) as f64 * self.alpha + self.beta * total_words as f64);
        charged(&crate::obs_metrics::SIM_GATHER, total_words, t);
        t
    }

    /// Exclusive prefix sum (exscan) of a `words`-word value: Hillis–Steele
    /// recursive doubling, `⌈log₂ p⌉` rounds of one message per PE —
    /// matching [`crate::collectives::Collectives::exscan`].
    #[inline]
    pub fn exscan(&self, p: usize, words: u64) -> SimTime {
        let t = self.tree_collective(p, words);
        charged(&crate::obs_metrics::SIM_EXSCAN, words, t);
        t
    }

    /// All-gather of `total_words` spread over `p` PEs: gather to a root
    /// then broadcast the concatenation — matching
    /// [`crate::collectives::Collectives::allgatherv`].
    #[inline]
    pub fn allgather(&self, p: usize, total_words: u64) -> SimTime {
        // Composed op: the inner `gather` charges its own launch, words
        // and seconds (mirroring how the threaded allgatherv launches a
        // real gather), so this only charges the broadcast half — the
        // payload crosses the wire once per half, exactly as the measured
        // `comm_*` counters see it, and seconds are never double-counted.
        let broadcast = self.tree_collective(p, total_words);
        charged(&crate::obs_metrics::SIM_ALLGATHER, total_words, broadcast);
        self.gather(p, total_words) + broadcast
    }
}

/// Mirror a predicted charge into the `sim_*` metrics namespace so the
/// cost model's accounting is pollable next to the measured `comm_*`
/// counters. One early-out branch when observability is disarmed.
fn charged(counter: &reservoir_obs::LazyCounter, words: u64, t: SimTime) {
    if !reservoir_obs::enabled() {
        return;
    }
    counter.inc();
    crate::obs_metrics::SIM_COLLECTIVE_WORDS.add(words);
    crate::obs_metrics::SIM_COLLECTIVE_SECONDS.add(t.seconds());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_rounds_examples() {
        assert_eq!(CostModel::tree_rounds(1), 0);
        assert_eq!(CostModel::tree_rounds(2), 1);
        assert_eq!(CostModel::tree_rounds(3), 2);
        assert_eq!(CostModel::tree_rounds(4), 2);
        assert_eq!(CostModel::tree_rounds(5), 3);
        assert_eq!(CostModel::tree_rounds(1024), 10);
        assert_eq!(CostModel::tree_rounds(5120), 13);
    }

    #[test]
    fn costs_scale_with_p_and_words() {
        let m = CostModel::infiniband_edr();
        assert!(m.tree_collective(1024, 1) > m.tree_collective(64, 1));
        assert!(m.allreduce(64, 100) > m.tree_collective(64, 100));
        // A big gather is bandwidth-bound: doubling the data roughly
        // doubles the time.
        let g1 = m.gather(256, 1_000_000).0;
        let g2 = m.gather(256, 2_000_000).0;
        assert!(g2 / g1 > 1.9 && g2 / g1 < 2.1);
    }

    #[test]
    fn simtime_arithmetic() {
        let mut t = SimTime(1.0) + SimTime(2.0);
        t += SimTime(0.5);
        assert!((t.seconds() - 3.5).abs() < 1e-12);
        let total: SimTime = [SimTime(1.0), SimTime(2.0)].into_iter().sum();
        assert_eq!(total, SimTime(3.0));
    }

    #[test]
    fn p1_collectives_are_free_of_latency() {
        let m = CostModel::default();
        assert_eq!(m.tree_collective(1, 10), SimTime(0.0));
    }
}
