//! Per-endpoint communication counters.

use std::cell::Cell;

/// A snapshot of communication performed by one PE endpoint.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Point-to-point messages sent (collectives count their constituent
    /// messages).
    pub messages: u64,
    /// Machine words sent.
    pub words: u64,
}

impl CommStats {
    /// Combine two snapshots (e.g., across PEs or phases).
    pub fn merged(self, other: CommStats) -> CommStats {
        CommStats {
            messages: self.messages + other.messages,
            words: self.words + other.words,
        }
    }

    /// Difference since an earlier snapshot of the same endpoint.
    pub fn since(self, earlier: CommStats) -> CommStats {
        CommStats {
            messages: self.messages - earlier.messages,
            words: self.words - earlier.words,
        }
    }
}

/// Interior-mutable counters owned by an endpoint (single-threaded access:
/// each endpoint belongs to exactly one PE thread).
#[derive(Default)]
pub(crate) struct StatsCell {
    messages: Cell<u64>,
    words: Cell<u64>,
}

impl StatsCell {
    pub fn record(&self, messages: u64, words: u64) {
        self.messages.set(self.messages.get() + messages);
        self.words.set(self.words.get() + words);
    }

    pub fn snapshot(&self) -> CommStats {
        CommStats {
            messages: self.messages.get(),
            words: self.words.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let cell = StatsCell::default();
        cell.record(2, 10);
        cell.record(1, 5);
        assert_eq!(
            cell.snapshot(),
            CommStats {
                messages: 3,
                words: 15
            }
        );
    }

    #[test]
    fn merged_and_since() {
        let a = CommStats {
            messages: 3,
            words: 10,
        };
        let b = CommStats {
            messages: 1,
            words: 4,
        };
        assert_eq!(
            a.merged(b),
            CommStats {
                messages: 4,
                words: 14
            }
        );
        assert_eq!(
            a.since(b),
            CommStats {
                messages: 2,
                words: 6
            }
        );
    }
}
