//! Collective operations built generically on point-to-point messages.
//!
//! All collectives use binomial trees (the textbook MPI algorithms), so any
//! [`Communicator`] implementation inherits the O(βℓ + α log p) cost
//! structure the paper assumes. All-reduce and all-gather are composed as
//! reduce-then-broadcast / gather-then-broadcast: 2⌈log₂ p⌉ rounds, which is
//! what the cost model charges.
//!
//! The usual MPI contract applies: every PE of the communicator must call
//! the same collectives in the same order.

use crate::{obs_metrics, Communicator, Message};
use reservoir_obs::{trace, LazyCounter, TraceKind};

const COLL_BIT: u64 = 1 << 63;

fn coll_tag(seq: u64, phase: u64) -> u64 {
    COLL_BIT | (seq << 3) | phase
}

/// Per-primitive launch hook: a per-op counter, the shared payload-words
/// histogram, and one flight-recorder `Collective` event carrying the op
/// code and this PE's local payload words. One early-out branch when
/// observability is disarmed.
fn obs_launch(rank: usize, counter: &LazyCounter, op: u64, words: u64) {
    if !reservoir_obs::enabled() {
        return;
    }
    counter.inc();
    obs_metrics::COMM_COLLECTIVE_WORDS.observe(words);
    trace::emit(rank as u32, TraceKind::Collective, op, words);
}

/// Extension trait providing the collectives; blanket-implemented for every
/// [`Communicator`].
pub trait Collectives: Communicator {
    /// Broadcast from `root`: the root passes `Some(value)`, everyone else
    /// `None`; all PEs return the root's value.
    fn broadcast<T: Message + Clone>(&self, root: usize, value: Option<T>) -> T {
        let (rank, p) = (self.rank(), self.size());
        assert!(root < p, "broadcast root {root} out of range");
        let tag = coll_tag(self.next_collective_seq(), 0);
        let relative = (rank + p - root) % p;
        let mut current: Option<T> = if relative == 0 {
            Some(value.expect("broadcast root must supply a value"))
        } else {
            value
        };
        // Receive from the parent (the PE that differs in our lowest set bit).
        let mut mask = 1usize;
        while mask < p {
            if relative & mask != 0 {
                let src = (rank + p - mask) % p;
                current = Some(self.recv::<T>(src, tag));
                break;
            }
            mask <<= 1;
        }
        // Forward to children in decreasing mask order.
        let v = current.expect("broadcast value present after receive phase");
        obs_launch(
            rank,
            &obs_metrics::COMM_BCAST,
            obs_metrics::OP_BCAST,
            v.words(),
        );
        mask >>= 1;
        while mask > 0 {
            if relative + mask < p {
                let dst = (rank + mask) % p;
                self.send(dst, tag, v.clone());
            }
            mask >>= 1;
        }
        v
    }

    /// Reduce all PEs' values with `op` onto `root`; returns `Some(result)`
    /// there and `None` elsewhere.
    fn reduce<T: Message>(&self, root: usize, value: T, op: impl Fn(T, T) -> T) -> Option<T> {
        let (rank, p) = (self.rank(), self.size());
        assert!(root < p, "reduce root {root} out of range");
        let tag = coll_tag(self.next_collective_seq(), 1);
        obs_launch(
            rank,
            &obs_metrics::COMM_REDUCE,
            obs_metrics::OP_REDUCE,
            value.words(),
        );
        let relative = (rank + p - root) % p;
        let mut acc = value;
        let mut mask = 1usize;
        while mask < p {
            if relative & mask == 0 {
                let src_rel = relative | mask;
                if src_rel < p {
                    let src = (src_rel + root) % p;
                    let incoming = self.recv::<T>(src, tag);
                    acc = op(acc, incoming);
                }
            } else {
                let dst_rel = relative & !mask;
                let dst = (dst_rel + root) % p;
                self.send(dst, tag, acc);
                return None;
            }
            mask <<= 1;
        }
        Some(acc)
    }

    /// All-reduce: every PE returns `op` folded over all PEs' values.
    fn allreduce<T: Message + Clone>(&self, value: T, op: impl Fn(T, T) -> T) -> T {
        let reduced = self.reduce(0, value, op);
        self.broadcast(0, reduced)
    }

    /// Gather every PE's value at `root`, ordered by rank; `Some(vec)` at
    /// the root, `None` elsewhere.
    fn gather<T: Message>(&self, root: usize, value: T) -> Option<Vec<T>> {
        let (rank, p) = (self.rank(), self.size());
        assert!(root < p, "gather root {root} out of range");
        let tag = coll_tag(self.next_collective_seq(), 2);
        obs_launch(
            rank,
            &obs_metrics::COMM_GATHER,
            obs_metrics::OP_GATHER,
            value.words(),
        );
        let relative = (rank + p - root) % p;
        let mut bucket: Vec<(u64, T)> = vec![(rank as u64, value)];
        let mut mask = 1usize;
        while mask < p {
            if relative & mask == 0 {
                let src_rel = relative | mask;
                if src_rel < p {
                    let src = (src_rel + root) % p;
                    let mut incoming = self.recv::<Vec<(u64, T)>>(src, tag);
                    bucket.append(&mut incoming);
                }
            } else {
                let dst_rel = relative & !mask;
                let dst = (dst_rel + root) % p;
                self.send(dst, tag, bucket);
                return None;
            }
            mask <<= 1;
        }
        bucket.sort_by_key(|(r, _)| *r);
        Some(bucket.into_iter().map(|(_, v)| v).collect())
    }

    /// All-gather: every PE returns the rank-ordered vector of all values.
    fn allgather<T: Message + Clone>(&self, value: T) -> Vec<T> {
        let gathered = self.gather(0, value);
        self.broadcast(0, gathered.map(GatheredVec)).0
    }

    /// Exclusive prefix fold over ranks (MPI's `Exscan`): PE `i` returns
    /// `op` folded over the values of PEs `0..i`, and PE 0 returns `None`.
    ///
    /// Implemented with Hillis–Steele recursive doubling, which works for
    /// any PE count: `⌈log₂ p⌉` rounds, one `words(value)`-word message per
    /// PE per round — the O(βℓ + α log p) bound the Section 5 output
    /// collection relies on. `op` must be associative.
    fn exscan<T: Message + Clone>(&self, value: T, op: impl Fn(T, T) -> T) -> Option<T> {
        let (rank, p) = (self.rank(), self.size());
        let tag = coll_tag(self.next_collective_seq(), 3);
        obs_launch(
            rank,
            &obs_metrics::COMM_EXSCAN,
            obs_metrics::OP_EXSCAN,
            value.words(),
        );
        // `incl` covers a window of ranks ending at `rank`; `excl` covers
        // everything below that window's start, so appending each incoming
        // window (which always directly precedes the current one) keeps
        // `excl · incl = fold(0..=rank)` as the windows double.
        let mut incl = value;
        let mut excl: Option<T> = None;
        let mut d = 1usize;
        while d < p {
            if rank + d < p {
                self.send(rank + d, tag, incl.clone());
            }
            if rank >= d {
                let incoming = self.recv::<T>(rank - d, tag);
                excl = Some(match excl {
                    None => incoming.clone(),
                    Some(e) => op(incoming.clone(), e),
                });
                incl = op(incoming, incl);
            }
            d <<= 1;
        }
        excl
    }

    /// Segmented all-gather by rank (MPI's `Allgatherv`): every PE
    /// contributes a variable-length vector and receives the concatenation
    /// of all contributions in rank order, plus the per-rank segment
    /// lengths (so callers can recover which PE contributed which slice).
    fn allgatherv<T: Message + Clone>(&self, items: Vec<T>) -> (Vec<T>, Vec<u64>) {
        let gathered = self.gather(0, items);
        let packed = gathered.map(|parts| {
            let counts: Vec<u64> = parts.iter().map(|v| v.len() as u64).collect();
            let flat: Vec<T> = parts.into_iter().flatten().collect();
            (counts, flat)
        });
        let (counts, flat) = self.broadcast(0, packed);
        (flat, counts)
    }

    /// Synchronize all PEs.
    fn barrier(&self) {
        self.allreduce((), |_, _| ());
    }

    // --- Named helpers used throughout the samplers -----------------------

    /// Sum of one `u64` over all PEs.
    fn sum_u64(&self, x: u64) -> u64 {
        self.allreduce(x, |a, b| a + b)
    }

    /// Elementwise sum of equal-length `u64` vectors over all PEs.
    fn sum_u64_vec(&self, xs: Vec<u64>) -> Vec<u64> {
        self.allreduce(xs, |mut a, b| {
            debug_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
            a
        })
    }

    /// Maximum of one `f64` over all PEs (NaN-free inputs assumed).
    fn max_f64(&self, x: f64) -> f64 {
        self.allreduce(x, f64::max)
    }

    /// Exclusive prefix sum of one `u64` over ranks: the sum of the values
    /// of all lower-ranked PEs (0 on PE 0). The offset primitive of the
    /// Section 5 distributed output collection.
    fn exscan_sum_u64(&self, x: u64) -> u64 {
        self.exscan(x, |a, b| a + b).unwrap_or(0)
    }
}

impl<C: Communicator + ?Sized> Collectives for C {}

/// Wrapper so `Vec<(u64, T)>` results can ride through `broadcast` (which
/// needs `Message + Clone`) in `allgather`.
struct GatheredVec<T>(Vec<T>);

impl<T: Message> Message for GatheredVec<T> {
    fn words(&self) -> u64 {
        1 + self.0.iter().map(Message::words).sum::<u64>()
    }
}

impl<T: Clone> Clone for GatheredVec<T> {
    fn clone(&self) -> Self {
        GatheredVec(self.0.clone())
    }
}
