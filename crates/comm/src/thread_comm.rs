//! The threaded message-passing runtime: one OS thread per PE, `std::sync::mpsc`
//! channels as the wire.
//!
//! This is the "real" backend — every PE executes concurrently, every
//! collective really exchanges messages, and wall-clock measurements of PE
//! programs reflect true parallel behaviour (used by the real-speedup
//! benchmarks and all correctness tests of the distributed samplers).

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::sync::mpsc::{channel, Receiver, Sender};

use crate::stats::StatsCell;
use crate::{CommStats, Communicator};

struct Packet {
    src: usize,
    tag: u64,
    payload: Box<dyn Any + Send>,
}

/// One PE's endpoint of a threaded communicator.
///
/// Created in bulk with [`ThreadComm::create`] (one endpoint per PE) and
/// moved into per-PE threads, typically via [`run_threads`].
pub struct ThreadComm {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Packet>>,
    receiver: Receiver<Packet>,
    /// Messages that arrived before the PE asked for them (tag mismatch).
    pending: RefCell<Vec<Packet>>,
    seq: Cell<u64>,
    stats: StatsCell,
}

impl ThreadComm {
    /// Build the `p` endpoints of a fully connected communicator.
    pub fn create(p: usize) -> Vec<ThreadComm> {
        assert!(p > 0, "communicator needs at least one PE");
        let mut senders = Vec::with_capacity(p);
        let mut receivers = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = channel();
            senders.push(tx);
            receivers.push(rx);
        }
        receivers
            .into_iter()
            .enumerate()
            .map(|(rank, receiver)| ThreadComm {
                rank,
                size: p,
                senders: senders.clone(),
                receiver,
                pending: RefCell::new(Vec::new()),
                seq: Cell::new(0),
                stats: StatsCell::default(),
            })
            .collect()
    }
}

impl Communicator for ThreadComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send_raw(&self, to: usize, tag: u64, msg: Box<dyn Any + Send>, _words: u64) {
        debug_assert!(to < self.size, "send to out-of-range PE {to}");
        self.senders[to]
            .send(Packet {
                src: self.rank,
                tag,
                payload: msg,
            })
            .expect("receiving endpoint dropped while communicator in use");
    }

    fn recv_raw(&self, from: usize, tag: u64) -> Box<dyn Any + Send> {
        // First serve from the out-of-order buffer.
        {
            let mut pending = self.pending.borrow_mut();
            if let Some(pos) = pending.iter().position(|p| p.src == from && p.tag == tag) {
                return pending.swap_remove(pos).payload;
            }
        }
        loop {
            let packet = self
                .receiver
                .recv()
                .expect("all senders dropped while blocked in recv");
            if packet.src == from && packet.tag == tag {
                return packet.payload;
            }
            self.pending.borrow_mut().push(packet);
        }
    }

    fn record(&self, messages: u64, words: u64) {
        self.stats.record(messages, words);
    }

    fn next_collective_seq(&self) -> u64 {
        let s = self.seq.get();
        self.seq.set(s + 1);
        s
    }

    fn stats(&self) -> CommStats {
        self.stats.snapshot()
    }
}

/// Run one closure per PE on its own OS thread and collect the results in
/// rank order. The closure receives the PE's endpoint.
///
/// Panics in any PE propagate after all threads have been joined.
pub fn run_threads<R, F>(p: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(ThreadComm) -> R + Sync,
{
    let comms = ThreadComm::create(p);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        for comm in comms {
            let f = &f;
            handles.push(scope.spawn(move || f(comm)));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("PE thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::Collectives;

    #[test]
    fn point_to_point_roundtrip() {
        let results = run_threads(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, 42u64);
                comm.recv::<u64>(1, 8)
            } else {
                let x = comm.recv::<u64>(0, 7);
                comm.send(0, 8, x * 2);
                x
            }
        });
        assert_eq!(results, vec![84, 42]);
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let results = run_threads(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, 10u64);
                comm.send(1, 2, 20u64);
                0
            } else {
                // Receive in the opposite order of sending.
                let b = comm.recv::<u64>(0, 2);
                let a = comm.recv::<u64>(0, 1);
                a + b
            }
        });
        assert_eq!(results[1], 30);
    }

    #[test]
    fn broadcast_from_every_root() {
        for p in [1, 2, 3, 5, 8, 13] {
            for root in 0..p {
                let results = run_threads(p, |comm| {
                    let value = (comm.rank() == root).then_some(root as u64 * 100);
                    comm.broadcast(root, value)
                });
                assert!(
                    results.iter().all(|&v| v == root as u64 * 100),
                    "p={p} root={root}"
                );
            }
        }
    }

    #[test]
    fn reduce_sums_at_root() {
        for p in [1, 2, 4, 7, 16] {
            let results = run_threads(p, |comm| {
                comm.reduce(0, comm.rank() as u64 + 1, |a, b| a + b)
            });
            let expect = (p as u64) * (p as u64 + 1) / 2;
            assert_eq!(results[0], Some(expect), "p={p}");
            assert!(results[1..].iter().all(Option::is_none));
        }
    }

    #[test]
    fn allreduce_max_everywhere() {
        let results = run_threads(9, |comm| comm.max_f64(comm.rank() as f64));
        assert!(results.iter().all(|&v| v == 8.0));
    }

    #[test]
    fn allreduce_vector_sum() {
        let p = 6;
        let results = run_threads(p, |comm| comm.sum_u64_vec(vec![1, comm.rank() as u64, 100]));
        for r in &results {
            assert_eq!(r, &vec![p as u64, 15, 600]);
        }
    }

    #[test]
    fn gather_orders_by_rank() {
        for p in [1, 3, 8] {
            let results = run_threads(p, |comm| comm.gather(0, comm.rank() as u64 * 2));
            assert_eq!(
                results[0],
                Some((0..p as u64).map(|r| r * 2).collect::<Vec<_>>()),
                "p={p}"
            );
        }
    }

    #[test]
    fn allgather_everywhere() {
        let p = 5;
        let results = run_threads(p, |comm| comm.allgather(comm.rank() as u64));
        for r in results {
            assert_eq!(r, (0..p as u64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn successive_collectives_do_not_collide() {
        // Stress the tag sequencing: many collectives back to back.
        let p = 4;
        let results = run_threads(p, |comm| {
            let mut acc = 0u64;
            for i in 0..50u64 {
                acc += comm.sum_u64(i + comm.rank() as u64);
                comm.barrier();
                let root = (i as usize) % p;
                let val = (comm.rank() == root).then_some(acc);
                acc = comm.broadcast(root, val);
            }
            acc
        });
        assert!(results.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn stats_count_messages() {
        let results = run_threads(4, |comm| {
            comm.barrier();
            comm.stats()
        });
        // Every PE except the tree root sends at least one message per
        // reduce, and roots send during broadcast.
        let total: u64 = results.iter().map(|s| s.messages).sum();
        assert!(total >= 6, "barrier exchanged {total} messages");
    }
}
