//! Property tests for the log2 histogram: buckets are monotone,
//! exhaustive over `u64`, and no observation is lost or double-counted.

use proptest::prelude::*;
use reservoir_obs::{bucket_bound, bucket_index, Histogram, BUCKETS};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Bounds are strictly increasing — the bucket series is monotone.
    #[test]
    fn bounds_are_strictly_monotone(i in 0usize..BUCKETS - 1) {
        prop_assert!(bucket_bound(i) < bucket_bound(i + 1));
    }

    // Every value lands in exactly one bucket: at or below its bucket's
    // bound, strictly above the previous bucket's bound — exhaustive
    // with no overlaps.
    #[test]
    fn every_value_lands_in_exactly_one_bucket(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < BUCKETS);
        prop_assert!(v <= bucket_bound(i));
        if i > 0 {
            prop_assert!(v > bucket_bound(i - 1));
        }
    }

    // Observing a batch loses nothing: per-bucket counts total the batch
    // size, the sum matches, and the cumulative series ends at the total
    // count and is itself monotone.
    #[test]
    fn no_observation_is_lost(values in prop::collection::vec(any::<u64>(), 0..200)) {
        let h = Histogram::new();
        for &v in &values {
            h.observe(v);
        }
        let s = h.snapshot();
        prop_assert_eq!(s.count(), values.len() as u64);
        let expect_sum = values.iter().fold(0u64, |a, &v| a.wrapping_add(v));
        prop_assert_eq!(s.sum, expect_sum);
        let cum = s.cumulative();
        for w in cum.windows(2) {
            prop_assert!(w[0].0 < w[1].0, "bounds monotone");
            prop_assert!(w[0].1 <= w[1].1, "counts monotone");
        }
        if let Some(&(_, last)) = cum.last() {
            prop_assert_eq!(last, values.len() as u64);
        } else {
            prop_assert!(values.is_empty());
        }
        // Cross-check each bucket against a naive recount.
        for (i, &c) in s.counts.iter().enumerate() {
            let naive = values.iter().filter(|&&v| bucket_index(v) == i).count() as u64;
            prop_assert_eq!(c, naive);
        }
    }
}
