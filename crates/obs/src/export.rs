//! Renderers for [`MetricsSnapshot`]: Prometheus text exposition format
//! and a JSON document. Snapshots are sorted by name, so both renderings
//! are byte-stable for a fixed set of values — the export golden tests
//! pin them.

use crate::registry::{MetricData, MetricsSnapshot};
use std::fmt::Write;

/// Format an `f64` the way both exporters want it: `Display` (shortest
/// round-trip representation, a valid JSON number for finite values),
/// with non-finite values pinned to `0` so the JSON stays parseable.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Escape a string for a JSON literal (metric names are static
/// identifiers, but help strings are free-form).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).unwrap();
            }
            c => out.push(c),
        }
    }
    out
}

/// Prometheus text exposition format: `# HELP` / `# TYPE` preamble per
/// metric, cumulative `_bucket{le=...}` / `_sum` / `_count` series for
/// histograms.
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for m in &snap.metrics {
        writeln!(out, "# HELP {} {}", m.name, m.help).unwrap();
        match &m.data {
            MetricData::Counter(v) => {
                writeln!(out, "# TYPE {} counter", m.name).unwrap();
                writeln!(out, "{} {}", m.name, v).unwrap();
            }
            MetricData::Gauge(v) => {
                writeln!(out, "# TYPE {} gauge", m.name).unwrap();
                writeln!(out, "{} {}", m.name, fmt_f64(*v)).unwrap();
            }
            MetricData::Histogram(h) => {
                writeln!(out, "# TYPE {} histogram", m.name).unwrap();
                for (le, c) in h.cumulative() {
                    writeln!(out, "{}_bucket{{le=\"{}\"}} {}", m.name, le, c).unwrap();
                }
                writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", m.name, h.count()).unwrap();
                writeln!(out, "{}_sum {}", m.name, h.sum).unwrap();
                writeln!(out, "{}_count {}", m.name, h.count()).unwrap();
            }
        }
    }
    out
}

/// One JSON object: `{"metrics": {name: {"type": ..., ...}, ...}}`, names
/// in sorted order. Histograms carry their cumulative bucket series plus
/// `count` and `sum`.
pub fn render_json(snap: &MetricsSnapshot) -> String {
    let mut out = String::from("{\"metrics\":{");
    for (i, m) in snap.metrics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(out, "\"{}\":", json_escape(m.name)).unwrap();
        match &m.data {
            MetricData::Counter(v) => {
                write!(out, "{{\"type\":\"counter\",\"value\":{v}}}").unwrap();
            }
            MetricData::Gauge(v) => {
                write!(out, "{{\"type\":\"gauge\",\"value\":{}}}", fmt_f64(*v)).unwrap();
            }
            MetricData::Histogram(h) => {
                write!(
                    out,
                    "{{\"type\":\"histogram\",\"count\":{},\"sum\":{},\"buckets\":[",
                    h.count(),
                    h.sum
                )
                .unwrap();
                for (j, (le, c)) in h.cumulative().iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    write!(out, "{{\"le\":{le},\"count\":{c}}}").unwrap();
                }
                out.push_str("]}");
            }
        }
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use crate::Registry;

    /// The format goldens live here, on a private registry with pinned
    /// values — the integration-level golden (tests/obs_export.rs at the
    /// workspace root) pins a real fixed-seed run's counters through the
    /// same renderers.
    fn fixture() -> Registry {
        let r = Registry::new();
        r.counter("batches_total", "batches processed").add(3);
        r.gauge("backpressure_seconds", "seconds blocked").set(0.5);
        let h = r.histogram("payload_words", "words per message");
        for v in [0, 1, 5, 5, 9] {
            h.observe(v);
        }
        r
    }

    #[test]
    fn prometheus_format_is_pinned() {
        let text = fixture().snapshot().prometheus();
        let expect = "\
# HELP backpressure_seconds seconds blocked
# TYPE backpressure_seconds gauge
backpressure_seconds 0.5
# HELP batches_total batches processed
# TYPE batches_total counter
batches_total 3
# HELP payload_words words per message
# TYPE payload_words histogram
payload_words_bucket{le=\"0\"} 1
payload_words_bucket{le=\"1\"} 2
payload_words_bucket{le=\"3\"} 2
payload_words_bucket{le=\"7\"} 4
payload_words_bucket{le=\"15\"} 5
payload_words_bucket{le=\"+Inf\"} 5
payload_words_sum 20
payload_words_count 5
";
        assert_eq!(text, expect);
    }

    #[test]
    fn json_format_is_pinned() {
        let json = fixture().snapshot().json();
        let expect = concat!(
            "{\"metrics\":{",
            "\"backpressure_seconds\":{\"type\":\"gauge\",\"value\":0.5},",
            "\"batches_total\":{\"type\":\"counter\",\"value\":3},",
            "\"payload_words\":{\"type\":\"histogram\",\"count\":5,\"sum\":20,\"buckets\":[",
            "{\"le\":0,\"count\":1},{\"le\":1,\"count\":2},{\"le\":3,\"count\":2},",
            "{\"le\":7,\"count\":4},{\"le\":15,\"count\":5}]}",
            "}}"
        );
        assert_eq!(json, expect);
    }

    #[test]
    fn json_escapes_help_metacharacters() {
        assert_eq!(super::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
