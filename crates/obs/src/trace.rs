//! The flight recorder: bounded, lock-free, per-PE rings of structured
//! trace events for post-mortem analysis of a crashed or wedged run.
//!
//! Each PE gets a power-of-two [`TraceRing`]; recording claims a slot with
//! one `fetch_add` and publishes it under a per-slot version tag (the
//! seqlock idea shrunk to one slot), so writers never block and a
//! concurrent [`FlightRecorder::dump`] simply skips the one slot that is
//! mid-write. Old events are overwritten — a flight recorder keeps the
//! *recent* past, which is the part a post-mortem needs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Events per ring; power of two so slot selection is a mask.
const RING_CAP: usize = 1024;

/// The `pe` recorded by call sites that run below the PE layer and do not
/// know their rank (the OLC tree, the ingestion batcher).
pub const PE_UNRANKED: u32 = u32::MAX;

/// What happened. `a`/`b` payload meaning per kind is documented on each
/// variant (and mirrored in DESIGN.md's event-schema table).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceKind {
    /// A mini-batch step began: `a` = batch index, `b` = items in the
    /// local batch.
    BatchStart = 1,
    /// The step finished: `a` = batch index, `b` = global union size
    /// after the step.
    BatchEnd = 2,
    /// A collective primitive launched: `a` = op code
    /// (1 broadcast, 2 reduce, 3 gather, 4 exscan), `b` = local payload
    /// words.
    Collective = 3,
    /// A distributed selection finished: `a` = pivot rounds used,
    /// `b` = union size selected over.
    SelectRound = 4,
    /// A sample epoch published: `a` = epoch number, `b` = sample size.
    EpochPublish = 5,
    /// An OLC insert needed an unusual number of optimistic retries:
    /// `a` = retries for that one insert, `b` = tree size (entry count).
    OlcRetryStorm = 6,
    /// The ingestion batcher cut a batch on deadline rather than size:
    /// `a` = records in the cut batch, `b` = 0.
    DeadlineFlush = 7,
}

impl TraceKind {
    fn from_u8(v: u8) -> Option<TraceKind> {
        Some(match v {
            1 => TraceKind::BatchStart,
            2 => TraceKind::BatchEnd,
            3 => TraceKind::Collective,
            4 => TraceKind::SelectRound,
            5 => TraceKind::EpochPublish,
            6 => TraceKind::OlcRetryStorm,
            7 => TraceKind::DeadlineFlush,
            _ => return None,
        })
    }

    pub fn name(&self) -> &'static str {
        match self {
            TraceKind::BatchStart => "batch_start",
            TraceKind::BatchEnd => "batch_end",
            TraceKind::Collective => "collective",
            TraceKind::SelectRound => "select_round",
            TraceKind::EpochPublish => "epoch_publish",
            TraceKind::OlcRetryStorm => "olc_retry_storm",
            TraceKind::DeadlineFlush => "deadline_flush",
        }
    }
}

/// One recorded event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global record order across all rings (1-based; gaps mean the event
    /// between was overwritten or torn).
    pub seq: u64,
    /// Microseconds since the recorder's first event.
    pub at_micros: u64,
    /// Recording PE, or [`PE_UNRANKED`].
    pub pe: u32,
    pub kind: TraceKind,
    pub a: u64,
    pub b: u64,
}

/// `tag == 0` marks a slot that is empty or mid-write; a published slot
/// carries the event's global `seq` (≥ 1).
struct Slot {
    tag: AtomicU64,
    time: AtomicU64,
    /// `pe << 8 | kind`.
    meta: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            tag: AtomicU64::new(0),
            time: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        }
    }
}

/// One PE's bounded event ring. Writers are lock-free; torn slots (a
/// writer mid-overwrite during a dump) are skipped, never misread.
pub struct TraceRing {
    pe: u32,
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl TraceRing {
    fn new(pe: u32) -> TraceRing {
        TraceRing {
            pe,
            head: AtomicU64::new(0),
            slots: (0..RING_CAP).map(|_| Slot::new()).collect(),
        }
    }

    /// Record an event (unconditionally — [`emit`] is the gated front
    /// door). Lock-free: one `fetch_add` claims a slot, the tag publishes
    /// it.
    pub fn record(&self, kind: TraceKind, a: u64, b: u64) {
        let seq = recorder().seq.fetch_add(1, Ordering::Relaxed) + 1;
        let at = recorder().micros();
        let i = self.head.fetch_add(1, Ordering::Relaxed) as usize & (RING_CAP - 1);
        let s = &self.slots[i];
        s.tag.store(0, Ordering::Release);
        s.time.store(at, Ordering::Relaxed);
        s.meta
            .store((self.pe as u64) << 8 | kind as u64, Ordering::Relaxed);
        s.a.store(a, Ordering::Relaxed);
        s.b.store(b, Ordering::Relaxed);
        s.tag.store(seq, Ordering::Release);
    }

    /// Copy out every published event (unordered; the recorder's dump
    /// sorts globally by `seq`).
    fn dump_into(&self, out: &mut Vec<TraceEvent>) {
        for s in self.slots.iter() {
            let tag = s.tag.load(Ordering::Acquire);
            if tag == 0 {
                continue;
            }
            let time = s.time.load(Ordering::Relaxed);
            let meta = s.meta.load(Ordering::Relaxed);
            let a = s.a.load(Ordering::Relaxed);
            let b = s.b.load(Ordering::Relaxed);
            if s.tag.load(Ordering::Acquire) != tag {
                continue; // torn by a concurrent overwrite
            }
            let kind = match TraceKind::from_u8((meta & 0xff) as u8) {
                Some(k) => k,
                None => continue,
            };
            out.push(TraceEvent {
                seq: tag,
                at_micros: time,
                pe: (meta >> 8) as u32,
                kind,
                a,
                b,
            });
        }
    }
}

/// The process-wide set of per-PE rings.
pub struct FlightRecorder {
    rings: Mutex<Vec<Arc<TraceRing>>>,
    seq: AtomicU64,
    start: OnceLock<Instant>,
}

impl FlightRecorder {
    const fn new() -> FlightRecorder {
        FlightRecorder {
            rings: Mutex::new(Vec::new()),
            seq: AtomicU64::new(0),
            start: OnceLock::new(),
        }
    }

    fn micros(&self) -> u64 {
        self.start.get_or_init(Instant::now).elapsed().as_micros() as u64
    }

    /// Get-or-create the ring for a PE. Takes a short mutex — per-batch
    /// call sites just call [`emit`]; per-message call sites cache the
    /// returned `Arc`.
    pub fn ring(&self, pe: u32) -> Arc<TraceRing> {
        let mut rings = self.rings.lock().unwrap();
        if let Some(r) = rings.iter().find(|r| r.pe == pe) {
            return Arc::clone(r);
        }
        let r = Arc::new(TraceRing::new(pe));
        rings.push(Arc::clone(&r));
        r
    }

    /// Every surviving event across all rings, in global record order.
    pub fn dump(&self) -> Vec<TraceEvent> {
        let rings: Vec<Arc<TraceRing>> = self.rings.lock().unwrap().clone();
        let mut out = Vec::new();
        for r in &rings {
            r.dump_into(&mut out);
        }
        out.sort_unstable_by_key(|e| e.seq);
        out
    }

    /// The dump as JSON lines — one event object per line, ready to ship
    /// as a CI artifact.
    pub fn to_jsonl(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for e in self.dump() {
            let pe: i64 = if e.pe == PE_UNRANKED { -1 } else { e.pe as i64 };
            writeln!(
                s,
                "{{\"seq\":{},\"at_micros\":{},\"pe\":{},\"kind\":\"{}\",\"a\":{},\"b\":{}}}",
                e.seq,
                e.at_micros,
                pe,
                e.kind.name(),
                e.a,
                e.b
            )
            .unwrap();
        }
        s
    }
}

/// The process-wide recorder.
pub fn recorder() -> &'static FlightRecorder {
    static RECORDER: FlightRecorder = FlightRecorder::new();
    &RECORDER
}

/// Record an event if instrumentation is armed — the one-line call site
/// API. Looks the ring up per call; structs on per-message paths should
/// hold `recorder().ring(pe)` instead.
#[inline]
pub fn emit(pe: u32, kind: TraceKind, a: u64, b: u64) {
    if crate::enabled() {
        recorder().ring(pe).record(kind, a, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_dump_in_order() {
        let ring = recorder().ring(7001);
        ring.record(TraceKind::BatchStart, 0, 100);
        ring.record(TraceKind::BatchEnd, 0, 100);
        let evs: Vec<TraceEvent> = recorder()
            .dump()
            .into_iter()
            .filter(|e| e.pe == 7001)
            .collect();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].kind, TraceKind::BatchStart);
        assert_eq!(evs[1].kind, TraceKind::BatchEnd);
        assert!(evs[0].seq < evs[1].seq);
        assert!(evs[0].at_micros <= evs[1].at_micros);
    }

    #[test]
    fn ring_overwrites_but_never_grows() {
        let ring = recorder().ring(7002);
        for i in 0..(RING_CAP as u64 * 2) {
            ring.record(TraceKind::Collective, i, 0);
        }
        let evs: Vec<TraceEvent> = recorder()
            .dump()
            .into_iter()
            .filter(|e| e.pe == 7002)
            .collect();
        assert_eq!(evs.len(), RING_CAP);
        // Only the most recent RING_CAP events survive.
        assert!(evs.iter().all(|e| e.a >= RING_CAP as u64));
    }

    #[test]
    fn jsonl_maps_unranked_to_minus_one() {
        recorder()
            .ring(PE_UNRANKED)
            .record(TraceKind::OlcRetryStorm, 9, 2);
        assert!(recorder().to_jsonl().contains("\"pe\":-1"));
    }
}
