//! The metrics registry: named atomic counters, gauges and histograms
//! registered once by static name, plus the [`MetricsReader`] dashboards
//! poll mid-ingestion.
//!
//! Registration is rare (a handful of static names per process) and takes
//! a mutex; *recording* is a relaxed atomic op on a handle, and *reading*
//! in the steady state is lock-free: a [`MetricsReader`] caches the
//! metric directory and only re-locks when the registry's version word
//! moved — the same discipline `dist::snapshot::SnapshotReader` uses
//! against `EpochPublisher`, with the version word standing in for the
//! seqlock.

use crate::hist::{Histogram, HistogramSnapshot};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotone event count. Recording is a relaxed `fetch_add`; handles do
/// not gate on [`crate::enabled`] — use the `Lazy*` statics for gated
/// call-site instrumentation.
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    fn new() -> Counter {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-written or accumulated `f64` (stored as bits in an `AtomicU64`).
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    fn new() -> Gauge {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Accumulate (CAS loop; contention is per-metric and rare).
    pub fn add(&self, v: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

#[derive(Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

#[derive(Clone)]
struct Entry {
    name: &'static str,
    help: &'static str,
    metric: Metric,
}

/// A directory of named metrics. Usually accessed through [`global`]; a
/// private instance is handy in tests that want full control of the
/// directory (the export-format goldens build one).
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
    /// Bumped once per registration; [`MetricsReader`]s compare it to
    /// decide whether their cached directory is stale.
    version: AtomicU64,
}

impl Registry {
    pub const fn new() -> Registry {
        Registry {
            entries: Mutex::new(Vec::new()),
            version: AtomicU64::new(0),
        }
    }

    fn register(
        &self,
        name: &'static str,
        help: &'static str,
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let mut entries = self.entries.lock().unwrap();
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            return e.metric.clone();
        }
        let metric = make();
        entries.push(Entry {
            name,
            help,
            metric: metric.clone(),
        });
        self.version.fetch_add(1, Ordering::Release);
        metric
    }

    /// Get-or-register a counter. Panics if `name` is already registered
    /// as a different kind (static names make that a programming error).
    pub fn counter(&self, name: &'static str, help: &'static str) -> Arc<Counter> {
        match self.register(name, help, || Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Get-or-register a gauge (same name discipline as [`Self::counter`]).
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Arc<Gauge> {
        match self.register(name, help, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Get-or-register a histogram (same name discipline as
    /// [`Self::counter`]).
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Arc<Histogram> {
        match self.register(name, help, || Metric::Histogram(Arc::new(Histogram::new()))) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// The registration version word (the staleness probe — compare two
    /// values to learn whether the directory changed in between).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// A reader for dashboard threads: caches the directory, refreshes it
    /// only when [`Self::version`] moved, loads values lock-free.
    pub fn reader(&self) -> MetricsReader<'_> {
        MetricsReader {
            registry: self,
            directory: Vec::new(),
            seen: u64::MAX, // force the first refresh
        }
    }

    /// One-shot snapshot (locks the directory briefly; polling loops
    /// should hold a [`MetricsReader`] instead).
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.reader().snapshot()
    }
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

/// The process-wide registry every `Lazy*` static records into.
pub fn global() -> &'static Registry {
    static GLOBAL: Registry = Registry::new();
    &GLOBAL
}

/// The value side of a snapshot entry.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricData {
    Counter(u64),
    Gauge(f64),
    /// Boxed: a [`HistogramSnapshot`] is 65 buckets wide and would bloat
    /// every entry of a snapshot otherwise.
    Histogram(Box<HistogramSnapshot>),
}

/// One metric in a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct MetricValue {
    pub name: &'static str,
    pub help: &'static str,
    pub data: MetricData,
}

/// A point-in-time copy of every registered metric, sorted by name (so
/// exports are stable regardless of registration order, which is
/// scheduling-dependent).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub metrics: Vec<MetricValue>,
}

impl MetricsSnapshot {
    /// Keep only the metrics whose name the predicate accepts (e.g. the
    /// deterministic-counter allowlist of the export golden test).
    pub fn retain(&mut self, mut keep: impl FnMut(&str) -> bool) {
        self.metrics.retain(|m| keep(m.name));
    }

    /// Look a metric up by name.
    pub fn get(&self, name: &str) -> Option<&MetricData> {
        self.metrics
            .iter()
            .find(|m| m.name == name)
            .map(|m| &m.data)
    }

    /// A counter's value, `0` when absent or not a counter.
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(MetricData::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Render in Prometheus text exposition format.
    pub fn prometheus(&self) -> String {
        crate::export::render_prometheus(self)
    }

    /// Render as a JSON document.
    pub fn json(&self) -> String {
        crate::export::render_json(self)
    }
}

/// A poll handle safe to use from dashboard threads mid-ingestion: value
/// loads are lock-free; the directory mutex is taken only on the polls
/// where [`Registry::version`] moved since the cache was built (i.e. a
/// new metric registered — rare after warm-up). The directory may trail a
/// registration by one poll; values are always fresh.
pub struct MetricsReader<'a> {
    registry: &'a Registry,
    directory: Vec<Entry>,
    seen: u64,
}

impl MetricsReader<'_> {
    /// The registry version the cached directory reflects — diff two
    /// polls to detect new registrations, as `SnapshotReader::latest_epoch`
    /// detects new publications.
    pub fn version(&self) -> u64 {
        self.registry.version()
    }

    /// Copy every metric's current value.
    pub fn snapshot(&mut self) -> MetricsSnapshot {
        let version = self.registry.version();
        if version != self.seen {
            self.directory = self.registry.entries.lock().unwrap().clone();
            self.directory.sort_by_key(|e| e.name);
            self.seen = version;
        }
        let metrics = self
            .directory
            .iter()
            .map(|e| MetricValue {
                name: e.name,
                help: e.help,
                data: match &e.metric {
                    Metric::Counter(c) => MetricData::Counter(c.get()),
                    Metric::Gauge(g) => MetricData::Gauge(g.get()),
                    Metric::Histogram(h) => MetricData::Histogram(Box::new(h.snapshot())),
                },
            })
            .collect();
        MetricsSnapshot { metrics }
    }

    /// Snapshot and render in Prometheus text format.
    pub fn prometheus(&mut self) -> String {
        self.snapshot().prometheus()
    }

    /// Snapshot and render as JSON.
    pub fn json(&mut self) -> String {
        self.snapshot().json()
    }
}

/// A lazily registered counter for `static` call-site instrumentation.
/// Recording gates on [`crate::enabled`]: while disarmed nothing registers
/// and nothing accumulates, so an unobserved process carries no registry
/// at all.
pub struct LazyCounter {
    name: &'static str,
    help: &'static str,
    slot: OnceLock<Arc<Counter>>,
}

impl LazyCounter {
    pub const fn new(name: &'static str, help: &'static str) -> LazyCounter {
        LazyCounter {
            name,
            help,
            slot: OnceLock::new(),
        }
    }

    #[inline]
    fn handle(&self) -> &Counter {
        self.slot
            .get_or_init(|| global().counter(self.name, self.help))
    }

    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.handle().add(n);
        }
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value; `0` if never recorded (does not register).
    pub fn get(&self) -> u64 {
        self.slot.get().map_or(0, |c| c.get())
    }
}

/// A lazily registered gauge (see [`LazyCounter`] for the gating rules).
pub struct LazyGauge {
    name: &'static str,
    help: &'static str,
    slot: OnceLock<Arc<Gauge>>,
}

impl LazyGauge {
    pub const fn new(name: &'static str, help: &'static str) -> LazyGauge {
        LazyGauge {
            name,
            help,
            slot: OnceLock::new(),
        }
    }

    #[inline]
    fn handle(&self) -> &Gauge {
        self.slot
            .get_or_init(|| global().gauge(self.name, self.help))
    }

    #[inline]
    pub fn set(&self, v: f64) {
        if crate::enabled() {
            self.handle().set(v);
        }
    }

    #[inline]
    pub fn add(&self, v: f64) {
        if crate::enabled() {
            self.handle().add(v);
        }
    }

    /// Current value; `0.0` if never recorded (does not register).
    pub fn get(&self) -> f64 {
        self.slot.get().map_or(0.0, |g| g.get())
    }
}

/// A lazily registered histogram (see [`LazyCounter`] for the gating
/// rules).
pub struct LazyHistogram {
    name: &'static str,
    help: &'static str,
    slot: OnceLock<Arc<Histogram>>,
}

impl LazyHistogram {
    pub const fn new(name: &'static str, help: &'static str) -> LazyHistogram {
        LazyHistogram {
            name,
            help,
            slot: OnceLock::new(),
        }
    }

    #[inline]
    pub fn observe(&self, v: u64) {
        if crate::enabled() {
            self.slot
                .get_or_init(|| global().histogram(self.name, self.help))
                .observe(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_once_by_name() {
        let r = Registry::new();
        let a = r.counter("x_total", "x");
        let b = r.counter("x_total", "x");
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3);
        assert_eq!(r.version(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("x_total", "x");
        let _ = r.gauge("x_total", "x");
    }

    #[test]
    fn gauge_set_and_add() {
        let r = Registry::new();
        let g = r.gauge("g", "g");
        g.set(1.5);
        g.add(0.25);
        assert_eq!(g.get(), 1.75);
    }

    #[test]
    fn reader_refreshes_only_on_version_moves() {
        let r = Registry::new();
        let c = r.counter("a_total", "a");
        let mut reader = r.reader();
        let v0 = reader.version();
        c.add(7);
        assert_eq!(reader.snapshot().counter("a_total"), 7);
        // New registration moves the version; the reader picks it up.
        let _ = r.gauge("b", "b");
        assert!(reader.version() > v0);
        assert_eq!(reader.snapshot().metrics.len(), 2);
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let r = Registry::new();
        let _ = r.counter("z_total", "z");
        let _ = r.counter("a_total", "a");
        let names: Vec<_> = r.snapshot().metrics.iter().map(|m| m.name).collect();
        assert_eq!(names, vec!["a_total", "z_total"]);
    }
}
