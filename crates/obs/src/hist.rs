//! Log2-bucket histograms: fixed 65 buckets covering all of `u64`, so
//! observation is one `fetch_add` with no configuration, no allocation and
//! no possibility of a value falling outside the range.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: bucket 0 holds the value 0, bucket `i ∈ 1..=64`
/// holds `[2^(i-1), 2^i - 1]` (bucket 64 saturates at `u64::MAX`).
pub const BUCKETS: usize = 65;

/// The bucket a value lands in. Total over `u64` — every value lands in
/// exactly one bucket (pinned by the `hist_props` proptests).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i` — the Prometheus `le` label.
/// Strictly increasing in `i` (monotone), with bucket 64 covering the top
/// of the `u64` range (exhaustive).
#[inline]
pub fn bucket_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        1..=63 => (1u64 << i) - 1,
        _ => u64::MAX,
    }
}

/// A lock-free log2 histogram of `u64` observations. `observe` is two
/// relaxed `fetch_add`s; readers take a per-bucket snapshot that is
/// monotone but not a single atomic cut across buckets (each bucket count
/// is exact; a racing writer may land between two bucket loads — fine for
/// monitoring, which is the contract).
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Histogram {
    /// A free-standing histogram (registries hand out `Arc`s of these;
    /// direct construction serves tests and embedders).
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one observation. Wrapping on `sum` overflow (2^64 total —
    /// unreachable in practice, and counts stay exact regardless).
    #[inline]
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Per-bucket counts plus the running sum.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Count per bucket, indexed as [`bucket_index`].
    pub counts: [u64; BUCKETS],
    /// Sum of all observed values (wrapping).
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Cumulative `(upper_bound, count ≤ bound)` pairs up to and including
    /// the last non-empty bucket — the Prometheus `_bucket{le=...}` series
    /// minus the implicit `+Inf` (which equals [`Self::count`]). Empty for
    /// a histogram with no observations.
    pub fn cumulative(&self) -> Vec<(u64, u64)> {
        let last = match self.counts.iter().rposition(|&c| c > 0) {
            Some(i) => i,
            None => return Vec::new(),
        };
        let mut acc = 0u64;
        (0..=last)
            .map(|i| {
                acc += self.counts[i];
                (bucket_bound(i), acc)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_bound(0), 0);
        assert_eq!(bucket_bound(1), 1);
        assert_eq!(bucket_bound(2), 3);
        assert_eq!(bucket_bound(64), u64::MAX);
    }

    #[test]
    fn observe_and_cumulative() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 7, 8] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 6);
        assert_eq!(s.sum, 21);
        assert_eq!(
            s.cumulative(),
            vec![(0, 1), (1, 2), (3, 4), (7, 5), (15, 6)]
        );
    }

    #[test]
    fn empty_histogram_has_no_buckets() {
        assert!(Histogram::new().snapshot().cumulative().is_empty());
    }
}
