//! # reservoir-obs — unified observability for the reservoir workspace
//!
//! The paper's evaluation (Sections 5–6.5) is entirely about *accounting*:
//! per-phase running time and per-collective word counts. This crate turns
//! the workspace's scattered hand-rolled counters (`PhaseTimes`,
//! `IngestCounters`, `ScanStats`, OLC retry/split counters, per-report
//! `collective_calls`) into one always-on, pollable surface:
//!
//! * a [`Registry`] of named metrics — atomic [`Counter`]s, f64
//!   [`Gauge`]s and log2-bucket [`Histogram`]s — registered once by static
//!   name and **near-zero cost when unobserved** (one relaxed load and a
//!   predictable branch on instrumented paths; nothing at all on the
//!   hottest paths, which only count on their slow branches);
//! * a bounded **flight recorder** ([`trace::TraceRing`]): a per-PE
//!   lock-free ring of structured [`TraceEvent`]s (batch start/end,
//!   collective launches with op + words, selection rounds, epoch
//!   publications, OLC retry storms, deadline flushes) that a crashed or
//!   wedged run can dump for post-mortem;
//! * exporters — Prometheus text format and JSON — behind a
//!   [`MetricsReader`] that dashboard threads can poll mid-ingestion with
//!   the same version-word discipline as `dist::snapshot::SnapshotReader`:
//!   a brief directory refresh only when the registry version moved,
//!   lock-free atomic loads in the steady state.
//!
//! ## The enable gate
//!
//! Instrumentation is armed by the `RESERVOIR_OBS` environment variable
//! (accepted spellings: `0`/`off`/`false`/`no`/`disabled` and
//! `1`/`on`/`true`/`yes`/`enabled`) or programmatically with
//! [`set_enabled`]. Disabled is the default and is *observationally free*:
//! no metric registers, no event records, no collective launches, and —
//! because instrumentation never touches an RNG or a collective — a fixed
//! seed draws the byte-identical sample whether the gate is armed or not
//! (pinned by the workspace engine-equivalence grid).
//!
//! ```
//! use reservoir_obs as obs;
//!
//! obs::set_enabled(true);
//! static BATCHES: obs::LazyCounter =
//!     obs::LazyCounter::new("doc_batches_total", "batches processed");
//! BATCHES.inc();
//!
//! let mut reader = obs::global().reader();
//! assert!(reader.prometheus().contains("doc_batches_total 1"));
//! ```

mod export;
mod hist;
mod registry;
pub mod trace;

pub use export::{render_json, render_prometheus};
pub use hist::{bucket_bound, bucket_index, Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{
    global, Counter, Gauge, LazyCounter, LazyGauge, LazyHistogram, MetricData, MetricValue,
    MetricsReader, MetricsSnapshot, Registry,
};
pub use trace::{recorder, FlightRecorder, TraceEvent, TraceKind, PE_UNRANKED};

use std::sync::atomic::{AtomicU8, Ordering};

const STATE_UNSET: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

/// Process-wide gate. Unset until the first [`enabled`] / [`init_env`] /
/// [`set_enabled`] touch.
static STATE: AtomicU8 = AtomicU8::new(STATE_UNSET);

/// Every spelling `RESERVOIR_OBS` accepts (named in full in parse errors,
/// per the workspace env-validation convention).
pub const ACCEPTED_SPELLINGS: &str = "0/off/false/no/disabled or 1/on/true/yes/enabled";

/// Parse a `RESERVOIR_OBS` value; case-insensitive, surrounding whitespace
/// tolerated. Pure, so the spellings are testable without touching the
/// process environment.
pub fn parse_obs(v: &str) -> Result<bool, String> {
    match v.trim().to_ascii_lowercase().as_str() {
        "0" | "off" | "false" | "no" | "disabled" => Ok(false),
        "1" | "on" | "true" | "yes" | "enabled" => Ok(true),
        _ => Err(format!(
            "RESERVOIR_OBS accepts {ACCEPTED_SPELLINGS}, got {v:?}"
        )),
    }
}

/// Whether instrumentation is armed. The first call reads `RESERVOIR_OBS`
/// (panicking on a malformed value — construct a `DistConfig` first to get
/// the aggregated-error report instead); later calls are one relaxed load.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_env().unwrap_or_else(|e| panic!("{e}")),
    }
}

/// Validate `RESERVOIR_OBS` and, if the gate is still unset, arm it
/// accordingly (absent means disabled). A gate already set — by
/// [`set_enabled`] or an earlier init — is left alone, so tests and
/// embedders that arm the gate programmatically are not overridden, but
/// the env value is still *validated* either way: `dist`'s
/// `env_defaults()` calls this to fold a malformed `RESERVOIR_OBS` into
/// the same aggregated report as `RESERVOIR_THREADS`/`MERGE`/`CONTINUOUS`.
pub fn init_env() -> Result<bool, String> {
    let parsed = match std::env::var("RESERVOIR_OBS") {
        Ok(v) => parse_obs(&v)?,
        Err(_) => false,
    };
    let target = if parsed { STATE_ON } else { STATE_OFF };
    let _ = STATE.compare_exchange(STATE_UNSET, target, Ordering::Relaxed, Ordering::Relaxed);
    Ok(STATE.load(Ordering::Relaxed) == STATE_ON)
}

/// Arm or disarm instrumentation for the whole process, overriding the
/// environment. Metrics registered while armed keep their values across a
/// disarm/re-arm cycle; they just stop (and resume) accumulating.
pub fn set_enabled(on: bool) {
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_obs_accepts_every_spelling() {
        for v in ["0", "off", "FALSE", " no ", "Disabled"] {
            assert_eq!(parse_obs(v), Ok(false), "{v}");
        }
        for v in ["1", "ON", "true", " yes", "enabled "] {
            assert_eq!(parse_obs(v), Ok(true), "{v}");
        }
    }

    #[test]
    fn parse_obs_error_names_every_spelling() {
        let err = parse_obs("maybe").unwrap_err();
        for spelling in [
            "0", "off", "false", "no", "disabled", "1", "on", "true", "yes", "enabled",
        ] {
            assert!(err.contains(spelling), "{err:?} missing {spelling}");
        }
        assert!(err.contains("maybe"));
    }

    #[test]
    fn set_enabled_round_trips() {
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }
}
