//! Random number generation substrate for the reservoir sampling library.
//!
//! The paper uses Intel MKL's Mersenne Twister for fast random number
//! generation. MKL is proprietary, so this crate provides a from-scratch
//! [MT19937-64](Mt19937_64) implementation (verified against the reference
//! test vectors of Matsumoto & Nishimura) together with the much faster
//! [xoshiro256++](Xoshiro256PlusPlus) generator that we use by default.
//!
//! On top of the raw generators, [`Rng64`] supplies exactly the primitives
//! the sampling algorithms need:
//!
//! * `rand()` draws from the **half-open interval (0, 1]** — the paper is
//!   explicit about this (Section 3.1) because keys are computed as
//!   `-ln(rand())/w` and `ln(0)` must never occur;
//! * [`Rng64::exponential`] — exponential deviates with a given rate, used
//!   both for item keys and for skip ("exponential jump") distances;
//! * [`Rng64::geometric_skips`] — geometric skip counts for the uniform
//!   sampler (Devroye / Vitter style jumps);
//! * [`Rng64::normal`] and [`Rng64::pareto`] — weight generators for the
//!   skewed-input experiments.
//!
//! Deterministic, independent per-PE streams are derived with
//! [`SeedSequence`], which is a SplitMix64-based key derivation so that
//! `(seed, pe, stream)` triples never collide in practice.

mod mt19937_64;
mod seeding;
mod xoshiro;

pub use mt19937_64::Mt19937_64;
pub use seeding::{test_base_seed, SeedSequence, StreamKind};
pub use xoshiro::{splitmix64, Xoshiro256PlusPlus};

/// Scale factor mapping a 53-bit integer in `1..=2^53` onto `(0, 1]`.
const F64_FROM_53: f64 = 1.0 / 9007199254740992.0; // 2^-53

/// A 64-bit pseudorandom generator plus the derived deviates used throughout
/// the library.
///
/// All provided methods are implemented in terms of [`Rng64::next_u64`], so
/// any generator (MT19937-64, xoshiro256++, counter-based test stubs) gets
/// the full API.
pub trait Rng64 {
    /// Return the next raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Uniform deviate from the **half-open interval `(0, 1]`**.
    ///
    /// This is the `rand()` of the paper: never zero, so `ln(rand())` is
    /// always finite. The top 53 bits of the raw output are used, giving a
    /// resolution of 2⁻⁵³.
    #[inline]
    fn rand_oc(&mut self) -> f64 {
        ((self.next_u64() >> 11) + 1) as f64 * F64_FROM_53
    }

    /// Uniform deviate from the half-open interval `[0, 1)`.
    #[inline]
    fn rand_co(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * F64_FROM_53
    }

    /// Uniform deviate from `(a, b]`, the paper's `rand(a, b)`
    /// (`rand(a,b) := a + rand()·(b−a)`, Section 4.1).
    #[inline]
    fn rand_range_oc(&mut self, a: f64, b: f64) -> f64 {
        debug_assert!(a <= b, "rand_range_oc requires a <= b, got ({a}, {b})");
        a + self.rand_oc() * (b - a)
    }

    /// Exponential deviate with rate parameter `rate`, i.e. mean `1/rate`.
    ///
    /// Computed as `−ln(rand())/rate`; this is the "exponential clocks"
    /// primitive of Section 3.1 and the skip-value generator of Section 4.1.
    #[inline]
    fn exponential(&mut self, rate: f64) -> f64 {
        debug_assert!(rate > 0.0, "exponential rate must be positive, got {rate}");
        -self.rand_oc().ln() / rate
    }

    /// Number of items skipped before the next insertion for the **uniform**
    /// sampler: `⌊ln(rand())/ln(1−t)⌋` for threshold `t ∈ (0, 1)`
    /// (Section 4.3, after Devroye).
    ///
    /// Returns `u64::MAX` when the skip does not fit in a `u64` (threshold so
    /// tiny that the jump is astronomically long).
    #[inline]
    fn geometric_skips(&mut self, t: f64) -> u64 {
        debug_assert!(
            t > 0.0 && t < 1.0,
            "geometric threshold must lie in (0,1), got {t}"
        );
        // ln_1p keeps full precision for tiny thresholds where `1.0 - t`
        // would round to 1.0 and the naive formula would divide by zero.
        let x = self.rand_oc().ln() / (-t).ln_1p();
        if x >= u64::MAX as f64 {
            u64::MAX
        } else {
            x as u64
        }
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    fn bernoulli(&mut self, p: f64) -> bool {
        self.rand_co() < p
    }

    /// Uniform integer in `0..n`. `n` must be nonzero.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased and
    /// avoids the modulo operation in the common case.
    #[inline]
    fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below(0) is meaningless");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            // Rejection zone to remove bias.
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Standard normal deviate (Marsaglia polar method).
    fn normal_std(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.rand_co() - 1.0;
            let v = 2.0 * self.rand_co() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Normal deviate with the given mean and standard deviation.
    #[inline]
    fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        debug_assert!(std_dev >= 0.0);
        mean + std_dev * self.normal_std()
    }

    /// Pareto deviate with the given scale (minimum value) and shape.
    ///
    /// Used to generate heavy-tailed weights for the skew experiments and
    /// the heavy-hitter example.
    #[inline]
    fn pareto(&mut self, scale: f64, shape: f64) -> f64 {
        debug_assert!(scale > 0.0 && shape > 0.0);
        scale / self.rand_oc().powf(1.0 / shape)
    }

    /// Poisson deviate with mean `lambda`.
    ///
    /// Knuth's product-of-uniforms method below λ = 64; above that, the
    /// normal approximation `max(0, ⌊N(λ, λ) + ½⌋)` (relative error well
    /// under a percent there, which is all the cluster simulator needs when
    /// Poissonizing per-batch candidate counts).
    fn poisson(&mut self, lambda: f64) -> u64 {
        debug_assert!(lambda >= 0.0, "poisson mean must be nonnegative");
        if lambda == 0.0 {
            return 0;
        }
        if lambda < 64.0 {
            let limit = (-lambda).exp();
            let mut product = self.rand_oc();
            let mut count = 0u64;
            while product > limit {
                product *= self.rand_oc();
                count += 1;
            }
            count
        } else {
            let x = self.normal(lambda, lambda.sqrt());
            if x <= 0.0 {
                0
            } else {
                (x + 0.5) as u64
            }
        }
    }
}

impl<R: Rng64 + ?Sized> Rng64 for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// The default generator used by the library: xoshiro256++ seeded through
/// SplitMix64, matching the recommendation of its authors.
pub type DefaultRng = Xoshiro256PlusPlus;

/// Construct the library's default generator from a 64-bit seed.
pub fn default_rng(seed: u64) -> DefaultRng {
    Xoshiro256PlusPlus::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A generator that plays back a fixed script of raw values; for testing
    /// the derived deviates deterministically.
    struct Script {
        values: Vec<u64>,
        pos: usize,
    }

    impl Rng64 for Script {
        fn next_u64(&mut self) -> u64 {
            let v = self.values[self.pos % self.values.len()];
            self.pos += 1;
            v
        }
    }

    #[test]
    fn rand_oc_is_never_zero_and_at_most_one() {
        let mut rng = Script {
            values: vec![0, u64::MAX, 1 << 11, u64::MAX - 1],
            pos: 0,
        };
        for _ in 0..8 {
            let x = rng.rand_oc();
            assert!(x > 0.0 && x <= 1.0, "rand_oc out of (0,1]: {x}");
        }
        // Raw zero must map to the smallest positive value 2^-53, raw max to 1.
        let mut rng = Script {
            values: vec![0],
            pos: 0,
        };
        assert_eq!(rng.rand_oc(), F64_FROM_53);
        let mut rng = Script {
            values: vec![u64::MAX],
            pos: 0,
        };
        assert_eq!(rng.rand_oc(), 1.0);
    }

    #[test]
    fn rand_co_is_never_one() {
        let mut rng = Script {
            values: vec![u64::MAX, 0],
            pos: 0,
        };
        let x = rng.rand_co();
        assert!(x < 1.0);
        assert_eq!(rng.rand_co(), 0.0);
    }

    #[test]
    fn rand_range_oc_brackets() {
        let mut rng = default_rng(42);
        for _ in 0..10_000 {
            let x = rng.rand_range_oc(2.0, 5.0);
            assert!(x > 2.0 && x <= 5.0);
        }
        // Degenerate interval collapses to the single point.
        assert_eq!(rng.rand_range_oc(3.0, 3.0), 3.0);
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = default_rng(1);
        let n = 200_000;
        for &rate in &[0.5, 1.0, 4.0] {
            let sum: f64 = (0..n).map(|_| rng.exponential(rate)).sum();
            let mean = sum / n as f64;
            let expect = 1.0 / rate;
            assert!(
                (mean - expect).abs() < 0.02 * expect.max(1.0),
                "rate {rate}: mean {mean} vs expected {expect}"
            );
        }
    }

    #[test]
    fn geometric_skips_mean() {
        // E[X] = (1-t)/t for X = #failures before first success.
        let mut rng = default_rng(7);
        let t = 0.05;
        let n = 200_000;
        let sum: u64 = (0..n).map(|_| rng.geometric_skips(t)).sum();
        let mean = sum as f64 / n as f64;
        let expect = (1.0 - t) / t;
        assert!(
            (mean - expect).abs() < 0.05 * expect,
            "mean {mean} vs expected {expect}"
        );
    }

    #[test]
    fn geometric_skips_handles_tiny_threshold() {
        let mut rng = default_rng(3);
        // With t extremely small the skip must be huge but not panic.
        let x = rng.geometric_skips(1e-300);
        assert!(x > 1_000_000);
    }

    #[test]
    fn next_below_is_in_range_and_roughly_uniform() {
        let mut rng = default_rng(1234);
        let n = 10u64;
        let mut counts = [0u32; 10];
        let trials = 100_000;
        for _ in 0..trials {
            let v = rng.next_below(n);
            assert!(v < n);
            counts[v as usize] += 1;
        }
        let expect = trials as f64 / n as f64;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect).abs() < 0.1 * expect,
                "bucket {i} count {c} vs {expect}"
            );
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = default_rng(99);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 9.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn pareto_is_at_least_scale() {
        let mut rng = default_rng(5);
        for _ in 0..10_000 {
            assert!(rng.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn poisson_moments_small_and_large_lambda() {
        let mut rng = default_rng(21);
        for &lambda in &[0.5f64, 5.0, 40.0, 500.0, 20_000.0] {
            let n = 20_000;
            let samples: Vec<u64> = (0..n).map(|_| rng.poisson(lambda)).collect();
            let mean = samples.iter().sum::<u64>() as f64 / n as f64;
            let var = samples
                .iter()
                .map(|&x| (x as f64 - mean).powi(2))
                .sum::<f64>()
                / n as f64;
            assert!(
                (mean - lambda).abs() < 0.05 * lambda.max(1.0),
                "lambda {lambda}: mean {mean}"
            );
            assert!(
                (var - lambda).abs() < 0.1 * lambda.max(1.0),
                "lambda {lambda}: var {var}"
            );
        }
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn bernoulli_probability() {
        let mut rng = default_rng(11);
        let trials = 200_000;
        let hits = (0..trials).filter(|_| rng.bernoulli(0.3)).count();
        let frac = hits as f64 / trials as f64;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }
}
