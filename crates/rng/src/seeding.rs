//! Deterministic derivation of independent per-PE random streams.
//!
//! Distributed runs need every PE to own an independent generator, and
//! experiments need to be reproducible from a single master seed. A
//! [`SeedSequence`] hashes `(master, label, index)` triples through
//! SplitMix64 so that, e.g., the key-generation stream of PE 17 and the
//! pivot-selection stream of PE 17 never share state.

use crate::xoshiro::splitmix64;
use crate::{DefaultRng, Xoshiro256PlusPlus};

/// Well-known stream labels used across the library, so substreams are
/// separated by construction rather than by convention.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamKind {
    /// Item key / skip-distance generation in the samplers.
    Keys,
    /// Pivot choice inside distributed selection.
    Selection,
    /// Workload (weight) generation.
    Workload,
    /// Anything else; carries its own discriminator.
    Custom(u16),
}

impl StreamKind {
    fn tag(self) -> u64 {
        match self {
            StreamKind::Keys => 0x01,
            StreamKind::Selection => 0x02,
            StreamKind::Workload => 0x03,
            StreamKind::Custom(c) => 0x1_0000 + c as u64,
        }
    }
}

/// The base seed randomized *tests* derive their per-trial seeds from.
///
/// Defaults to a fixed constant so test runs are reproducible; set the
/// `RESERVOIR_TEST_SEED` environment variable (decimal, or hex with a `0x`
/// prefix) to re-run a suite under a different seed — e.g. to reproduce or
/// rule out a statistical near-miss. Failing statistical tests print the
/// base seed they ran under.
pub fn test_base_seed() -> u64 {
    match std::env::var("RESERVOIR_TEST_SEED") {
        Ok(v) => parse_seed(&v).unwrap_or_else(|| {
            panic!("RESERVOIR_TEST_SEED must be a u64 (decimal or 0x-hex), got {v:?}")
        }),
        Err(_) => 0x5EED_BA5E_u64,
    }
}

fn parse_seed(v: &str) -> Option<u64> {
    let v = v.trim();
    match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => v.parse().ok(),
    }
}

/// Derives arbitrarily many independent generator seeds from one master seed.
#[derive(Clone, Copy, Debug)]
pub struct SeedSequence {
    master: u64,
}

impl SeedSequence {
    /// Create a sequence rooted at `master`.
    pub fn new(master: u64) -> Self {
        Self { master }
    }

    /// The 64-bit seed for stream `kind` on PE `pe`.
    pub fn seed_for(&self, pe: usize, kind: StreamKind) -> u64 {
        // Mix the three coordinates through consecutive splitmix steps; the
        // chain ensures avalanche across all inputs.
        let mut s = self.master;
        let a = splitmix64(&mut s);
        let mut s2 = a ^ (pe as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let b = splitmix64(&mut s2);
        let mut s3 = b ^ kind.tag().wrapping_mul(0xD134_2543_DE82_EF95);
        splitmix64(&mut s3)
    }

    /// A ready-to-use default generator for stream `kind` on PE `pe`.
    pub fn rng_for(&self, pe: usize, kind: StreamKind) -> DefaultRng {
        Xoshiro256PlusPlus::seed_from_u64(self.seed_for(pe, kind))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng64;
    use std::collections::HashSet;

    #[test]
    fn test_seed_parsing_accepts_decimal_and_hex() {
        assert_eq!(parse_seed("12345"), Some(12345));
        assert_eq!(parse_seed(" 0xABCD "), Some(0xABCD));
        assert_eq!(parse_seed("0Xff"), Some(255));
        assert_eq!(parse_seed("not-a-seed"), None);
        // The env-driven entry point is stable within a process.
        assert_eq!(test_base_seed(), test_base_seed());
    }

    #[test]
    fn seeds_are_deterministic() {
        let s1 = SeedSequence::new(42);
        let s2 = SeedSequence::new(42);
        assert_eq!(
            s1.seed_for(3, StreamKind::Keys),
            s2.seed_for(3, StreamKind::Keys)
        );
    }

    #[test]
    fn seeds_differ_across_pes_kinds_and_masters() {
        let seq = SeedSequence::new(1);
        let mut seen = HashSet::new();
        for pe in 0..64 {
            for kind in [
                StreamKind::Keys,
                StreamKind::Selection,
                StreamKind::Workload,
                StreamKind::Custom(0),
                StreamKind::Custom(1),
            ] {
                assert!(
                    seen.insert(seq.seed_for(pe, kind)),
                    "collision at pe={pe} kind={kind:?}"
                );
            }
        }
        let other = SeedSequence::new(2);
        assert!(
            !seen.contains(&other.seed_for(0, StreamKind::Keys)),
            "different master produced a colliding seed (astronomically unlikely)"
        );
    }

    #[test]
    fn rng_for_produces_usable_stream() {
        let seq = SeedSequence::new(7);
        let mut rng = seq.rng_for(0, StreamKind::Workload);
        let x = rng.rand_oc();
        assert!(x > 0.0 && x <= 1.0);
    }

    #[test]
    fn custom_streams_are_separated() {
        let seq = SeedSequence::new(9);
        assert_ne!(
            seq.seed_for(0, StreamKind::Custom(7)),
            seq.seed_for(0, StreamKind::Custom(8))
        );
    }
}
