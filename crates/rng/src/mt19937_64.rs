//! MT19937-64 — the 64-bit Mersenne Twister of Matsumoto & Nishimura (2004).
//!
//! This is a from-scratch reimplementation of the reference C code
//! (`mt19937-64.c`). The paper's implementation draws its random numbers from
//! Intel MKL's Mersenne Twister; this module is the drop-in open substitute.
//! The unit tests check the exact first outputs of the reference
//! implementation for the canonical array seed, so any deviation from the
//! published algorithm fails CI.

use crate::Rng64;

const NN: usize = 312;
const MM: usize = 156;
const MATRIX_A: u64 = 0xB502_6F5A_A966_19E9;
/// Most significant 33 bits.
const UM: u64 = 0xFFFF_FFFF_8000_0000;
/// Least significant 31 bits.
const LM: u64 = 0x7FFF_FFFF;

/// The MT19937-64 generator state: 312 words plus a cursor.
#[derive(Clone)]
pub struct Mt19937_64 {
    mt: [u64; NN],
    mti: usize,
}

impl std::fmt::Debug for Mt19937_64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mt19937_64")
            .field("mti", &self.mti)
            .finish_non_exhaustive()
    }
}

impl Mt19937_64 {
    /// Initialize from a single 64-bit seed (`init_genrand64`).
    pub fn new(seed: u64) -> Self {
        let mut mt = [0u64; NN];
        mt[0] = seed;
        for i in 1..NN {
            mt[i] = 6364136223846793005u64
                .wrapping_mul(mt[i - 1] ^ (mt[i - 1] >> 62))
                .wrapping_add(i as u64);
        }
        Self { mt, mti: NN }
    }

    /// Initialize from an array of seeds (`init_by_array64`), as used by the
    /// reference test vector.
    pub fn from_seed_array(key: &[u64]) -> Self {
        let mut gen = Self::new(19650218);
        let mut i = 1usize;
        let mut j = 0usize;
        let mut k = NN.max(key.len());
        while k > 0 {
            gen.mt[i] = (gen.mt[i]
                ^ (gen.mt[i - 1] ^ (gen.mt[i - 1] >> 62)).wrapping_mul(3935559000370003845))
            .wrapping_add(key[j])
            .wrapping_add(j as u64);
            i += 1;
            j += 1;
            if i >= NN {
                gen.mt[0] = gen.mt[NN - 1];
                i = 1;
            }
            if j >= key.len() {
                j = 0;
            }
            k -= 1;
        }
        k = NN - 1;
        while k > 0 {
            gen.mt[i] = (gen.mt[i]
                ^ (gen.mt[i - 1] ^ (gen.mt[i - 1] >> 62)).wrapping_mul(2862933555777941757))
            .wrapping_sub(i as u64);
            i += 1;
            if i >= NN {
                gen.mt[0] = gen.mt[NN - 1];
                i = 1;
            }
            k -= 1;
        }
        gen.mt[0] = 1 << 63; // MSB is 1, assuring a non-zero initial state.
        gen.mti = NN;
        gen
    }

    /// Regenerate the state block of `NN` words (the "twist").
    #[cold]
    fn twist(&mut self) {
        for i in 0..NN - MM {
            let x = (self.mt[i] & UM) | (self.mt[i + 1] & LM);
            self.mt[i] = self.mt[i + MM] ^ (x >> 1) ^ if x & 1 == 1 { MATRIX_A } else { 0 };
        }
        for i in NN - MM..NN - 1 {
            let x = (self.mt[i] & UM) | (self.mt[i + 1] & LM);
            self.mt[i] = self.mt[i + MM - NN] ^ (x >> 1) ^ if x & 1 == 1 { MATRIX_A } else { 0 };
        }
        let x = (self.mt[NN - 1] & UM) | (self.mt[0] & LM);
        self.mt[NN - 1] = self.mt[MM - 1] ^ (x >> 1) ^ if x & 1 == 1 { MATRIX_A } else { 0 };
        self.mti = 0;
    }
}

impl Rng64 for Mt19937_64 {
    fn next_u64(&mut self) -> u64 {
        if self.mti >= NN {
            self.twist();
        }
        let mut x = self.mt[self.mti];
        self.mti += 1;
        // Tempering.
        x ^= (x >> 29) & 0x5555_5555_5555_5555;
        x ^= (x << 17) & 0x71D6_7FFF_EDA6_0000;
        x ^= (x << 37) & 0xFFF7_EEE0_0000_0000;
        x ^= x >> 43;
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// First ten outputs of the reference `mt19937-64.c` when seeded with
    /// `init_by_array64({0x12345, 0x23456, 0x34567, 0x45678})`.
    const REFERENCE: [u64; 10] = [
        7266447313870364031,
        4946485549665804864,
        16945909448695747420,
        16394063075524226720,
        4873882236456199058,
        14877448043947020171,
        6740343660852211943,
        13857871200353263164,
        5249110015610582907,
        10205081126064480383,
    ];

    #[test]
    fn matches_reference_vector() {
        let mut gen = Mt19937_64::from_seed_array(&[0x12345, 0x23456, 0x34567, 0x45678]);
        for (i, &want) in REFERENCE.iter().enumerate() {
            let got = gen.next_u64();
            assert_eq!(got, want, "output {i} mismatch");
        }
    }

    #[test]
    fn reference_vector_survives_twist_boundary() {
        // Drain two full state blocks; the 1000th value of the reference
        // output file is also well known: the test here checks determinism
        // across twists rather than a published constant.
        let mut a = Mt19937_64::from_seed_array(&[0x12345, 0x23456, 0x34567, 0x45678]);
        let mut b = a.clone();
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn single_seed_is_deterministic_and_seed_sensitive() {
        let mut a = Mt19937_64::new(5489);
        let mut b = Mt19937_64::new(5489);
        let mut c = Mt19937_64::new(5490);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..100).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn uniform_deviates_look_uniform() {
        let mut gen = Mt19937_64::new(12345);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| gen.rand_co()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }
}
