//! xoshiro256++ (Blackman & Vigna) and the SplitMix64 seeding helper.
//!
//! xoshiro256++ is the library's default generator: it is an order of
//! magnitude faster than the Mersenne Twister, passes BigCrush, and has a
//! 256-bit state that is cheap to replicate per PE. The `jump()` function
//! provides 2¹²⁸ non-overlapping subsequences for embarrassingly parallel
//! use, mirroring how MKL streams are split across MPI ranks in the paper's
//! implementation.

use crate::Rng64;

/// One step of the SplitMix64 generator; also used as a seed mixer.
///
/// SplitMix64 is a fixed-increment Weyl sequence passed through a
/// finalizer; feeding sequential integers produces well-distributed outputs,
/// which is exactly what seed derivation needs.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The xoshiro256++ generator.
#[derive(Clone, Debug)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Seed from four raw state words. At least one must be nonzero.
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(
            s.iter().any(|&w| w != 0),
            "xoshiro256++ state must not be all-zero"
        );
        Self { s }
    }

    /// Seed from a single 64-bit value by running SplitMix64, as recommended
    /// by the generator's authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // All-zero output from splitmix for 4 consecutive values is
        // impossible, but keep the invariant explicit.
        Self::from_state(s)
    }

    /// Advance the state by 2¹²⁸ steps, yielding a non-overlapping
    /// subsequence. Calling `jump` r times on PE r gives independent
    /// per-PE streams from one master seed.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180e_c6d3_3cfd_0aba,
            0xd5a6_1266_f0c9_392c,
            0xa958_2618_e03f_c9aa,
            0x39ab_dc45_29b1_661c,
        ];
        let mut t = [0u64; 4];
        for &jump_word in JUMP.iter() {
            for bit in 0..64 {
                if (jump_word >> bit) & 1 == 1 {
                    for (ti, si) in t.iter_mut().zip(self.s.iter()) {
                        *ti ^= si;
                    }
                }
                self.next_u64();
            }
        }
        self.s = t;
    }
}

#[inline(always)]
fn rotl(x: u64, k: u32) -> u64 {
    x.rotate_left(k)
}

impl Rng64 for Xoshiro256PlusPlus {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = rotl(self.s[3], 45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_outputs() {
        // Reference values produced by the canonical C implementation with
        // state {1, 2, 3, 4}.
        let mut g = Xoshiro256PlusPlus::from_state([1, 2, 3, 4]);
        let expected: [u64; 6] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
        ];
        for (i, &want) in expected.iter().enumerate() {
            assert_eq!(g.next_u64(), want, "output {i}");
        }
    }

    #[test]
    fn splitmix_reference() {
        // From the SplitMix64 reference: seed 0 produces these first values.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut s), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn jump_streams_do_not_overlap_prefix() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(7);
        let mut b = a.clone();
        b.jump();
        let xs: Vec<u64> = (0..1000).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..1000).map(|_| b.next_u64()).collect();
        // The prefixes of jumped streams must differ everywhere in practice.
        assert!(xs.iter().zip(&ys).all(|(x, y)| x != y));
    }

    #[test]
    #[should_panic(expected = "all-zero")]
    fn zero_state_rejected() {
        let _ = Xoshiro256PlusPlus::from_state([0; 4]);
    }

    #[test]
    fn seed_from_u64_differs_by_seed() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(1);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
