//! Minimal offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small subset of proptest's API its test-suite uses:
//! random-input generation driven by a deterministic per-test seed, with
//! plain `assert!`-style failure (no shrinking). Strategies are evaluated
//! afresh for every case, and each `proptest!` test runs
//! [`ProptestConfig::cases`] cases.
//!
//! Supported surface: `proptest!` with a leading
//! `#![proptest_config(...)]`, `Strategy` + `prop_map`, ranges over
//! primitive integers / `f64`, 2-tuples of strategies, `any::<T>()`,
//! `Just`, `prop_oneof!` (weighted), `prop::collection::{vec, btree_set}`,
//! and the `prop_assert*` / `prop_assume!` macros.

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic generator for test inputs (SplitMix64).
pub struct TestRng(u64);

impl TestRng {
    /// Seed the generator; each test derives its seed from its name so
    /// failures reproduce across runs.
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Derive a seed from a test's name, mixed with the suite-wide base
    /// seed (`RESERVOIR_TEST_SEED` env override, decimal or 0x-hex), so a
    /// failing case can be reproduced — or the whole suite re-rolled —
    /// from the environment.
    pub fn seed_from_name(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ base_seed_from_env();
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The suite-wide base seed: the same `RESERVOIR_TEST_SEED` knob (and the
/// same default, so setting the variable to the default is a no-op for
/// the whole workspace) as `reservoir_rng::test_base_seed`. Duplicated
/// here because the dev-shims stand below every workspace crate; keep the
/// parsing in sync with `reservoir-rng`'s.
pub fn base_seed_from_env() -> u64 {
    match std::env::var("RESERVOIR_TEST_SEED") {
        Ok(v) => {
            let v = v.trim();
            match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => v.parse(),
            }
            .unwrap_or_else(|_| panic!("RESERVOIR_TEST_SEED must be a u64, got {v:?}"))
        }
        Err(_) => 0x5EED_BA5E,
    }
}

/// Drop guard that reports the failing case's reproduction recipe when a
/// property-test body panics (the shim has no shrinking, so the seed and
/// case index are the whole recipe).
pub struct FailureReporter {
    /// The per-test derived seed.
    pub seed: u64,
    /// Zero-based index of the running case.
    pub case: u32,
}

impl Drop for FailureReporter {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest case {} failed under derived seed {:#x} \
                 (base seed: RESERVOIR_TEST_SEED, default 0); \
                 re-run with the same environment to reproduce",
                self.case, self.seed
            );
        }
    }
}

/// Run configuration for a `proptest!` block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random test inputs.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i32);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i32, i64);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Arbitrary bit patterns: includes infinities and NaN, like the
        // real crate's `any::<f64>()`.
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An arbitrary value of type `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Weighted union of boxed strategies (built by `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
}

impl<V> Union<V> {
    /// Build from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }

    /// Box a strategy for storage in a union.
    pub fn boxed<S: Strategy<Value = V> + 'static>(s: S) -> Box<dyn Strategy<Value = V>> {
        Box::new(s)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.below(total.max(1));
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        self.arms.last().expect("nonempty").1.generate(rng)
    }
}

/// Collection strategies (`prop::collection::*`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::collections::BTreeSet;
        use std::ops::Range;

        /// A `Vec` of `size` elements drawn from `element`.
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// Vector of values from `element`, length in `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.size.generate(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// A `BTreeSet` built from up to `size` draws of `element`
        /// (duplicates collapse, like the real crate).
        pub struct BTreeSetStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// Set of values from `element`, at most `size.end - 1` draws.
        pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            BTreeSetStrategy { element, size }
        }

        impl<S> Strategy for BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            type Value = BTreeSet<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
                let len = self.size.generate(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a test file needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy,
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let seed = $crate::TestRng::seed_from_name(stringify!($name));
                let mut rng = $crate::TestRng::new(seed);
                for _case in 0..config.cases {
                    let _failure_reporter = $crate::FailureReporter { seed, case: _case };
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    // The closure gives `prop_assume!` an early exit.
                    #[allow(clippy::redundant_closure_call)]
                    (|| { $body })();
                    ::std::mem::forget(_failure_reporter);
                }
            }
        )*
    };
}

/// Weighted choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $( ($weight as u32, $crate::Union::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $( (1u32, $crate::Union::boxed($strat)) ),+
        ])
    };
}

/// Assert within a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality within a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality within a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

// Re-export for macro hygiene at the crate root.
pub use prop::collection;

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_collections_generate_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..100 {
            let x = (3u64..10).generate(&mut rng);
            assert!((3..10).contains(&x));
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
            let v = prop::collection::vec(0u32..5, 2..6).generate(&mut rng);
            assert!(v.len() >= 2 && v.len() < 6);
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let strat = prop_oneof![
            1 => Just(0u8),
            1 => Just(1u8),
            2 => Just(2u8),
        ];
        let mut rng = crate::TestRng::new(7);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_roundtrip(x in 0u32..100, pair in (0u64..5, any::<bool>())) {
            prop_assume!(x != 1);
            prop_assert!(x < 100);
            prop_assert_eq!(pair.0.min(4), pair.0);
        }
    }
}
