//! Minimal offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the tiny subset of criterion's API its benches use: benchmark
//! groups, `bench_function` / `bench_with_input`, and the
//! `criterion_group!` / `criterion_main!` macros. Timing is a plain
//! warm-up + measured-loop mean; results print one line per benchmark.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Minimum number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Target wall-clock budget for the measurement loop.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Wall-clock budget for the warm-up loop.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { criterion: self }
    }
}

/// Identifier combining a benchmark name and a parameter value.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }
}

/// A named group of benchmarks sharing the driver's configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.criterion.sample_size,
            measurement_time: self.criterion.measurement_time,
            warm_up_time: self.criterion.warm_up_time,
            mean: None,
        };
        f(&mut bencher);
        match bencher.mean {
            Some(mean) => println!("  {id}: {:.3e} s/iter", mean),
            None => println!("  {id}: no measurement"),
        }
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = id.id.clone();
        self.bench_function(name, |b| f(b, input))
    }

    /// End the group (printing is incremental; nothing left to do).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; `iter` runs and times the workload.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    mean: Option<f64>,
}

impl Bencher {
    /// Time `f`, first warming up, then looping until the measurement
    /// budget or the sample size is reached — whichever is later.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_until = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_until {
            std::hint::black_box(f());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while iters < self.sample_size as u64 || start.elapsed() < self.measurement_time {
            std::hint::black_box(f());
            iters += 1;
        }
        self.mean = Some(start.elapsed().as_secs_f64() / iters as f64);
    }
}

/// Bundle benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )*
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $( $group(); )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        let mut group = c.benchmark_group("tiny");
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("sq", 3), &3u64, |b, &x| b.iter(|| x * x));
        group.finish();
    }

    #[test]
    fn runs_and_records_a_mean() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        tiny(&mut c);
    }

    criterion_group! {
        name = demo;
        config = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(2))
            .warm_up_time(Duration::from_millis(1));
        targets = tiny
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        demo();
    }
}
