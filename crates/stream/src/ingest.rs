//! Push-based streaming ingestion with backpressure.
//!
//! The paper's mini-batch model (Section 3) assumes batches *arrive* at
//! the PEs; the rest of this workspace pulls synthetic batches out of
//! [`StreamSpec`](crate::StreamSpec)/[`StreamSource`]. This module is the
//! front door for workloads that **push** records instead:
//!
//! ```text
//! RecordSource ──record──▶ Batcher ──bounded mpsc──▶ sampler pipeline
//!  (adapters)              size/deadline cuts         drain → process_batch
//! ```
//!
//! * [`RecordSource`] — anything that yields records one at a time:
//!   [`SyntheticRecords`] adapts the existing generators, [`ReplayRecords`]
//!   replays a recorded slice, [`SkewShiftRecords`] shifts its weight
//!   distribution mid-stream (scenario diversity), [`PacedRecords`] slows
//!   any source down to exercise time-driven cuts.
//! * [`Batcher`] — accumulates pushed records and cuts a [`MiniBatch`]
//!   when the buffer reaches [`BatchPolicy::max_items`] (count-driven
//!   boundary) or the oldest buffered record has waited longer than
//!   [`BatchPolicy::deadline`] (time-driven boundary — the discretized
//!   streams model).
//! * **Backpressure** — batches travel over a bounded
//!   [`std::sync::mpsc::sync_channel`]. When downstream selection rounds
//!   are slower than the source, the producer's `send` blocks (the wait is
//!   recorded in [`IngestCounters::blocked_send_s`]) instead of queueing
//!   without limit: a slow consumer throttles the source, it does not OOM
//!   the process.
//! * [`spawn_source`] — the pump: one producer thread per PE draining a
//!   [`RecordSource`] into a [`Batcher`]; the PE's sampler loop owns the
//!   receiving end (`DistributedSampler::run_pipeline` in
//!   `reservoir-core`).
//!
//! Every pushed record is delivered exactly once across the cut batches,
//! in push order; `close`/`flush` never lose residual records
//! (`crates/stream/tests/batcher_props.rs` holds these properties under
//! the proptest harness).

use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::time::{Duration, Instant};

use reservoir_obs::{trace, LazyCounter, LazyGauge, TraceKind, PE_UNRANKED};
use reservoir_rng::{DefaultRng, SeedSequence, StreamKind};

use crate::gen::{IdStream, WeightGen};

/// Registry views of [`IngestCounters`] (which stay the per-batcher
/// source of truth — these aggregate across every batcher in the
/// process, so a dashboard sees the front door without plumbing).
static INGEST_RECORDS: LazyCounter = LazyCounter::new(
    "ingest_records_total",
    "records accepted by ingestion batchers (all batchers, process-wide)",
);
static INGEST_BATCHES: LazyCounter = LazyCounter::new(
    "ingest_batches_total",
    "mini-batches cut by ingestion batchers (all reasons)",
);
static INGEST_SIZE_CUTS: LazyCounter = LazyCounter::new(
    "ingest_size_cuts_total",
    "mini-batch cuts triggered by the size bound",
);
static INGEST_DEADLINE_FLUSHES: LazyCounter = LazyCounter::new(
    "ingest_deadline_flushes_total",
    "mini-batch cuts triggered by the deadline (time-driven boundaries)",
);
static INGEST_BLOCKED_SEND: LazyGauge = LazyGauge::new(
    "ingest_blocked_send_seconds",
    "seconds producers spent blocked on the bounded batch channel (backpressure)",
);
use crate::source::StreamSource;
use crate::Item;

/// A push-style record producer: the ingestion pump drains it one record
/// at a time into a [`Batcher`].
///
/// `None` means the stream ended; the pump then flushes and closes the
/// batcher. Sources are consumed on a producer thread, so they must be
/// [`Send`].
pub trait RecordSource: Send {
    /// The next record, or `None` once the stream is exhausted.
    fn next_record(&mut self) -> Option<Item>;

    /// Total records this source will still emit, when known (used only
    /// for diagnostics; `None` for unbounded/unknown sources).
    fn remaining_hint(&self) -> Option<u64> {
        None
    }
}

/// Adapter over the existing synthetic generators: pulls mini-batches from
/// a [`StreamSource`] in chunks (via the buffer-reusing
/// [`StreamSource::next_batch_of_into`], so the refill path performs no
/// per-chunk allocation) and emits them record by record, up to a total
/// record budget.
#[derive(Debug)]
pub struct SyntheticRecords {
    src: StreamSource,
    remaining: u64,
    chunk: usize,
    buf: Vec<Item>,
    pos: usize,
}

impl SyntheticRecords {
    /// Emit `records` records from `src` (which keeps its own
    /// deterministic per-`(seed, pe)` randomness).
    pub fn new(src: StreamSource, records: u64) -> Self {
        SyntheticRecords {
            src,
            remaining: records,
            chunk: 1024,
            buf: Vec::new(),
            pos: 0,
        }
    }

    /// Refill granularity (records pulled from the generator at once).
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        assert!(chunk >= 1, "chunk must be at least 1");
        self.chunk = chunk;
        self
    }
}

impl RecordSource for SyntheticRecords {
    fn next_record(&mut self) -> Option<Item> {
        if self.remaining == 0 {
            return None;
        }
        if self.pos == self.buf.len() {
            let n = self.remaining.min(self.chunk as u64) as usize;
            self.src.next_batch_of_into(n, &mut self.buf);
            self.pos = 0;
        }
        self.remaining -= 1;
        let item = self.buf[self.pos];
        self.pos += 1;
        Some(item)
    }

    fn remaining_hint(&self) -> Option<u64> {
        Some(self.remaining)
    }
}

/// Replays a recorded slice of items in order — the bridge for real
/// workloads that already hold their records in memory, and the
/// deterministic source the pipeline acceptance tests are built on.
#[derive(Clone, Debug)]
pub struct ReplayRecords {
    items: Vec<Item>,
    pos: usize,
}

impl ReplayRecords {
    /// Replay `items` front to back.
    pub fn new(items: Vec<Item>) -> Self {
        ReplayRecords { items, pos: 0 }
    }

    /// Replay a borrowed slice (copied once up front).
    pub fn from_slice(items: &[Item]) -> Self {
        Self::new(items.to_vec())
    }
}

impl RecordSource for ReplayRecords {
    fn next_record(&mut self) -> Option<Item> {
        let item = self.items.get(self.pos).copied();
        self.pos += item.is_some() as usize;
        item
    }

    fn remaining_hint(&self) -> Option<u64> {
        Some((self.items.len() - self.pos) as u64)
    }
}

/// A source whose weight distribution shifts as the stream progresses:
/// a schedule of `(WeightGen, records)` segments played back to back.
/// Each segment's generator sees the segment index as its batch index, so
/// e.g. [`WeightGen::paper_skewed`] drifts segment over segment — the
/// "workload changes under the sampler" scenario the fixed generators
/// cannot produce.
#[derive(Debug)]
pub struct SkewShiftRecords {
    pe: usize,
    segments: Vec<(WeightGen, u64)>,
    seg: usize,
    emitted_in_seg: u64,
    ids: IdStream,
    rng: DefaultRng,
}

impl SkewShiftRecords {
    /// A shifting stream for PE `pe`: plays every `(generator, records)`
    /// segment in order. Randomness is the same per-`(seed, pe)` scheme as
    /// [`StreamSpec::source_for`](crate::StreamSpec::source_for).
    pub fn new(pe: usize, seed: u64, segments: Vec<(WeightGen, u64)>) -> Self {
        assert!(!segments.is_empty(), "need at least one segment");
        SkewShiftRecords {
            pe,
            segments,
            seg: 0,
            emitted_in_seg: 0,
            ids: IdStream::new(pe),
            rng: SeedSequence::new(seed).rng_for(pe, StreamKind::Workload),
        }
    }
}

impl RecordSource for SkewShiftRecords {
    fn next_record(&mut self) -> Option<Item> {
        while let Some(&(gen, count)) = self.segments.get(self.seg) {
            if self.emitted_in_seg < count {
                self.emitted_in_seg += 1;
                let w = gen.sample(self.pe, self.seg as u64, &mut self.rng);
                return Some(Item::new(self.ids.next_id(), w));
            }
            self.seg += 1;
            self.emitted_in_seg = 0;
        }
        None
    }

    fn remaining_hint(&self) -> Option<u64> {
        let mut left = 0;
        for (i, &(_, count)) in self.segments.iter().enumerate().skip(self.seg) {
            left += count
                - if i == self.seg {
                    self.emitted_in_seg
                } else {
                    0
                };
        }
        Some(left)
    }
}

/// Slows an inner source down: sleeps `pause` before every `every`-th
/// record. Turns any source into a sparse arrival process, which is what
/// makes deadline cuts (and backpressure measurements) observable.
#[derive(Debug)]
pub struct PacedRecords<S> {
    inner: S,
    every: u64,
    pause: Duration,
    emitted: u64,
}

impl<S: RecordSource> PacedRecords<S> {
    /// Pause for `pause` before every `every`-th record of `inner`.
    pub fn new(inner: S, every: u64, pause: Duration) -> Self {
        assert!(every >= 1, "pause interval must be at least 1");
        PacedRecords {
            inner,
            every,
            pause,
            emitted: 0,
        }
    }
}

impl<S: RecordSource> RecordSource for PacedRecords<S> {
    fn next_record(&mut self) -> Option<Item> {
        if self.emitted.is_multiple_of(self.every) && !self.pause.is_zero() {
            std::thread::sleep(self.pause);
        }
        self.emitted += 1;
        self.inner.next_record()
    }

    fn remaining_hint(&self) -> Option<u64> {
        self.inner.remaining_hint()
    }
}

/// When a [`Batcher`] cuts a mini-batch.
#[derive(Clone, Copy, Debug)]
pub struct BatchPolicy {
    /// Cut when the buffer holds this many records (the paper's `b`).
    pub max_items: usize,
    /// Cut a non-empty buffer whose oldest record has waited this long
    /// (checked on every push and on [`Batcher::poll_deadline`]). `None`
    /// makes batch boundaries purely count-driven.
    pub deadline: Option<Duration>,
}

impl BatchPolicy {
    /// Count-driven boundaries only: cut every `max_items` records.
    pub fn by_size(max_items: usize) -> Self {
        assert!(max_items >= 1, "batches must hold at least one record");
        BatchPolicy {
            max_items,
            deadline: None,
        }
    }

    /// Additionally cut when the oldest buffered record has waited
    /// `deadline` (the time-driven boundaries of discretized streams).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Why a [`MiniBatch`] was cut.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CutReason {
    /// The buffer reached [`BatchPolicy::max_items`].
    Size,
    /// The oldest buffered record exceeded [`BatchPolicy::deadline`].
    Deadline,
    /// An explicit [`Batcher::flush`] or the final flush in
    /// [`Batcher::close`].
    Flush,
}

/// One cut mini-batch travelling from a [`Batcher`] to a sampler pipeline.
#[derive(Debug)]
pub struct MiniBatch {
    /// The records, in push order.
    pub items: Vec<Item>,
    /// What triggered the cut.
    pub cut: CutReason,
    /// Zero-based batch sequence number on this producer.
    pub seq: u64,
}

/// Ingestion-side counters, surfaced so operators can see whether the
/// front door (and not the sampler) is the bottleneck.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct IngestCounters {
    /// Records accepted by [`Batcher::push`].
    pub records_in: u64,
    /// Mini-batches cut (all reasons).
    pub batches_cut: u64,
    /// Cuts triggered by the size bound.
    pub size_cuts: u64,
    /// Cuts triggered by the deadline.
    pub deadline_flushes: u64,
    /// Seconds the producer spent blocked in `send` because the channel
    /// was full — the backpressure the bounded channel applied.
    pub blocked_send_s: f64,
}

/// The consumer hung up: the receiving end of the batch channel was
/// dropped, so no further records can be delivered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IngestClosed;

impl std::fmt::Display for IngestClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ingestion channel closed: batch receiver was dropped")
    }
}

impl std::error::Error for IngestClosed {}

/// Accumulates pushed records and cuts mini-batches on size or deadline
/// into a bounded channel (see the [module docs](self) for the topology).
#[derive(Debug)]
pub struct Batcher {
    tx: SyncSender<MiniBatch>,
    policy: BatchPolicy,
    buf: Vec<Item>,
    /// When the oldest record of the current buffer arrived.
    opened_at: Option<Instant>,
    seq: u64,
    counters: IngestCounters,
}

impl Batcher {
    /// A batcher cutting batches per `policy` into a bounded channel
    /// holding at most `capacity` in-flight batches. Returns the batcher
    /// (producer side) and the receiver the sampler pipeline drains.
    pub fn new(policy: BatchPolicy, capacity: usize) -> (Batcher, Receiver<MiniBatch>) {
        assert!(capacity >= 1, "channel capacity must be at least 1");
        let (tx, rx) = sync_channel(capacity);
        (
            Batcher {
                tx,
                policy,
                buf: Vec::with_capacity(policy.max_items),
                opened_at: None,
                seq: 0,
                counters: IngestCounters::default(),
            },
            rx,
        )
    }

    /// Push one record. Cuts and sends a batch when the size bound is
    /// reached, after first flushing a buffer whose deadline expired. May
    /// block on a full channel (backpressure); the blocked time accrues in
    /// [`IngestCounters::blocked_send_s`].
    pub fn push(&mut self, item: Item) -> Result<(), IngestClosed> {
        self.poll_deadline()?;
        if self.buf.is_empty() {
            self.opened_at = Some(Instant::now());
        }
        self.buf.push(item);
        self.counters.records_in += 1;
        INGEST_RECORDS.inc();
        if self.buf.len() >= self.policy.max_items {
            self.cut(CutReason::Size)?;
        }
        Ok(())
    }

    /// Cut the buffered records now if the deadline expired; returns
    /// whether a batch was sent. Drivers with sparse sources call this
    /// between arrivals so a trickle of records still becomes batches.
    pub fn poll_deadline(&mut self) -> Result<bool, IngestClosed> {
        let expired = match (self.policy.deadline, self.opened_at) {
            (Some(deadline), Some(opened)) => !self.buf.is_empty() && opened.elapsed() >= deadline,
            _ => false,
        };
        if expired {
            self.cut(CutReason::Deadline)?;
        }
        Ok(expired)
    }

    /// Cut whatever is buffered as a batch, regardless of size or age.
    pub fn flush(&mut self) -> Result<(), IngestClosed> {
        if !self.buf.is_empty() {
            self.cut(CutReason::Flush)?;
        }
        Ok(())
    }

    /// Flush residual records and close the channel (the receiver's
    /// `recv` then reports disconnection, ending the pipeline drain).
    /// Returns the final counters.
    pub fn close(mut self) -> IngestCounters {
        // A hung-up receiver means the residual records have nowhere to
        // go; the counters still report everything that happened.
        let _ = self.flush();
        self.counters
    }

    /// Counters so far.
    pub fn counters(&self) -> IngestCounters {
        self.counters
    }

    /// Time until the oldest buffered record hits the deadline
    /// (zero if already past it); `None` when no deadline is configured
    /// or nothing is buffered.
    fn time_to_deadline(&self) -> Option<Duration> {
        let deadline = self.policy.deadline?;
        let opened = self.opened_at.filter(|_| !self.buf.is_empty())?;
        Some(deadline.saturating_sub(opened.elapsed()))
    }

    /// Records currently buffered (not yet cut into a batch).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    fn cut(&mut self, cut: CutReason) -> Result<(), IngestClosed> {
        debug_assert!(!self.buf.is_empty(), "cut of an empty buffer");
        let items = std::mem::replace(&mut self.buf, Vec::with_capacity(self.policy.max_items));
        let len = items.len() as u64;
        self.opened_at = None;
        let batch = MiniBatch {
            items,
            cut,
            seq: self.seq,
        };
        // Fast path: room in the channel. Slow path: measure how long
        // backpressure stalls the producer.
        let batch = match self.tx.try_send(batch) {
            Ok(()) => {
                self.record_cut(cut, len);
                return Ok(());
            }
            Err(TrySendError::Disconnected(_)) => return Err(IngestClosed),
            Err(TrySendError::Full(batch)) => batch,
        };
        let blocked = Instant::now();
        let sent = self.tx.send(batch);
        let stalled = blocked.elapsed().as_secs_f64();
        self.counters.blocked_send_s += stalled;
        INGEST_BLOCKED_SEND.add(stalled);
        match sent {
            Ok(()) => {
                self.record_cut(cut, len);
                Ok(())
            }
            Err(_) => Err(IngestClosed),
        }
    }

    fn record_cut(&mut self, cut: CutReason, len: u64) {
        self.seq += 1;
        self.counters.batches_cut += 1;
        INGEST_BATCHES.inc();
        match cut {
            CutReason::Size => {
                self.counters.size_cuts += 1;
                INGEST_SIZE_CUTS.inc();
            }
            CutReason::Deadline => {
                self.counters.deadline_flushes += 1;
                INGEST_DEADLINE_FLUSHES.inc();
                trace::emit(PE_UNRANKED, TraceKind::DeadlineFlush, len, 0);
            }
            CutReason::Flush => {}
        }
    }
}

/// The producer half of a pumped source: the receiver to hand to the
/// sampler pipeline plus the producer thread's join handle.
pub struct IngestHandle {
    receiver: Option<Receiver<MiniBatch>>,
    join: std::thread::JoinHandle<IngestCounters>,
}

impl IngestHandle {
    /// The batch receiver (available exactly once).
    pub fn take_receiver(&mut self) -> Receiver<MiniBatch> {
        self.receiver.take().expect("receiver already taken")
    }

    /// Wait for the producer thread to finish and return its counters.
    /// Call after the pipeline drained the channel (or dropped the
    /// receiver — the producer then stops at its next send).
    pub fn join(self) -> IngestCounters {
        self.join.join().expect("ingest producer thread panicked")
    }
}

/// Pump `source` through a [`Batcher`] on a dedicated producer thread:
/// the per-PE ingestion topology (source thread → bounded channel → the
/// PE's sampler loop). With a deadline configured the pump ticks it during
/// idle gaps too — a reader thread pulls the (possibly blocking) source
/// while the pump waits with a bounded timeout — so a trickle of records
/// still becomes batches no later than one deadline after arrival, even if
/// the source then stalls indefinitely. Without a deadline the pump is a
/// single thread draining the source directly.
pub fn spawn_source<S: RecordSource + 'static>(
    source: S,
    policy: BatchPolicy,
    capacity: usize,
) -> IngestHandle {
    let (batcher, rx) = Batcher::new(policy, capacity);
    let join = std::thread::Builder::new()
        .name("reservoir-ingest".into())
        .spawn(move || pump(source, batcher))
        .expect("failed to spawn ingest producer thread");
    IngestHandle {
        receiver: Some(rx),
        join,
    }
}

fn pump<S: RecordSource>(mut source: S, mut batcher: Batcher) -> IngestCounters {
    match batcher.policy.deadline {
        Some(deadline) => pump_with_deadline(source, batcher, deadline),
        None => {
            // Purely count-driven boundaries: a buffered record never
            // ages out, so blocking in the source is harmless.
            while let Some(record) = source.next_record() {
                if batcher.push(record).is_err() {
                    // Consumer hung up; stop producing.
                    break;
                }
            }
            batcher.close()
        }
    }
}

/// The deadline-aware pump. `next_record` may block arbitrarily long
/// between arrivals, and nothing else would fire the deadline in that
/// gap — records already buffered would stall until the next arrival
/// (or forever, for a source that never yields again). So the source is
/// drained on its own reader thread while the pump waits on a bounded
/// `recv_timeout` keyed to the oldest buffered record's remaining
/// lifetime, cutting the batch on expiry.
fn pump_with_deadline<S: RecordSource>(
    mut source: S,
    mut batcher: Batcher,
    deadline: Duration,
) -> IngestCounters {
    let (tx, rx) = sync_channel::<Item>(batcher.policy.max_items.max(1));
    std::thread::scope(|s| {
        s.spawn(move || {
            while let Some(record) = source.next_record() {
                if tx.send(record).is_err() {
                    // Pump hung up (consumer gone); stop reading.
                    break;
                }
            }
            // Dropping `tx` wakes the pump with `Disconnected`.
        });
        loop {
            let wait = batcher.time_to_deadline().unwrap_or(deadline);
            match rx.recv_timeout(wait) {
                Ok(record) => {
                    if batcher.push(record).is_err() {
                        break;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    if batcher.poll_deadline().is_err() {
                        break;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        // Unblock a reader stuck in `send` so the scope can join it.
        drop(rx);
    });
    batcher.close()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StreamSpec;

    fn items(n: u64) -> Vec<Item> {
        (0..n).map(|i| Item::new(i, 1.0 + i as f64)).collect()
    }

    #[test]
    fn size_cuts_deliver_everything_in_order() {
        let (mut b, rx) = Batcher::new(BatchPolicy::by_size(4), 16);
        for it in items(10) {
            b.push(it).unwrap();
        }
        let counters = b.close();
        let batches: Vec<MiniBatch> = rx.iter().collect();
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].items.len(), 4);
        assert_eq!(batches[1].items.len(), 4);
        assert_eq!(batches[2].items.len(), 2);
        assert_eq!(batches[2].cut, CutReason::Flush);
        assert_eq!(
            batches.iter().map(|b| b.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        let ids: Vec<u64> = batches
            .iter()
            .flat_map(|b| b.items.iter())
            .map(|i| i.id)
            .collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
        assert_eq!(counters.records_in, 10);
        assert_eq!(counters.batches_cut, 3);
        assert_eq!(counters.size_cuts, 2);
        assert_eq!(counters.deadline_flushes, 0);
    }

    #[test]
    fn deadline_cuts_a_stale_buffer() {
        let policy = BatchPolicy::by_size(1000).with_deadline(Duration::from_millis(1));
        let (mut b, rx) = Batcher::new(policy, 16);
        b.push(Item::new(1, 1.0)).unwrap();
        std::thread::sleep(Duration::from_millis(5));
        assert!(b.poll_deadline().unwrap());
        b.push(Item::new(2, 1.0)).unwrap();
        let counters = b.close();
        let batches: Vec<MiniBatch> = rx.iter().collect();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].cut, CutReason::Deadline);
        assert_eq!(counters.deadline_flushes, 1);
    }

    #[test]
    fn push_flushes_an_expired_buffer_before_admitting_the_record() {
        let policy = BatchPolicy::by_size(1000).with_deadline(Duration::from_millis(1));
        let (mut b, rx) = Batcher::new(policy, 16);
        b.push(Item::new(1, 1.0)).unwrap();
        std::thread::sleep(Duration::from_millis(5));
        b.push(Item::new(2, 1.0)).unwrap();
        drop(b);
        let batches: Vec<MiniBatch> = rx.iter().collect();
        assert_eq!(batches.len(), 1, "second record stays buffered");
        assert_eq!(batches[0].cut, CutReason::Deadline);
        assert_eq!(batches[0].items.len(), 1);
    }

    #[test]
    fn bounded_channel_blocks_and_records_backpressure() {
        let (mut b, rx) = Batcher::new(BatchPolicy::by_size(1), 1);
        let producer = std::thread::spawn(move || {
            for it in items(4) {
                b.push(it).unwrap();
            }
            b.close()
        });
        // Let the producer fill the 1-slot channel and block, then drain
        // slowly.
        std::thread::sleep(Duration::from_millis(20));
        let mut seen = 0;
        for batch in rx.iter() {
            seen += batch.items.len();
            std::thread::sleep(Duration::from_millis(5));
        }
        let counters = producer.join().unwrap();
        assert_eq!(seen, 4);
        assert!(
            counters.blocked_send_s > 0.0,
            "producer never felt backpressure: {counters:?}"
        );
    }

    #[test]
    fn closed_receiver_surfaces_as_ingest_closed() {
        let (mut b, rx) = Batcher::new(BatchPolicy::by_size(1), 1);
        drop(rx);
        assert_eq!(b.push(Item::new(1, 1.0)), Err(IngestClosed));
    }

    #[test]
    fn synthetic_records_match_the_pull_generator() {
        let spec = StreamSpec {
            pes: 2,
            batch_size: 8,
            weights: WeightGen::paper_uniform(),
            seed: 5,
        };
        // 24 records through the push adapter, chunked unevenly...
        let mut push = SyntheticRecords::new(spec.source_for(1), 24).with_chunk(7);
        let pushed: Vec<Item> = std::iter::from_fn(|| push.next_record()).collect();
        // ...must equal 24 records pulled straight off the generator.
        let mut src = spec.source_for(1);
        let mut pulled = src.next_batch_of(7);
        for _ in 0..2 {
            pulled.extend(src.next_batch_of(7));
        }
        pulled.extend(src.next_batch_of(3));
        assert_eq!(pushed.len(), 24);
        assert_eq!(pushed, pulled);
        assert_eq!(push.remaining_hint(), Some(0));
    }

    #[test]
    fn replay_records_roundtrip() {
        let data = items(5);
        let mut r = ReplayRecords::from_slice(&data);
        assert_eq!(r.remaining_hint(), Some(5));
        let replayed: Vec<Item> = std::iter::from_fn(|| r.next_record()).collect();
        assert_eq!(replayed, data);
        assert_eq!(r.next_record(), None, "stays exhausted");
    }

    #[test]
    fn skew_shift_walks_its_segments() {
        let segments = vec![
            (WeightGen::Unit, 3u64),
            (WeightGen::Uniform { max: 50.0 }, 2),
        ];
        let mut s = SkewShiftRecords::new(0, 9, segments);
        assert_eq!(s.remaining_hint(), Some(5));
        let out: Vec<Item> = std::iter::from_fn(|| s.next_record()).collect();
        assert_eq!(out.len(), 5);
        assert!(out[..3].iter().all(|i| i.weight == 1.0));
        assert!(out[3..].iter().all(|i| i.weight != 1.0 && i.weight <= 50.0));
        // Ids stay collision-free and sequential.
        let ids: Vec<u64> = out.iter().map(|i| i.id).collect();
        assert_eq!(ids, (0..5).collect::<Vec<_>>());
        assert_eq!(s.next_record(), None);
    }

    #[test]
    fn spawned_pump_delivers_the_whole_stream() {
        let spec = StreamSpec {
            pes: 1,
            batch_size: 16,
            weights: WeightGen::paper_uniform(),
            seed: 11,
        };
        let source = SyntheticRecords::new(spec.source_for(0), 100);
        let mut handle = spawn_source(source, BatchPolicy::by_size(16), 2);
        let rx = handle.take_receiver();
        let total: usize = rx.iter().map(|b| b.items.len()).sum();
        let counters = handle.join();
        assert_eq!(total, 100);
        assert_eq!(counters.records_in, 100);
        assert_eq!(counters.batches_cut, 7); // 6 full + 1 residual flush
    }

    /// Yields its records immediately, then stalls inside `next_record`
    /// for `stall` before reporting end-of-stream — the sparse-arrival
    /// shape that used to wedge the pump: with the old single-threaded
    /// loop, nothing fired the deadline while `next_record` blocked, so
    /// the buffered record sat until the stall ended.
    struct StallingRecords {
        items: Vec<Item>,
        pos: usize,
        stall: Duration,
    }

    impl RecordSource for StallingRecords {
        fn next_record(&mut self) -> Option<Item> {
            let item = self.items.get(self.pos).copied();
            self.pos += item.is_some() as usize;
            if item.is_none() {
                std::thread::sleep(self.stall);
            }
            item
        }
    }

    #[test]
    fn deadline_fires_while_the_source_stalls() {
        // Regression: the pump must cut the buffered record ~one deadline
        // after arrival even though the source then blocks for 400 ms.
        // The old pump delivered it only at the final close-flush.
        let source = StallingRecords {
            items: items(1),
            pos: 0,
            stall: Duration::from_millis(400),
        };
        let policy = BatchPolicy::by_size(1000).with_deadline(Duration::from_millis(10));
        let mut handle = spawn_source(source, policy, 8);
        let rx = handle.take_receiver();
        let first = rx
            .recv_timeout(Duration::from_millis(200))
            .expect("deadline must cut the stale buffer during the stall");
        assert_eq!(first.cut, CutReason::Deadline);
        assert_eq!(first.items.len(), 1);
        let rest: Vec<MiniBatch> = rx.iter().collect();
        assert!(rest.is_empty(), "single record arrives exactly once");
        let counters = handle.join();
        assert_eq!(counters.records_in, 1);
        assert_eq!(counters.deadline_flushes, 1);
    }

    #[test]
    fn paced_source_triggers_deadline_flushes_through_the_pump() {
        let source = PacedRecords::new(ReplayRecords::new(items(6)), 2, Duration::from_millis(8));
        let policy = BatchPolicy::by_size(1000).with_deadline(Duration::from_millis(2));
        let mut handle = spawn_source(source, policy, 8);
        let rx = handle.take_receiver();
        let batches: Vec<MiniBatch> = rx.iter().collect();
        let counters = handle.join();
        assert_eq!(counters.records_in, 6);
        assert!(
            counters.deadline_flushes >= 1,
            "paced arrivals never aged out a buffer: {counters:?}"
        );
        let delivered: usize = batches.iter().map(|b| b.items.len()).sum();
        assert_eq!(delivered, 6);
    }
}
