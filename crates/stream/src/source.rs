//! Per-PE mini-batch production.

use reservoir_rng::{DefaultRng, Rng64, SeedSequence, StreamKind};

use crate::gen::{IdStream, WeightGen};
use crate::Item;

/// Describes a distributed stream: how many PEs, how big the per-PE
/// batches are, and how weights are drawn.
#[derive(Clone, Copy, Debug)]
pub struct StreamSpec {
    /// Number of PEs the stream is spread over.
    pub pes: usize,
    /// Items per PE per mini-batch (the paper's `b`).
    pub batch_size: usize,
    /// Weight distribution.
    pub weights: WeightGen,
    /// Master seed; every `(seed, pe)` pair yields an independent stream.
    pub seed: u64,
}

impl StreamSpec {
    /// A source for PE `pe` of this stream.
    pub fn source_for(&self, pe: usize) -> StreamSource {
        assert!(pe < self.pes, "PE {pe} out of range for {} PEs", self.pes);
        StreamSource {
            pe,
            batch_size: self.batch_size,
            weights: self.weights,
            rng: SeedSequence::new(self.seed).rng_for(pe, StreamKind::Workload),
            ids: IdStream::new(pe),
            batch_index: 0,
        }
    }

    /// All `pes` sources at once (handy for single-process drivers).
    pub fn sources(&self) -> Vec<StreamSource> {
        (0..self.pes).map(|pe| self.source_for(pe)).collect()
    }
}

/// Produces the mini-batches a single PE observes.
///
/// Batches are deterministic in `(seed, pe, batch_index)`, so distributed
/// runs are reproducible and different backends can replay identical input.
#[derive(Clone, Debug)]
pub struct StreamSource {
    pe: usize,
    batch_size: usize,
    weights: WeightGen,
    rng: DefaultRng,
    ids: IdStream,
    batch_index: u64,
}

impl StreamSource {
    /// Produce the next mini-batch into `buf` (cleared first); returns the
    /// batch index. Reusing one buffer avoids per-batch allocation — the
    /// mini-batch model's "only the current batch is in memory".
    pub fn next_batch_into(&mut self, buf: &mut Vec<Item>) -> u64 {
        buf.clear();
        buf.reserve(self.batch_size);
        let batch = self.batch_index;
        for _ in 0..self.batch_size {
            let w = self.weights.sample(self.pe, batch, &mut self.rng);
            buf.push(Item::new(self.ids.next_id(), w));
        }
        self.batch_index += 1;
        batch
    }

    /// Allocating convenience wrapper around [`Self::next_batch_into`].
    pub fn next_batch(&mut self) -> Vec<Item> {
        let mut buf = Vec::new();
        self.next_batch_into(&mut buf);
        buf
    }

    /// Produce a batch of a custom size into `buf` (cleared first),
    /// reusing the buffer like [`Self::next_batch_into`]; returns the
    /// batch index. Variable-size batches are allowed by the model
    /// ("b need not be the same across PEs and batches"), and hot loops
    /// with per-batch sizes must not pay a per-batch allocation.
    pub fn next_batch_of_into(&mut self, size: usize, buf: &mut Vec<Item>) -> u64 {
        buf.clear();
        buf.reserve(size);
        let batch = self.batch_index;
        for _ in 0..size {
            let w = self.weights.sample(self.pe, batch, &mut self.rng);
            buf.push(Item::new(self.ids.next_id(), w));
        }
        self.batch_index += 1;
        batch
    }

    /// Allocating convenience wrapper around [`Self::next_batch_of_into`].
    pub fn next_batch_of(&mut self, size: usize) -> Vec<Item> {
        let mut buf = Vec::new();
        self.next_batch_of_into(size, &mut buf);
        buf
    }

    /// Number of batches produced so far.
    pub fn batches_produced(&self) -> u64 {
        self.batch_index
    }

    /// The PE this source belongs to.
    pub fn pe(&self) -> usize {
        self.pe
    }

    /// Raw access to the weight generator's RNG stream — used by samplers
    /// that interleave extra draws (e.g. the simulator's conditional
    /// candidate generation).
    pub fn rng_mut(&mut self) -> &mut impl Rng64 {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(pes: usize, b: usize) -> StreamSpec {
        StreamSpec {
            pes,
            batch_size: b,
            weights: WeightGen::paper_uniform(),
            seed: 42,
        }
    }

    #[test]
    fn batches_have_requested_size_and_positive_weights() {
        let mut src = spec(4, 100).source_for(2);
        let batch = src.next_batch();
        assert_eq!(batch.len(), 100);
        assert!(batch.iter().all(|it| it.weight > 0.0 && it.weight <= 100.0));
    }

    #[test]
    fn streams_are_deterministic_per_seed_and_pe() {
        let a: Vec<Item> = spec(2, 50).source_for(0).next_batch();
        let b: Vec<Item> = spec(2, 50).source_for(0).next_batch();
        assert_eq!(a, b);
        let c: Vec<Item> = spec(2, 50).source_for(1).next_batch();
        assert_ne!(
            a.iter().map(|i| i.weight.to_bits()).collect::<Vec<_>>(),
            c.iter().map(|i| i.weight.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ids_unique_across_batches_and_pes() {
        let spec = spec(3, 40);
        let mut seen = std::collections::HashSet::new();
        for pe in 0..3 {
            let mut src = spec.source_for(pe);
            for _ in 0..5 {
                for item in src.next_batch() {
                    assert!(seen.insert(item.id), "duplicate id {}", item.id);
                }
            }
        }
        assert_eq!(seen.len(), 3 * 5 * 40);
    }

    #[test]
    fn reusable_buffer_api() {
        let mut src = spec(1, 10).source_for(0);
        let mut buf = Vec::new();
        assert_eq!(src.next_batch_into(&mut buf), 0);
        assert_eq!(src.next_batch_into(&mut buf), 1);
        assert_eq!(buf.len(), 10);
        assert_eq!(src.batches_produced(), 2);
    }

    #[test]
    fn custom_batch_sizes() {
        let mut src = spec(1, 10).source_for(0);
        assert_eq!(src.next_batch_of(3).len(), 3);
        assert_eq!(src.next_batch_of(17).len(), 17);
    }

    #[test]
    fn custom_size_buffer_reuse_matches_allocating_variant() {
        let mut a = spec(1, 10).source_for(0);
        let mut b = spec(1, 10).source_for(0);
        let mut buf = Vec::new();
        assert_eq!(a.next_batch_of_into(5, &mut buf), 0);
        assert_eq!(buf, b.next_batch_of(5));
        assert_eq!(a.next_batch_of_into(9, &mut buf), 1);
        assert_eq!(buf, b.next_batch_of(9));
        assert_eq!(a.batches_produced(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pe_out_of_range() {
        let _ = spec(2, 10).source_for(2);
    }
}
