//! Keyed shard routing: the multi-tenant front door.
//!
//! A multi-tenant sampler keeps one reservoir *per key* (per user, per
//! tenant, per flow). The router is the pure, deterministic map from a
//! record to the shard that owns its key: extract a `ShardKey` with a
//! caller-supplied closure, mix it through a finalizer so adjacent keys
//! spread evenly, and reduce modulo the shard count. Every record lands
//! in exactly one shard, and two records with the same key always land
//! in the same shard — the invariants the per-shard sampling law rests
//! on.

use crate::Item;

/// The routing key a record is sharded by (a user id, tenant id, metric
/// name hash, ...).
pub type ShardKey = u64;

/// SplitMix64 finalizer: a cheap bijective mixer so that dense or
/// structured key spaces (sequential user ids, bit-packed flow ids)
/// still spread uniformly over the shards.
#[inline]
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Routes each record to one of `shards` buckets by its [`ShardKey`].
///
/// The assignment depends only on the key and the shard count — not on
/// the record's position in the stream, the PE it arrived at, or any
/// sampler state — so every PE of a distributed pipeline routes
/// identically and a key's records always meet in the same reservoir.
pub struct ShardRouter<F: Fn(&Item) -> ShardKey> {
    shards: usize,
    key_of: F,
}

impl<F: Fn(&Item) -> ShardKey> ShardRouter<F> {
    /// A router over `shards` buckets extracting keys with `key_of`.
    pub fn new(shards: usize, key_of: F) -> Self {
        assert!(shards >= 1, "at least one shard");
        ShardRouter { shards, key_of }
    }

    /// Number of shards this router targets.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The routing key of one record.
    pub fn key_of(&self, item: &Item) -> ShardKey {
        (self.key_of)(item)
    }

    /// The shard owning one record's key.
    pub fn shard_of(&self, item: &Item) -> usize {
        (mix(self.key_of(item)) % self.shards as u64) as usize
    }

    /// Partition `items` into per-shard buckets, appending to `buckets`
    /// (one per shard; existing contents are kept, so the caller clears
    /// between mini-batches to reuse the allocations).
    pub fn route_into(&self, items: impl IntoIterator<Item = Item>, buckets: &mut [Vec<Item>]) {
        assert_eq!(buckets.len(), self.shards, "one bucket per shard");
        for item in items {
            buckets[self.shard_of(&item)].push(item);
        }
    }

    /// Partition `items` into freshly allocated per-shard buckets.
    pub fn route(&self, items: impl IntoIterator<Item = Item>) -> Vec<Vec<Item>> {
        let mut buckets = vec![Vec::new(); self.shards];
        self.route_into(items, &mut buckets);
        buckets
    }
}

/// A router keyed by the record id itself — the common case when ids
/// already encode the tenant (or for id-affine shard tests).
pub fn route_by_id(shards: usize) -> ShardRouter<fn(&Item) -> ShardKey> {
    ShardRouter::new(shards, |item: &Item| item.id)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(n: u64) -> Vec<Item> {
        (0..n).map(|i| Item::new(i, 1.0 + (i % 7) as f64)).collect()
    }

    #[test]
    fn every_record_lands_in_exactly_one_shard() {
        let router = route_by_id(8);
        let input = items(1000);
        let buckets = router.route(input.clone());
        assert_eq!(buckets.len(), 8);
        let total: usize = buckets.iter().map(Vec::len).sum();
        assert_eq!(total, input.len());
        // Reassemble by id: the buckets partition the input exactly.
        let mut seen: Vec<u64> = buckets.iter().flatten().map(|i| i.id).collect();
        seen.sort_unstable();
        let expect: Vec<u64> = input.iter().map(|i| i.id).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn same_key_always_same_shard() {
        let router = ShardRouter::new(5, |item: &Item| item.id % 40);
        let buckets = router.route(items(2000));
        for (s, bucket) in buckets.iter().enumerate() {
            for item in bucket {
                assert_eq!(router.shard_of(item), s, "id {}", item.id);
            }
        }
    }

    #[test]
    fn dense_keys_spread_over_shards() {
        let router = route_by_id(4);
        let buckets = router.route(items(4000));
        for (s, bucket) in buckets.iter().enumerate() {
            assert!(
                (500..=1500).contains(&bucket.len()),
                "shard {s} got {} of 4000 records",
                bucket.len()
            );
        }
    }

    #[test]
    fn single_shard_takes_everything() {
        let router = route_by_id(1);
        let buckets = router.route(items(100));
        assert_eq!(buckets[0].len(), 100);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = route_by_id(0);
    }
}
