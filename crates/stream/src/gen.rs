//! Weight distributions and id assignment.

use reservoir_rng::Rng64;

/// The weight distributions used across the experiments.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WeightGen {
    /// Uniformly random weights from `(0, max]` — the paper's main workload
    /// uses `max = 100` (Section 6.1).
    Uniform { max: f64 },
    /// Every weight is `1.0`: the unweighted (uniform sampling) workload.
    Unit,
    /// Skewed weights: normal with mean `base + batch_scale·batch +
    /// pe_scale·pe`, truncated below at `floor` — the paper's robustness
    /// check ("normally distributed with the mean increasing based on the
    /// iteration and the PE's rank").
    SkewedNormal {
        base: f64,
        batch_scale: f64,
        pe_scale: f64,
        std_dev: f64,
        floor: f64,
    },
    /// Heavy-tailed Pareto weights (scale, shape); used by the
    /// heavy-hitter example.
    Pareto { scale: f64, shape: f64 },
}

impl WeightGen {
    /// The paper's default workload: uniform weights in (0, 100].
    pub fn paper_uniform() -> Self {
        WeightGen::Uniform { max: 100.0 }
    }

    /// The paper's skew robustness check with reasonable defaults.
    pub fn paper_skewed() -> Self {
        WeightGen::SkewedNormal {
            base: 50.0,
            batch_scale: 0.5,
            pe_scale: 0.1,
            std_dev: 10.0,
            floor: 1e-3,
        }
    }

    /// Draw one weight for PE `pe` in batch `batch`.
    #[inline]
    pub fn sample(&self, pe: usize, batch: u64, rng: &mut impl Rng64) -> f64 {
        match *self {
            WeightGen::Uniform { max } => rng.rand_oc() * max,
            WeightGen::Unit => 1.0,
            WeightGen::SkewedNormal {
                base,
                batch_scale,
                pe_scale,
                std_dev,
                floor,
            } => {
                let mean = base + batch_scale * batch as f64 + pe_scale * pe as f64;
                rng.normal(mean, std_dev).max(floor)
            }
            WeightGen::Pareto { scale, shape } => rng.pareto(scale, shape),
        }
    }
}

/// Collision-free global id assignment without coordination: the PE index
/// occupies the top 20 bits, a local counter the bottom 44 — room for a
/// million PEs and 17 trillion items each.
#[derive(Clone, Debug)]
pub struct IdStream {
    base: u64,
    next: u64,
}

const PE_SHIFT: u32 = 44;

impl IdStream {
    /// Id namespace of PE `pe`.
    pub fn new(pe: usize) -> Self {
        assert!((pe as u64) < (1 << (64 - PE_SHIFT)), "PE index too large");
        IdStream {
            base: (pe as u64) << PE_SHIFT,
            next: 0,
        }
    }

    /// The next id.
    #[inline]
    pub fn next_id(&mut self) -> u64 {
        let id = self.base | self.next;
        self.next += 1;
        debug_assert!(self.next < (1 << PE_SHIFT), "id namespace exhausted");
        id
    }

    /// Recover the owning PE from an id.
    pub fn pe_of(id: u64) -> usize {
        (id >> PE_SHIFT) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reservoir_rng::default_rng;

    #[test]
    fn uniform_weights_in_range() {
        let gen = WeightGen::paper_uniform();
        let mut rng = default_rng(1);
        for _ in 0..10_000 {
            let w = gen.sample(0, 0, &mut rng);
            assert!(w > 0.0 && w <= 100.0);
        }
    }

    #[test]
    fn unit_weights_are_one() {
        let mut rng = default_rng(2);
        assert_eq!(WeightGen::Unit.sample(3, 7, &mut rng), 1.0);
    }

    #[test]
    fn skewed_mean_grows_with_batch_and_pe() {
        let gen = WeightGen::paper_skewed();
        let mut rng = default_rng(3);
        let mean = |pe: usize, batch: u64, rng: &mut _| -> f64 {
            (0..20_000).map(|_| gen.sample(pe, batch, rng)).sum::<f64>() / 20_000.0
        };
        let early = mean(0, 0, &mut rng);
        let late = mean(0, 100, &mut rng);
        let high_pe = mean(500, 0, &mut rng);
        assert!(late > early + 25.0, "late {late} vs early {early}");
        assert!(high_pe > early + 25.0, "pe500 {high_pe} vs pe0 {early}");
    }

    #[test]
    fn skewed_weights_respect_floor() {
        let gen = WeightGen::SkewedNormal {
            base: 0.0,
            batch_scale: 0.0,
            pe_scale: 0.0,
            std_dev: 5.0,
            floor: 1e-3,
        };
        let mut rng = default_rng(4);
        for _ in 0..10_000 {
            assert!(gen.sample(0, 0, &mut rng) >= 1e-3);
        }
    }

    #[test]
    fn ids_unique_across_pes() {
        let mut a = IdStream::new(0);
        let mut b = IdStream::new(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            assert!(seen.insert(a.next_id()));
            assert!(seen.insert(b.next_id()));
        }
        assert_eq!(IdStream::pe_of(b.next_id()), 1);
        assert_eq!(IdStream::pe_of(a.next_id()), 0);
    }
}
