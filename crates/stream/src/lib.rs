//! The mini-batch distributed stream model (paper Section 3) and the
//! workload generators of the evaluation (Section 6.1).
//!
//! Items arrive at `p` PEs as a series of mini-batches; only the current
//! batch is in memory (the PEs cannot revisit old items — that is the whole
//! point of reservoir sampling). Batch boundaries may be count-driven or
//! time-driven (the discretized-streams model of Spark Streaming).
//!
//! * [`Item`] — a stream element: globally unique id + positive weight.
//! * [`WeightGen`] — weight distributions: the paper's uniform (0, 100]
//!   weights, the skewed normal weights of its robustness check (mean grows
//!   with batch index and PE rank), heavy-tailed Pareto weights, and unit
//!   weights for the uniform sampler.
//! * [`StreamSource`] — a per-PE batch producer with deterministic
//!   per-`(seed, pe)` randomness and collision-free id assignment.
//! * [`ingest`] — the push-based front door: [`ingest::RecordSource`]
//!   adapters feed per-PE [`ingest::Batcher`]s that cut mini-batches on
//!   size or deadline over bounded channels, so slow consumers apply
//!   backpressure instead of buffering without limit.

mod gen;
pub mod ingest;
mod route;
mod source;

pub use gen::{IdStream, WeightGen};
pub use route::{route_by_id, ShardKey, ShardRouter};
pub use source::{StreamSource, StreamSpec};

/// One stream element.
///
/// Ids are globally unique across PEs (see [`IdStream`]); weights are
/// strictly positive. For unweighted (uniform) sampling use weight `1.0`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Item {
    /// Globally unique identifier.
    pub id: u64,
    /// Sampling weight, `> 0`.
    pub weight: f64,
}

impl Item {
    /// Construct an item; weight must be positive and finite.
    #[inline]
    pub fn new(id: u64, weight: f64) -> Self {
        debug_assert!(
            weight > 0.0 && weight.is_finite(),
            "item weight must be positive and finite, got {weight}"
        );
        Item { id, weight }
    }
}
