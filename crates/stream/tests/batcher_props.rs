//! Property tests for the ingestion [`Batcher`]: arbitrary push sequences,
//! batch policies and channel capacities must never lose, duplicate or
//! reorder a record, never overfill a batch, and always drain residual
//! records on flush/close — including the empty-stream and single-record
//! edge cases.

use proptest::prelude::*;
use reservoir_stream::ingest::{BatchPolicy, Batcher, CutReason, MiniBatch};
use reservoir_stream::Item;

/// Deterministic record streams: ids 0..n in order, varied weights.
fn records(n: usize) -> Vec<Item> {
    (0..n as u64)
        .map(|i| Item::new(i, 0.5 + (i % 17) as f64))
        .collect()
}

/// Push `items` through a batcher cutting at `max_items`, optionally with
/// interleaved explicit flushes every `flush_every` pushes, and return the
/// cut batches. The channel capacity always exceeds the number of batches
/// a single-threaded driver can cut, so the producer never deadlocks on
/// its own consumer.
fn drive(items: &[Item], max_items: usize, flush_every: Option<usize>) -> Vec<MiniBatch> {
    let capacity = items.len() + 2;
    let (mut batcher, rx) = Batcher::new(BatchPolicy::by_size(max_items), capacity);
    for (i, item) in items.iter().enumerate() {
        batcher.push(*item).expect("receiver alive");
        if let Some(every) = flush_every {
            if (i + 1) % every == 0 {
                batcher.flush().expect("receiver alive");
            }
        }
    }
    let counters = batcher.close();
    let batches: Vec<MiniBatch> = rx.iter().collect();
    // Counter bookkeeping must match what actually travelled.
    assert_eq!(counters.records_in, items.len() as u64);
    assert_eq!(counters.batches_cut, batches.len() as u64);
    batches
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_record_is_delivered_exactly_once_in_order(
        n in 0usize..400,
        max_items in 1usize..50,
    ) {
        let items = records(n);
        let batches = drive(&items, max_items, None);
        let delivered: Vec<u64> = batches
            .iter()
            .flat_map(|b| b.items.iter())
            .map(|it| it.id)
            .collect();
        // Exactly once, and in push order (which also rules out
        // duplicates and drops).
        prop_assert_eq!(delivered, (0..n as u64).collect::<Vec<_>>());
    }

    #[test]
    fn no_batch_exceeds_the_size_bound_and_only_the_tail_runs_short(
        n in 0usize..400,
        max_items in 1usize..50,
    ) {
        let items = records(n);
        let batches = drive(&items, max_items, None);
        for b in &batches {
            prop_assert!(!b.items.is_empty(), "empty batch cut");
            prop_assert!(b.items.len() <= max_items, "batch overfilled");
        }
        // With pure size cuts, every batch but the final flush is full.
        for b in batches.iter().rev().skip(1) {
            prop_assert_eq!(b.items.len(), max_items);
            prop_assert_eq!(b.cut, CutReason::Size);
        }
        // Sequence numbers are dense and ordered.
        let seqs: Vec<u64> = batches.iter().map(|b| b.seq).collect();
        prop_assert_eq!(seqs, (0..batches.len() as u64).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_flushes_still_deliver_exactly_once(
        n in 0usize..300,
        max_items in 1usize..40,
        flush_every in 1usize..60,
    ) {
        let items = records(n);
        let batches = drive(&items, max_items, Some(flush_every));
        let delivered: Vec<u64> = batches
            .iter()
            .flat_map(|b| b.items.iter())
            .map(|it| it.id)
            .collect();
        prop_assert_eq!(delivered, (0..n as u64).collect::<Vec<_>>());
        for b in &batches {
            prop_assert!(b.items.len() <= max_items);
            prop_assert!(!b.items.is_empty());
        }
    }

    #[test]
    fn close_drains_all_residual_records(
        n in 1usize..200,
        max_items in 1usize..50,
    ) {
        // Choose n so a residual usually exists; the property must hold
        // either way.
        let items = records(n);
        let batches = drive(&items, max_items, None);
        let total: usize = batches.iter().map(|b| b.items.len()).sum();
        prop_assert_eq!(total, n, "close lost residual records");
        let residual = n % max_items;
        if residual > 0 {
            let last = batches.last().expect("n >= 1 yields a batch");
            prop_assert_eq!(last.items.len(), residual);
            prop_assert_eq!(last.cut, CutReason::Flush);
        }
    }
}

#[test]
fn empty_stream_cuts_no_batches() {
    let batches = drive(&[], 8, None);
    assert!(
        batches.is_empty(),
        "close on an empty stream sent {batches:?}"
    );
    // And an explicit flush of an empty buffer is also a no-op.
    let (mut batcher, rx) = Batcher::new(BatchPolicy::by_size(8), 2);
    batcher.flush().unwrap();
    assert_eq!(batcher.close().batches_cut, 0);
    assert!(rx.iter().next().is_none());
}

#[test]
fn single_record_arrives_alone_via_close() {
    let items = records(1);
    let batches = drive(&items, 100, None);
    assert_eq!(batches.len(), 1);
    assert_eq!(batches[0].items.len(), 1);
    assert_eq!(batches[0].items[0].id, 0);
    assert_eq!(batches[0].cut, CutReason::Flush);
}

#[test]
fn single_record_at_size_one_is_a_size_cut() {
    let items = records(1);
    let batches = drive(&items, 1, None);
    assert_eq!(batches.len(), 1);
    assert_eq!(batches[0].cut, CutReason::Size);
}
