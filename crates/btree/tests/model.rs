//! Property-based model tests: the B+ tree must behave exactly like
//! `std::collections::BTreeMap` under arbitrary operation sequences, and all
//! structural invariants must hold after every operation.

use proptest::prelude::*;
use reservoir_btree::{BPlusTree, SampleKey};
use std::collections::BTreeMap;

#[derive(Clone, Debug)]
enum Op {
    Insert(u64, u32),
    Remove(u64),
    SplitKeyInclusive(u64),
    SplitKeyExclusive(u64),
    SplitRank(usize),
    PopMin,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u64..500, any::<u32>()).prop_map(|(k, v)| Op::Insert(k, v)),
        2 => (0u64..500).prop_map(Op::Remove),
        1 => (0u64..500).prop_map(Op::SplitKeyInclusive),
        1 => (0u64..500).prop_map(Op::SplitKeyExclusive),
        1 => (0usize..600).prop_map(Op::SplitRank),
        1 => Just(Op::PopMin),
    ]
}

fn check_equal(tree: &BPlusTree<u64, u32>, model: &BTreeMap<u64, u32>) {
    tree.check_invariants();
    assert_eq!(tree.len(), model.len());
    let tree_pairs: Vec<(u64, u32)> = tree.iter().map(|(k, v)| (*k, *v)).collect();
    let model_pairs: Vec<(u64, u32)> = model.iter().map(|(k, v)| (*k, *v)).collect();
    assert_eq!(tree_pairs, model_pairs);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn behaves_like_btreemap(ops in prop::collection::vec(op_strategy(), 1..120), degree in 4usize..33) {
        let mut tree: BPlusTree<u64, u32> = BPlusTree::with_degree(degree);
        let mut model: BTreeMap<u64, u32> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    prop_assert_eq!(tree.insert(k, v), model.insert(k, v));
                }
                Op::Remove(k) => {
                    prop_assert_eq!(tree.remove(&k), model.remove(&k));
                }
                Op::SplitKeyInclusive(k) => {
                    // Split and immediately rejoin: contents must survive.
                    let right = tree.split_at_key(&k, true);
                    prop_assert!(tree.iter().all(|(kk, _)| *kk <= k));
                    prop_assert!(right.iter().all(|(kk, _)| *kk > k));
                    right.check_invariants();
                    tree = std::mem::take(&mut tree).join(right);
                }
                Op::SplitKeyExclusive(k) => {
                    let right = tree.split_at_key(&k, false);
                    prop_assert!(tree.iter().all(|(kk, _)| *kk < k));
                    prop_assert!(right.iter().all(|(kk, _)| *kk >= k));
                    right.check_invariants();
                    tree = std::mem::take(&mut tree).join(right);
                }
                Op::SplitRank(r) => {
                    let right = tree.split_at_rank(r);
                    prop_assert_eq!(tree.len(), r.min(model.len()));
                    right.check_invariants();
                    tree = std::mem::take(&mut tree).join(right);
                }
                Op::PopMin => {
                    let want = model.iter().next().map(|(k, v)| (*k, *v));
                    if let Some((k, _)) = want {
                        model.remove(&k);
                    }
                    prop_assert_eq!(tree.pop_min(), want);
                }
            }
            check_equal(&tree, &model);
        }
    }

    #[test]
    fn rank_select_consistency(keys in prop::collection::btree_set(0u64..10_000, 0..400), degree in 4usize..17) {
        let mut tree: BPlusTree<u64, ()> = BPlusTree::with_degree(degree);
        for &k in &keys {
            tree.insert(k, ());
        }
        let sorted: Vec<u64> = keys.iter().copied().collect();
        for (i, &k) in sorted.iter().enumerate() {
            prop_assert_eq!(tree.rank(&k), i);
            prop_assert_eq!(tree.count_le(&k), i + 1);
            let (sk, _) = tree.select(i).expect("in range");
            prop_assert_eq!(*sk, k);
        }
        // rank of a key not in the tree equals the number of smaller keys.
        for probe in [0u64, 1, 4_999, 10_000, 20_000] {
            let expect = sorted.iter().filter(|&&k| k < probe).count();
            prop_assert_eq!(tree.rank(&probe), expect);
        }
        prop_assert_eq!(tree.select(sorted.len()), None);
    }

    #[test]
    fn split_rank_then_rejoin_is_identity(n in 0usize..500, r in 0usize..700, degree in 4usize..17) {
        let entries: Vec<(u64, u64)> = (0..n as u64).map(|i| (i * 3, i)).collect();
        let mut tree = BPlusTree::from_sorted(entries.clone(), degree);
        let right = tree.split_at_rank(r);
        let rejoined = tree.join(right);
        rejoined.check_invariants();
        let got: Vec<(u64, u64)> = rejoined.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, entries);
    }

    #[test]
    fn from_sorted_equals_incremental(n in 0usize..800, degree in 4usize..33) {
        let entries: Vec<(u64, u64)> = (0..n as u64).map(|i| (i * 7 + 1, i)).collect();
        let bulk = BPlusTree::from_sorted(entries.clone(), degree);
        bulk.check_invariants();
        let mut inc = BPlusTree::with_degree(degree);
        for (k, v) in &entries {
            inc.insert(*k, *v);
        }
        let a: Vec<_> = bulk.iter().map(|(k, v)| (*k, *v)).collect();
        let b: Vec<_> = inc.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn sample_key_order_is_total(pairs in prop::collection::vec((any::<f64>(), any::<u64>()), 0..100)) {
        // NaN never occurs in the samplers; filter it here.
        let mut keys: Vec<SampleKey> = pairs
            .into_iter()
            .filter(|(f, _)| !f.is_nan())
            .map(|(f, id)| SampleKey::new(f, id))
            .collect();
        keys.sort();
        for w in keys.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        // Insertion into the tree must succeed for arbitrary finite floats.
        let mut tree: BPlusTree<SampleKey, ()> = BPlusTree::with_degree(8);
        for k in &keys {
            tree.insert(*k, ());
        }
        tree.check_invariants();
    }
}
