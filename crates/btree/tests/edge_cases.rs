//! Edge cases for the augmented B+ tree's rank/select/split/join surface:
//! empty trees, single elements, duplicate-key inserts, and splits that
//! land exactly on node or collection boundaries.

use reservoir_btree::{BPlusTree, SampleKey, DEFAULT_DEGREE, MIN_DEGREE};

fn tree_of(keys: impl IntoIterator<Item = u64>, degree: usize) -> BPlusTree<u64, u64> {
    let mut t = BPlusTree::with_degree(degree);
    for k in keys {
        t.insert(k, k);
    }
    t
}

#[test]
fn empty_tree_queries() {
    let t: BPlusTree<u64, u64> = BPlusTree::new();
    assert_eq!(t.len(), 0);
    assert!(t.is_empty());
    assert_eq!(t.degree(), DEFAULT_DEGREE);
    assert_eq!(t.get(&5), None);
    assert!(!t.contains(&5));
    assert_eq!(t.min(), None);
    assert_eq!(t.max(), None);
    assert_eq!(t.rank(&5), 0);
    assert_eq!(t.count_le(&5), 0);
    assert_eq!(t.select(0), None);
    assert_eq!(t.iter().count(), 0);
    t.check_invariants();
}

#[test]
fn empty_tree_split_and_join() {
    let mut t: BPlusTree<u64, u64> = BPlusTree::with_degree(MIN_DEGREE);
    let right = t.split_at_key(&10, true);
    assert!(t.is_empty() && right.is_empty());
    let right = t.split_at_rank(0);
    assert!(t.is_empty() && right.is_empty());
    // empty ⋈ empty, empty ⋈ nonempty, nonempty ⋈ empty.
    let joined = t.join(BPlusTree::with_degree(MIN_DEGREE));
    assert!(joined.is_empty());
    let joined = joined.join(tree_of(0..5, MIN_DEGREE));
    assert_eq!(joined.len(), 5);
    let joined = joined.join(BPlusTree::with_degree(MIN_DEGREE));
    assert_eq!(joined.len(), 5);
    joined.check_invariants();
    assert_eq!(joined.min().map(|(k, _)| *k), Some(0));
}

#[test]
fn empty_tree_pop_and_remove() {
    let mut t: BPlusTree<u64, u64> = BPlusTree::new();
    assert_eq!(t.pop_min(), None);
    assert_eq!(t.remove(&1), None);
    t.check_invariants();
}

#[test]
fn single_element_full_surface() {
    let mut t = tree_of([42], MIN_DEGREE);
    t.check_invariants();
    assert_eq!(t.len(), 1);
    assert_eq!(t.min(), t.max());
    assert_eq!(t.rank(&42), 0);
    assert_eq!(t.rank(&43), 1);
    assert_eq!(t.count_le(&42), 1);
    assert_eq!(t.select(0).map(|(k, _)| *k), Some(42));
    assert_eq!(t.select(1), None);
    // Split on either side of the only key.
    let right = t.split_at_key(&42, true);
    assert_eq!((t.len(), right.len()), (1, 0));
    let right = t.split_at_key(&42, false);
    assert_eq!((t.len(), right.len()), (0, 1));
    let mut t = right;
    let right = t.split_at_rank(1);
    assert_eq!((t.len(), right.len()), (1, 0));
    assert_eq!(t.pop_min(), Some((42, 42)));
    assert!(t.is_empty());
}

#[test]
fn duplicate_keys_replace_not_grow() {
    let mut t: BPlusTree<u64, u64> = BPlusTree::with_degree(MIN_DEGREE);
    for round in 0..5u64 {
        for k in 0..40u64 {
            assert_eq!(
                t.insert(k, k * 100 + round),
                (round > 0).then(|| k * 100 + round - 1),
                "round {round} key {k}"
            );
        }
        t.check_invariants();
        assert_eq!(t.len(), 40, "round {round}");
    }
    for k in 0..40u64 {
        assert_eq!(t.get(&k), Some(&(k * 100 + 4)));
    }
}

#[test]
fn duplicate_float_keys_distinguished_by_id() {
    // SampleKey ties on the float are broken by id, so "duplicates" are
    // distinct entries — the property the samplers rely on.
    let mut t: BPlusTree<SampleKey, u64> = BPlusTree::with_degree(MIN_DEGREE);
    for id in 0..100u64 {
        t.insert(SampleKey::new(1.0, id), id);
    }
    t.check_invariants();
    assert_eq!(t.len(), 100);
    assert_eq!(t.rank(&SampleKey::new(1.0, 50)), 50);
    assert_eq!(t.count_le(&SampleKey::new(1.0, 50)), 51);
    // Re-inserting an exact (key, id) pair replaces.
    assert_eq!(t.insert(SampleKey::new(1.0, 7), 700), Some(7));
    assert_eq!(t.len(), 100);
}

#[test]
fn split_at_every_boundary_of_a_multi_level_tree() {
    // With degree 4, 64 keys give a three-level tree; leaf boundaries sit
    // at multiples of small node sizes. Split at *every* rank and check
    // both halves plus the rejoin.
    let n = 64u64;
    for r in 0..=n {
        let mut left = tree_of(0..n, 4);
        let right = left.split_at_rank(r as usize);
        left.check_invariants();
        right.check_invariants();
        assert_eq!(left.len() as u64, r);
        assert_eq!(right.len() as u64, n - r);
        if r > 0 {
            assert_eq!(left.max().map(|(k, _)| *k), Some(r - 1));
        }
        if r < n {
            assert_eq!(right.min().map(|(k, _)| *k), Some(r));
        }
        let rejoined = left.join(right);
        rejoined.check_invariants();
        assert_eq!(rejoined.len() as u64, n);
    }
}

#[test]
fn split_at_key_below_min_and_above_max() {
    let mut t = tree_of(10..20, MIN_DEGREE);
    let right = t.split_at_key(&0, true);
    assert_eq!((t.len(), right.len()), (0, 10));
    right.check_invariants();
    let mut t = right;
    let right = t.split_at_key(&99, false);
    assert_eq!((t.len(), right.len()), (10, 0));
    t.check_invariants();
}

#[test]
fn split_at_rank_beyond_len_is_empty_right() {
    let mut t = tree_of(0..10, MIN_DEGREE);
    let right = t.split_at_rank(10);
    assert!(right.is_empty());
    assert_eq!(t.len(), 10);
    let right = t.split_at_rank(1_000);
    assert!(right.is_empty());
    assert_eq!(t.len(), 10);
}

#[test]
fn from_sorted_boundary_sizes() {
    // Sizes around the degree and the half-fill rule of `from_sorted`.
    for degree in [MIN_DEGREE, 8, DEFAULT_DEGREE] {
        for n in [
            0usize,
            1,
            degree - 1,
            degree,
            degree + 1,
            2 * degree,
            2 * degree + 1,
        ] {
            let entries: Vec<(u64, u64)> = (0..n as u64).map(|i| (i, i)).collect();
            let t = BPlusTree::from_sorted(entries, degree);
            t.check_invariants();
            assert_eq!(t.len(), n, "degree {degree} n {n}");
        }
    }
}
