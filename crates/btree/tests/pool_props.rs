//! Property tests for the shared node pool ([`NodePool`]): the
//! allocator-level contracts the pooled trees lean on.
//!
//! * **Exactly-once handout** — racing allocators never receive the same
//!   slot, whether it comes from the bump pointer or the free list.
//! * **Recycle-then-reuse never aliases a live node** — a released slot
//!   may be handed out again, but never while another holder still owns
//!   it, and its seqlock version moves on so stale readers cannot
//!   validate.
//! * **Drop returns all pages** — a tree releasing its slots (rebuild or
//!   drop) leaves the pool accounting exactly for the survivors.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use reservoir_btree::pool::{NodePool, PAGE_NODES};
use reservoir_btree::{OlcTree, SampleKey};

/// Pooled slots only leave through [`OlcTree`]s; racing tree growth is
/// the pool's real concurrent-alloc workload. Every insert's landed key
/// proves its node chain allocated correctly; the cross-tree disjointness
/// check proves no slot was handed to two trees at once.
#[test]
fn concurrent_tree_growth_hands_out_every_slot_exactly_once() {
    let pool = Arc::new(NodePool::new());
    let trees: Vec<OlcTree> = (0..4)
        .map(|_| OlcTree::with_pool(Arc::clone(&pool)))
        .collect();
    let per = 600u64;
    std::thread::scope(|s| {
        for (t, tree) in trees.iter().enumerate() {
            s.spawn(move || {
                for i in 0..per {
                    let id = (t as u64) << 32 | i;
                    // Narrow band: every thread splits hot nodes.
                    assert!(
                        tree.insert(SampleKey::new((i % 13) as f64 + id as f64 * 1e-12, id), 1.0)
                    );
                }
            });
        }
    });
    let mut total_nodes = 0;
    for (t, tree) in trees.iter().enumerate() {
        tree.check_consistency().unwrap();
        assert_eq!(tree.len() as u64, per, "tree {t} lost or duplicated keys");
        total_nodes += tree.node_count();
    }
    let stats = pool.stats();
    assert_eq!(
        pool.live_slots(),
        total_nodes,
        "handouts must be exactly once: pool accounting {stats:?} vs trees {total_nodes}"
    );
    assert!(
        stats.pages as usize * PAGE_NODES >= total_nodes as usize,
        "every live slot must be page-backed"
    );
}

/// Raw allocator race: hammer alloc/release from many threads and check
/// global conservation — every slot held at the end is distinct, and
/// stats balance to the number of survivors.
#[test]
fn racing_alloc_release_conserves_slots() {
    let pool = Arc::new(NodePool::new());
    let held: Vec<Vec<u32>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let pool = Arc::clone(&pool);
                s.spawn(move || {
                    let mut mine = Vec::new();
                    let mut x = 0x9E37u64.wrapping_mul(t + 1);
                    for _ in 0..2_000 {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        // Two-thirds alloc, one-third release of our own.
                        if !x.is_multiple_of(3) || mine.is_empty() {
                            mine.push(pool.alloc());
                        } else {
                            let slot = mine.swap_remove((x >> 32) as usize % mine.len());
                            pool.release(slot);
                        }
                    }
                    mine
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut all: Vec<u32> = held.into_iter().flatten().collect();
    let survivors = all.len();
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len(), survivors, "a slot was handed out twice");
    assert_eq!(pool.live_slots(), survivors as u64);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Interleave tree mutations (which allocate), prunes (which recycle
    /// through the free list), and queries on two pool tenants: a reused
    /// slot aliasing a live node of the other tree would corrupt its
    /// entries or its structure; neither may ever observe the other.
    #[test]
    fn recycle_then_reuse_never_aliases_a_live_node(
        seed in 0u64..1_000_000,
        rounds in 1usize..6,
    ) {
        let pool = Arc::new(NodePool::new());
        let mut a = OlcTree::with_pool(Arc::clone(&pool));
        let b = OlcTree::with_pool(Arc::clone(&pool));
        let mut x = seed | 1;
        let mut next_id = 0u64;
        for _ in 0..rounds {
            // Grow both tenants.
            for _ in 0..300 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let v = (x >> 11) as f64 / (1u64 << 53) as f64;
                next_id += 1;
                if x & 1 == 0 {
                    a.insert(SampleKey::new(v, next_id), 1.0);
                } else {
                    b.insert(SampleKey::new(v, next_id), 2.0);
                }
            }
            let (a_len, b_len) = (a.len(), b.len());
            // Prune one tenant: its slots go to the free list...
            a.truncate_to(a_len / 2);
            // ...and the other tenant's next growth reuses them.
            for _ in 0..200 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let v = (x >> 11) as f64 / (1u64 << 53) as f64;
                next_id += 1;
                b.insert(SampleKey::new(v, next_id), 2.0);
            }
            prop_assert!(b.len() >= b_len, "tenant B lost entries to a recycle");
            a.check_consistency().unwrap();
            b.check_consistency().unwrap();
            // Values segregate perfectly: an aliased node would surface
            // the other tenant's 1.0/2.0 payload.
            let mut clean = true;
            a.for_each(|_, w| clean &= w == 1.0);
            b.for_each(|_, w| clean &= w == 2.0);
            prop_assert!(clean, "a recycled slot leaked across tenants");
            prop_assert_eq!(pool.live_slots(), a.node_count() + b.node_count());
        }
        // Recycling must actually have happened for this test to bite.
        prop_assert!(pool.stats().recycles > 0);
        prop_assert!(pool.stats().reused > 0);
    }

    /// Every slot a tree took comes back when it drops, and the pool's
    /// page count never shrinks while tenants churn (pages recycle by
    /// slot reuse, they are only unmapped when the pool itself drops).
    #[test]
    fn drop_returns_all_pages(seed in 0u64..1_000_000, tenants in 1usize..5) {
        let pool = Arc::new(NodePool::new());
        let mut x = seed | 1;
        let mut trees = Vec::new();
        for t in 0..tenants {
            let tree = OlcTree::with_pool(Arc::clone(&pool));
            for i in 0..(100 * (t + 1)) as u64 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let v = (x >> 11) as f64 / (1u64 << 53) as f64;
                tree.insert(SampleKey::new(v, (t as u64) << 32 | i), 1.0);
            }
            trees.push(tree);
        }
        let pages = pool.stats().pages;
        prop_assert!(pages > 0);
        drop(trees);
        prop_assert_eq!(
            pool.live_slots(), 0,
            "dropped tenants must return every slot: {:?}", pool.stats()
        );
        prop_assert_eq!(pool.stats().pages, pages, "pages stay resident for reuse");
        // And the returned slots are genuinely reusable: a fresh tenant
        // rebuilds entirely from recycled storage.
        let reused_before = pool.stats().reused;
        let tree = OlcTree::with_pool(Arc::clone(&pool));
        for i in 0..200u64 {
            tree.insert(SampleKey::new(i as f64, i), 1.0);
        }
        prop_assert_eq!(pool.stats().pages, pages, "reuse must not grow the pool");
        prop_assert!(pool.stats().reused > reused_before);
        tree.check_consistency().unwrap();
    }
}

/// A stale optimistic reader that pinned a node version before the slot
/// was recycled must fail validation afterwards — the OLC safety
/// argument for recycling. Pin every slot version of a tree, drop the
/// tree (releasing all its slots through the version-bumping path), and
/// check none of the pins validate.
#[test]
fn stale_version_pins_never_validate_across_recycles() {
    let pool = Arc::new(NodePool::new());
    let tree = OlcTree::with_pool(Arc::clone(&pool));
    for i in 0..400u64 {
        tree.insert(SampleKey::new(i as f64, i), 1.0);
    }
    let slots = tree.node_count() as u32;
    // The tree allocated slots 0..slots from the fresh pool (bump arm).
    assert_eq!(pool.live_slots(), slots as u64);
    let pins: Vec<(u32, u64)> = (0..slots)
        .map(|s| (s, pool.slot_version(s).expect("quiescent tree")))
        .collect();
    drop(tree);
    let still_valid = AtomicU64::new(0);
    for (slot, v) in &pins {
        if pool.slot_validates(*slot, *v) {
            still_valid.fetch_add(1, Ordering::Relaxed);
        }
    }
    assert_eq!(
        still_valid.load(Ordering::Relaxed),
        0,
        "every recycled slot must shed readers pinned before the release"
    );
}
