//! Regression tests for the incremental `refresh_sizes` pass: after a
//! small batch of inserts it must visit only the dirty descent paths
//! (O(touched)), not the whole tree, while still producing exactly the
//! subtree sizes the rank/select queries need.

use reservoir_btree::{OlcTree, SampleKey};
use reservoir_par::YieldInjector;
use reservoir_rng::test_base_seed;

fn key(i: u64) -> SampleKey {
    SampleKey::new(i as f64, i)
}

/// Build a tree of `n` distinct keys and refresh it to a clean state.
fn built(n: u64) -> OlcTree {
    let mut tree = OlcTree::new();
    for i in 0..n {
        // Scrambled order so the tree actually splits on the way up.
        let j = (i * 7919) % n;
        tree.insert(key(j), j as f64);
    }
    tree.refresh_sizes();
    tree
}

/// Every rank/select answer must agree with the sorted entry list.
fn assert_ranks_consistent(tree: &OlcTree) {
    let entries = tree.entries();
    assert_eq!(entries.len(), tree.len());
    for (i, (k, _)) in entries.iter().enumerate() {
        assert_eq!(tree.count_le(k), i + 1, "count_le({})", k.id);
        let (sel, _) = tree.select(i).expect("rank in range");
        assert_eq!(sel, *k, "select({i})");
    }
}

#[test]
fn clean_tree_refresh_is_free() {
    let mut tree = built(3_000);
    assert_eq!(tree.refresh_sizes(), 0, "nothing dirty ⇒ nothing visited");
}

#[test]
fn single_insert_touches_one_path_not_the_tree() {
    let n = 5_000u64;
    let mut tree = built(n);
    let nodes = tree.node_count();
    tree.insert(key(n + 1), 1.0);
    let touched = tree.refresh_sizes();
    // One insert dirties its root→leaf path (plus at most a couple of
    // split-created nodes): a handful of nodes at degree 16, while the
    // tree holds hundreds.
    assert!(touched >= 1, "an insert must dirty something");
    assert!(
        touched <= 16,
        "one insert refreshed {touched} nodes; expected a single path"
    );
    assert!(
        touched * 8 < nodes,
        "refresh visited {touched} of {nodes} nodes — not incremental"
    );
    tree.check_consistency().unwrap();
    assert_eq!(tree.count_le(&key(n + 1)), tree.len());
}

#[test]
fn overwrite_only_recomputes_the_root() {
    let mut tree = built(2_000);
    // First overwrite may still split a full node met on the descent;
    // settle the path, then measure the pure-overwrite case.
    assert!(!tree.insert(key(17), 50.0), "key 17 already present");
    tree.refresh_sizes();
    assert!(!tree.insert(key(17), 99.0));
    assert_eq!(tree.refresh_sizes(), 1, "pure overwrite ⇒ root only");
    tree.check_consistency().unwrap();
    assert_ranks_consistent(&tree);
}

#[test]
fn small_batch_cost_scales_with_the_batch() {
    let n = 8_000u64;
    let batch = 10u64;
    let mut tree = built(n);
    let nodes = tree.node_count();
    for i in 0..batch {
        tree.insert(key(n + 1 + i * 731), 1.0);
    }
    let touched = tree.refresh_sizes();
    // Each insert marks ≤ one path; paths share ancestors, so the union
    // is well under batch × depth and far under the node count.
    assert!(
        touched <= batch * 8,
        "{batch} inserts refreshed {touched} nodes"
    );
    assert!(
        touched * 4 < nodes,
        "refresh visited {touched} of {nodes} nodes — not incremental"
    );
    tree.check_consistency().unwrap();
    assert_ranks_consistent(&tree);
}

#[test]
fn rebuilds_leave_nothing_to_refresh() {
    let mut tree = built(1_000);
    tree.prune_above(&key(499));
    assert_eq!(tree.len(), 500);
    // Rebuilds install fresh, correctly-sized nodes and clear the flag.
    assert_eq!(tree.refresh_sizes(), 0, "rebuild ⇒ already fresh");
    tree.truncate_to(100);
    assert_eq!(tree.refresh_sizes(), 0);
    assert_ranks_consistent(&tree);
}

#[test]
fn concurrent_contended_inserts_refresh_correctly() {
    // Splits under contention mark both halves and the whole descent
    // chain; the quiescent refresh must still reach every stale node and
    // land on exactly the right sizes, across several injected
    // interleavings.
    let base = test_base_seed();
    for round in 0..3u64 {
        let seed = base ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut tree = built(2_000);
        {
            let _guard = if round % 2 == 0 {
                YieldInjector::install_aggressive(seed)
            } else {
                YieldInjector::install(seed)
            };
            std::thread::scope(|s| {
                for t in 0..4u64 {
                    let tree = &tree;
                    s.spawn(move || {
                        for i in 0..200u64 {
                            // Narrow band: all threads hammer the same
                            // nodes, forcing retries and splits.
                            let id = 100_000 + (i.wrapping_mul(t + 3)) % 300;
                            tree.insert(key(id), t as f64);
                        }
                    });
                }
            });
        }
        let touched = tree.refresh_sizes();
        let nodes = tree.node_count();
        assert!(
            touched < nodes,
            "round {round} (seed {seed:#x}): refresh revisited the whole arena"
        );
        tree.check_consistency()
            .unwrap_or_else(|e| panic!("round {round} (seed {seed:#x}): {e}"));
        assert_ranks_consistent(&tree);
    }
}
