//! Interleaving/stress property tests for the concurrent tree
//! ([`OlcTree`]) under `reservoir_par`'s seeded yield-injection scheduler.
//!
//! Every scenario asserts its forced-contention invariant through the
//! tree's own retry counters — "the stress ran and the protocol actually
//! conflicted" is part of the contract, not a hope. Seeds derive from
//! `RESERVOIR_TEST_SEED` (printed on failure) so a failing interleaving
//! family can be re-explored.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use reservoir_btree::sched::{self, SchedEvent};
use reservoir_btree::{OlcTree, SampleKey};
use reservoir_par::YieldInjector;
use reservoir_rng::test_base_seed;

/// Interleaved narrow key bands so every thread hammers the same nodes.
fn contended_key(thread: u64, i: u64) -> SampleKey {
    let id = thread * 1_000_000 + i;
    SampleKey::new((id % 17) as f64 + id as f64 * 1e-12, id)
}

/// Insert `per` keys from each of `threads` workers through the shared
/// tree, returning each worker's count of new-key insertions.
fn hammer(tree: &OlcTree, threads: u64, per: u64) -> Vec<u64> {
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let tree = &tree;
                s.spawn(move || {
                    let mut new = 0u64;
                    for i in 0..per {
                        if tree.insert(contended_key(t, i), t as f64 + 1.0) {
                            new += 1;
                        }
                    }
                    new
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

#[test]
fn concurrent_inserts_are_exactly_once_under_yield_injection() {
    let base = test_base_seed();
    for round in 0..4u64 {
        let seed = base.wrapping_add(round.wrapping_mul(0x9E37_79B9));
        let tree = OlcTree::new();
        let _guard = YieldInjector::install(seed);
        let (threads, per) = (8, 400);
        let new_counts = hammer(&tree, threads, per);
        assert_eq!(
            new_counts.iter().sum::<u64>(),
            threads * per,
            "every distinct key must report exactly one new insertion \
             (injector seed {seed:#x}; set RESERVOIR_TEST_SEED to vary)"
        );
        assert_eq!(tree.len() as u64, threads * per, "no lost updates");
        tree.check_consistency()
            .unwrap_or_else(|e| panic!("tree invalid under seed {seed:#x}: {e}"));
        // Iteration sees each id exactly once, in strict key order.
        let mut ids: Vec<u64> = tree.entries().iter().map(|(k, _)| k.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len() as u64, threads * per, "duplicate ids surfaced");
    }
}

#[test]
fn forced_contention_exercises_the_retry_path() {
    // Acceptance criterion: every stress scenario forces ≥ 1 seqlock
    // retry, observed through the tree's own conflict counter. The
    // aggressive injector parks writers inside critical sections, so
    // concurrent readers *must* exhaust their bounded spin.
    let base = test_base_seed();
    let seed = base.wrapping_add(0xC0117E57);
    let tree = OlcTree::new();
    let _guard = YieldInjector::install_aggressive(seed);
    hammer(&tree, 8, 300);
    let stats = tree.stats();
    assert!(
        stats.retries > 0,
        "aggressive injection produced no conflicts (seed {seed:#x}); the \
         retry path went unexercised"
    );
    assert!(stats.splits > 0, "2400 inserts at degree 16 must split");
    tree.check_consistency().unwrap();
}

#[test]
fn overwrites_never_duplicate_under_contention() {
    // All threads write the SAME key set: exactly one insertion per key
    // may be new across the whole run, the rest must overwrite in place.
    let base = test_base_seed();
    let tree = OlcTree::new();
    let _guard = YieldInjector::install(base.wrapping_add(0xD0));
    let (threads, keys) = (8u64, 257u64);
    let new_total: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let tree = &tree;
                s.spawn(move || {
                    let mut new = 0u64;
                    for i in 0..keys {
                        // Thread-dependent visit order.
                        let k = (i.wrapping_mul(t + 3)) % keys;
                        if tree.insert(SampleKey::new(k as f64, k), t as f64) {
                            new += 1;
                        }
                    }
                    new
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    assert_eq!(new_total, keys, "each key must be 'new' exactly once");
    assert_eq!(tree.len() as u64, keys);
    tree.check_consistency().unwrap();
    // Every stored value was written by *some* thread, atomically.
    tree.for_each(|_, w| assert!((0.0..threads as f64).contains(&w)));
}

#[test]
fn panicking_worker_leaves_the_tree_valid() {
    // Hooks only fire outside exclusive critical sections, so a worker
    // that dies mid-operation (simulated by a hook that panics once on a
    // countdown) cannot leave a node locked or half-mutated: the other
    // workers finish, and the tree stays fully consistent.
    let _serial = sched::hook_test_guard();
    let fuse = Arc::new(AtomicI64::new(500));
    let fired = {
        let fuse = fuse.clone();
        let prev = sched::set_hook(Some(Arc::new(move |ev| {
            if ev == SchedEvent::ReadBegin && fuse.fetch_sub(1, Ordering::Relaxed) == 0 {
                panic!("injected worker death");
            }
        })));
        let tree = OlcTree::new();
        let deaths = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let tree = &tree;
                let deaths = &deaths;
                s.spawn(move || {
                    for i in 0..600u64 {
                        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            tree.insert(contended_key(t, i), 1.0);
                        }));
                        if r.is_err() {
                            deaths.fetch_add(1, Ordering::Relaxed);
                            return; // the worker dies where it stood
                        }
                    }
                });
            }
        });
        sched::set_hook(prev);
        // Survivors' inserts all landed; the multiset is consistent.
        tree.check_consistency()
            .expect("tree must survive a worker death");
        let mut ids: Vec<u64> = tree.entries().iter().map(|(k, _)| k.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), tree.len(), "iteration must be duplicate-free");
        deaths.load(Ordering::Relaxed)
    };
    assert_eq!(fired, 1, "exactly one worker should have been killed");
}

#[test]
fn seeded_sweep_high_iteration() {
    // The CI stress job's inner loop: many short adversarial rounds under
    // distinct derived seeds, standard and aggressive profiles
    // alternating. RESERVOIR_STRESS_ROUNDS scales it up in CI.
    let rounds: u64 = std::env::var("RESERVOIR_STRESS_ROUNDS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(6);
    let base = test_base_seed();
    let mut total_retries = 0u64;
    for round in 0..rounds {
        let seed = base ^ round.wrapping_mul(0xA076_1D64_78BD_642F);
        let tree = OlcTree::new();
        let _guard = if round % 2 == 0 {
            YieldInjector::install_aggressive(seed)
        } else {
            YieldInjector::install(seed)
        };
        hammer(&tree, 8, 150);
        assert_eq!(
            tree.len(),
            8 * 150,
            "lost update in round {round} (seed {seed:#x})"
        );
        tree.check_consistency()
            .unwrap_or_else(|e| panic!("round {round} (seed {seed:#x}): {e}"));
        total_retries += tree.stats().retries;
    }
    println!("seeded sweep: {rounds} rounds, base seed {base:#x}, {total_retries} total retries");
    assert!(
        total_retries > 0,
        "a sweep with aggressive rounds must observe conflicts (base {base:#x})"
    );
}
