//! One-word sequence lock: the per-node synchronization primitive of the
//! concurrent tree layer ([`crate::OlcTree`]).
//!
//! The word holds a version counter in which the low bit doubles as the
//! write-lock flag: **even = unlocked, odd = write-locked**. Readers never
//! block writers and never write the word at all:
//!
//! * [`SeqLock::read_begin`] snapshots an even (unlocked) version,
//!   spinning a bounded number of times if a writer holds the lock;
//! * the reader then reads node payload words (each its own relaxed
//!   atomic, so a racing writer can make the *set* inconsistent but never
//!   undefined);
//! * [`SeqLock::validate`] re-reads the version — unchanged means no
//!   writer completed (or started) in between, so the reads form a
//!   consistent snapshot; changed means retry.
//!
//! Writers upgrade optimistically: [`SeqLock::try_lock`] compare-exchanges
//! the exact version the reader observed to its odd successor, which
//! *atomically* validates the read set and acquires the lock — the
//! `guard.upgrade()` step of the optimistic-lock-coupling descent.
//! [`WriteGuard`] releases by storing `version + 2`: the next even value,
//! so every write ends with a fresh version and invalidates all optimistic
//! readers that overlapped it. The guard unlocks on drop, so a panicking
//! writer cannot leave the node locked (the tree keeps its critical
//! sections panic-free, so an unwound guard never publishes a half
//! mutation either).

use std::sync::atomic::{fence, AtomicU64, Ordering};

use reservoir_obs::LazyCounter;

use crate::sched::{self, SchedEvent};

/// Spin iterations burned waiting out writers (slow path only: the
/// uncontended first-try read carries zero instrumentation).
static READ_SPINS: LazyCounter = LazyCounter::new(
    "seqlock_read_spins_total",
    "spin iterations optimistic readers burned waiting out writers",
);
/// Reads that exhausted the spin budget and restarted from the root.
static READ_RETRIES: LazyCounter = LazyCounter::new(
    "seqlock_read_retries_total",
    "optimistic reads that exhausted the spin budget and restarted",
);

/// Bounded spin budget of [`SeqLock::read_begin`] before it reports a
/// conflict instead of waiting out the writer. Small: conflicts restart
/// from the root, which is cheap at reservoir sizes, and the counter they
/// bump is what the stress suites assert on.
const SPIN_LIMIT: u32 = 128;

/// A version word whose low bit is the write-lock flag.
#[derive(Debug)]
pub struct SeqLock(AtomicU64);

impl Default for SeqLock {
    fn default() -> Self {
        Self::new()
    }
}

impl SeqLock {
    /// A fresh unlocked lock at version 0.
    pub const fn new() -> Self {
        SeqLock(AtomicU64::new(0))
    }

    /// Begin an optimistic read: return the current (even) version, or
    /// `Err(())` if a writer kept the node locked past the spin budget.
    /// The error carries no detail by design — every caller's only
    /// response is to restart from the root.
    #[inline]
    #[allow(clippy::result_unit_err)]
    pub fn read_begin(&self) -> Result<u64, ()> {
        sched::hook(SchedEvent::ReadBegin);
        for spins in 0..SPIN_LIMIT {
            let v = self.0.load(Ordering::Acquire);
            if v & 1 == 0 {
                if spins > 0 {
                    READ_SPINS.add(spins as u64);
                }
                return Ok(v);
            }
            sched::hook(SchedEvent::ReadSpin);
            std::hint::spin_loop();
        }
        READ_SPINS.add(SPIN_LIMIT as u64);
        READ_RETRIES.inc();
        Err(())
    }

    /// Whether the version is still exactly `v`: the relaxed payload reads
    /// made since [`Self::read_begin`] returned `v` form a consistent
    /// snapshot. The fence orders those reads before the re-check.
    #[inline]
    #[must_use]
    pub fn validate(&self, v: u64) -> bool {
        fence(Ordering::Acquire);
        self.0.load(Ordering::Acquire) == v
    }

    /// Upgrade the optimistic read at version `v` to an exclusive write
    /// lock. Success doubles as validation: nothing changed since `v` was
    /// observed, and the node is now locked (version `v + 1`, odd).
    #[inline]
    pub fn try_lock(&self, v: u64) -> Option<WriteGuard<'_>> {
        debug_assert_eq!(v & 1, 0, "cannot lock from a locked snapshot");
        if self
            .0
            .compare_exchange(v, v + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            sched::hook(SchedEvent::LockAcquired);
            Some(WriteGuard { lock: self, v })
        } else {
            None
        }
    }

    /// The raw word, for diagnostics/tests.
    #[cfg(test)]
    pub(crate) fn raw(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Exclusive write access to one node; unlocks (to version `v + 2`) on
/// drop, so the lock is released even if the holder unwinds.
pub struct WriteGuard<'a> {
    lock: &'a SeqLock,
    v: u64,
}

impl Drop for WriteGuard<'_> {
    fn drop(&mut self) {
        self.lock.0.store(self.v + 2, Ordering::Release);
        sched::hook(SchedEvent::Unlock);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_cycle_bumps_version_by_two() {
        let l = SeqLock::new();
        let v = l.read_begin().expect("unlocked");
        assert_eq!(v, 0);
        assert!(l.validate(v));
        {
            let _g = l.try_lock(v).expect("uncontended upgrade");
            assert_eq!(l.raw(), 1, "locked versions are odd");
            assert!(!l.validate(v), "readers overlapping a writer must fail");
        }
        assert_eq!(l.raw(), 2);
        assert!(!l.validate(v), "completed write invalidates the snapshot");
        assert!(l.try_lock(v).is_none(), "stale upgrade must lose");
        let v2 = l.read_begin().expect("unlocked again");
        assert!(l.try_lock(v2).is_some());
    }

    #[test]
    fn read_begin_gives_up_on_a_held_lock() {
        let l = SeqLock::new();
        let v = l.read_begin().unwrap();
        let _g = l.try_lock(v).unwrap();
        assert_eq!(l.read_begin(), Err(()), "bounded spin must report conflict");
    }
}
