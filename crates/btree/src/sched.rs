//! Scheduler instrumentation points for the concurrent tree layer.
//!
//! The optimistic-lock-coupling tree ([`crate::OlcTree`]) calls
//! [`hook`] at every interesting point of its concurrency protocol —
//! before optimistic reads, on validation, around lock acquisition,
//! inside splits. In production the hook is a single relaxed atomic load
//! (disabled, no callback installed). Stress harnesses — notably
//! `reservoir_par`'s seeded yield injector — install a callback with
//! [`set_hook`] to force specific interleavings: a `yield_now` between a
//! read and its validation widens the read-validate race window, a sleep
//! after `LockAcquired` forces optimistic readers into their bounded-spin
//! conflict path, a panic at `ReadBegin` simulates a worker dying outside
//! a critical section.
//!
//! The hook is process-global; tests that install one must serialize
//! against each other (the stress suites share a mutex). A callback that
//! panics unwinds into the tree operation that triggered it — the tree
//! only fires events *outside* its exclusive critical sections, so an
//! unwinding hook can never leave a node half-mutated or a lock held.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};

/// Where in the concurrency protocol the event fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedEvent {
    /// About to take an optimistic version snapshot of a node.
    ReadBegin,
    /// Spinning because the node is currently write-locked.
    ReadSpin,
    /// Read a child pointer; about to validate the parent version.
    Descend,
    /// A version validation failed or a lock upgrade lost its race; the
    /// whole operation will restart from the root.
    Conflict,
    /// An exclusive lock was acquired (fired just before the critical
    /// section begins mutating).
    LockAcquired,
    /// An exclusive lock was released.
    Unlock,
    /// A full node was split (fired after both locks are released).
    Split,
}

static ENABLED: AtomicBool = AtomicBool::new(false);

/// A scheduler callback; shared so harnesses can stash and restore it.
pub type Hook = Arc<dyn Fn(SchedEvent) + Send + Sync>;

static HOOK: RwLock<Option<Hook>> = RwLock::new(None);

/// Install (or clear, with `None`) the global scheduler hook. Returns the
/// previously installed hook so nested harnesses can restore it.
pub fn set_hook(hook: Option<Hook>) -> Option<Hook> {
    let mut slot = HOOK.write().unwrap_or_else(|e| e.into_inner());
    ENABLED.store(hook.is_some(), Ordering::Release);
    std::mem::replace(&mut slot, hook)
}

/// Serialize tests that install the global hook: hold the returned guard
/// for the whole install..uninstall span. Poisoning is ignored — a
/// previous test's (possibly deliberate) panic must not cascade.
pub fn hook_test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Fire `event` into the installed hook, if any. The disabled fast path
/// is one relaxed load.
#[inline]
pub fn hook(event: SchedEvent) {
    if ENABLED.load(Ordering::Relaxed) {
        hook_slow(event);
    }
}

#[cold]
fn hook_slow(event: SchedEvent) {
    // Clone the Arc out of the registry before calling so a hook that
    // itself flips the registry (or panics) never deadlocks the lock.
    let cb = HOOK
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
        .cloned();
    if let Some(cb) = cb {
        cb(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn hook_fires_while_installed() {
        let _guard = hook_test_guard();
        let hits = Arc::new(AtomicU64::new(0));
        hook(SchedEvent::ReadBegin); // disabled: no effect, no panic
        let h = hits.clone();
        let prev = set_hook(Some(Arc::new(move |_| {
            h.fetch_add(1, Ordering::Relaxed);
        })));
        hook(SchedEvent::ReadBegin);
        hook(SchedEvent::Conflict);
        let installed = set_hook(prev);
        assert!(installed.is_some(), "uninstall must return our hook");
        // Concurrent tree tests in this binary may also fire events while
        // our hook is installed, so only a lower bound is stable.
        assert!(hits.load(Ordering::Relaxed) >= 2);
    }
}
