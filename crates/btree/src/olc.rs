//! A concurrent B+ tree over optimistic lock coupling: the shared-tree
//! local reservoir that lets every scan worker insert survivors directly,
//! with no sequential merge epilogue.
//!
//! ## Protocol
//!
//! Every node carries one [`SeqLock`] word (version + lock bit). An
//! insert descends **optimistically**: snapshot the node's version, read
//! the routing keys and the child pointer as relaxed atomics, then
//! validate the version before the child pointer is trusted — classic
//! lock coupling with versions instead of latches (the parent is
//! re-validated right after the child's version is pinned, so a split
//! that moved the child between the two reads is always caught). At the
//! leaf the reader upgrades to an exclusive lock with a single
//! compare-exchange of the observed version, which atomically validates
//! the whole read set *and* locks the node. Any conflict — a changed
//! version, a lost upgrade race, a writer holding a node past the bounded
//! spin — restarts the operation from the root via the caller's
//! `repeat`-style retry loop, bumping the [`OlcStats::retries`] counter
//! the stress suites assert on.
//!
//! Full nodes are split **preemptively on the way down** (the classic
//! top-down B-tree insertion): when the descent meets a full node it
//! locks parent + node, splits, and restarts. The parent can never be
//! full at that point — it was itself split preemptively one level
//! earlier — except when a sibling's split raced in, which the
//! under-lock re-check turns into a plain restart.
//!
//! ## Why this is safe Rust (almost) all the way down
//!
//! Node payloads are **word atomics** (`AtomicU64` arrays), so a racing
//! optimistic reader can observe an inconsistent *set* of words but never
//! tears a word or touches freed memory: nodes live in a page-granular
//! [`NodePool`] whose pages never move or unmap before the pool drops,
//! and child pointers are slot indices that are only dereferenced after
//! the version validation proved them current. Slots recycled by a
//! rebuild get their seqlock version bumped on release, so a reader that
//! pinned a pre-free version can never validate against the slot's next
//! tenant (see the pool module docs). The single `unsafe` block is the
//! pool's page-pointer dereference.
//!
//! Trees borrow slots from an `Arc<NodePool>`: [`OlcTree::new`] keeps a
//! private pool (the single-tenant path is untouched), while
//! [`OlcTree::with_pool`] lets a fleet of trees share one pool so S
//! reservoirs cost O(pages) heap allocations instead of O(S · nodes).
//!
//! ## Division of labour with [`BPlusTree`](crate::BPlusTree)
//!
//! Only `insert` is concurrent — it is the one operation the parallel
//! scan needs inside a batch. The rank/select/prune/iterate surface runs
//! in the sampler's *sequential* protocol phases (count, select, output)
//! where the scan scope has already joined, so those take `&self`/`&mut
//! self` under the documented quiescence rule: no concurrent writers.
//! Subtree sizes are not maintained during concurrent inserts (that
//! would serialize writers on the root); instead every insert marks the
//! nodes on its descent path **subtree-dirty**, and
//! [`OlcTree::refresh_sizes`] recomputes sizes in one sequential pass
//! that descends only into dirty subtrees — O(touched) after a small
//! batch, not O(nodes) — so per-epoch finalization under continuous
//! publication stays cheap. The rank/select queries debug-assert the
//! sizes are fresh.

use std::cmp::Ordering as CmpOrder;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use reservoir_obs::{trace, LazyCounter, TraceKind, PE_UNRANKED};

use crate::key::SampleKey;
use crate::pool::NodePool;
use crate::sched::{self, SchedEvent};
use crate::seqlock::SeqLock;

/// Registry view of the per-tree `retries` atomic (slow path only: a
/// clean first-try insert never touches it).
static OLC_RETRIES: LazyCounter = LazyCounter::new(
    "olc_retries_total",
    "concurrent tree inserts that aborted on a version conflict and restarted",
);
/// Registry view of the per-tree `splits` atomic.
static OLC_SPLITS: LazyCounter = LazyCounter::new(
    "olc_splits_total",
    "leaf/inner node splits performed by concurrent inserts",
);
/// One insert retrying this many times is a contention storm worth a
/// flight-recorder event.
const RETRY_STORM: u64 = 8;

/// Fixed node width: max entries of a leaf, max children of an inner
/// node. Compile-time so node payloads are plain atomic arrays.
pub const OLC_DEGREE: usize = 16;

/// Rebuilds pack nodes to 3/4 so the next few inserts do not split.
const REBUILD_FILL: usize = (OLC_DEGREE * 3) / 4;

/// Deepest descent path an insert can record: u32 node indices at a
/// branching factor of at least 2 bound the height well below this.
const MAX_PATH: usize = 64;

/// Concurrency counters of one [`OlcTree`] (monotonic since creation).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OlcStats {
    /// Operations that restarted from the root after a version conflict,
    /// a lost lock-upgrade race, or a bounded-spin timeout.
    pub retries: u64,
    /// Node splits performed (including root splits).
    pub splits: u64,
}

/// `len` and `is_leaf` packed into one atomic word so a reader gets both
/// in a single load.
#[inline]
fn pack(len: usize, is_leaf: bool) -> u64 {
    ((len as u64) << 1) | is_leaf as u64
}

#[inline]
fn unpack(meta: u64) -> (usize, bool) {
    ((meta >> 1) as usize, meta & 1 == 1)
}

/// One tree node: a seqlock plus word-atomic payload arrays.
///
/// * leaf: `len` entries; `key_*[i]` is the i-th key, `val[i]` the f64
///   bits of its value.
/// * inner: `len` children in `val[0..len]` (pool slot indices) and `len − 1`
///   separators in `key_*[0..len−1]`, where separator `i` is the max key
///   of child `i`'s subtree.
pub(crate) struct NodeCell {
    /// The pool bumps this on slot release to invalidate stale readers.
    pub(crate) lock: SeqLock,
    meta: AtomicU64,
    /// Subtree size; only valid after [`OlcTree::refresh_sizes`].
    size: AtomicU64,
    /// Set when this subtree's cached `size` may be stale: inserts mark
    /// their whole descent path, splits mark both halves. Cleared by the
    /// refresh pass, which descends only into dirty subtrees.
    dirty: AtomicBool,
    key_bits: [AtomicU64; OLC_DEGREE],
    key_id: [AtomicU64; OLC_DEGREE],
    /// Leaf values / inner children; `val[0]` doubles as the free-list
    /// link while the slot is parked in the pool.
    pub(crate) val: [AtomicU64; OLC_DEGREE],
}

impl NodeCell {
    pub(crate) fn new() -> Self {
        NodeCell {
            lock: SeqLock::new(),
            meta: AtomicU64::new(0),
            size: AtomicU64::new(0),
            dirty: AtomicBool::new(false),
            key_bits: std::array::from_fn(|_| AtomicU64::new(0)),
            key_id: std::array::from_fn(|_| AtomicU64::new(0)),
            val: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Re-initialize the tree-visible header of a recycled slot. The
    /// payload words stay as the previous tenant (or the free-list link)
    /// left them — a node with `len = 0` exposes none of them, and the
    /// allocating tree overwrites `meta` with its own leaf flag anyway.
    pub(crate) fn reset(&self) {
        self.meta.store(0, Ordering::Relaxed);
        self.size.store(0, Ordering::Relaxed);
        self.dirty.store(false, Ordering::Relaxed);
    }

    /// Read key `i` (relaxed; may be garbage until the node version
    /// validates — `total_cmp` keeps even NaN garbage orderable).
    #[inline]
    fn key_at(&self, i: usize) -> SampleKey {
        SampleKey {
            key: f64::from_bits(self.key_bits[i].load(Ordering::Relaxed)),
            id: self.key_id[i].load(Ordering::Relaxed),
        }
    }

    #[inline]
    fn set_key(&self, i: usize, k: &SampleKey) {
        self.key_bits[i].store(k.key.to_bits(), Ordering::Relaxed);
        self.key_id[i].store(k.id, Ordering::Relaxed);
    }

    #[inline]
    fn child(&self, i: usize) -> u32 {
        self.val[i].load(Ordering::Relaxed) as u32
    }

    /// The child slot `key` routes to in an inner node with `len`
    /// children: the first whose separator is `>= key`, else the last.
    #[inline]
    fn route(&self, key: &SampleKey, len: usize) -> usize {
        for i in 0..len.saturating_sub(1) {
            if *key <= self.key_at(i) {
                return i;
            }
        }
        len.saturating_sub(1)
    }

    /// The slot holding child index `c` (under the node's lock).
    fn find_child(&self, c: u32, len: usize) -> Option<usize> {
        (0..len).find(|&i| self.child(i) == c)
    }

    /// Insert into a non-full, exclusively locked leaf. Returns `true`
    /// for a new entry, `false` when an equal key was overwritten.
    fn leaf_insert(&self, key: &SampleKey, weight: f64, len: usize) -> bool {
        debug_assert!(len < OLC_DEGREE);
        let mut pos = len;
        for i in 0..len {
            match key.cmp(&self.key_at(i)) {
                CmpOrder::Less => {
                    pos = i;
                    break;
                }
                CmpOrder::Equal => {
                    self.val[i].store(weight.to_bits(), Ordering::Relaxed);
                    return false;
                }
                CmpOrder::Greater => {}
            }
        }
        for i in (pos..len).rev() {
            self.key_bits[i + 1].store(self.key_bits[i].load(Ordering::Relaxed), Ordering::Relaxed);
            self.key_id[i + 1].store(self.key_id[i].load(Ordering::Relaxed), Ordering::Relaxed);
            self.val[i + 1].store(self.val[i].load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.set_key(pos, key);
        self.val[pos].store(weight.to_bits(), Ordering::Relaxed);
        self.meta.store(pack(len + 1, true), Ordering::Relaxed);
        true
    }
}

/// Why a `try_insert` attempt gave up.
enum Abort {
    /// A genuine version conflict / lost race: counted as a retry.
    Conflict,
    /// A preemptive split succeeded; restart the descent (progress was
    /// made, so this is not a conflict).
    Progress,
}

/// The descending operation's latched position above the current node.
#[derive(Clone, Copy)]
enum Parent {
    /// Above the root: the tree's root latch at the given version.
    Root(u64),
    /// An inner node (pool slot index) at the given version.
    Node(u32, u64),
}

/// The concurrent shared reservoir tree: `(SampleKey, f64)` entries,
/// lock-free-ish optimistic readers, seqlocked writers. See the module
/// docs for the protocol and the quiescence rule on the read surface.
pub struct OlcTree {
    pool: Arc<NodePool>,
    /// Slots this tree has allocated and not yet released (its node
    /// count) — per-tree, where the shared pool's counters are not.
    nodes: AtomicU64,
    /// Pool slot of the root node, guarded by `root_lock` exactly like
    /// a child pointer is guarded by its parent's lock.
    root: AtomicU32,
    root_lock: SeqLock,
    count: AtomicU64,
    retries: AtomicU64,
    splits: AtomicU64,
    /// Set by every concurrent insert; cleared by [`Self::refresh_sizes`]
    /// and rebuilds. Rank/select queries require it clear.
    dirty: AtomicBool,
}

impl Default for OlcTree {
    fn default() -> Self {
        Self::new()
    }
}

impl OlcTree {
    /// An empty tree (one empty root leaf) over a private node pool.
    pub fn new() -> Self {
        Self::with_pool(Arc::new(NodePool::new()))
    }

    /// An empty tree borrowing its node slots from `pool`. Any number of
    /// trees can share one pool — allocation is lock-free across
    /// tenants, and a tree's rebuilds/drop return its slots for the
    /// other tenants to reuse.
    pub fn with_pool(pool: Arc<NodePool>) -> Self {
        let tree = OlcTree {
            pool,
            nodes: AtomicU64::new(0),
            root: AtomicU32::new(0),
            root_lock: SeqLock::new(),
            count: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            splits: AtomicU64::new(0),
            dirty: AtomicBool::new(false),
        };
        let root = tree.alloc(true);
        tree.root.store(root, Ordering::Relaxed);
        tree
    }

    /// The pool this tree allocates from.
    pub fn pool(&self) -> &Arc<NodePool> {
        &self.pool
    }

    /// Allocate one slot from the pool and stamp it as this tree's
    /// empty leaf/inner node.
    fn alloc(&self, is_leaf: bool) -> u32 {
        let i = self.pool.alloc();
        self.pool
            .cell(i)
            .meta
            .store(pack(0, is_leaf), Ordering::Relaxed);
        self.nodes.fetch_add(1, Ordering::Relaxed);
        i
    }

    /// The cell at a published slot index.
    #[inline]
    fn node(&self, i: u32) -> &NodeCell {
        self.pool.cell(i)
    }

    /// Release the subtree under `idx` back to the pool (post-order:
    /// children are read before the free-list link overwrites `val[0]`).
    /// Exclusive-phase only, per the pool's release contract.
    fn release_subtree(&self, idx: u32) {
        let node = self.node(idx);
        let (len, is_leaf) = unpack(node.meta.load(Ordering::Relaxed));
        if !is_leaf {
            for i in 0..len {
                self.release_subtree(node.child(i));
            }
        }
        self.pool.release(idx);
        self.nodes.fetch_sub(1, Ordering::Relaxed);
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.count.load(Ordering::Acquire) as usize
    }

    /// Whether the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Concurrency counters since creation.
    pub fn stats(&self) -> OlcStats {
        OlcStats {
            retries: self.retries.load(Ordering::Relaxed),
            splits: self.splits.load(Ordering::Relaxed),
        }
    }

    /// Nodes this tree currently holds (pool slots allocated and not
    /// released). Baseline for reasoning about [`Self::refresh_sizes`]
    /// cost: touched ≤ node_count, and ≪ node_count after a small batch
    /// of inserts.
    pub fn node_count(&self) -> u64 {
        self.nodes.load(Ordering::Relaxed)
    }

    /// Insert an entry, overwriting the value of an equal key. Returns
    /// `true` when the entry is new. Safe to call from many threads
    /// concurrently; retries internally until it wins.
    pub fn insert(&self, key: SampleKey, weight: f64) -> bool {
        self.dirty.store(true, Ordering::Relaxed);
        let mut my_retries = 0u64;
        loop {
            match self.try_insert(&key, weight) {
                Ok(new) => {
                    if new {
                        self.count.fetch_add(1, Ordering::AcqRel);
                    }
                    return new;
                }
                Err(Abort::Conflict) => {
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    OLC_RETRIES.inc();
                    my_retries += 1;
                    if my_retries == RETRY_STORM {
                        trace::emit(
                            PE_UNRANKED,
                            TraceKind::OlcRetryStorm,
                            my_retries,
                            self.count.load(Ordering::Relaxed),
                        );
                    }
                    sched::hook(SchedEvent::Conflict);
                    std::hint::spin_loop();
                }
                Err(Abort::Progress) => {}
            }
        }
    }

    /// One optimistic descent; any conflict aborts back to [`Self::insert`].
    fn try_insert(&self, key: &SampleKey, weight: f64) -> Result<bool, Abort> {
        let root_ver = self.root_lock.read_begin().map_err(|()| Abort::Conflict)?;
        let mut node_idx = self.root.load(Ordering::Relaxed);
        sched::hook(SchedEvent::Descend);
        if !self.root_lock.validate(root_ver) {
            return Err(Abort::Conflict);
        }
        let mut parent = Parent::Root(root_ver);
        let mut path = [0u32; MAX_PATH];
        let mut depth = 0usize;
        loop {
            let node = self.node(node_idx);
            let node_ver = node.lock.read_begin().map_err(|()| Abort::Conflict)?;
            // Lock coupling: the child's version is pinned; the parent
            // must still have pointed here in the meantime.
            if !self.parent_valid(parent) {
                return Err(Abort::Conflict);
            }
            debug_assert!(depth < MAX_PATH);
            path[depth] = node_idx;
            depth += 1;
            let (len, is_leaf) = unpack(node.meta.load(Ordering::Relaxed));
            if len >= OLC_DEGREE {
                self.split_child(parent, node_idx, node_ver)?;
                // The split halved this node's cached size even if the
                // insert ends up overwriting: dirty the chain down to it
                // (split_into marked the new sibling).
                for &n in &path[..depth] {
                    self.node(n).dirty.store(true, Ordering::Relaxed);
                }
                return Err(Abort::Progress);
            }
            if is_leaf {
                // Upgrade: the compare-exchange succeeds only if nothing
                // changed since `node_ver`, validating `len` too.
                let guard = node.lock.try_lock(node_ver).ok_or(Abort::Conflict)?;
                let new = node.leaf_insert(key, weight, len);
                drop(guard);
                if new {
                    // Subtree sizes along the descent went stale. Nodes
                    // never move in the arena and subtrees are re-parented
                    // wholesale by splits, so marking by index stays valid
                    // even if a racing split relocated part of this path —
                    // the split marked both halves, keeping every stale
                    // node reachable through a dirty ancestor chain.
                    for &n in &path[..depth] {
                        self.node(n).dirty.store(true, Ordering::Relaxed);
                    }
                }
                return Ok(new);
            }
            let slot = node.route(key, len);
            let child = node.child(slot);
            sched::hook(SchedEvent::Descend);
            // The child index is only trusted once the version proves the
            // routing reads were consistent.
            if !node.lock.validate(node_ver) {
                return Err(Abort::Conflict);
            }
            parent = Parent::Node(node_idx, node_ver);
            node_idx = child;
        }
    }

    fn parent_valid(&self, parent: Parent) -> bool {
        match parent {
            Parent::Root(v) => self.root_lock.validate(v),
            Parent::Node(idx, v) => self.node(idx).lock.validate(v),
        }
    }

    /// Preemptively split the full node `n_idx` under its parent. Both
    /// are locked by upgrading the versions the descent observed, so any
    /// intervening change turns into a conflict.
    fn split_child(&self, parent: Parent, n_idx: u32, n_ver: u64) -> Result<(), Abort> {
        match parent {
            Parent::Root(root_ver) => {
                let root_guard = self.root_lock.try_lock(root_ver).ok_or(Abort::Conflict)?;
                let node = self.node(n_idx);
                let node_guard = node.lock.try_lock(n_ver).ok_or(Abort::Conflict)?;
                // Grow the tree: a new root adopts the old root as its
                // only child, then the child splits into it. The new
                // root is unpublished until the store below, so it needs
                // no lock of its own yet.
                let new_root = self.alloc(false);
                let root_node = self.node(new_root);
                root_node.val[0].store(n_idx as u64, Ordering::Relaxed);
                root_node.meta.store(pack(1, false), Ordering::Relaxed);
                self.split_into(new_root, 0, n_idx);
                self.root.store(new_root, Ordering::Relaxed);
                drop(node_guard);
                drop(root_guard); // bumps the root version: descents restart
            }
            Parent::Node(p_idx, p_ver) => {
                let pnode = self.node(p_idx);
                let p_guard = pnode.lock.try_lock(p_ver).ok_or(Abort::Conflict)?;
                let (plen, _) = unpack(pnode.meta.load(Ordering::Relaxed));
                if plen >= OLC_DEGREE {
                    // A sibling's split filled the parent behind us; the
                    // restarted descent will split the parent first.
                    return Err(Abort::Conflict);
                }
                let node = self.node(n_idx);
                let n_guard = node.lock.try_lock(n_ver).ok_or(Abort::Conflict)?;
                let slot = pnode.find_child(n_idx, plen).ok_or(Abort::Conflict)?;
                self.split_into(p_idx, slot, n_idx);
                drop(n_guard);
                drop(p_guard);
            }
        }
        self.splits.fetch_add(1, Ordering::Relaxed);
        OLC_SPLITS.inc();
        sched::hook(SchedEvent::Split);
        Ok(())
    }

    /// Split the full node `n_idx` (child `slot` of the locked, non-full
    /// inner node `p_idx`) into itself plus a fresh right sibling.
    fn split_into(&self, p_idx: u32, slot: usize, n_idx: u32) {
        let parent = self.node(p_idx);
        let node = self.node(n_idx);
        let (len, is_leaf) = unpack(node.meta.load(Ordering::Relaxed));
        debug_assert_eq!(len, OLC_DEGREE, "only full nodes split");
        let keep = OLC_DEGREE / 2;
        let right_idx = self.alloc(is_leaf);
        let right = self.node(right_idx);
        for i in keep..len {
            right.key_bits[i - keep]
                .store(node.key_bits[i].load(Ordering::Relaxed), Ordering::Relaxed);
            right.key_id[i - keep].store(node.key_id[i].load(Ordering::Relaxed), Ordering::Relaxed);
            right.val[i - keep].store(node.val[i].load(Ordering::Relaxed), Ordering::Relaxed);
        }
        right
            .meta
            .store(pack(len - keep, is_leaf), Ordering::Relaxed);
        node.meta.store(pack(keep, is_leaf), Ordering::Relaxed);
        // The promoted separator is the left half's max key: its last key
        // in a leaf, its last separator in an inner node — index keep−1
        // either way.
        let sep = node.key_at(keep - 1);
        // The new sibling's cached size is stale; the splitting insert
        // marks the ancestor chain (including the left half) from its
        // descent path, which keeps the sibling reachable through its
        // dirty parent.
        right.dirty.store(true, Ordering::Relaxed);
        let (plen, p_leaf) = unpack(parent.meta.load(Ordering::Relaxed));
        debug_assert!(!p_leaf && plen < OLC_DEGREE);
        for i in (slot + 1..plen).rev() {
            parent.val[i + 1].store(parent.val[i].load(Ordering::Relaxed), Ordering::Relaxed);
        }
        for i in (slot..plen.saturating_sub(1)).rev() {
            parent.key_bits[i + 1].store(
                parent.key_bits[i].load(Ordering::Relaxed),
                Ordering::Relaxed,
            );
            parent.key_id[i + 1].store(parent.key_id[i].load(Ordering::Relaxed), Ordering::Relaxed);
        }
        parent.val[slot + 1].store(right_idx as u64, Ordering::Relaxed);
        parent.set_key(slot, &sep);
        parent.meta.store(pack(plen + 1, false), Ordering::Relaxed);
    }

    // --- quiescent read surface (no concurrent writers) -----------------

    /// Visit every entry in key order.
    pub fn for_each(&self, mut f: impl FnMut(&SampleKey, f64)) {
        self.walk(self.root.load(Ordering::Relaxed), &mut f);
    }

    fn walk(&self, idx: u32, f: &mut impl FnMut(&SampleKey, f64)) {
        let node = self.node(idx);
        let (len, is_leaf) = unpack(node.meta.load(Ordering::Relaxed));
        if is_leaf {
            for i in 0..len {
                f(
                    &node.key_at(i),
                    f64::from_bits(node.val[i].load(Ordering::Relaxed)),
                );
            }
        } else {
            for i in 0..len {
                self.walk(node.child(i), f);
            }
        }
    }

    /// All entries in key order.
    pub fn entries(&self) -> Vec<(SampleKey, f64)> {
        let mut out = Vec::with_capacity(self.len());
        self.for_each(|k, w| out.push((*k, w)));
        out
    }

    /// The largest entry.
    pub fn max(&self) -> Option<(SampleKey, f64)> {
        let mut idx = self.root.load(Ordering::Relaxed);
        loop {
            let node = self.node(idx);
            let (len, is_leaf) = unpack(node.meta.load(Ordering::Relaxed));
            if is_leaf {
                return len.checked_sub(1).map(|i| {
                    (
                        node.key_at(i),
                        f64::from_bits(node.val[i].load(Ordering::Relaxed)),
                    )
                });
            }
            idx = node.child(len - 1);
        }
    }

    /// The value stored under `key`, if present.
    pub fn get(&self, key: &SampleKey) -> Option<f64> {
        let mut idx = self.root.load(Ordering::Relaxed);
        loop {
            let node = self.node(idx);
            let (len, is_leaf) = unpack(node.meta.load(Ordering::Relaxed));
            if is_leaf {
                return (0..len)
                    .find(|&i| node.key_at(i) == *key)
                    .map(|i| f64::from_bits(node.val[i].load(Ordering::Relaxed)));
            }
            idx = node.child(node.route(key, len));
        }
    }

    /// Recompute stale subtree sizes; the rank/select queries below
    /// require this after any batch of concurrent inserts. Descends only
    /// into subtrees marked dirty by inserts/splits, so the cost is
    /// O(touched nodes) after a small batch rather than O(nodes). The
    /// root is always recomputed (a racing root split installs a new,
    /// unmarked root). Returns the number of nodes visited — 0 when
    /// nothing was inserted since the last refresh.
    pub fn refresh_sizes(&mut self) -> u64 {
        if !self.dirty.load(Ordering::Relaxed) {
            return 0;
        }
        let mut touched = 0u64;
        let total = self.refresh(self.root.load(Ordering::Relaxed), &mut touched);
        debug_assert_eq!(total, self.count.load(Ordering::Relaxed));
        self.dirty.store(false, Ordering::Relaxed);
        touched
    }

    fn refresh(&self, idx: u32, touched: &mut u64) -> u64 {
        let node = self.node(idx);
        *touched += 1;
        let (len, is_leaf) = unpack(node.meta.load(Ordering::Relaxed));
        let size = if is_leaf {
            len as u64
        } else {
            (0..len)
                .map(|i| {
                    let c = node.child(i);
                    let cell = self.node(c);
                    if cell.dirty.load(Ordering::Relaxed) {
                        self.refresh(c, touched)
                    } else {
                        cell.size.load(Ordering::Relaxed)
                    }
                })
                .sum()
        };
        node.size.store(size, Ordering::Relaxed);
        node.dirty.store(false, Ordering::Relaxed);
        size
    }

    #[inline]
    fn assert_sizes_fresh(&self) {
        debug_assert!(
            !self.dirty.load(Ordering::Relaxed),
            "rank/select on an OlcTree needs refresh_sizes() after inserts"
        );
    }

    /// Number of keys `<= key`.
    pub fn count_le(&self, key: &SampleKey) -> usize {
        self.ranked(key, |k, probe| k <= probe)
    }

    /// Number of keys `< key`.
    pub fn count_less(&self, key: &SampleKey) -> usize {
        self.ranked(key, |k, probe| k < probe)
    }

    fn ranked(&self, key: &SampleKey, include: impl Fn(&SampleKey, &SampleKey) -> bool) -> usize {
        self.assert_sizes_fresh();
        let mut acc = 0u64;
        let mut idx = self.root.load(Ordering::Relaxed);
        loop {
            let node = self.node(idx);
            let (len, is_leaf) = unpack(node.meta.load(Ordering::Relaxed));
            if is_leaf {
                acc += (0..len).filter(|&i| include(&node.key_at(i), key)).count() as u64;
                return acc as usize;
            }
            // Children left of the routing slot have max key < `key`:
            // fully counted from their cached sizes.
            let slot = node.route(key, len);
            for i in 0..slot {
                acc += self.node(node.child(i)).size.load(Ordering::Relaxed);
            }
            idx = node.child(slot);
        }
    }

    /// The `rank`-th smallest entry (0-based).
    pub fn select(&self, rank: usize) -> Option<(SampleKey, f64)> {
        self.assert_sizes_fresh();
        if rank >= self.len() {
            return None;
        }
        let mut r = rank as u64;
        let mut idx = self.root.load(Ordering::Relaxed);
        loop {
            let node = self.node(idx);
            let (len, is_leaf) = unpack(node.meta.load(Ordering::Relaxed));
            if is_leaf {
                let i = r as usize;
                debug_assert!(i < len);
                return Some((
                    node.key_at(i),
                    f64::from_bits(node.val[i].load(Ordering::Relaxed)),
                ));
            }
            let mut next = node.child(len - 1);
            for i in 0..len {
                let s = self.node(node.child(i)).size.load(Ordering::Relaxed);
                if r < s {
                    next = node.child(i);
                    break;
                }
                r -= s;
            }
            idx = next;
        }
    }

    // --- exclusive structural operations ---------------------------------

    /// Drop every entry with a key strictly above `t`. Rebuilds the tree
    /// (recycling its slots through the pool), so sizes come out fresh.
    pub fn prune_above(&mut self, t: &SampleKey) {
        let mut kept = Vec::with_capacity(self.len());
        self.for_each(|k, w| {
            if k <= t {
                kept.push((*k, w));
            }
        });
        self.rebuild(kept);
    }

    /// Keep only the `cap` smallest entries.
    pub fn truncate_to(&mut self, cap: usize) {
        if self.len() <= cap {
            return;
        }
        let mut entries = self.entries();
        entries.truncate(cap);
        self.rebuild(entries);
    }

    /// Remove all entries.
    pub fn clear(&mut self) {
        self.rebuild(Vec::new());
    }

    /// Replace the whole tree with `entries` (must be key-sorted), packed
    /// to [`REBUILD_FILL`] per node. The old nodes are released to the
    /// pool *first*, so the replacement tree largely reuses the
    /// cache-warm slots it just vacated (the free list is LIFO).
    fn rebuild(&mut self, entries: Vec<(SampleKey, f64)>) {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        self.release_subtree(self.root.load(Ordering::Relaxed));
        self.count.store(entries.len() as u64, Ordering::Relaxed);
        self.dirty.store(false, Ordering::Relaxed);
        if entries.is_empty() {
            let root = self.alloc(true);
            self.root.store(root, Ordering::Relaxed);
            return;
        }
        // Leaves: (index, subtree max, subtree size) per built node.
        let mut level: Vec<(u32, SampleKey, u64)> = Vec::new();
        for chunk in balanced_chunks(entries.len()) {
            let idx = self.alloc(true);
            let node = self.node(idx);
            let slice = &entries[chunk.clone()];
            for (i, (k, w)) in slice.iter().enumerate() {
                node.set_key(i, k);
                node.val[i].store(w.to_bits(), Ordering::Relaxed);
            }
            node.meta.store(pack(slice.len(), true), Ordering::Relaxed);
            node.size.store(slice.len() as u64, Ordering::Relaxed);
            level.push((
                idx,
                slice.last().expect("nonempty chunk").0,
                slice.len() as u64,
            ));
        }
        while level.len() > 1 {
            let mut up = Vec::new();
            for chunk in balanced_chunks(level.len()) {
                let idx = self.alloc(false);
                let node = self.node(idx);
                let group = &level[chunk.clone()];
                let mut size = 0u64;
                for (i, (child, max, s)) in group.iter().enumerate() {
                    node.val[i].store(*child as u64, Ordering::Relaxed);
                    if i + 1 < group.len() {
                        node.set_key(i, max);
                    }
                    size += s;
                }
                node.meta.store(pack(group.len(), false), Ordering::Relaxed);
                node.size.store(size, Ordering::Relaxed);
                up.push((idx, group.last().expect("nonempty group").1, size));
            }
            level = up;
        }
        self.root.store(level[0].0, Ordering::Relaxed);
    }

    /// Structural validation for tests: key order, separator correctness,
    /// uniform depth, node occupancy, entry/size accounting. Tolerates
    /// stale sizes when inserts have not been followed by a refresh.
    pub fn check_consistency(&self) -> Result<(), String> {
        let root = self.root.load(Ordering::Relaxed);
        let check_sizes = !self.dirty.load(Ordering::Relaxed);
        let (count, _depth, _min, _max) = self.check_node(root, true, check_sizes)?;
        if count != self.count.load(Ordering::Relaxed) {
            return Err(format!(
                "entry count {} does not match counter {}",
                count,
                self.count.load(Ordering::Relaxed)
            ));
        }
        Ok(())
    }

    #[allow(clippy::type_complexity)]
    fn check_node(
        &self,
        idx: u32,
        is_root: bool,
        check_sizes: bool,
    ) -> Result<(u64, usize, Option<SampleKey>, Option<SampleKey>), String> {
        let node = self.node(idx);
        let (len, is_leaf) = unpack(node.meta.load(Ordering::Relaxed));
        if len > OLC_DEGREE {
            return Err(format!("node {idx}: overfull ({len})"));
        }
        if is_leaf {
            if len == 0 && !is_root {
                return Err(format!("leaf {idx}: empty non-root"));
            }
            for i in 1..len {
                if node.key_at(i - 1) >= node.key_at(i) {
                    return Err(format!("leaf {idx}: keys out of order at {i}"));
                }
            }
            if check_sizes && node.size.load(Ordering::Relaxed) != len as u64 {
                return Err(format!("leaf {idx}: stale size"));
            }
            let min = (len > 0).then(|| node.key_at(0));
            let max = (len > 0).then(|| node.key_at(len - 1));
            return Ok((len as u64, 0, min, max));
        }
        if len < 2 {
            return Err(format!("inner {idx}: fewer than two children"));
        }
        let mut count = 0u64;
        let mut depth = None;
        let mut prev_max: Option<SampleKey> = None;
        let mut min = None;
        let mut max = None;
        for i in 0..len {
            let (c, d, cmin, cmax) = self.check_node(node.child(i), false, check_sizes)?;
            count += c;
            match depth {
                None => depth = Some(d),
                Some(depth) if depth != d => {
                    return Err(format!("inner {idx}: uneven depth"));
                }
                _ => {}
            }
            let (cmin, cmax) = (
                cmin.ok_or_else(|| format!("inner {idx}: empty child"))?,
                cmax.ok_or_else(|| format!("inner {idx}: empty child"))?,
            );
            if let Some(p) = prev_max {
                if cmin <= p {
                    return Err(format!("inner {idx}: child {i} overlaps predecessor"));
                }
            }
            if i + 1 < len && node.key_at(i) != cmax {
                return Err(format!("inner {idx}: separator {i} is not the child max"));
            }
            if min.is_none() {
                min = Some(cmin);
            }
            max = Some(cmax);
            prev_max = Some(cmax);
        }
        if check_sizes && node.size.load(Ordering::Relaxed) != count {
            return Err(format!("inner {idx}: stale size"));
        }
        Ok((count, depth.unwrap_or(0) + 1, min, max))
    }
}

impl Drop for OlcTree {
    fn drop(&mut self) {
        // Returning slots one by one only matters while other tenants
        // can still reuse them; the last Arc holder lets the pool's own
        // drop free whole pages instead.
        if Arc::strong_count(&self.pool) > 1 {
            self.release_subtree(self.root.load(Ordering::Relaxed));
        }
    }
}

/// Split `n` positions into contiguous runs of [`REBUILD_FILL`], folding
/// a trailing singleton into its predecessor so no node ends up with a
/// lone child.
fn balanced_chunks(n: usize) -> Vec<std::ops::Range<usize>> {
    let mut out = Vec::with_capacity(n.div_ceil(REBUILD_FILL));
    let mut start = 0;
    while start < n {
        let mut end = (start + REBUILD_FILL).min(n);
        if n - end == 1 {
            end -= 1; // leave two for the final chunk
        }
        out.push(start..end);
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn key(v: f64, id: u64) -> SampleKey {
        SampleKey::new(v, id)
    }

    #[test]
    fn sequential_inserts_match_a_model() {
        let tree = OlcTree::new();
        let mut model = BTreeMap::new();
        let mut x = 0x9E37u64;
        for i in 0..500u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (x >> 11) as f64 / (1u64 << 53) as f64;
            let new = tree.insert(key(v, i), i as f64);
            assert!(new);
            model.insert((v.to_bits(), i), i as f64);
        }
        assert_eq!(tree.len(), 500);
        tree.check_consistency().unwrap();
        let got: Vec<(u64, u64)> = tree
            .entries()
            .iter()
            .map(|(k, _)| (k.key.to_bits(), k.id))
            .collect();
        let want: Vec<(u64, u64)> = model.keys().copied().collect();
        assert_eq!(got, want, "iteration must be key-ordered and complete");
        assert!(
            tree.stats().splits > 0,
            "500 inserts at degree 16 must split"
        );
    }

    #[test]
    fn duplicate_keys_overwrite_in_place() {
        let tree = OlcTree::new();
        assert!(tree.insert(key(0.5, 7), 1.0));
        assert!(!tree.insert(key(0.5, 7), 2.0));
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.get(&key(0.5, 7)), Some(2.0));
        assert_eq!(tree.get(&key(0.5, 8)), None);
    }

    #[test]
    fn rank_select_and_max_after_refresh() {
        let mut tree = OlcTree::new();
        for i in 0..300u64 {
            // Insert in a scrambled order.
            let j = (i * 7919) % 300;
            tree.insert(key(j as f64, j), j as f64);
        }
        tree.refresh_sizes();
        tree.check_consistency().unwrap();
        assert_eq!(tree.count_le(&key(99.0, 99)), 100);
        assert_eq!(tree.count_less(&key(99.0, 99)), 99);
        assert_eq!(tree.count_le(&key(-1.0, 0)), 0);
        assert_eq!(tree.count_le(&key(1e9, 0)), 300);
        for r in [0usize, 1, 150, 299] {
            let (k, _) = tree.select(r).expect("in range");
            assert_eq!(k.id, r as u64);
        }
        assert!(tree.select(300).is_none());
        assert_eq!(tree.max().unwrap().0.id, 299);
    }

    #[test]
    fn prune_truncate_clear_rebuild() {
        let mut tree = OlcTree::new();
        for i in 0..200u64 {
            tree.insert(key(i as f64, i), 1.0);
        }
        tree.prune_above(&key(49.0, 49));
        assert_eq!(tree.len(), 50);
        tree.check_consistency().unwrap();
        // Rebuilds leave fresh sizes: rank queries need no refresh.
        assert_eq!(tree.count_le(&key(49.0, 49)), 50);
        tree.truncate_to(10);
        assert_eq!(tree.len(), 10);
        assert_eq!(tree.max().unwrap().0.id, 9);
        tree.check_consistency().unwrap();
        tree.clear();
        assert!(tree.is_empty());
        assert!(tree.max().is_none());
        tree.check_consistency().unwrap();
        // The tree stays usable after a rebuild.
        tree.insert(key(1.0, 1), 1.0);
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn concurrent_disjoint_inserts_land_exactly_once() {
        let tree = OlcTree::new();
        let threads = 4;
        let per = 400u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let tree = &tree;
                s.spawn(move || {
                    for i in 0..per {
                        let id = t * per + i;
                        // interleaved key ranges across threads
                        assert!(tree.insert(key((id % 97) as f64 + id as f64 * 1e-9, id), 1.0));
                    }
                });
            }
        });
        assert_eq!(tree.len(), (threads * per) as usize);
        tree.check_consistency().unwrap();
        let ids: Vec<u64> = tree.entries().iter().map(|(k, _)| k.id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), (threads * per) as usize, "no duplicates");
    }

    #[test]
    fn balanced_chunks_never_leave_singletons_after_the_first() {
        for n in 1..200 {
            let chunks = balanced_chunks(n);
            assert_eq!(chunks.iter().map(|c| c.len()).sum::<usize>(), n);
            assert!(chunks.iter().all(|c| c.len() <= OLC_DEGREE));
            if n > 1 {
                assert!(chunks.iter().all(|c| c.len() >= 2 || n == 1));
            }
        }
    }

    #[test]
    fn shared_pool_trees_are_independent_and_recycle_on_drop() {
        let pool = Arc::new(crate::pool::NodePool::new());
        let mut a = OlcTree::with_pool(Arc::clone(&pool));
        let b = OlcTree::with_pool(Arc::clone(&pool));
        for i in 0..300u64 {
            a.insert(key(i as f64, i), 1.0);
            b.insert(key((i + 1000) as f64, i + 1000), 2.0);
        }
        a.check_consistency().unwrap();
        b.check_consistency().unwrap();
        assert_eq!(a.len(), 300);
        assert_eq!(b.len(), 300);
        assert_eq!(a.get(&key(1000.0, 1000)), None, "tenants must not leak");
        assert_eq!(
            pool.live_slots(),
            a.node_count() + b.node_count(),
            "pool live slots must account exactly for both tenants"
        );

        // A rebuild recycles: no new pages, slots flow through the list.
        let pages_before = pool.stats().pages;
        a.truncate_to(50);
        a.check_consistency().unwrap();
        assert_eq!(pool.stats().pages, pages_before, "rebuild must not grow");
        assert!(pool.stats().recycles > 0);
        assert!(pool.stats().reused > 0, "rebuild must reuse freed slots");

        // Dropping a tenant returns every one of its slots.
        let b_nodes = b.node_count();
        assert!(b_nodes > 0);
        let live_before = pool.live_slots();
        drop(b);
        assert_eq!(pool.live_slots(), live_before - b_nodes);

        // The surviving tenant is unaffected.
        assert_eq!(a.len(), 50);
        a.check_consistency().unwrap();
    }

    #[test]
    fn node_count_tracks_allocations_across_rebuilds() {
        let mut tree = OlcTree::new();
        assert_eq!(tree.node_count(), 1, "empty tree is one root leaf");
        for i in 0..500u64 {
            tree.insert(key(i as f64, i), 1.0);
        }
        let grown = tree.node_count();
        assert!(grown > 1);
        tree.clear();
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.pool().live_slots(), 1);
    }
}
