//! The composite sampling key used by all reservoir algorithms.

use std::cmp::Ordering;

/// A reservoir key: the random variate associated with an item plus the
/// item's globally unique id as a tiebreaker.
///
/// The algorithms of the paper assume keys are pairwise distinct (they are
/// continuous random variates, so ties have probability zero — but floating
/// point collapses that to "astronomically unlikely" rather than
/// impossible). Including the item id in the order makes the global order
/// total and deterministic, which the distributed selection relies on: every
/// PE must agree on *exactly* which items rank below the threshold.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SampleKey {
    /// The random variate (exponential for weighted sampling, uniform for
    /// unweighted sampling). Smaller keys are "better" — the reservoir keeps
    /// the k smallest.
    pub key: f64,
    /// Globally unique item identifier; breaks floating-point ties.
    pub id: u64,
}

impl SampleKey {
    /// Create a key. `key` must not be NaN (checked in debug builds); the
    /// samplers never produce NaN because `rand()` is drawn from `(0, 1]`.
    #[inline]
    pub fn new(key: f64, id: u64) -> Self {
        debug_assert!(!key.is_nan(), "sample keys must not be NaN");
        Self { key, id }
    }

    /// A key smaller than every key the samplers can produce.
    pub const MIN: SampleKey = SampleKey {
        key: f64::NEG_INFINITY,
        id: 0,
    };

    /// A key larger than every key the samplers can produce.
    pub const MAX: SampleKey = SampleKey {
        key: f64::INFINITY,
        id: u64::MAX,
    };
}

impl Eq for SampleKey {}

impl PartialOrd for SampleKey {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SampleKey {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.key
            .total_cmp(&other.key)
            .then_with(|| self.id.cmp(&other.id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_key_then_id() {
        let a = SampleKey::new(1.0, 5);
        let b = SampleKey::new(2.0, 1);
        let c = SampleKey::new(1.0, 6);
        assert!(a < b);
        assert!(a < c);
        assert!(c < b);
        assert_eq!(a, SampleKey::new(1.0, 5));
    }

    #[test]
    fn min_max_bracket_everything() {
        let k = SampleKey::new(1e308, 123);
        assert!(SampleKey::MIN < k);
        assert!(k < SampleKey::MAX);
        let tiny = SampleKey::new(-1e308, 0);
        assert!(SampleKey::MIN < tiny);
    }

    #[test]
    fn negative_zero_and_zero_are_ordered_consistently() {
        // total_cmp puts -0.0 < +0.0; both orderings are fine as long as the
        // order is total and deterministic.
        let a = SampleKey::new(-0.0, 1);
        let b = SampleKey::new(0.0, 1);
        assert!(a < b);
    }
}
