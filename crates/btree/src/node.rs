//! Node representation and low-level structural helpers.
//!
//! Invariants (checked by `check_invariants` in tests):
//!
//! * a leaf holds `1..=degree` sorted, strictly increasing entries
//!   (non-root leaves hold at least `degree/2`); an empty tree is a single
//!   empty root leaf;
//! * an inner node holds `2..=degree` children (non-root: at least
//!   `degree/2`) and `children.len() - 1` separator keys, where `seps[i]`
//!   equals the **maximum key in `children[i]`'s subtree**;
//! * every inner node caches the total number of entries below it;
//! * all leaves are at the same depth.

pub(crate) enum Node<K, V> {
    Leaf(Vec<(K, V)>),
    Inner(Inner<K, V>),
}

pub(crate) struct Inner<K, V> {
    /// `seps[i]` = max key in `children[i]`; one fewer than `children`.
    pub seps: Vec<K>,
    pub children: Vec<Node<K, V>>,
    /// Total number of entries in this subtree.
    pub size: usize,
}

impl<K: Ord + Clone, V> Node<K, V> {
    pub fn empty_leaf() -> Self {
        Node::Leaf(Vec::new())
    }

    /// Number of entries in the subtree rooted here. O(1).
    pub fn size(&self) -> usize {
        match self {
            Node::Leaf(entries) => entries.len(),
            Node::Inner(inner) => inner.size,
        }
    }

    /// Height of the subtree; leaves have height 0. O(log n).
    pub fn height(&self) -> usize {
        match self {
            Node::Leaf(_) => 0,
            Node::Inner(inner) => 1 + inner.children[0].height(),
        }
    }

    /// Maximum key in the subtree, if nonempty. O(log n).
    pub fn max_key(&self) -> Option<&K> {
        match self {
            Node::Leaf(entries) => entries.last().map(|(k, _)| k),
            Node::Inner(inner) => inner
                .children
                .last()
                .expect("inner node has children")
                .max_key(),
        }
    }

    /// Minimum key in the subtree, if nonempty. O(log n).
    pub fn min_key(&self) -> Option<&K> {
        match self {
            Node::Leaf(entries) => entries.first().map(|(k, _)| k),
            Node::Inner(inner) => inner
                .children
                .first()
                .expect("inner node has children")
                .min_key(),
        }
    }

    /// Collapse chains of single-child inner nodes; used after splits so the
    /// root never has exactly one child.
    pub fn collapse(mut self) -> Self {
        loop {
            match self {
                Node::Inner(inner) if inner.children.len() == 1 => {
                    self = inner.children.into_iter().next().expect("one child");
                }
                other => return other,
            }
        }
    }
}

impl<K: Ord + Clone, V> Inner<K, V> {
    /// Build an inner node from children and the separators *between* them,
    /// recomputing the cached size.
    pub fn from_parts(seps: Vec<K>, children: Vec<Node<K, V>>) -> Self {
        debug_assert!(
            children.len() >= 2,
            "inner nodes need at least two children"
        );
        debug_assert_eq!(seps.len() + 1, children.len());
        let size = children.iter().map(Node::size).sum();
        Inner {
            seps,
            children,
            size,
        }
    }

    /// Index of the child that may contain `k`: the first child whose
    /// separator (subtree max) is `>= k`; keys greater than every separator
    /// route to the last child.
    #[inline]
    pub fn route(&self, k: &K) -> usize {
        self.seps.partition_point(|s| s < k)
    }
}

/// Outcome of an operation that may split a node on the way up.
pub(crate) enum Spill<K, V> {
    /// The node absorbed the change.
    None,
    /// The node split: `sep` is the max key of the (modified) left node and
    /// `right` is the new right sibling to insert after it.
    Split { sep: K, right: Node<K, V> },
}

/// Split an overfull leaf in half; returns the spill for the parent.
pub(crate) fn split_leaf<K: Ord + Clone, V>(entries: &mut Vec<(K, V)>) -> Spill<K, V> {
    let mid = entries.len() / 2;
    let right: Vec<(K, V)> = entries.split_off(mid);
    let sep = entries.last().expect("left half nonempty").0.clone();
    Spill::Split {
        sep,
        right: Node::Leaf(right),
    }
}

/// Split an overfull inner node in half; returns the spill for the parent.
pub(crate) fn split_inner<K: Ord + Clone, V>(inner: &mut Inner<K, V>) -> Spill<K, V> {
    let mid = inner.children.len() / 2;
    let right_children: Vec<Node<K, V>> = inner.children.split_off(mid);
    let mut right_seps = inner.seps.split_off(mid - 1);
    let sep = right_seps.remove(0); // separator between the two halves
    let right = Inner::from_parts(right_seps, right_children);
    inner.size -= right.size;
    Spill::Split {
        sep,
        right: Node::Inner(right),
    }
}

/// Recursively verify all structural invariants below `node`; returns the
/// subtree size. Only called from `BPlusTree::check_invariants` (tests).
pub(crate) fn check_node<K: Ord + Clone + std::fmt::Debug, V>(
    node: &Node<K, V>,
    degree: usize,
    is_root: bool,
    expected_height: usize,
) -> usize {
    let min_fill = degree / 2;
    match node {
        Node::Leaf(entries) => {
            assert_eq!(expected_height, 0, "leaf at nonzero height");
            if !is_root {
                assert!(
                    entries.len() >= min_fill,
                    "underfull leaf: {} < {min_fill}",
                    entries.len()
                );
            }
            assert!(entries.len() <= degree, "overfull leaf: {}", entries.len());
            for pair in entries.windows(2) {
                assert!(pair[0].0 < pair[1].0, "leaf keys not strictly increasing");
            }
            entries.len()
        }
        Node::Inner(inner) => {
            assert!(expected_height > 0, "inner node at leaf height");
            if !is_root {
                assert!(
                    inner.children.len() >= min_fill,
                    "underfull inner: {} < {min_fill}",
                    inner.children.len()
                );
            }
            assert!(
                inner.children.len() >= 2 && inner.children.len() <= degree,
                "inner child count {} out of [2, {degree}]",
                inner.children.len()
            );
            assert_eq!(inner.seps.len() + 1, inner.children.len());
            let mut total = 0;
            for (i, child) in inner.children.iter().enumerate() {
                total += check_node(child, degree, false, expected_height - 1);
                let child_max = child.max_key().expect("non-root nodes are nonempty");
                if i < inner.seps.len() {
                    assert_eq!(
                        &inner.seps[i], child_max,
                        "separator {i} does not equal subtree max"
                    );
                }
                if i > 0 {
                    let child_min = child.min_key().expect("nonempty");
                    assert!(
                        &inner.seps[i - 1] < child_min,
                        "child {i} keys not greater than left separator"
                    );
                }
            }
            assert_eq!(inner.size, total, "cached size incorrect");
            total
        }
    }
}
