//! Augmented B+ tree — the local-reservoir data structure of the paper.
//!
//! Section 3.2 of the paper requires a search tree where
//!
//! * leaves store the items, inner nodes only route;
//! * `split` and `join` run in O(log n);
//! * subtree sizes are maintained so `rank` and `select` run in O(log n).
//!
//! The paper's C++ implementation augments Bingmann's TLX B+ tree; this crate
//! is a from-scratch Rust equivalent. Differences worth knowing:
//!
//! * **Leaf links.** TLX links leaf nodes so a scan can hop to the next leaf
//!   in O(1). Safe Rust with `Box`-owned children cannot hold sibling
//!   pointers without `unsafe` or `Rc<RefCell>`; instead, [`BPlusTree::iter`]
//!   walks an explicit stack which is amortized O(1) per item — the same
//!   asymptotics for every use the algorithms make of the links.
//! * **Split via join.** `split_at_key`/`split_at_rank` cut the tree along a
//!   root-to-leaf path and reassemble both sides with O(log n) `join`
//!   operations, exactly the classic B-tree split; total cost O(log² n)
//!   worst case, which is negligible at reservoir sizes (one split per
//!   mini-batch).
//!
//! The element type is generic, but the crate also ships [`SampleKey`] — the
//! `(f64 key, u64 item id)` composite key used by all the samplers, with a
//! total order (`f64::total_cmp`, then id) so keys are unique even in the
//! measure-zero event of equal floating-point keys.
//!
//! A second, **concurrent** tree lives alongside the sequential one:
//! [`OlcTree`], a fixed-degree B+ tree over seqlock-based optimistic lock
//! coupling ([`seqlock`], [`sched`]), lets many scan workers insert into
//! one shared reservoir with no merge epilogue. See the [`olc`] module
//! docs for the protocol. Its node storage is a page-granular
//! [`NodePool`] ([`pool`]) that any number of trees can share — the
//! allocator lever that makes a multi-tenant shard fleet cost O(pages)
//! heap allocations instead of one arena per reservoir.

mod iter;
mod key;
mod node;
pub mod olc;
pub mod pool;
pub mod sched;
pub mod seqlock;
mod tree;

pub use iter::{keys_of, Iter};
pub use key::SampleKey;
pub use olc::{OlcStats, OlcTree, OLC_DEGREE};
pub use pool::{NodePool, PoolStats, PAGE_NODES};
pub use seqlock::{SeqLock, WriteGuard};
pub use tree::BPlusTree;

/// Default maximum node degree (max children of an inner node and max
/// entries of a leaf). 32 keeps inner nodes within one or two cache lines
/// for `SampleKey` keys.
pub const DEFAULT_DEGREE: usize = 32;

/// Minimum supported degree. Below 4, a node split could produce inner nodes
/// with fewer than two children.
pub const MIN_DEGREE: usize = 4;
