//! The public B+ tree type and its algorithms.

use std::mem;

use crate::iter::Iter;
use crate::node::{split_inner, split_leaf, Inner, Node, Spill};
use crate::{DEFAULT_DEGREE, MIN_DEGREE};

/// An order-statistics B+ tree: a search tree over unique keys supporting
/// `insert`, `get`, `rank`, `select`, `split_at_key`, `split_at_rank` and
/// `join`, all in O(log n) (splits: O(log² n) via joins).
///
/// This is the local-reservoir structure of the paper (Section 3.2): each PE
/// keeps its part of the distributed sample in one of these, keyed by
/// [`SampleKey`](crate::SampleKey).
pub struct BPlusTree<K: Ord + Clone, V> {
    root: Node<K, V>,
    degree: usize,
}

impl<K: Ord + Clone, V> Default for BPlusTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone, V> BPlusTree<K, V> {
    /// Empty tree with the default node degree.
    pub fn new() -> Self {
        Self::with_degree(DEFAULT_DEGREE)
    }

    /// Empty tree with maximum node degree `degree` (≥ [`MIN_DEGREE`]).
    pub fn with_degree(degree: usize) -> Self {
        assert!(
            degree >= MIN_DEGREE,
            "degree {degree} < MIN_DEGREE {MIN_DEGREE}"
        );
        BPlusTree {
            root: Node::empty_leaf(),
            degree,
        }
    }

    /// Build from strictly increasing `(key, value)` pairs in O(n).
    pub fn from_sorted(entries: Vec<(K, V)>, degree: usize) -> Self {
        assert!(degree >= MIN_DEGREE);
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "from_sorted requires strictly increasing keys"
        );
        if entries.is_empty() {
            return Self::with_degree(degree);
        }
        let min_fill = degree / 2;
        // Chunk entries into leaves, keeping every leaf at least half full.
        let mut level: Vec<Node<K, V>> = Vec::with_capacity(entries.len() / degree + 1);
        let mut entries = entries;
        while !entries.is_empty() {
            let take = if entries.len() > degree && entries.len() < degree + min_fill {
                // Splitting `degree..degree+min_fill` entries evenly keeps
                // both final leaves at least half full.
                entries.len() / 2
            } else {
                entries.len().min(degree)
            };
            let rest = entries.split_off(take);
            level.push(Node::Leaf(entries));
            entries = rest;
        }
        // Build inner levels until a single root remains.
        while level.len() > 1 {
            let mut next: Vec<Node<K, V>> = Vec::with_capacity(level.len() / 2 + 1);
            let mut nodes = level;
            while !nodes.is_empty() {
                let take = if nodes.len() > degree && nodes.len() < degree + min_fill {
                    nodes.len() / 2
                } else {
                    nodes.len().min(degree)
                };
                let rest = nodes.split_off(take);
                if nodes.len() == 1 {
                    // A single leftover child would make an invalid inner
                    // node; only possible when this is the final root level.
                    next.push(nodes.pop().expect("one node"));
                } else {
                    let seps = nodes[..nodes.len() - 1]
                        .iter()
                        .map(|c| c.max_key().expect("nonempty").clone())
                        .collect();
                    next.push(Node::Inner(Inner::from_parts(seps, nodes)));
                }
                nodes = rest;
            }
            level = next;
        }
        BPlusTree {
            root: level.pop().expect("nonempty level"),
            degree,
        }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.root.size()
    }

    /// Whether the tree holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The maximum node degree this tree was built with.
    #[inline]
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Remove all entries.
    pub fn clear(&mut self) {
        self.root = Node::empty_leaf();
    }

    /// Insert `(k, v)`; returns the previous value if `k` was present.
    pub fn insert(&mut self, k: K, v: V) -> Option<V> {
        let (replaced, spill) = insert_rec(&mut self.root, k, v, self.degree);
        if let Spill::Split { sep, right } = spill {
            let old_root = mem::replace(&mut self.root, Node::empty_leaf());
            self.root = Node::Inner(Inner::from_parts(vec![sep], vec![old_root, right]));
        }
        replaced
    }

    /// Look up the value stored under `k`.
    pub fn get(&self, k: &K) -> Option<&V> {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf(entries) => {
                    return entries
                        .binary_search_by(|(kk, _)| kk.cmp(k))
                        .ok()
                        .map(|i| &entries[i].1);
                }
                Node::Inner(inner) => {
                    let i = inner.route(k).min(inner.children.len() - 1);
                    node = &inner.children[i];
                }
            }
        }
    }

    /// Whether `k` is present.
    pub fn contains(&self, k: &K) -> bool {
        self.get(k).is_some()
    }

    /// Smallest entry, if any.
    pub fn min(&self) -> Option<(&K, &V)> {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf(entries) => return entries.first().map(|(k, v)| (k, v)),
                Node::Inner(inner) => node = inner.children.first().expect("children"),
            }
        }
    }

    /// Largest entry, if any.
    pub fn max(&self) -> Option<(&K, &V)> {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf(entries) => return entries.last().map(|(k, v)| (k, v)),
                Node::Inner(inner) => node = inner.children.last().expect("children"),
            }
        }
    }

    /// Number of entries with keys **strictly below** `k`. O(log n).
    pub fn rank(&self, k: &K) -> usize {
        let mut node = &self.root;
        let mut acc = 0;
        loop {
            match node {
                Node::Leaf(entries) => {
                    return acc + entries.partition_point(|(kk, _)| kk < k);
                }
                Node::Inner(inner) => {
                    let i = inner.seps.partition_point(|s| s < k);
                    acc += inner.children[..i].iter().map(Node::size).sum::<usize>();
                    node = &inner.children[i.min(inner.children.len() - 1)];
                    if i >= inner.children.len() {
                        // All separators < k and we already counted every
                        // child except the last; continue into the last.
                        unreachable!("route index bounded by children.len() - 1");
                    }
                }
            }
        }
    }

    /// Number of entries with keys `<= k`. O(log n).
    pub fn count_le(&self, k: &K) -> usize {
        let mut node = &self.root;
        let mut acc = 0;
        loop {
            match node {
                Node::Leaf(entries) => {
                    return acc + entries.partition_point(|(kk, _)| kk <= k);
                }
                Node::Inner(inner) => {
                    let i = inner
                        .seps
                        .partition_point(|s| s <= k)
                        .min(inner.children.len() - 1);
                    acc += inner.children[..i].iter().map(Node::size).sum::<usize>();
                    node = &inner.children[i];
                }
            }
        }
    }

    /// The entry with the `r`-th smallest key (0-based). O(log n).
    pub fn select(&self, r: usize) -> Option<(&K, &V)> {
        if r >= self.len() {
            return None;
        }
        let mut node = &self.root;
        let mut r = r;
        loop {
            match node {
                Node::Leaf(entries) => {
                    let (k, v) = &entries[r];
                    return Some((k, v));
                }
                Node::Inner(inner) => {
                    let mut i = 0;
                    while r >= inner.children[i].size() {
                        r -= inner.children[i].size();
                        i += 1;
                    }
                    node = &inner.children[i];
                }
            }
        }
    }

    /// Split off and return every entry with key above the cut:
    /// `self` keeps keys `<= k` when `inclusive`, `< k` otherwise.
    /// O(log² n) worst case.
    pub fn split_at_key(&mut self, k: &K, inclusive: bool) -> Self {
        let degree = self.degree;
        let root = mem::replace(&mut self.root, Node::empty_leaf());
        let (left, right) = split_node_key(root, k, inclusive, degree);
        self.root = left.map(Node::collapse).unwrap_or_else(Node::empty_leaf);
        BPlusTree {
            root: right.map(Node::collapse).unwrap_or_else(Node::empty_leaf),
            degree,
        }
    }

    /// Split off and return everything but the `r` smallest entries;
    /// `self` keeps exactly `min(r, len)` entries. O(log² n) worst case.
    pub fn split_at_rank(&mut self, r: usize) -> Self {
        let degree = self.degree;
        if r >= self.len() {
            return Self::with_degree(degree);
        }
        let root = mem::replace(&mut self.root, Node::empty_leaf());
        let (left, right) = split_node_rank(root, r, degree);
        self.root = left.map(Node::collapse).unwrap_or_else(Node::empty_leaf);
        BPlusTree {
            root: right.map(Node::collapse).unwrap_or_else(Node::empty_leaf),
            degree,
        }
    }

    /// Concatenate two trees; every key of `self` must be smaller than every
    /// key of `other` (checked in debug builds). O(log n).
    pub fn join(self, other: Self) -> Self {
        assert_eq!(
            self.degree, other.degree,
            "cannot join trees of different degree"
        );
        debug_assert!(
            self.is_empty()
                || other.is_empty()
                || self.max().expect("nonempty").0 < other.min().expect("nonempty").0,
            "join requires all left keys < all right keys"
        );
        let degree = self.degree;
        let root =
            join_nodes(Some(self.root), Some(other.root), degree).unwrap_or_else(Node::empty_leaf);
        BPlusTree {
            root: root.collapse(),
            degree,
        }
    }

    /// Remove the entry under `k`, if present. O(log² n) — composed from
    /// split and join, as the paper's tree never needs single-item deletes
    /// on its hot path (bulk discards use `split_at_key`).
    pub fn remove(&mut self, k: &K) -> Option<V> {
        if !self.contains(k) {
            return None;
        }
        let tail = self.split_at_key(k, false);
        let mut matched = tail;
        let rest = matched.split_at_rank(1);
        let value = matched
            .into_iter()
            .next()
            .map(|(_, v)| v)
            .expect("split_at_key(exclusive) put the matching key first");
        let left = mem::replace(self, Self::with_degree(self.degree));
        *self = left.join(rest);
        Some(value)
    }

    /// Remove and return the smallest entry. O(log² n).
    pub fn pop_min(&mut self) -> Option<(K, V)> {
        if self.is_empty() {
            return None;
        }
        let rest = {
            let mut head = mem::replace(self, Self::with_degree(self.degree));
            let rest = head.split_at_rank(1);
            let entry = head.into_iter().next().expect("nonempty head");
            *self = rest;
            entry
        };
        Some(rest)
    }

    /// In-order iterator over `(key, value)` references.
    pub fn iter(&self) -> Iter<'_, K, V> {
        Iter::new(&self.root)
    }

    /// Verify every structural invariant; panics on violation. Test helper.
    #[doc(hidden)]
    pub fn check_invariants(&self)
    where
        K: std::fmt::Debug,
    {
        let h = self.root.height();
        crate::node::check_node(&self.root, self.degree, true, h);
    }
}

impl<'a, K: Ord + Clone, V> IntoIterator for &'a BPlusTree<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = Iter<'a, K, V>;
    fn into_iter(self) -> Iter<'a, K, V> {
        self.iter()
    }
}

/// Consuming iteration yields owned entries in key order.
impl<K: Ord + Clone, V> IntoIterator for BPlusTree<K, V> {
    type Item = (K, V);
    type IntoIter = std::vec::IntoIter<(K, V)>;
    fn into_iter(self) -> Self::IntoIter {
        let mut out = Vec::with_capacity(self.len());
        drain_node(self.root, &mut out);
        out.into_iter()
    }
}

fn drain_node<K: Ord + Clone, V>(node: Node<K, V>, out: &mut Vec<(K, V)>) {
    match node {
        Node::Leaf(entries) => out.extend(entries),
        Node::Inner(inner) => {
            for child in inner.children {
                drain_node(child, out);
            }
        }
    }
}

/// Recursive insert; returns (replaced value, spill for the parent).
fn insert_rec<K: Ord + Clone, V>(
    node: &mut Node<K, V>,
    k: K,
    v: V,
    degree: usize,
) -> (Option<V>, Spill<K, V>) {
    match node {
        Node::Leaf(entries) => match entries.binary_search_by(|(kk, _)| kk.cmp(&k)) {
            Ok(i) => (Some(mem::replace(&mut entries[i].1, v)), Spill::None),
            Err(i) => {
                entries.insert(i, (k, v));
                if entries.len() > degree {
                    (None, split_leaf(entries))
                } else {
                    (None, Spill::None)
                }
            }
        },
        Node::Inner(inner) => {
            let i = inner.route(&k).min(inner.children.len() - 1);
            let (replaced, spill) = insert_rec(&mut inner.children[i], k, v, degree);
            if replaced.is_none() {
                inner.size += 1;
            }
            match spill {
                Spill::None => {
                    // The child may have grown a new max; the separator for
                    // the *last* child does not exist, and for others the
                    // separator only changes when the new key became the
                    // child's max, i.e. routed past the old separator —
                    // impossible by the routing rule. Nothing to fix.
                    (replaced, Spill::None)
                }
                Spill::Split { sep, right } => {
                    inner.seps.insert(i, sep);
                    inner.children.insert(i + 1, right);
                    if inner.children.len() > degree {
                        (replaced, split_inner(inner))
                    } else {
                        (replaced, Spill::None)
                    }
                }
            }
        }
    }
}

/// Result of attaching a subtree along a spine.
enum Attach<K, V> {
    Done(Node<K, V>),
    Split {
        left: Node<K, V>,
        sep: K,
        right: Node<K, V>,
    },
}

fn finish_attach<K: Ord + Clone, V>(attach: Attach<K, V>) -> Node<K, V> {
    match attach {
        Attach::Done(n) => n,
        Attach::Split { left, sep, right } => {
            Node::Inner(Inner::from_parts(vec![sep], vec![left, right]))
        }
    }
}

/// Combine sibling node contents at equal height into one or two valid
/// nodes. `sep` is the max key of `left`'s subtree.
fn merge_level<K: Ord + Clone, V>(
    left: Node<K, V>,
    sep: K,
    right: Node<K, V>,
    degree: usize,
) -> Attach<K, V> {
    match (left, right) {
        (Node::Leaf(mut l), Node::Leaf(r)) => {
            if l.len() + r.len() <= degree {
                l.extend(r);
                Attach::Done(Node::Leaf(l))
            } else {
                let mut combined = l;
                combined.extend(r);
                let mid = combined.len() / 2;
                let right_half = combined.split_off(mid);
                let sep = combined.last().expect("nonempty half").0.clone();
                Attach::Split {
                    left: Node::Leaf(combined),
                    sep,
                    right: Node::Leaf(right_half),
                }
            }
        }
        (Node::Inner(l), Node::Inner(r)) => {
            let mut children = l.children;
            let mut seps = l.seps;
            seps.push(sep);
            seps.extend(r.seps);
            children.extend(r.children);
            rebuild_or_split(seps, children, degree)
        }
        _ => unreachable!("merge_level called on nodes of different heights"),
    }
}

/// Build one inner node, or split into two if over capacity.
fn rebuild_or_split<K: Ord + Clone, V>(
    mut seps: Vec<K>,
    mut children: Vec<Node<K, V>>,
    degree: usize,
) -> Attach<K, V> {
    if children.len() <= degree {
        return Attach::Done(Node::Inner(Inner::from_parts(seps, children)));
    }
    let mid = children.len() / 2;
    let right_children: Vec<Node<K, V>> = children.split_off(mid);
    let mut right_seps = seps.split_off(mid - 1);
    let sep = right_seps.remove(0);
    Attach::Split {
        left: Node::Inner(Inner::from_parts(seps, children)),
        sep,
        right: Node::Inner(Inner::from_parts(right_seps, right_children)),
    }
}

/// Attach `attach` (whose height is `node.height() - depth`) at the right
/// end of `node`'s rightmost spine. `sep` is the max key left of `attach`.
fn attach_right<K: Ord + Clone, V>(
    node: Node<K, V>,
    sep: K,
    attach: Node<K, V>,
    depth: usize,
    degree: usize,
) -> Attach<K, V> {
    if depth == 0 {
        return merge_level(node, sep, attach, degree);
    }
    let Node::Inner(inner) = node else {
        unreachable!("positive depth implies an inner node");
    };
    let mut children = inner.children;
    let mut seps = inner.seps;
    let last = children.pop().expect("inner nodes have children");
    match attach_right(last, sep, attach, depth - 1, degree) {
        Attach::Done(child) => {
            children.push(child);
            Attach::Done(Node::Inner(Inner::from_parts(seps, children)))
        }
        Attach::Split { left, sep, right } => {
            children.push(left);
            seps.push(sep);
            children.push(right);
            rebuild_or_split(seps, children, degree)
        }
    }
}

/// Mirror of [`attach_right`]: attach at the left end of the leftmost spine.
fn attach_left<K: Ord + Clone, V>(
    node: Node<K, V>,
    sep: K,
    attach: Node<K, V>,
    depth: usize,
    degree: usize,
) -> Attach<K, V> {
    if depth == 0 {
        return merge_level(attach, sep, node, degree);
    }
    let Node::Inner(inner) = node else {
        unreachable!("positive depth implies an inner node");
    };
    let mut children = inner.children;
    let mut seps = inner.seps;
    let first = children.remove(0);
    match attach_left(first, sep, attach, depth - 1, degree) {
        Attach::Done(child) => {
            children.insert(0, child);
            Attach::Done(Node::Inner(Inner::from_parts(seps, children)))
        }
        Attach::Split { left, sep, right } => {
            children.insert(0, right);
            children.insert(0, left);
            seps.insert(0, sep);
            rebuild_or_split(seps, children, degree)
        }
    }
}

/// Join two (optional) subtrees; all keys in `l` must precede all keys in
/// `r`. Roots may be underfull; everything below must satisfy invariants.
fn join_nodes<K: Ord + Clone, V>(
    l: Option<Node<K, V>>,
    r: Option<Node<K, V>>,
    degree: usize,
) -> Option<Node<K, V>> {
    let l = l.filter(|n| n.size() > 0);
    let r = r.filter(|n| n.size() > 0);
    match (l, r) {
        (None, x) => x,
        (x, None) => x,
        (Some(l), Some(r)) => {
            let (hl, hr) = (l.height(), r.height());
            let sep = l.max_key().expect("nonempty").clone();
            let attach = if hl >= hr {
                attach_right(l, sep, r, hl - hr, degree)
            } else {
                attach_left(r, sep, l, hr - hl, degree)
            };
            Some(finish_attach(attach))
        }
    }
}

/// Turn a run of sibling children (with the separators between them) into a
/// standalone subtree root. The root may be underfull, which `join_nodes`
/// tolerates.
fn fragment<K: Ord + Clone, V>(seps: Vec<K>, mut children: Vec<Node<K, V>>) -> Option<Node<K, V>> {
    match children.len() {
        0 => None,
        1 => Some(children.pop().expect("one child")),
        _ => Some(Node::Inner(Inner::from_parts(seps, children))),
    }
}

/// The two (possibly empty) halves a split produces.
type SplitHalves<K, V> = (Option<Node<K, V>>, Option<Node<K, V>>);

/// Split `node` around key `k`. Left gets keys `<= k` (inclusive) or `< k`.
fn split_node_key<K: Ord + Clone, V>(
    node: Node<K, V>,
    k: &K,
    inclusive: bool,
    degree: usize,
) -> SplitHalves<K, V> {
    match node {
        Node::Leaf(mut entries) => {
            let idx = if inclusive {
                entries.partition_point(|(kk, _)| kk <= k)
            } else {
                entries.partition_point(|(kk, _)| kk < k)
            };
            let right = entries.split_off(idx);
            (
                (!entries.is_empty()).then_some(Node::Leaf(entries)),
                (!right.is_empty()).then_some(Node::Leaf(right)),
            )
        }
        Node::Inner(inner) => {
            let mut children = inner.children;
            let mut seps = inner.seps;
            // First child whose subtree max lands right of the cut.
            let i = if inclusive {
                seps.partition_point(|s| s <= k)
            } else {
                seps.partition_point(|s| s < k)
            }
            .min(children.len() - 1);
            let right_children = children.split_off(i + 1);
            let straddle = children.pop().expect("child i exists");
            let right_seps = if seps.len() > i + 1 {
                seps.split_off(i + 1)
            } else {
                Vec::new()
            };
            seps.truncate(i.saturating_sub(1));
            let left_frag = fragment(seps, children);
            let right_frag = fragment(right_seps, right_children);
            let (sl, sr) = split_node_key(straddle, k, inclusive, degree);
            (
                join_nodes(left_frag, sl, degree),
                join_nodes(sr, right_frag, degree),
            )
        }
    }
}

/// Split `node` by rank: left gets the `r` smallest entries.
fn split_node_rank<K: Ord + Clone, V>(
    node: Node<K, V>,
    r: usize,
    degree: usize,
) -> SplitHalves<K, V> {
    debug_assert!(r <= node.size());
    match node {
        Node::Leaf(mut entries) => {
            let right = entries.split_off(r.min(entries.len()));
            (
                (!entries.is_empty()).then_some(Node::Leaf(entries)),
                (!right.is_empty()).then_some(Node::Leaf(right)),
            )
        }
        Node::Inner(inner) => {
            let mut children = inner.children;
            let mut seps = inner.seps;
            // Find the child containing the r-th entry (cut may fall on a
            // boundary; descending with rem == 0 or rem == child size is
            // handled by the leaf base case).
            let mut i = 0;
            let mut rem = r;
            while i < children.len() - 1 && rem > children[i].size() {
                rem -= children[i].size();
                i += 1;
            }
            let right_children = children.split_off(i + 1);
            let straddle = children.pop().expect("child i exists");
            let right_seps = if seps.len() > i + 1 {
                seps.split_off(i + 1)
            } else {
                Vec::new()
            };
            seps.truncate(i.saturating_sub(1));
            let left_frag = fragment(seps, children);
            let right_frag = fragment(right_seps, right_children);
            let (sl, sr) = split_node_rank(straddle, rem, degree);
            (
                join_nodes(left_frag, sl, degree),
                join_nodes(sr, right_frag, degree),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree_from(keys: impl IntoIterator<Item = u64>, degree: usize) -> BPlusTree<u64, u64> {
        let mut t = BPlusTree::with_degree(degree);
        for k in keys {
            t.insert(k, k * 10);
            t.check_invariants();
        }
        t
    }

    #[test]
    fn insert_get_len() {
        let t = tree_from([5, 1, 9, 3, 7], 4);
        assert_eq!(t.len(), 5);
        assert_eq!(t.get(&3), Some(&30));
        assert_eq!(t.get(&4), None);
        assert_eq!(t.min().map(|(k, _)| *k), Some(1));
        assert_eq!(t.max().map(|(k, _)| *k), Some(9));
    }

    #[test]
    fn insert_replaces_existing() {
        let mut t = tree_from([1, 2, 3], 4);
        assert_eq!(t.insert(2, 99), Some(20));
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(&2), Some(&99));
    }

    #[test]
    fn many_inserts_stay_sorted_and_valid() {
        // Pseudorandom insertion order using a multiplicative permutation.
        let n = 5000u64;
        let mut t = BPlusTree::with_degree(8);
        for i in 0..n {
            let k = (i * 2654435761) % 1_000_003;
            t.insert(k, i);
        }
        t.check_invariants();
        let keys: Vec<u64> = t.iter().map(|(k, _)| *k).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn rank_select_agree_with_sorted_order() {
        let keys = [2u64, 4, 6, 8, 10, 12, 14];
        let t = tree_from(keys, 4);
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(t.rank(k), i, "rank of {k}");
            assert_eq!(t.count_le(k), i + 1, "count_le of {k}");
            assert_eq!(t.select(i).map(|(kk, _)| *kk), Some(*k), "select {i}");
        }
        assert_eq!(t.rank(&0), 0);
        assert_eq!(t.rank(&100), keys.len());
        assert_eq!(t.rank(&5), 2); // between 4 and 6
        assert_eq!(t.count_le(&5), 2);
        assert_eq!(t.select(keys.len()), None);
    }

    #[test]
    fn split_at_key_partitions() {
        for inclusive in [true, false] {
            let mut t = tree_from(0..200, 6);
            let right = t.split_at_key(&100, inclusive);
            t.check_invariants();
            right.check_invariants();
            let cut = if inclusive { 101 } else { 100 };
            assert_eq!(t.len(), cut as usize);
            assert_eq!(right.len(), 200 - cut as usize);
            assert!(t.iter().all(|(k, _)| *k < cut));
            assert!(right.iter().all(|(k, _)| *k >= cut));
        }
    }

    #[test]
    fn split_at_key_extremes() {
        let mut t = tree_from(0..50, 4);
        let right = t.split_at_key(&1000, true);
        assert_eq!(t.len(), 50);
        assert!(right.is_empty());

        let mut t = tree_from(0..50, 4);
        let right = t.split_at_key(&0, false);
        assert!(t.is_empty());
        assert_eq!(right.len(), 50);
        right.check_invariants();
    }

    #[test]
    fn split_at_rank_partitions() {
        for r in [0usize, 1, 7, 63, 64, 65, 199, 200, 500] {
            let mut t = tree_from(0..200, 5);
            let right = t.split_at_rank(r);
            t.check_invariants();
            right.check_invariants();
            assert_eq!(t.len(), r.min(200));
            assert_eq!(right.len(), 200usize.saturating_sub(r));
            if r > 0 && r < 200 {
                assert_eq!(t.max().map(|(k, _)| *k), Some(r as u64 - 1));
                assert_eq!(right.min().map(|(k, _)| *k), Some(r as u64));
            }
        }
    }

    #[test]
    fn join_concatenates() {
        let a = tree_from(0..70, 4);
        let b = tree_from(100..105, 4);
        let j = a.join(b);
        j.check_invariants();
        assert_eq!(j.len(), 75);
        let keys: Vec<u64> = j.iter().map(|(k, _)| *k).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));

        // Joining in the other height order (small left, tall right).
        let a = tree_from(0..3, 4);
        let b = tree_from(10..300, 4);
        let j = a.join(b);
        j.check_invariants();
        assert_eq!(j.len(), 293);
        assert_eq!(j.min().map(|(k, _)| *k), Some(0));
    }

    #[test]
    fn join_with_empty() {
        let a = tree_from(0..10, 4);
        let e = BPlusTree::with_degree(4);
        let j = a.join(e);
        assert_eq!(j.len(), 10);
        let e = BPlusTree::with_degree(4);
        let b = tree_from(0..10, 4);
        let j = e.join(b);
        assert_eq!(j.len(), 10);
    }

    #[test]
    fn split_then_join_roundtrip() {
        for cut in [0u64, 1, 31, 32, 33, 97, 199] {
            let mut t = tree_from(0..200, 4);
            let right = t.split_at_key(&cut, false);
            let rejoined = std::mem::take(&mut t).join(right);
            rejoined.check_invariants();
            assert_eq!(rejoined.len(), 200);
            let keys: Vec<u64> = rejoined.iter().map(|(k, _)| *k).collect();
            assert_eq!(keys, (0..200).collect::<Vec<_>>());
        }
    }

    #[test]
    fn remove_and_pop_min() {
        let mut t = tree_from(0..100, 4);
        assert_eq!(t.remove(&50), Some(500));
        assert_eq!(t.remove(&50), None);
        t.check_invariants();
        assert_eq!(t.len(), 99);
        assert!(!t.contains(&50));
        assert_eq!(t.pop_min(), Some((0, 0)));
        assert_eq!(t.len(), 98);
        t.check_invariants();
    }

    #[test]
    fn from_sorted_matches_inserts() {
        for n in [0usize, 1, 3, 15, 16, 17, 100, 1000] {
            let entries: Vec<(u64, u64)> = (0..n as u64).map(|i| (i, i * 2)).collect();
            let t = BPlusTree::from_sorted(entries, 8);
            t.check_invariants();
            assert_eq!(t.len(), n);
            for i in 0..n as u64 {
                assert_eq!(t.get(&i), Some(&(i * 2)), "n={n} key={i}");
            }
        }
    }

    #[test]
    fn into_iter_yields_sorted_owned() {
        let t = tree_from([9, 1, 5, 3, 7], 4);
        let pairs: Vec<(u64, u64)> = t.into_iter().collect();
        assert_eq!(pairs, vec![(1, 10), (3, 30), (5, 50), (7, 70), (9, 90)]);
    }

    #[test]
    #[should_panic(expected = "degree")]
    fn degree_too_small_rejected() {
        let _ = BPlusTree::<u64, ()>::with_degree(3);
    }

    #[test]
    fn clear_empties() {
        let mut t = tree_from(0..10, 4);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.iter().count(), 0);
    }
}
