//! Pooled node storage for the concurrent tree: a sharable,
//! page-granular allocator of [`NodeCell`] slots.
//!
//! A [`NodePool`] hands out node slots from fixed-size **pages** of
//! [`PAGE_NODES`] cells. The page directory is one flat array of atomic
//! page pointers owned by the pool, so a slot index maps to its cell with
//! one division — uniform, unlike the old per-tree doubling-chunk arena —
//! and the *pool* (not the tree) is the unit that pays heap allocations:
//! a fleet of S trees sharing one pool performs O(pages) allocations, not
//! O(S · nodes). Trees hold an `Arc<NodePool>`; the single-tenant path
//! keeps a private pool per tree, the sharded fleet shares one pool per
//! PE across all S shard trees.
//!
//! ## Allocation: bump + lock-free free list
//!
//! Fresh slots come from an atomic bump counter (`fetch_add`), installing
//! the backing page under a grow mutex on first touch — the same
//! double-checked pattern the old arena used per chunk. Slots returned by
//! [`NodePool::release`] (tree rebuilds and tree drops) go on a Treiber
//! free list threaded through the freed cells' `val[0]` words, with an
//! ABA tag packed next to the head index; [`NodePool::alloc`] prefers the
//! free list, so a rebuild's replacement nodes reuse the cache-warm slots
//! the old tree just vacated.
//!
//! ## Why recycling cannot resurrect a version-validated node
//!
//! Pages never move and are never unmapped before the pool drops, so an
//! optimistic reader racing a recycle dereferences valid memory — the old
//! arena's guarantee, unchanged. Staleness is caught by the seqlock:
//! `release` bumps the freed cell's version (a lock/unlock cycle), so a
//! reader that pinned the cell's version before the free fails its
//! validation after it, exactly as if a writer had touched the node.
//! Release sites additionally run only in exclusively-owned phases
//! (`&mut` tree rebuilds, tree drop), where the tree's quiescence rule
//! already promises no concurrent readers of *that tree*; the version
//! bump extends safety to the pool's other tenants, which can reuse the
//! slot immediately.

use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;

use reservoir_obs::LazyGauge;

use crate::olc::NodeCell;

/// Resident pool bytes across live pools (page payloads only; the
/// directory is excluded). Updated on page install and pool drop — both
/// slow paths.
static POOL_BYTES: LazyGauge = LazyGauge::new(
    "pool_bytes",
    "resident node-pool page bytes across live pools",
);
/// Pages installed across live pools; decremented when a pool drops.
static POOL_PAGES: LazyGauge = LazyGauge::new(
    "pool_pages_allocated",
    "node-pool pages currently installed across live pools",
);
/// Slots returned to pool free lists (monotonic).
static POOL_RECYCLES: LazyGauge = LazyGauge::new(
    "pool_recycles",
    "node slots returned to pool free lists by tree rebuilds and drops",
);

/// Node slots per page. One page backs the roots of [`PAGE_NODES`] empty
/// trees — the granularity the O(pages) fleet-construction claim is
/// stated in.
pub const PAGE_NODES: usize = 64;

/// Directory capacity: `PAGE_SLOTS * PAGE_NODES` slots per pool. The
/// directory itself is one lazily-faulted allocation, so an almost-empty
/// private pool costs one page of cells plus untouched virtual space.
const PAGE_SLOTS: usize = 1 << 16;

/// Free-list head: `(aba_tag << 32) | (slot + 1)`, `0` = empty list.
const FREE_EMPTY: u64 = 0;

/// Allocation and recycling counters of one [`NodePool`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Pages installed (each is exactly one heap allocation).
    pub pages: u64,
    /// Bytes resident in installed pages.
    pub bytes: u64,
    /// Slots returned to the free list by rebuilds/drops (monotonic).
    pub recycles: u64,
    /// Allocations served by the bump pointer (a never-used slot).
    pub fresh: u64,
    /// Allocations served from the free list (a recycled slot).
    pub reused: u64,
}

/// A sharable, page-granular [`NodeCell`] allocator. See the module docs
/// for the layout and the recycling-safety argument. All methods take
/// `&self` and are safe under concurrent allocation from many trees'
/// scan workers; `release` additionally requires the released subtree to
/// be exclusively owned (its tree's quiescence rule).
pub struct NodePool {
    pages: Box<[AtomicPtr<NodeCell>]>,
    /// Next never-used slot (bump arm).
    next: AtomicU32,
    /// Treiber free-list head (recycle arm), ABA-tagged.
    free: AtomicU64,
    grow: Mutex<()>,
    pages_installed: AtomicU64,
    recycles: AtomicU64,
    fresh: AtomicU64,
    reused: AtomicU64,
}

impl Default for NodePool {
    fn default() -> Self {
        Self::new()
    }
}

impl NodePool {
    /// An empty pool: no pages installed until the first allocation.
    pub fn new() -> Self {
        NodePool {
            pages: (0..PAGE_SLOTS)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
            next: AtomicU32::new(0),
            free: AtomicU64::new(FREE_EMPTY),
            grow: Mutex::new(()),
            pages_installed: AtomicU64::new(0),
            recycles: AtomicU64::new(0),
            fresh: AtomicU64::new(0),
            reused: AtomicU64::new(0),
        }
    }

    /// Allocation counters since creation.
    pub fn stats(&self) -> PoolStats {
        let pages = self.pages_installed.load(Ordering::Relaxed);
        PoolStats {
            pages,
            bytes: pages * Self::page_bytes(),
            recycles: self.recycles.load(Ordering::Relaxed),
            fresh: self.fresh.load(Ordering::Relaxed),
            reused: self.reused.load(Ordering::Relaxed),
        }
    }

    /// Bytes of one installed page's cell payload.
    pub fn page_bytes() -> u64 {
        (PAGE_NODES * std::mem::size_of::<NodeCell>()) as u64
    }

    /// Slots handed out and not yet released (live across all tenants).
    /// Exact between operations; momentarily off by in-flight calls.
    pub fn live_slots(&self) -> u64 {
        let s = self.stats();
        (s.fresh + s.reused).saturating_sub(s.recycles)
    }

    /// Hand out one slot: recycled if available, else fresh from the
    /// bump pointer (installing the backing page if this is its first
    /// slot). The returned cell's `meta`/`size`/`dirty` are reset and its
    /// seqlock is unlocked; `key_*`/`val` words are unspecified (a leaf
    /// with `len = 0` exposes none of them).
    pub fn alloc(&self) -> u32 {
        if let Some(i) = self.pop_free() {
            let cell = self.cell(i);
            cell.reset();
            self.reused.fetch_add(1, Ordering::Relaxed);
            return i;
        }
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        let page = i as usize / PAGE_NODES;
        assert!(page < PAGE_SLOTS, "node pool exhausted");
        if self.pages[page].load(Ordering::Acquire).is_null() {
            let _g = self.grow.lock().unwrap_or_else(|e| e.into_inner());
            if self.pages[page].load(Ordering::Acquire).is_null() {
                let boxed: Box<[NodeCell]> = (0..PAGE_NODES).map(|_| NodeCell::new()).collect();
                self.pages[page].store(Box::into_raw(boxed) as *mut NodeCell, Ordering::Release);
                self.pages_installed.fetch_add(1, Ordering::Relaxed);
                POOL_PAGES.add(1.0);
                POOL_BYTES.add(Self::page_bytes() as f64);
            }
        }
        self.fresh.fetch_add(1, Ordering::Relaxed);
        i
    }

    /// The cell at a handed-out slot.
    #[inline]
    pub(crate) fn cell(&self, i: u32) -> &NodeCell {
        let (page, off) = (i as usize / PAGE_NODES, i as usize % PAGE_NODES);
        let p = self.pages[page].load(Ordering::Acquire);
        debug_assert!(!p.is_null(), "unallocated pool slot {i}");
        // SAFETY: `p` was installed (with Release) as a `Box<[NodeCell]>`
        // of length `PAGE_NODES` that never moves or frees before the
        // pool drops, and `off < PAGE_NODES` by construction. The Acquire
        // load pairs with the installing Release store (and with the
        // version-validation fences that published `i`), so the cell is
        // fully initialized.
        unsafe { &*p.add(off) }
    }

    /// Return a slot to the free list. The caller must exclusively own
    /// the releasing tree (no concurrent writers of the released
    /// subtree); racing optimistic readers are invalidated by the
    /// version bump. The slot is immediately reusable by any tenant.
    pub fn release(&self, i: u32) {
        let cell = self.cell(i);
        // Invalidate stale optimistic readers: any version pinned before
        // this free fails validation after it. A poisoned lock word (a
        // writer died mid-spin; cannot happen under the quiescence rule)
        // leaks the slot rather than risking an alias.
        let Ok(v) = cell.lock.read_begin() else {
            return;
        };
        let Some(guard) = cell.lock.try_lock(v) else {
            return;
        };
        drop(guard);
        self.recycles.fetch_add(1, Ordering::Relaxed);
        POOL_RECYCLES.add(1.0);
        let mut head = self.free.load(Ordering::Acquire);
        loop {
            let top = head as u32;
            cell.val[0].store(top as u64, Ordering::Relaxed);
            let tag = (head >> 32).wrapping_add(1);
            let next = (tag << 32) | (i + 1) as u64;
            match self
                .free
                .compare_exchange_weak(head, next, Ordering::Release, Ordering::Acquire)
            {
                Ok(_) => return,
                Err(h) => head = h,
            }
        }
    }

    /// Snapshot slot `i`'s seqlock version (`None` while a writer holds
    /// it). Diagnostic surface for the recycling-safety tests; `i` must
    /// have been handed out at some point.
    pub fn slot_version(&self, i: u32) -> Option<u64> {
        self.cell(i).lock.read_begin().ok()
    }

    /// Whether an optimistic read of slot `i` pinned at version `v`
    /// would still validate. Diagnostic counterpart of
    /// [`Self::slot_version`].
    pub fn slot_validates(&self, i: u32, v: u64) -> bool {
        self.cell(i).lock.validate(v)
    }

    /// Pop one recycled slot, if any.
    fn pop_free(&self) -> Option<u32> {
        let mut head = self.free.load(Ordering::Acquire);
        loop {
            let top = head as u32;
            if top == 0 {
                return None;
            }
            let i = top - 1;
            // May read a stale link if another thread pops `i` first; the
            // tagged CAS below then fails and we retry with a fresh head.
            // Cells are never unmapped, so the read is always safe.
            let next_free = self.cell(i).val[0].load(Ordering::Relaxed) as u32;
            let tag = (head >> 32).wrapping_add(1);
            let next = (tag << 32) | next_free as u64;
            match self
                .free
                .compare_exchange_weak(head, next, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return Some(i),
                Err(h) => head = h,
            }
        }
    }
}

impl Drop for NodePool {
    fn drop(&mut self) {
        let mut dropped = 0u64;
        for slot in self.pages.iter() {
            let p = slot.load(Ordering::Acquire);
            if !p.is_null() {
                // SAFETY: `p` came from `Box::into_raw` of a boxed slice
                // of exactly `PAGE_NODES` cells; the pool owns it
                // exclusively now that no tree holds the Arc.
                drop(unsafe { Box::from_raw(std::ptr::slice_from_raw_parts_mut(p, PAGE_NODES)) });
                dropped += 1;
            }
        }
        if dropped > 0 {
            POOL_PAGES.add(-(dropped as f64));
            POOL_BYTES.add(-((dropped * Self::page_bytes()) as f64));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_to_page_mapping_is_injective() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u32 {
            let (page, off) = (i as usize / PAGE_NODES, i as usize % PAGE_NODES);
            assert!(off < PAGE_NODES);
            assert!(seen.insert((page, off)), "slot {i} collided");
        }
    }

    #[test]
    fn pages_install_lazily_and_count_heap_allocations() {
        let pool = NodePool::new();
        assert_eq!(pool.stats().pages, 0);
        let first = pool.alloc();
        assert_eq!(first, 0);
        assert_eq!(pool.stats().pages, 1);
        for _ in 1..PAGE_NODES {
            pool.alloc();
        }
        assert_eq!(pool.stats().pages, 1, "one page serves PAGE_NODES slots");
        pool.alloc();
        let s = pool.stats();
        assert_eq!(s.pages, 2);
        assert_eq!(s.bytes, 2 * NodePool::page_bytes());
        assert_eq!(s.fresh, PAGE_NODES as u64 + 1);
        assert_eq!(s.reused, 0);
    }

    #[test]
    fn released_slots_are_reused_before_the_bump_pointer_moves() {
        let pool = NodePool::new();
        let a = pool.alloc();
        let b = pool.alloc();
        pool.release(a);
        pool.release(b);
        // LIFO: most recently released first.
        assert_eq!(pool.alloc(), b);
        assert_eq!(pool.alloc(), a);
        let s = pool.stats();
        assert_eq!((s.fresh, s.reused, s.recycles), (2, 2, 2));
        assert_eq!(s.pages, 1, "recycling never installs a page");
    }

    #[test]
    fn release_bumps_the_cell_version() {
        let pool = NodePool::new();
        let i = pool.alloc();
        let v = pool.cell(i).lock.read_begin().unwrap();
        pool.release(i);
        assert!(
            !pool.cell(i).lock.validate(v),
            "a reader that pinned the version before the free must fail"
        );
    }
}
