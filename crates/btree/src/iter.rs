//! In-order iteration over the tree.
//!
//! The paper's B+ tree links leaves so neighbours are reachable in O(1).
//! Safe owned-`Box` trees cannot store sibling pointers, so this iterator
//! keeps an explicit descent stack instead: `next()` is amortized O(1) and
//! worst-case O(log n), which matches every use the sampling algorithms make
//! of leaf links (full scans and successor walks).

use crate::node::Node;
use crate::tree::BPlusTree;

/// Borrowing in-order iterator over `(key, value)` pairs.
pub struct Iter<'a, K: Ord + Clone, V> {
    /// Stack of (inner node, index of the next child to visit).
    stack: Vec<(&'a Node<K, V>, usize)>,
    /// Current leaf and cursor within it.
    leaf: Option<(&'a [(K, V)], usize)>,
}

impl<'a, K: Ord + Clone, V> Iter<'a, K, V> {
    pub(crate) fn new(root: &'a Node<K, V>) -> Self {
        let mut it = Iter {
            stack: Vec::new(),
            leaf: None,
        };
        it.descend(root);
        it
    }

    /// Push the leftmost path from `node` and park at its first leaf.
    fn descend(&mut self, mut node: &'a Node<K, V>) {
        loop {
            match node {
                Node::Leaf(entries) => {
                    self.leaf = Some((entries.as_slice(), 0));
                    return;
                }
                Node::Inner(inner) => {
                    self.stack.push((node, 1));
                    node = &inner.children[0];
                }
            }
        }
    }

    /// Advance to the next unvisited leaf, if any.
    fn advance_leaf(&mut self) -> bool {
        while let Some((node, next_child)) = self.stack.pop() {
            let Node::Inner(inner) = node else {
                unreachable!("stack holds inner nodes only")
            };
            if next_child < inner.children.len() {
                self.stack.push((node, next_child + 1));
                self.descend(&inner.children[next_child]);
                return true;
            }
        }
        self.leaf = None;
        false
    }
}

impl<'a, K: Ord + Clone, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let (entries, pos) = self.leaf?;
            if pos < entries.len() {
                self.leaf = Some((entries, pos + 1));
                let (k, v) = &entries[pos];
                return Some((k, v));
            }
            if !self.advance_leaf() {
                return None;
            }
        }
    }
}

/// Convenience: collect all keys of a tree (test helper used across crates).
pub fn keys_of<K: Ord + Clone, V>(tree: &BPlusTree<K, V>) -> Vec<K> {
    tree.iter().map(|(k, _)| k.clone()).collect()
}

#[cfg(test)]
mod tests {
    use crate::BPlusTree;

    #[test]
    fn iterates_in_order_across_levels() {
        let mut t = BPlusTree::with_degree(4);
        for k in (0..500u64).rev() {
            t.insert(k, ());
        }
        let keys: Vec<u64> = t.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn empty_tree_yields_nothing() {
        let t: BPlusTree<u64, ()> = BPlusTree::new();
        assert_eq!(t.iter().count(), 0);
    }

    #[test]
    fn single_entry() {
        let mut t = BPlusTree::with_degree(4);
        t.insert(42u64, "x");
        let all: Vec<_> = t.iter().collect();
        assert_eq!(all, vec![(&42, &"x")]);
    }

    #[test]
    fn iterator_is_resumable_midway() {
        let mut t = BPlusTree::with_degree(4);
        for k in 0..100u64 {
            t.insert(k, ());
        }
        let mut it = t.iter();
        for _ in 0..37 {
            it.next();
        }
        assert_eq!(it.next().map(|(k, _)| *k), Some(37));
    }
}
