//! Abstraction over a PE's local sorted key set.

use reservoir_btree::{BPlusTree, OlcTree, SampleKey};

/// A PE-local sorted multiset of [`SampleKey`]s supporting the rank/select
/// queries the selection protocol needs. Implemented by the local-reservoir
/// B+ tree and by a plain sorted vector (tests, centralized baseline).
pub trait CandidateSet {
    /// Total number of keys.
    fn total(&self) -> u64;

    /// Number of keys `<= k`.
    fn count_le(&self, k: &SampleKey) -> u64;

    /// Number of keys `< k`.
    fn count_less(&self, k: &SampleKey) -> u64;

    /// The `r`-th smallest key (0-based) among keys **strictly greater**
    /// than `lo` (`None` = unbounded below).
    fn select_above(&self, lo: Option<&SampleKey>, r: u64) -> Option<SampleKey>;

    /// The `r`-th largest key (0-based) among keys **strictly less** than
    /// `hi` (`None` = unbounded above).
    fn select_below(&self, hi: Option<&SampleKey>, r: u64) -> Option<SampleKey>;

    /// Number of keys in the open interval `(lo, hi)`.
    fn count_in(&self, lo: Option<&SampleKey>, hi: Option<&SampleKey>) -> u64 {
        let below_hi = match hi {
            Some(h) => self.count_less(h),
            None => self.total(),
        };
        let at_most_lo = match lo {
            Some(l) => self.count_le(l),
            None => 0,
        };
        below_hi - at_most_lo
    }
}

impl<V> CandidateSet for BPlusTree<SampleKey, V> {
    fn total(&self) -> u64 {
        self.len() as u64
    }

    fn count_le(&self, k: &SampleKey) -> u64 {
        BPlusTree::count_le(self, k) as u64
    }

    fn count_less(&self, k: &SampleKey) -> u64 {
        self.rank(k) as u64
    }

    fn select_above(&self, lo: Option<&SampleKey>, r: u64) -> Option<SampleKey> {
        let base = match lo {
            Some(l) => BPlusTree::count_le(self, l) as u64,
            None => 0,
        };
        self.select((base + r) as usize).map(|(k, _)| *k)
    }

    fn select_below(&self, hi: Option<&SampleKey>, r: u64) -> Option<SampleKey> {
        let below = match hi {
            Some(h) => self.rank(h) as u64,
            None => self.len() as u64,
        };
        below
            .checked_sub(1 + r)
            .and_then(|idx| self.select(idx as usize).map(|(k, _)| *k))
    }
}

/// The concurrent reservoir tree. Quiescence rule: the selection protocol
/// runs in the sampler's sequential phases (the scan scope has joined and
/// `refresh_sizes` ran), which is exactly when these queries are legal.
impl CandidateSet for OlcTree {
    fn total(&self) -> u64 {
        self.len() as u64
    }

    fn count_le(&self, k: &SampleKey) -> u64 {
        OlcTree::count_le(self, k) as u64
    }

    fn count_less(&self, k: &SampleKey) -> u64 {
        OlcTree::count_less(self, k) as u64
    }

    fn select_above(&self, lo: Option<&SampleKey>, r: u64) -> Option<SampleKey> {
        let base = match lo {
            Some(l) => OlcTree::count_le(self, l) as u64,
            None => 0,
        };
        self.select((base + r) as usize).map(|(k, _)| k)
    }

    fn select_below(&self, hi: Option<&SampleKey>, r: u64) -> Option<SampleKey> {
        let below = match hi {
            Some(h) => OlcTree::count_less(self, h) as u64,
            None => self.len() as u64,
        };
        below
            .checked_sub(1 + r)
            .and_then(|idx| self.select(idx as usize).map(|(k, _)| k))
    }
}

/// A sorted, deduplicated vector of keys — the simplest [`CandidateSet`].
#[derive(Clone, Debug, Default)]
pub struct SortedKeys(Vec<SampleKey>);

impl SortedKeys {
    /// Build from arbitrary keys; sorts and deduplicates.
    pub fn new(mut keys: Vec<SampleKey>) -> Self {
        keys.sort_unstable();
        keys.dedup();
        SortedKeys(keys)
    }

    /// The underlying sorted keys.
    pub fn as_slice(&self) -> &[SampleKey] {
        &self.0
    }
}

impl CandidateSet for SortedKeys {
    fn total(&self) -> u64 {
        self.0.len() as u64
    }

    fn count_le(&self, k: &SampleKey) -> u64 {
        self.0.partition_point(|x| x <= k) as u64
    }

    fn count_less(&self, k: &SampleKey) -> u64 {
        self.0.partition_point(|x| x < k) as u64
    }

    fn select_above(&self, lo: Option<&SampleKey>, r: u64) -> Option<SampleKey> {
        let base = match lo {
            Some(l) => self.count_le(l),
            None => 0,
        };
        self.0.get((base + r) as usize).copied()
    }

    fn select_below(&self, hi: Option<&SampleKey>, r: u64) -> Option<SampleKey> {
        let below = match hi {
            Some(h) => self.count_less(h),
            None => self.0.len() as u64,
        };
        below
            .checked_sub(1 + r)
            .and_then(|idx| self.0.get(idx as usize).copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(vals: &[f64]) -> SortedKeys {
        SortedKeys::new(
            vals.iter()
                .enumerate()
                .map(|(i, &v)| SampleKey::new(v, i as u64))
                .collect(),
        )
    }

    #[test]
    fn sorted_keys_rank_ops() {
        let s = keys(&[5.0, 1.0, 3.0, 9.0]);
        assert_eq!(s.total(), 4);
        let three = s.as_slice()[1];
        assert_eq!(three.key, 3.0);
        assert_eq!(s.count_le(&three), 2);
        assert_eq!(s.count_less(&three), 1);
    }

    #[test]
    fn select_above_and_below() {
        let s = keys(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let two = s.as_slice()[1];
        assert_eq!(s.select_above(None, 0).map(|k| k.key), Some(1.0));
        assert_eq!(s.select_above(Some(&two), 0).map(|k| k.key), Some(3.0));
        assert_eq!(s.select_above(Some(&two), 2).map(|k| k.key), Some(5.0));
        assert_eq!(s.select_above(Some(&two), 3), None);
        assert_eq!(s.select_below(None, 0).map(|k| k.key), Some(5.0));
        assert_eq!(s.select_below(Some(&two), 0).map(|k| k.key), Some(1.0));
        assert_eq!(s.select_below(Some(&two), 1), None);
    }

    #[test]
    fn count_in_open_interval() {
        let s = keys(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let one = s.as_slice()[0];
        let five = s.as_slice()[4];
        assert_eq!(s.count_in(None, None), 5);
        assert_eq!(s.count_in(Some(&one), None), 4);
        assert_eq!(s.count_in(None, Some(&five)), 4);
        assert_eq!(s.count_in(Some(&one), Some(&five)), 3);
    }

    #[test]
    fn btree_impl_matches_sorted_keys() {
        let vals = [7.0, 3.0, 11.0, 1.0, 5.0, 9.0];
        let sorted = keys(&vals);
        let mut tree: BPlusTree<SampleKey, ()> = BPlusTree::with_degree(4);
        for (i, &v) in vals.iter().enumerate() {
            tree.insert(SampleKey::new(v, i as u64), ());
        }
        for probe in sorted.as_slice() {
            assert_eq!(CandidateSet::count_le(&tree, probe), sorted.count_le(probe));
            assert_eq!(tree.count_less(probe), sorted.count_less(probe));
        }
        for r in 0..6 {
            assert_eq!(tree.select_above(None, r), sorted.select_above(None, r));
            assert_eq!(tree.select_below(None, r), sorted.select_below(None, r));
        }
        let lo = sorted.as_slice()[1];
        for r in 0..5 {
            assert_eq!(
                tree.select_above(Some(&lo), r),
                sorted.select_above(Some(&lo), r)
            );
            assert_eq!(
                tree.select_below(Some(&lo), r),
                sorted.select_below(Some(&lo), r)
            );
        }
    }

    #[test]
    fn olc_impl_matches_sorted_keys() {
        let vals = [7.0, 3.0, 11.0, 1.0, 5.0, 9.0];
        let sorted = keys(&vals);
        let mut tree = OlcTree::new();
        for (i, &v) in vals.iter().enumerate() {
            tree.insert(SampleKey::new(v, i as u64), 1.0);
        }
        tree.refresh_sizes();
        for probe in sorted.as_slice() {
            assert_eq!(CandidateSet::count_le(&tree, probe), sorted.count_le(probe));
            assert_eq!(
                CandidateSet::count_less(&tree, probe),
                sorted.count_less(probe)
            );
        }
        for r in 0..7 {
            assert_eq!(tree.select_above(None, r), sorted.select_above(None, r));
            assert_eq!(tree.select_below(None, r), sorted.select_below(None, r));
        }
        let lo = sorted.as_slice()[1];
        for r in 0..5 {
            assert_eq!(
                tree.select_above(Some(&lo), r),
                sorted.select_above(Some(&lo), r)
            );
            assert_eq!(
                tree.select_below(Some(&lo), r),
                sorted.select_below(Some(&lo), r)
            );
        }
    }
}
