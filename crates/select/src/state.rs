//! The round-state machine shared by both selection drivers.
//!
//! One `SelectionState` instance evolves identically on every PE (threaded
//! driver) or once in the conductor, because every transition depends only
//! on globally-agreed values (all-reduced pivot candidates and counts).

use reservoir_btree::SampleKey;
use reservoir_obs::LazyCounter;
use reservoir_rng::Rng64;

use crate::candidates::CandidateSet;

/// Pivot rounds advanced by any selection driver in this process; each
/// participant counts its own state's rounds, so under the threaded driver
/// the total is `rounds × p` (the conductor counts once per round).
static SELECT_ROUNDS: LazyCounter = LazyCounter::new(
    "select_rounds_total",
    "distributed-selection pivot rounds advanced (per participating state)",
);

/// Target rank window, 1-based and inclusive: find a key whose global rank
/// lies in `lo..=hi`. Exact selection uses `lo == hi == k`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TargetRank {
    pub lo: u64,
    pub hi: u64,
}

impl TargetRank {
    /// Exact rank `k` (1-based: `k = 1` selects the global minimum).
    pub fn exact(k: u64) -> Self {
        assert!(k >= 1, "ranks are 1-based");
        TargetRank { lo: k, hi: k }
    }

    /// A rank window for approximate selection (paper Section 3.3.2).
    pub fn range(lo: u64, hi: u64) -> Self {
        assert!(1 <= lo && lo <= hi, "invalid target window {lo}..{hi}");
        TargetRank { lo, hi }
    }
}

/// Tuning knobs for the selection protocol.
#[derive(Clone, Copy, Debug)]
pub struct SelectParams {
    /// Number of pivot candidates per round (the paper's `d`; `ours` uses 1,
    /// `ours-8` uses 8).
    pub num_pivots: usize,
    /// Safety valve: abort after this many rounds (termination is guaranteed
    /// in at most `N` rounds; expected rounds are logarithmic).
    pub max_rounds: u32,
}

impl Default for SelectParams {
    fn default() -> Self {
        SelectParams {
            num_pivots: 1,
            max_rounds: 100_000,
        }
    }
}

impl SelectParams {
    /// `d`-pivot parameters.
    pub fn with_pivots(d: usize) -> Self {
        assert!(d >= 1, "at least one pivot per round");
        SelectParams {
            num_pivots: d,
            ..Default::default()
        }
    }
}

/// Outcome of a distributed selection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SelectResult {
    /// The selected key: the new insertion threshold.
    pub threshold: SampleKey,
    /// Global rank of `threshold` (1-based, i.e. the number of keys
    /// `<= threshold` across all PEs). Within the requested target window.
    pub rank: u64,
    /// Number of pivot rounds used (the paper reports averages of these).
    pub rounds: u32,
}

/// Scan direction for pivot sampling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Direction {
    /// Bernoulli(1/k̃) scan from the smallest key; combine with min.
    Bottom,
    /// Mirrored: Bernoulli(1/(N−k̃+1)) scan from the largest key; combine
    /// with max. Used when the target rank is in the upper half.
    Top,
}

/// The evolving global state of one selection.
pub(crate) struct SelectionState {
    /// Active open interval `(lo, hi)`; `None` = unbounded.
    lo: Option<SampleKey>,
    hi: Option<SampleKey>,
    /// Number of keys in the active interval, globally.
    n: u64,
    /// Target window, 1-based ranks *within* the active interval.
    t_lo: u64,
    t_hi: u64,
    /// Keys excluded below `lo` so far (for reporting global ranks).
    offset: u64,
    direction: Direction,
    pub rounds: u32,
    params: SelectParams,
    /// Pivots of the current round, sorted ascending (deduplicated).
    pivots: Vec<SampleKey>,
}

impl SelectionState {
    /// `total` is the global number of keys (sum of `CandidateSet::total`
    /// over PEs); the caller knows it already and the window must fit.
    pub fn new(target: TargetRank, total: u64, params: SelectParams) -> Self {
        assert!(
            target.lo >= 1 && target.hi <= total,
            "target {target:?} outside 1..={total}"
        );
        let mut s = SelectionState {
            lo: None,
            hi: None,
            n: total,
            t_lo: target.lo,
            t_hi: target.hi,
            offset: 0,
            direction: Direction::Bottom,
            rounds: 0,
            params,
            pivots: Vec::new(),
        };
        s.pick_direction();
        s
    }

    fn pick_direction(&mut self) {
        let mid = (self.t_lo + self.t_hi) / 2;
        self.direction = if mid * 2 > self.n {
            Direction::Top
        } else {
            Direction::Bottom
        };
    }

    /// Per-PE step 1: draw `d` local pivot candidates from `set`.
    ///
    /// Each candidate is the first success of an independent Bernoulli scan
    /// of the local keys in the active range (in the current direction). A
    /// `None` means this PE's scan ran past its local keys.
    pub fn propose<S: CandidateSet + ?Sized>(
        &self,
        set: &S,
        rng: &mut impl Rng64,
    ) -> Vec<Option<SampleKey>> {
        let m = set.count_in(self.lo.as_ref(), self.hi.as_ref());
        let success = match self.direction {
            Direction::Bottom => 1.0 / self.t_hi.max(1) as f64,
            Direction::Top => 1.0 / (self.n - self.t_lo + 1).max(1) as f64,
        };
        (0..self.params.num_pivots)
            .map(|_| {
                let g = if success >= 1.0 {
                    0
                } else {
                    rng.geometric_skips(success)
                };
                if g >= m {
                    return None;
                }
                match self.direction {
                    Direction::Bottom => set.select_above(self.lo.as_ref(), g),
                    Direction::Top => set.select_below(self.hi.as_ref(), g),
                }
            })
            .collect()
    }

    /// How candidate vectors combine across PEs: elementwise min (bottom
    /// scans) or max (top scans); `None` is the identity.
    pub fn combine_candidates(
        &self,
        mut a: Vec<Option<SampleKey>>,
        b: Vec<Option<SampleKey>>,
    ) -> Vec<Option<SampleKey>> {
        debug_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter_mut().zip(b) {
            *x = match (x.take(), y) {
                (None, y) => y,
                (x, None) => x,
                (Some(x), Some(y)) => Some(match self.direction {
                    Direction::Bottom => x.min(y),
                    Direction::Top => x.max(y),
                }),
            };
        }
        a
    }

    /// Global step 2: fix this round's pivots from the combined candidates.
    /// Returns `false` if no PE produced any candidate (a wasted round; the
    /// caller simply loops).
    pub fn absorb_candidates(&mut self, combined: Vec<Option<SampleKey>>) -> bool {
        self.rounds += 1;
        SELECT_ROUNDS.inc();
        let mut pivots: Vec<SampleKey> = combined.into_iter().flatten().collect();
        pivots.sort_unstable();
        pivots.dedup();
        self.pivots = pivots;
        !self.pivots.is_empty()
    }

    /// Per-PE step 3: count local keys at or below each pivot, within the
    /// active range.
    pub fn count<S: CandidateSet + ?Sized>(&self, set: &S) -> Vec<u64> {
        let base = match &self.lo {
            Some(l) => set.count_le(l),
            None => 0,
        };
        self.pivots
            .iter()
            .map(|pv| set.count_le(pv) - base)
            .collect()
    }

    /// Global step 4: inspect the summed counts; either finish or narrow the
    /// active range. `counts[j]` is the global number of active-range keys
    /// `<= pivots[j]`.
    pub fn decide(&mut self, counts: &[u64]) -> Option<SelectResult> {
        debug_assert_eq!(counts.len(), self.pivots.len());
        // Accept the pivot whose count lands nearest the window centre.
        let mut best: Option<(u64, usize)> = None;
        for (j, &c) in counts.iter().enumerate() {
            if self.t_lo <= c && c <= self.t_hi {
                let mid = (self.t_lo + self.t_hi) / 2;
                let dist = c.abs_diff(mid);
                if best.is_none_or(|(d, _)| dist < d) {
                    best = Some((dist, j));
                }
            }
        }
        if let Some((_, j)) = best {
            return Some(SelectResult {
                threshold: self.pivots[j],
                rank: self.offset + counts[j],
                rounds: self.rounds,
            });
        }
        // Narrow: bracket the window between adjacent pivots.
        let mut below: Option<(SampleKey, u64)> = None; // largest pivot with c < t_lo
        let mut above: Option<(SampleKey, u64)> = None; // smallest pivot with c > t_hi
        for (j, &c) in counts.iter().enumerate() {
            if c < self.t_lo {
                below = Some((self.pivots[j], c));
            } else if c > self.t_hi && above.is_none() {
                above = Some((self.pivots[j], c));
            }
        }
        let cut_below = below.map(|(_, c)| c).unwrap_or(0);
        if let Some((pv, c)) = below {
            self.lo = Some(pv);
            self.offset += c;
            self.t_lo -= c;
            self.t_hi -= c;
            self.n -= c;
        }
        if let Some((pv, c)) = above {
            self.hi = Some(pv);
            // Keys in the new interval (lo, pv): those <= pv minus pv itself
            // minus the ones cut below.
            self.n = c - 1 - cut_below;
        }
        debug_assert!(
            self.t_lo >= 1 && self.t_hi <= self.n,
            "window {}..{} escaped active range of {} keys",
            self.t_lo,
            self.t_hi,
            self.n
        );
        self.pick_direction();
        None
    }

    pub fn over_budget(&self) -> bool {
        self.rounds >= self.params.max_rounds
    }

    /// Whether this round's candidates combine by minimum (bottom scans) or
    /// maximum (mirrored top scans).
    pub fn combine_is_min(&self) -> bool {
        self.direction == Direction::Bottom
    }

    pub fn num_pivots(&self) -> usize {
        self.params.num_pivots
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::SortedKeys;
    use reservoir_rng::default_rng;

    fn keyset(n: u64) -> SortedKeys {
        SortedKeys::new((0..n).map(|i| SampleKey::new(i as f64, i)).collect())
    }

    /// Drive the state machine against a single local set (p = 1).
    fn run(total: u64, target: TargetRank, d: usize, seed: u64) -> SelectResult {
        let set = keyset(total);
        let mut rng = default_rng(seed);
        let mut st = SelectionState::new(target, total, SelectParams::with_pivots(d));
        loop {
            assert!(!st.over_budget(), "selection did not terminate");
            let cand = st.propose(&set, &mut rng);
            if !st.absorb_candidates(cand) {
                continue;
            }
            let counts = st.count(&set);
            if let Some(res) = st.decide(&counts) {
                return res;
            }
        }
    }

    #[test]
    fn exact_selection_all_ranks_small() {
        for k in 1..=20u64 {
            let res = run(20, TargetRank::exact(k), 1, 42 + k);
            assert_eq!(res.rank, k);
            assert_eq!(res.threshold.key, (k - 1) as f64, "rank {k}");
        }
    }

    #[test]
    fn exact_selection_larger_sets_multi_pivot() {
        for &d in &[1usize, 2, 8] {
            for &k in &[1u64, 7, 500, 999, 1000] {
                let res = run(1000, TargetRank::exact(k), d, 7 * k + d as u64);
                assert_eq!(res.threshold.key, (k - 1) as f64, "d={d} k={k}");
            }
        }
    }

    #[test]
    fn approximate_selection_lands_in_window() {
        for seed in 0..20 {
            let res = run(10_000, TargetRank::range(900, 1100), 2, seed);
            assert!(
                (900..=1100).contains(&res.rank),
                "rank {} outside window",
                res.rank
            );
            assert_eq!(res.threshold.key, (res.rank - 1) as f64);
        }
    }

    #[test]
    fn approximate_needs_fewer_rounds_than_exact() {
        let mut exact_rounds = 0u32;
        let mut approx_rounds = 0u32;
        for seed in 0..30 {
            exact_rounds += run(100_000, TargetRank::exact(50_000), 1, seed).rounds;
            approx_rounds += run(100_000, TargetRank::range(45_000, 55_000), 1, seed).rounds;
        }
        assert!(
            approx_rounds < exact_rounds,
            "approx {approx_rounds} !< exact {exact_rounds}"
        );
    }

    #[test]
    fn multi_pivot_reduces_rounds() {
        let mut r1 = 0u32;
        let mut r8 = 0u32;
        for seed in 0..30 {
            r1 += run(100_000, TargetRank::exact(10_000), 1, seed).rounds;
            r8 += run(100_000, TargetRank::exact(10_000), 8, seed).rounds;
        }
        assert!(r8 * 2 < r1 * 2, "d=8 rounds {r8} vs d=1 rounds {r1}");
        assert!(
            (r8 as f64) < (r1 as f64) * 0.8,
            "multi-pivot should cut rounds substantially: {r8} vs {r1}"
        );
    }

    #[test]
    fn top_direction_used_for_high_ranks() {
        let st = SelectionState::new(TargetRank::exact(95), 100, SelectParams::default());
        assert_eq!(st.direction, Direction::Top);
        let st = SelectionState::new(TargetRank::exact(5), 100, SelectParams::default());
        assert_eq!(st.direction, Direction::Bottom);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn target_beyond_total_rejected() {
        let _ = SelectionState::new(TargetRank::exact(11), 10, SelectParams::default());
    }
}
