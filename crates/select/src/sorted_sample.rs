//! Selection for randomly distributed items (paper Section 3.3.1).
//!
//! When the keys are randomly distributed over the PEs — which holds for
//! the samplers, whose keys are i.i.d. random variates — a constant number
//! of communication rounds suffices:
//!
//! 1. draw a global Bernoulli sample of ≈√N keys and share it (allgather —
//!    the paper uses the communication-efficient Algorithm P sampling; the
//!    payload is tiny either way);
//! 2. pick two pivots bracketing the expected position of rank `k` in the
//!    sorted sample, with a √(s·log s) safety margin;
//! 3. count keys at or below each pivot (one all-reduce). With high
//!    probability the target rank falls between the pivots and only
//!    O(√N · margin) keys lie between them; gather those and finish
//!    exactly.
//!
//! If the margin misses (rare), it doubles and the procedure retries.

use reservoir_btree::SampleKey;
use reservoir_rng::Rng64;

use crate::candidates::CandidateSet;
use crate::state::SelectResult;

/// Outcome of a sorted-sample selection, with diagnostics.
#[derive(Clone, Debug)]
pub struct SortedSampleReport {
    pub result: SelectResult,
    /// Size of the √N key sample that was shared.
    pub sample_size: u64,
    /// Number of keys gathered between the bracketing pivots.
    pub middle_size: u64,
    /// Attempts used (1 = the high-probability fast path).
    pub attempts: u32,
}

/// Collect the keys of `set` lying in the open-below/closed-above interval
/// `(lo, hi]` (`None` = unbounded) — O(m log n) via repeated `select_above`.
fn keys_between<S: CandidateSet + ?Sized>(
    set: &S,
    lo: Option<&SampleKey>,
    hi: Option<&SampleKey>,
    out: &mut Vec<SampleKey>,
) {
    let below_hi = match hi {
        Some(h) => set.count_le(h),
        None => set.total(),
    };
    let at_most_lo = match lo {
        Some(l) => set.count_le(l),
        None => 0,
    };
    for r in 0..below_hi.saturating_sub(at_most_lo) {
        if let Some(k) = set.select_above(lo, r) {
            out.push(k);
        }
    }
}

/// Bernoulli-subsample a set's keys at rate `q` using geometric skips
/// (touches only sampled keys).
fn bernoulli_keys<S: CandidateSet + ?Sized>(
    set: &S,
    q: f64,
    rng: &mut impl Rng64,
    out: &mut Vec<SampleKey>,
) {
    if q >= 1.0 {
        keys_between(set, None, None, out);
        return;
    }
    let m = set.total();
    let mut pos = 0u64;
    let mut last: Option<SampleKey> = None;
    loop {
        let skip = rng.geometric_skips(q);
        if skip >= m - pos {
            return;
        }
        pos += skip;
        // r-th smallest overall == select_above(last) with adjusted index;
        // using absolute positions keeps this O(log n) per sampled key.
        let key = set
            .select_above(None, pos)
            .expect("pos < total by construction");
        let _ = last.take();
        out.push(key);
        last = Some(key);
        pos += 1;
        if pos >= m {
            return;
        }
    }
}

/// Conductor (single-process) driver: select the key of global rank `k`
/// over the union of `sets`, assuming randomly distributed keys.
pub fn sorted_sample_select<S>(sets: &[&S], k: u64, rngs: &mut [impl Rng64]) -> SortedSampleReport
where
    S: CandidateSet + ?Sized,
{
    assert_eq!(sets.len(), rngs.len());
    let total: u64 = sets.iter().map(|s| s.total()).sum();
    assert!(k >= 1 && k <= total, "rank {k} outside 1..={total}");
    let mut margin_factor = 2.5f64;
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        assert!(attempts <= 32, "sorted-sample selection failed to bracket");
        // Step 1: shared sample. N^(2/3) balances the two gathers: the
        // sample itself (s keys) against the middle (≈ N/√s keys).
        let s_target = (total as f64).powf(2.0 / 3.0).ceil() as u64 + 16;
        let q = (s_target as f64 / total as f64).min(1.0);
        let mut sample: Vec<SampleKey> = Vec::with_capacity(2 * s_target as usize);
        for (set, rng) in sets.iter().zip(rngs.iter_mut()) {
            bernoulli_keys(*set, q, rng, &mut sample);
        }
        if sample.is_empty() {
            margin_factor *= 2.0;
            continue;
        }
        sample.sort_unstable();
        let s = sample.len() as u64;
        // Step 2: bracketing pivots around the expected sample position.
        // The position of rank k in the sample has sd ≤ √s/2.
        let j = (k as f64 * s as f64 / total as f64).round() as i64;
        let delta = (margin_factor * (s as f64).sqrt() / 2.0).ceil() as i64 + 1;
        let lo_idx = j - delta;
        let hi_idx = j + delta;
        let lo = (lo_idx >= 0).then(|| sample[(lo_idx as u64).min(s - 1) as usize]);
        let hi = (hi_idx < s as i64).then(|| sample[hi_idx as usize]);
        // Step 3: exact counts at the pivots.
        let count_lo: u64 = lo
            .map(|l| sets.iter().map(|set| set.count_le(&l)).sum())
            .unwrap_or(0);
        let count_hi: u64 = hi
            .map(|h| sets.iter().map(|set| set.count_le(&h)).sum())
            .unwrap_or(total);
        if !(count_lo < k && k <= count_hi) {
            margin_factor *= 2.0;
            continue;
        }
        // Step 4: gather the middle and finish exactly.
        let mut middle: Vec<SampleKey> = Vec::new();
        for set in sets {
            keys_between(*set, lo.as_ref(), hi.as_ref(), &mut middle);
        }
        middle.sort_unstable();
        let idx = (k - count_lo - 1) as usize;
        let threshold = middle[idx];
        return SortedSampleReport {
            result: SelectResult {
                threshold,
                rank: k,
                rounds: attempts,
            },
            sample_size: s,
            middle_size: middle.len() as u64,
            attempts,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::SortedKeys;
    use reservoir_rng::{default_rng, DefaultRng, Rng64};

    fn random_partition(n: u64, p: usize, seed: u64) -> (Vec<SortedKeys>, Vec<SampleKey>) {
        // Random keys randomly assigned to PEs — the 3.3.1 precondition.
        let mut rng = default_rng(seed);
        let mut per_pe: Vec<Vec<SampleKey>> = vec![Vec::new(); p];
        let mut all = Vec::with_capacity(n as usize);
        for i in 0..n {
            let key = SampleKey::new(rng.rand_oc(), i);
            all.push(key);
            per_pe[rng.next_below(p as u64) as usize].push(key);
        }
        all.sort_unstable();
        (per_pe.into_iter().map(SortedKeys::new).collect(), all)
    }

    #[test]
    fn matches_oracle_across_partitions() {
        for p in [1usize, 3, 8] {
            let (sets, all) = random_partition(20_000, p, 5 + p as u64);
            let refs: Vec<&SortedKeys> = sets.iter().collect();
            let mut rngs: Vec<DefaultRng> = (0..p).map(|i| default_rng(50 + i as u64)).collect();
            for k in [1u64, 123, 10_000, 19_999, 20_000] {
                let rep = sorted_sample_select(&refs, k, &mut rngs);
                assert_eq!(rep.result.threshold, all[(k - 1) as usize], "p={p} k={k}");
                assert_eq!(rep.result.rank, k);
            }
        }
    }

    #[test]
    fn fast_path_usually_succeeds_first_try() {
        let (sets, _) = random_partition(50_000, 4, 99);
        let refs: Vec<&SortedKeys> = sets.iter().collect();
        let mut first_try = 0;
        for t in 0..20u64 {
            let mut rngs: Vec<DefaultRng> = (0..4).map(|i| default_rng(t * 7 + i)).collect();
            let rep = sorted_sample_select(&refs, 25_000, &mut rngs);
            if rep.attempts == 1 {
                first_try += 1;
            }
            // The middle gather must be far smaller than N (≈ N/√s·margin).
            assert!(rep.middle_size < 9_000, "middle {}", rep.middle_size);
        }
        assert!(first_try >= 17, "fast path hit only {first_try}/20");
    }

    #[test]
    fn tiny_inputs() {
        let (sets, all) = random_partition(3, 2, 1);
        let refs: Vec<&SortedKeys> = sets.iter().collect();
        let mut rngs = vec![default_rng(1), default_rng(2)];
        for k in 1..=3u64 {
            let rep = sorted_sample_select(&refs, k, &mut rngs);
            assert_eq!(rep.result.threshold, all[(k - 1) as usize]);
        }
    }

    #[test]
    fn keys_between_respects_bounds() {
        let set = SortedKeys::new((0..10).map(|i| SampleKey::new(i as f64, i)).collect());
        let lo = SampleKey::new(2.0, 2);
        let hi = SampleKey::new(7.0, 7);
        let mut out = Vec::new();
        keys_between(&set, Some(&lo), Some(&hi), &mut out);
        let got: Vec<f64> = out.iter().map(|k| k.key).collect();
        assert_eq!(got, vec![3.0, 4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn bernoulli_keys_rate() {
        let set = SortedKeys::new((0..100_000).map(|i| SampleKey::new(i as f64, i)).collect());
        let mut rng = default_rng(3);
        let mut out = Vec::new();
        bernoulli_keys(&set, 0.01, &mut rng, &mut out);
        let got = out.len() as f64;
        assert!((got - 1000.0).abs() < 200.0, "sampled {got}");
        // Sampled keys are strictly increasing (scan order).
        assert!(out.windows(2).all(|w| w[0] < w[1]));
    }
}
