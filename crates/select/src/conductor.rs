//! Selection driver for the cluster simulator: runs every PE's local steps
//! inside one thread and *reports* what the network would have carried.
//!
//! Runs the identical [`SelectionState`](crate::state::SelectionState)
//! machine as the threaded driver, so pivot choices, round counts and the
//! final threshold have exactly the protocol's distribution; only the
//! all-reduces are replaced by in-process folds. The caller (the simulator)
//! charges each reported round through its
//! [`CostModel`](reservoir_comm::CostModel).

use reservoir_btree::SampleKey;
use reservoir_rng::Rng64;

use crate::candidates::CandidateSet;
use crate::state::{SelectParams, SelectResult, SelectionState, TargetRank};

/// What the conductor observed: the result plus, per round, the all-reduce
/// payload size in machine words (candidate vector + count vector; each
/// round performs two all-reduces of roughly this size).
#[derive(Clone, Debug)]
pub struct ConductorReport {
    pub result: SelectResult,
    /// Payload words moved per round (for cost accounting).
    pub round_payload_words: Vec<u64>,
}

/// Select the key of global rank `target` over the union of `sets`.
///
/// `rngs` supplies one generator per set (PE); pass a single set holding the
/// global key union to simulate an arbitrarily large machine — the pivot
/// distribution is identical because a Bernoulli sample of a disjoint union
/// is the union of Bernoulli samples.
pub fn select_conductor<S>(
    sets: &[&S],
    target: TargetRank,
    params: SelectParams,
    rngs: &mut [impl Rng64],
) -> ConductorReport
where
    S: CandidateSet + ?Sized,
{
    assert_eq!(sets.len(), rngs.len(), "one RNG per candidate set");
    let total: u64 = sets.iter().map(|s| s.total()).sum();
    let mut st = SelectionState::new(target, total, params);
    let mut round_payload_words = Vec::new();
    loop {
        assert!(
            !st.over_budget(),
            "conductor selection exceeded its round budget"
        );
        // Step 1+2: propose on every PE, fold as the all-reduce would.
        let mut combined: Option<Vec<Option<SampleKey>>> = None;
        for (set, rng) in sets.iter().zip(rngs.iter_mut()) {
            let local = st.propose(*set, rng);
            combined = Some(match combined {
                None => local,
                Some(acc) => st.combine_candidates(acc, local),
            });
        }
        let combined = combined.expect("at least one PE");
        let candidate_words = 3 * st.num_pivots() as u64 + 1;
        if !st.absorb_candidates(combined) {
            round_payload_words.push(candidate_words);
            continue;
        }
        // Step 3+4: count on every PE, fold, decide.
        let mut counts: Option<Vec<u64>> = None;
        for set in sets {
            let local = st.count(*set);
            counts = Some(match counts {
                None => local,
                Some(acc) => acc.into_iter().zip(local).map(|(a, b)| a + b).collect(),
            });
        }
        let counts = counts.expect("at least one PE");
        round_payload_words.push(candidate_words + counts.len() as u64 + 1);
        if let Some(result) = st.decide(&counts) {
            return ConductorReport {
                result,
                round_payload_words,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::SortedKeys;
    use reservoir_rng::{default_rng, DefaultRng};

    fn split_keys(n: u64, p: usize) -> Vec<SortedKeys> {
        (0..p)
            .map(|pe| {
                SortedKeys::new(
                    (0..n)
                        .filter(|i| *i as usize % p == pe)
                        .map(|i| SampleKey::new((i * 31 % n) as f64, i))
                        .collect(),
                )
            })
            .collect()
    }

    #[test]
    fn conductor_matches_oracle() {
        let n = 2000u64;
        for p in [1usize, 3, 8] {
            let sets = split_keys(n, p);
            let refs: Vec<&SortedKeys> = sets.iter().collect();
            let mut all: Vec<SampleKey> = sets.iter().flat_map(|s| s.as_slice().to_vec()).collect();
            all.sort_unstable();
            let mut rngs: Vec<DefaultRng> = (0..p).map(|i| default_rng(100 + i as u64)).collect();
            for k in [1u64, 17, n / 2, n] {
                let report = select_conductor(
                    &refs,
                    TargetRank::exact(k),
                    SelectParams::with_pivots(2),
                    &mut rngs,
                );
                assert_eq!(
                    report.result.threshold,
                    all[(k - 1) as usize],
                    "p={p} k={k}"
                );
                assert_eq!(report.result.rank, k);
                assert_eq!(
                    report.round_payload_words.len(),
                    report.result.rounds as usize
                );
            }
        }
    }

    #[test]
    fn single_global_set_equals_partitioned_distributionally() {
        // Round counts over many seeds should have statistically
        // indistinguishable means whether keys sit on 1 or 8 PEs.
        let n = 50_000u64;
        let k = 5_000u64;
        let trials = 40;
        let mean_rounds = |p: usize| -> f64 {
            let sets = split_keys(n, p);
            let refs: Vec<&SortedKeys> = sets.iter().collect();
            let mut total = 0u32;
            for t in 0..trials {
                let mut rngs: Vec<DefaultRng> =
                    (0..p).map(|i| default_rng(t * 131 + i as u64)).collect();
                total += select_conductor(
                    &refs,
                    TargetRank::exact(k),
                    SelectParams::default(),
                    &mut rngs,
                )
                .result
                .rounds;
            }
            total as f64 / trials as f64
        };
        let m1 = mean_rounds(1);
        let m8 = mean_rounds(8);
        assert!(
            (m1 - m8).abs() < 0.35 * m1.max(m8),
            "round-count means diverge: p=1 {m1}, p=8 {m8}"
        );
    }

    #[test]
    fn payload_words_scale_with_pivots() {
        let n = 10_000u64;
        let sets = split_keys(n, 2);
        let refs: Vec<&SortedKeys> = sets.iter().collect();
        let mut rngs = vec![default_rng(1), default_rng(2)];
        let r8 = select_conductor(
            &refs,
            TargetRank::exact(500),
            SelectParams::with_pivots(8),
            &mut rngs,
        );
        assert!(r8.round_payload_words.iter().all(|&w| w > 3 * 8));
    }
}
