//! Sequential quickselect — the selection routine of the centralized
//! gathering baseline (paper Section 4.5): the root PE selects the k
//! smallest of the gathered candidates with a standard in-place quickselect.

use reservoir_btree::SampleKey;
use reservoir_rng::Rng64;

/// Rearrange `keys` so that the element with 0-based rank `k` is at
/// position `k`, everything before it is `<=` it and everything after is
/// `>=` it; returns that element. Expected O(n), random pivots.
///
/// Panics if `keys` is empty or `k >= keys.len()`.
pub fn kth_smallest(keys: &mut [SampleKey], k: usize, rng: &mut impl Rng64) -> SampleKey {
    assert!(!keys.is_empty(), "kth_smallest on empty slice");
    assert!(
        k < keys.len(),
        "rank {k} out of range for {} keys",
        keys.len()
    );
    let (mut lo, mut hi) = (0usize, keys.len());
    loop {
        if hi - lo <= 16 {
            keys[lo..hi].sort_unstable();
            return keys[k];
        }
        let pivot_idx = lo + rng.next_below((hi - lo) as u64) as usize;
        let pivot = keys[pivot_idx];
        // Dutch-national-flag three-way partition around the pivot value
        // (keys are unique in the samplers, but duplicates must not break
        // the baseline).
        let mut lt = lo;
        let mut i = lo;
        let mut gt = hi;
        while i < gt {
            if keys[i] < pivot {
                keys.swap(i, lt);
                lt += 1;
                i += 1;
            } else if keys[i] > pivot {
                gt -= 1;
                keys.swap(i, gt);
            } else {
                i += 1;
            }
        }
        // Now keys[lo..lt] < pivot, keys[lt..gt] == pivot, keys[gt..hi] > pivot.
        if k < lt {
            hi = lt;
        } else if k < gt {
            return pivot;
        } else {
            lo = gt;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reservoir_rng::default_rng;

    fn keys(vals: &[f64]) -> Vec<SampleKey> {
        vals.iter()
            .enumerate()
            .map(|(i, &v)| SampleKey::new(v, i as u64))
            .collect()
    }

    #[test]
    fn matches_sorting_for_every_rank() {
        let vals: Vec<f64> = (0..200).map(|i| ((i * 7919) % 200) as f64).collect();
        let reference = {
            let mut ks = keys(&vals);
            ks.sort_unstable();
            ks
        };
        let mut rng = default_rng(1);
        for (k, expect) in reference.iter().enumerate() {
            let mut ks = keys(&vals);
            assert_eq!(kth_smallest(&mut ks, k, &mut rng), *expect, "rank {k}");
        }
    }

    #[test]
    fn handles_duplicate_float_keys() {
        // Same float key, distinct ids: the id tiebreak keeps ranks total.
        let mut ks: Vec<SampleKey> = (0..50).map(|i| SampleKey::new(1.0, i)).collect();
        let mut rng = default_rng(2);
        let got = kth_smallest(&mut ks, 10, &mut rng);
        assert_eq!(got, SampleKey::new(1.0, 10));
    }

    #[test]
    fn single_element() {
        let mut ks = keys(&[3.0]);
        let mut rng = default_rng(3);
        assert_eq!(kth_smallest(&mut ks, 0, &mut rng).key, 3.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rank_out_of_range_panics() {
        let mut ks = keys(&[1.0, 2.0]);
        let mut rng = default_rng(4);
        let _ = kth_smallest(&mut ks, 2, &mut rng);
    }
}
