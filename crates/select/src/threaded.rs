//! Selection driver for the real message-passing backend.

use reservoir_btree::SampleKey;
use reservoir_comm::{Collectives, Communicator};
use reservoir_rng::Rng64;

use crate::candidates::CandidateSet;
use crate::state::{SelectParams, SelectResult, SelectionState, TargetRank};

type WireKey = (f64, u64);

fn to_wire(k: Option<SampleKey>) -> Option<WireKey> {
    k.map(|k| (k.key, k.id))
}

fn from_wire(w: Option<WireKey>) -> Option<SampleKey> {
    w.map(|(key, id)| SampleKey::new(key, id))
}

fn combine_wire(
    a: Vec<Option<WireKey>>,
    b: Vec<Option<WireKey>>,
    take_min: bool,
) -> Vec<Option<WireKey>> {
    a.into_iter()
        .zip(b)
        .map(|(x, y)| match (from_wire(x), from_wire(y)) {
            (None, y) => to_wire(y),
            (x, None) => to_wire(x),
            (Some(x), Some(y)) => to_wire(Some(if take_min { x.min(y) } else { x.max(y) })),
        })
        .collect()
}

/// Find the key whose global rank (over the union of all PEs' sets) lies in
/// `target`, using the pivot protocol of paper Section 3.3.3.
///
/// Must be called collectively: every PE passes its local `set`, the global
/// key count `total` (all PEs must agree on it — it is the sum of the local
/// set sizes, which the samplers already all-reduce), and identical
/// `target`/`params`. All PEs return the same result.
///
/// Each round costs two small all-reduces: O(d) words each, O(α log p)
/// latency.
pub fn select_threaded<C, S>(
    comm: &C,
    set: &S,
    target: TargetRank,
    total: u64,
    params: SelectParams,
    rng: &mut impl Rng64,
) -> SelectResult
where
    C: Communicator,
    S: CandidateSet + ?Sized,
{
    let mut st = SelectionState::new(target, total, params);
    loop {
        assert!(
            !st.over_budget(),
            "distributed selection exceeded its round budget"
        );
        let local: Vec<Option<WireKey>> = st.propose(set, rng).into_iter().map(to_wire).collect();
        let take_min = st.combine_is_min();
        let combined = comm.allreduce(local, |a, b| combine_wire(a, b, take_min));
        if !st.absorb_candidates(combined.into_iter().map(from_wire).collect()) {
            continue; // no PE sampled a pivot this round; retry
        }
        let counts = comm.sum_u64_vec(st.count(set));
        if let Some(res) = st.decide(&counts) {
            return res;
        }
    }
}

/// Outcome of a batched multi-selection: one [`SelectResult`] per task plus
/// the number of *joint* pivot rounds the whole batch consumed.
///
/// `joint_rounds` is the amortization witness: it is the maximum of the
/// per-task round counts, not their sum, because every joint round serves
/// all still-undecided tasks with the same two collectives.
#[derive(Clone, Debug, PartialEq)]
pub struct MultiSelectResult {
    /// Per-task results, in task order. Each is byte-identical to what a
    /// standalone [`select_threaded`] call with the same set/target/RNG
    /// would have produced.
    pub results: Vec<SelectResult>,
    /// Collective rounds spent by the batch as a whole (max over tasks).
    pub joint_rounds: u32,
}

/// Run many independent selections behind one collective schedule.
///
/// Task `i` selects `targets[i]` from the global union of `sets[i]`
/// (global size `totals[i]`, which all PEs must agree on), consuming
/// `rngs[i]`. Instead of paying two all-reduces per task per round, each
/// *joint* round concatenates every undecided task's pivot candidates into
/// a single vector for **one** all-reduce, and every absorbing task's pivot
/// counts into a single vector for **one** `sum_u64_vec` — so the α·log p
/// collective latency is amortized across all tasks.
///
/// Every per-task state trajectory (pivots proposed, candidates absorbed,
/// counts, decisions, RNG consumption) is exactly the trajectory
/// [`select_threaded`] would produce for that task alone: candidate
/// combination is elementwise, and each segment of the concatenated vector
/// combines under its own task's min/max direction. Tasks drop out of the
/// schedule as they decide; the batch runs until the slowest task finishes.
///
/// Must be called collectively with identical task lists on every PE.
pub fn select_threaded_many<C, S, R>(
    comm: &C,
    sets: &[&S],
    targets: &[TargetRank],
    totals: &[u64],
    params: SelectParams,
    rngs: &mut [R],
) -> MultiSelectResult
where
    C: Communicator,
    S: CandidateSet + ?Sized,
    R: Rng64,
{
    let n = sets.len();
    assert_eq!(targets.len(), n, "one target per task");
    assert_eq!(totals.len(), n, "one total per task");
    assert_eq!(rngs.len(), n, "one RNG stream per task");
    let mut states: Vec<Option<SelectionState>> = (0..n)
        .map(|i| Some(SelectionState::new(targets[i], totals[i], params)))
        .collect();
    let mut results: Vec<Option<SelectResult>> = vec![None; n];
    let mut joint_rounds = 0u32;
    while states.iter().any(Option::is_some) {
        joint_rounds += 1;
        // Step 1+2: concatenate every undecided task's candidate proposals
        // and combine them in ONE all-reduce. Segment boundaries and
        // per-segment directions are globally agreed because the states
        // evolve deterministically from all-reduced values.
        let mut seg_len = vec![0usize; n];
        let mut elem_min: Vec<bool> = Vec::new();
        let mut wire: Vec<Option<WireKey>> = Vec::new();
        for (i, st) in states.iter().enumerate() {
            let Some(st) = st else { continue };
            assert!(
                !st.over_budget(),
                "distributed selection exceeded its round budget (task {i})"
            );
            let cand = st.propose(sets[i], &mut rngs[i]);
            seg_len[i] = cand.len();
            elem_min.extend(std::iter::repeat_n(st.combine_is_min(), cand.len()));
            wire.extend(cand.into_iter().map(to_wire));
        }
        let flags = elem_min;
        let combined = comm.allreduce(wire, |a, b| {
            a.into_iter()
                .zip(b)
                .zip(&flags)
                .map(|((x, y), &take_min)| match (from_wire(x), from_wire(y)) {
                    (None, y) => to_wire(y),
                    (x, None) => to_wire(x),
                    (Some(x), Some(y)) => to_wire(Some(if take_min { x.min(y) } else { x.max(y) })),
                })
                .collect()
        });
        // Step 3: absorb per task; tasks whose candidate segment came back
        // empty waste this round (exactly as standalone `continue` does)
        // and contribute no counts.
        let mut offset = 0usize;
        let mut absorbed = vec![false; n];
        for i in 0..n {
            let seg: Vec<Option<SampleKey>> = combined[offset..offset + seg_len[i]]
                .iter()
                .map(|w| from_wire(*w))
                .collect();
            offset += seg_len[i];
            if let Some(st) = states[i].as_mut() {
                absorbed[i] = st.absorb_candidates(seg);
            }
        }
        if !absorbed.iter().any(|&a| a) {
            continue; // every active task wasted the round; no count needed
        }
        // Step 3b+4: concatenate per-pivot counts into ONE sum_u64_vec and
        // let each absorbing task decide on its own segment.
        let mut count_len = vec![0usize; n];
        let mut counts: Vec<u64> = Vec::new();
        for i in 0..n {
            if absorbed[i] {
                let c = states[i]
                    .as_ref()
                    .expect("absorbed ⇒ active")
                    .count(sets[i]);
                count_len[i] = c.len();
                counts.extend(c);
            }
        }
        let summed = comm.sum_u64_vec(counts);
        let mut off = 0usize;
        for i in 0..n {
            let seg = &summed[off..off + count_len[i]];
            off += count_len[i];
            if absorbed[i] {
                if let Some(res) = states[i].as_mut().expect("absorbed ⇒ active").decide(seg) {
                    results[i] = Some(res);
                    states[i] = None;
                }
            }
        }
    }
    MultiSelectResult {
        results: results
            .into_iter()
            .map(|r| r.expect("loop exits only when every task decided"))
            .collect(),
        joint_rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::SortedKeys;
    use reservoir_comm::run_threads;
    use reservoir_rng::{default_rng, SeedSequence, StreamKind};

    /// Deal `n` keys round-robin over `p` PEs and select various ranks.
    fn harness(p: usize, n: u64, d: usize) {
        let all: Vec<SampleKey> = (0..n)
            .map(|i| SampleKey::new(((i * 7919) % n) as f64, i))
            .collect();
        let mut sorted = all.clone();
        sorted.sort_unstable();
        for &k in &[1u64, 2, n / 3, n / 2, n - 1, n] {
            let results = run_threads(p, |comm| {
                let rank = comm.rank();
                let local: Vec<SampleKey> = all
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % p == rank)
                    .map(|(_, k)| *k)
                    .collect();
                let set = SortedKeys::new(local);
                let seq = SeedSequence::new(12345);
                let mut rng = seq.rng_for(rank, StreamKind::Selection);
                select_threaded(
                    &comm,
                    &set,
                    TargetRank::exact(k),
                    n,
                    SelectParams::with_pivots(d),
                    &mut rng,
                )
            });
            let expect = sorted[(k - 1) as usize];
            for (pe, res) in results.iter().enumerate() {
                assert_eq!(res.threshold, expect, "p={p} k={k} d={d} pe={pe}");
                assert_eq!(res.rank, k);
            }
            // All PEs agree on the round count.
            assert!(results.windows(2).all(|w| w[0].rounds == w[1].rounds));
        }
    }

    #[test]
    fn exact_selection_across_pe_counts() {
        for p in [1, 2, 4, 7] {
            harness(p, 500, 1);
        }
    }

    #[test]
    fn exact_selection_multi_pivot() {
        harness(4, 1000, 8);
    }

    #[test]
    fn skewed_distribution_across_pes() {
        // All small keys on PE 0, all large on PE 1: adversarial placement.
        let n = 400u64;
        let results = run_threads(2, |comm| {
            let rank = comm.rank();
            let local: Vec<SampleKey> = (0..n)
                .filter(|i| (*i < n / 2) == (rank == 0))
                .map(|i| SampleKey::new(i as f64, i))
                .collect();
            let set = SortedKeys::new(local);
            let mut rng = default_rng(99 + rank as u64);
            select_threaded(
                &comm,
                &set,
                TargetRank::exact(n / 2 + 10),
                n,
                SelectParams::default(),
                &mut rng,
            )
        });
        for res in &results {
            assert_eq!(res.threshold.key, (n / 2 + 9) as f64);
        }
    }

    #[test]
    fn window_target_across_pes() {
        let n = 10_000u64;
        let results = run_threads(4, |comm| {
            let rank = comm.rank();
            let local: Vec<SampleKey> = (0..n)
                .filter(|i| *i as usize % 4 == rank)
                .map(|i| SampleKey::new(i as f64, i))
                .collect();
            let set = SortedKeys::new(local);
            let mut rng = default_rng(7 + rank as u64);
            select_threaded(
                &comm,
                &set,
                TargetRank::range(4_500, 5_500),
                n,
                SelectParams::with_pivots(2),
                &mut rng,
            )
        });
        for res in &results {
            assert!((4_500..=5_500).contains(&res.rank));
            assert_eq!(res.threshold.key, (res.rank - 1) as f64);
        }
    }

    /// The amortized driver must reproduce each standalone trajectory
    /// byte-for-byte: same thresholds, same ranks, same per-task rounds.
    #[test]
    fn many_matches_standalone_per_task() {
        let p = 3;
        let tasks = 5u64;
        let joint = run_threads(p, |comm| {
            let rank = comm.rank();
            let sets: Vec<SortedKeys> = (0..tasks)
                .map(|t| {
                    SortedKeys::new(
                        (0..200 + t * 37)
                            .filter(|i| *i as usize % p == rank)
                            .map(|i| SampleKey::new(((i * 7919 + t * 13) % 1000) as f64, i))
                            .collect(),
                    )
                })
                .collect();
            let refs: Vec<&SortedKeys> = sets.iter().collect();
            let totals: Vec<u64> = (0..tasks).map(|t| 200 + t * 37).collect();
            let targets: Vec<TargetRank> =
                (0..tasks).map(|t| TargetRank::exact(10 + t * 29)).collect();
            let seq = SeedSequence::new(0xBEEF);
            let mut rngs: Vec<_> = (0..tasks)
                .map(|t| seq.rng_for(rank * 64 + t as usize, StreamKind::Selection))
                .collect();
            let many = select_threaded_many(
                &comm,
                &refs,
                &targets,
                &totals,
                SelectParams::with_pivots(2),
                &mut rngs,
            );
            let solo: Vec<SelectResult> = (0..tasks as usize)
                .map(|t| {
                    let mut rng = seq.rng_for(rank * 64 + t, StreamKind::Selection);
                    select_threaded(
                        &comm,
                        &sets[t],
                        targets[t],
                        totals[t],
                        SelectParams::with_pivots(2),
                        &mut rng,
                    )
                })
                .collect();
            (many, solo)
        });
        for (pe, (many, solo)) in joint.iter().enumerate() {
            assert_eq!(many.results, *solo, "pe={pe}");
            let max_rounds = solo.iter().map(|r| r.rounds).max().unwrap();
            assert!(
                many.joint_rounds >= max_rounds,
                "joint rounds {} < slowest task {}",
                many.joint_rounds,
                max_rounds
            );
            // Amortization: the batch must not pay per-task rounds.
            let sum_rounds: u32 = solo.iter().map(|r| r.rounds).sum();
            assert!(
                many.joint_rounds < sum_rounds,
                "joint rounds {} not amortized vs per-task sum {}",
                many.joint_rounds,
                sum_rounds
            );
        }
        // Every PE agrees on the batched outcome.
        assert!(joint.windows(2).all(|w| w[0].0 == w[1].0));
    }

    #[test]
    fn many_with_no_tasks_is_a_noop() {
        let results = run_threads(2, |comm| {
            let sets: Vec<&SortedKeys> = Vec::new();
            let mut rngs: Vec<reservoir_rng::DefaultRng> = Vec::new();
            select_threaded_many(&comm, &sets, &[], &[], SelectParams::default(), &mut rngs)
        });
        for r in &results {
            assert!(r.results.is_empty());
            assert_eq!(r.joint_rounds, 0);
        }
    }

    #[test]
    fn empty_pes_are_tolerated() {
        // Only PE 0 holds keys.
        let n = 100u64;
        let results = run_threads(3, |comm| {
            let rank = comm.rank();
            let local: Vec<SampleKey> = if rank == 0 {
                (0..n).map(|i| SampleKey::new(i as f64, i)).collect()
            } else {
                Vec::new()
            };
            let set = SortedKeys::new(local);
            let mut rng = default_rng(5 + rank as u64);
            select_threaded(
                &comm,
                &set,
                TargetRank::exact(42),
                n,
                SelectParams::default(),
                &mut rng,
            )
        });
        for res in &results {
            assert_eq!(res.threshold.key, 41.0);
        }
    }
}
