//! Selection driver for the real message-passing backend.

use reservoir_btree::SampleKey;
use reservoir_comm::{Collectives, Communicator};
use reservoir_rng::Rng64;

use crate::candidates::CandidateSet;
use crate::state::{SelectParams, SelectResult, SelectionState, TargetRank};

type WireKey = (f64, u64);

fn to_wire(k: Option<SampleKey>) -> Option<WireKey> {
    k.map(|k| (k.key, k.id))
}

fn from_wire(w: Option<WireKey>) -> Option<SampleKey> {
    w.map(|(key, id)| SampleKey::new(key, id))
}

fn combine_wire(
    a: Vec<Option<WireKey>>,
    b: Vec<Option<WireKey>>,
    take_min: bool,
) -> Vec<Option<WireKey>> {
    a.into_iter()
        .zip(b)
        .map(|(x, y)| match (from_wire(x), from_wire(y)) {
            (None, y) => to_wire(y),
            (x, None) => to_wire(x),
            (Some(x), Some(y)) => to_wire(Some(if take_min { x.min(y) } else { x.max(y) })),
        })
        .collect()
}

/// Find the key whose global rank (over the union of all PEs' sets) lies in
/// `target`, using the pivot protocol of paper Section 3.3.3.
///
/// Must be called collectively: every PE passes its local `set`, the global
/// key count `total` (all PEs must agree on it — it is the sum of the local
/// set sizes, which the samplers already all-reduce), and identical
/// `target`/`params`. All PEs return the same result.
///
/// Each round costs two small all-reduces: O(d) words each, O(α log p)
/// latency.
pub fn select_threaded<C, S>(
    comm: &C,
    set: &S,
    target: TargetRank,
    total: u64,
    params: SelectParams,
    rng: &mut impl Rng64,
) -> SelectResult
where
    C: Communicator,
    S: CandidateSet + ?Sized,
{
    let mut st = SelectionState::new(target, total, params);
    loop {
        assert!(
            !st.over_budget(),
            "distributed selection exceeded its round budget"
        );
        let local: Vec<Option<WireKey>> = st.propose(set, rng).into_iter().map(to_wire).collect();
        let take_min = st.combine_is_min();
        let combined = comm.allreduce(local, |a, b| combine_wire(a, b, take_min));
        if !st.absorb_candidates(combined.into_iter().map(from_wire).collect()) {
            continue; // no PE sampled a pivot this round; retry
        }
        let counts = comm.sum_u64_vec(st.count(set));
        if let Some(res) = st.decide(&counts) {
            return res;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::SortedKeys;
    use reservoir_comm::run_threads;
    use reservoir_rng::{default_rng, SeedSequence, StreamKind};

    /// Deal `n` keys round-robin over `p` PEs and select various ranks.
    fn harness(p: usize, n: u64, d: usize) {
        let all: Vec<SampleKey> = (0..n)
            .map(|i| SampleKey::new(((i * 7919) % n) as f64, i))
            .collect();
        let mut sorted = all.clone();
        sorted.sort_unstable();
        for &k in &[1u64, 2, n / 3, n / 2, n - 1, n] {
            let results = run_threads(p, |comm| {
                let rank = comm.rank();
                let local: Vec<SampleKey> = all
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % p == rank)
                    .map(|(_, k)| *k)
                    .collect();
                let set = SortedKeys::new(local);
                let seq = SeedSequence::new(12345);
                let mut rng = seq.rng_for(rank, StreamKind::Selection);
                select_threaded(
                    &comm,
                    &set,
                    TargetRank::exact(k),
                    n,
                    SelectParams::with_pivots(d),
                    &mut rng,
                )
            });
            let expect = sorted[(k - 1) as usize];
            for (pe, res) in results.iter().enumerate() {
                assert_eq!(res.threshold, expect, "p={p} k={k} d={d} pe={pe}");
                assert_eq!(res.rank, k);
            }
            // All PEs agree on the round count.
            assert!(results.windows(2).all(|w| w[0].rounds == w[1].rounds));
        }
    }

    #[test]
    fn exact_selection_across_pe_counts() {
        for p in [1, 2, 4, 7] {
            harness(p, 500, 1);
        }
    }

    #[test]
    fn exact_selection_multi_pivot() {
        harness(4, 1000, 8);
    }

    #[test]
    fn skewed_distribution_across_pes() {
        // All small keys on PE 0, all large on PE 1: adversarial placement.
        let n = 400u64;
        let results = run_threads(2, |comm| {
            let rank = comm.rank();
            let local: Vec<SampleKey> = (0..n)
                .filter(|i| (*i < n / 2) == (rank == 0))
                .map(|i| SampleKey::new(i as f64, i))
                .collect();
            let set = SortedKeys::new(local);
            let mut rng = default_rng(99 + rank as u64);
            select_threaded(
                &comm,
                &set,
                TargetRank::exact(n / 2 + 10),
                n,
                SelectParams::default(),
                &mut rng,
            )
        });
        for res in &results {
            assert_eq!(res.threshold.key, (n / 2 + 9) as f64);
        }
    }

    #[test]
    fn window_target_across_pes() {
        let n = 10_000u64;
        let results = run_threads(4, |comm| {
            let rank = comm.rank();
            let local: Vec<SampleKey> = (0..n)
                .filter(|i| *i as usize % 4 == rank)
                .map(|i| SampleKey::new(i as f64, i))
                .collect();
            let set = SortedKeys::new(local);
            let mut rng = default_rng(7 + rank as u64);
            select_threaded(
                &comm,
                &set,
                TargetRank::range(4_500, 5_500),
                n,
                SelectParams::with_pivots(2),
                &mut rng,
            )
        });
        for res in &results {
            assert!((4_500..=5_500).contains(&res.rank));
            assert_eq!(res.threshold.key, (res.rank - 1) as f64);
        }
    }

    #[test]
    fn empty_pes_are_tolerated() {
        // Only PE 0 holds keys.
        let n = 100u64;
        let results = run_threads(3, |comm| {
            let rank = comm.rank();
            let local: Vec<SampleKey> = if rank == 0 {
                (0..n).map(|i| SampleKey::new(i as f64, i)).collect()
            } else {
                Vec::new()
            };
            let set = SortedKeys::new(local);
            let mut rng = default_rng(5 + rank as u64);
            select_threaded(
                &comm,
                &set,
                TargetRank::exact(42),
                n,
                SelectParams::default(),
                &mut rng,
            )
        });
        for res in &results {
            assert_eq!(res.threshold.key, 41.0);
        }
    }
}
