//! Communication-efficient distributed selection (paper Section 3.3).
//!
//! Given `p` PEs each holding a *sorted* set of keys (their local reservoir
//! B+ trees), find the key of global rank `k` — the insertion threshold for
//! the next mini-batch — using only O(1) small collectives per round and an
//! expected O(log) number of rounds.
//!
//! The algorithm implemented here is the "universally applicable" selection
//! of Section 3.3.3 with the multi-pivot refinement of Section 3.3.2:
//!
//! 1. every PE draws `d` pivot candidates from its local set — each
//!    candidate is the first success of a Bernoulli(1/k̃) scan of the local
//!    keys in the active range, so the *global* minimum of the candidates is
//!    the first success over the global candidate multiset and has expected
//!    global rank k̃ (when k̃ is large relative to the range, the scan is
//!    mirrored from the top with success probability 1/(N−k̃+1));
//! 2. one all-reduce combines the candidates (elementwise min — or max in
//!    mirrored mode);
//! 3. every PE counts its local keys at or below each pivot; one all-reduce
//!    sums the counts;
//! 4. if some pivot's global count lands in the target rank window, it is
//!    the threshold; otherwise the active range shrinks to the bracketing
//!    pivot interval and the round repeats. Every round discards at least
//!    one key of the active range, so termination is guaranteed; expected
//!    round counts are small and are reported in [`SelectResult::rounds`].
//!
//! Exact selection is the special case of a width-zero target window; the
//! approximate `amsSelect` of Section 3.3.2 (used by the variable-size
//! reservoir of Section 4.4) passes a genuine window `k..k̄`.
//!
//! Two drivers share the same [`state::SelectionState`] machine:
//! [`threaded::select_threaded`] runs the real message-passing protocol on a
//! [`reservoir_comm::Communicator`]; [`conductor::select_conductor`] runs
//! all PEs' steps inside one thread (used by the cluster simulator, which
//! charges communication through a cost model instead of performing it).

mod candidates;
mod conductor;
mod quickselect;
mod sorted_sample;
mod state;
mod threaded;

pub use candidates::{CandidateSet, SortedKeys};
pub use conductor::{select_conductor, ConductorReport};
pub use quickselect::kth_smallest;
pub use sorted_sample::{sorted_sample_select, SortedSampleReport};
pub use state::{SelectParams, SelectResult, TargetRank};
pub use threaded::{select_threaded, select_threaded_many, MultiSelectResult};
