//! Property tests: every selection strategy must agree with the sort-based
//! oracle for arbitrary key sets, partitions and ranks.

use proptest::prelude::*;
use reservoir_btree::SampleKey;
use reservoir_rng::{default_rng, DefaultRng};
use reservoir_select::{
    kth_smallest, select_conductor, sorted_sample_select, SelectParams, SortedKeys, TargetRank,
};

/// Arbitrary finite keys with unique ids; ties in the float part are
/// allowed and must be broken by id.
fn keys_strategy() -> impl Strategy<Value = Vec<SampleKey>> {
    prop::collection::vec((0u32..500, any::<u32>()), 1..300).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (coarse, _))| SampleKey::new(coarse as f64 / 7.0, i as u64))
            .collect()
    })
}

fn partition(keys: &[SampleKey], p: usize) -> Vec<SortedKeys> {
    (0..p)
        .map(|pe| {
            SortedKeys::new(
                keys.iter()
                    .enumerate()
                    .filter(|(i, _)| i % p == pe)
                    .map(|(_, k)| *k)
                    .collect(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pivot_selection_matches_oracle(
        keys in keys_strategy(),
        p in 1usize..6,
        d in 1usize..9,
        k_frac in 0.0f64..1.0,
        seed in 0u64..10_000,
    ) {
        let mut oracle = keys.clone();
        oracle.sort_unstable();
        oracle.dedup();
        let n = oracle.len() as u64;
        let k = ((k_frac * n as f64) as u64).clamp(1, n);
        let sets = partition(&oracle, p);
        let refs: Vec<&SortedKeys> = sets.iter().collect();
        let mut rngs: Vec<DefaultRng> = (0..p).map(|i| default_rng(seed + i as u64)).collect();
        let report = select_conductor(
            &refs,
            TargetRank::exact(k),
            SelectParams::with_pivots(d),
            &mut rngs,
        );
        prop_assert_eq!(report.result.threshold, oracle[(k - 1) as usize]);
        prop_assert_eq!(report.result.rank, k);
    }

    #[test]
    fn window_selection_lands_inside(
        keys in keys_strategy(),
        p in 1usize..5,
        seed in 0u64..10_000,
    ) {
        let mut oracle = keys.clone();
        oracle.sort_unstable();
        oracle.dedup();
        let n = oracle.len() as u64;
        prop_assume!(n >= 10);
        let lo = n / 4 + 1;
        let hi = (3 * n) / 4;
        prop_assume!(lo <= hi);
        let sets = partition(&oracle, p);
        let refs: Vec<&SortedKeys> = sets.iter().collect();
        let mut rngs: Vec<DefaultRng> = (0..p).map(|i| default_rng(seed + i as u64)).collect();
        let report = select_conductor(
            &refs,
            TargetRank::range(lo, hi),
            SelectParams::with_pivots(2),
            &mut rngs,
        );
        prop_assert!((lo..=hi).contains(&report.result.rank));
        prop_assert_eq!(
            report.result.threshold,
            oracle[(report.result.rank - 1) as usize]
        );
    }

    #[test]
    fn sorted_sample_matches_oracle(
        keys in keys_strategy(),
        p in 1usize..5,
        k_frac in 0.0f64..1.0,
        seed in 0u64..10_000,
    ) {
        let mut oracle = keys.clone();
        oracle.sort_unstable();
        oracle.dedup();
        let n = oracle.len() as u64;
        let k = ((k_frac * n as f64) as u64).clamp(1, n);
        let sets = partition(&oracle, p);
        let refs: Vec<&SortedKeys> = sets.iter().collect();
        let mut rngs: Vec<DefaultRng> = (0..p).map(|i| default_rng(seed + i as u64)).collect();
        let report = sorted_sample_select(&refs, k, &mut rngs);
        prop_assert_eq!(report.result.threshold, oracle[(k - 1) as usize]);
    }

    #[test]
    fn quickselect_matches_oracle(
        keys in keys_strategy(),
        k_frac in 0.0f64..1.0,
        seed in 0u64..10_000,
    ) {
        let mut oracle = keys.clone();
        oracle.sort_unstable();
        let k = ((k_frac * keys.len() as f64) as usize).min(keys.len() - 1);
        let mut work = keys.clone();
        let mut rng = default_rng(seed);
        let got = kth_smallest(&mut work, k, &mut rng);
        prop_assert_eq!(got, oracle[k]);
    }
}
