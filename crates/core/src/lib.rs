//! Communication-efficient (weighted) reservoir sampling — the algorithms
//! of Hübschle-Schneider & Sanders (SPAA 2020).
//!
//! The library maintains a uniform or weighted random sample **without
//! replacement** of size `k` over the union of data streams that arrive as
//! mini-batches at `p` processing elements, with no coordinator node.
//!
//! # Layers
//!
//! * [`seq`] — the sequential building blocks: weighted reservoir sampling
//!   with *exponential jumps* (Section 4.1) and uniform reservoir sampling
//!   with *geometric jumps* (Section 4.3), plus the naive
//!   key-per-item samplers they are distributionally equivalent to.
//! * [`dist`] — the distributed algorithm (Algorithm 1): per-PE local
//!   reservoirs in augmented B+ trees, a global insertion threshold
//!   maintained by communication-efficient distributed selection, the
//!   variable-size variant (Section 4.4), and the centralized gathering
//!   baseline (Section 4.5). The protocol body lives once, in
//!   [`dist::engine`], and three backends drive it: [`dist::threaded`] on
//!   real threads with real collectives, [`dist::gather`] — the same
//!   collectives under the root-funnel policy — and [`dist::sim`], a
//!   statistical cluster simulator that reproduces the paper's scaling
//!   experiments for thousands of PEs on one machine by charging the
//!   engine's steps to an α–β cost model.
//!
//! # Quick start
//!
//! ```
//! use reservoir_core::seq::WeightedJumpSampler;
//! use reservoir_rng::default_rng;
//!
//! let mut sampler = WeightedJumpSampler::new(10, default_rng(42));
//! for i in 0..10_000u64 {
//!     let weight = 1.0 + (i % 7) as f64;
//!     sampler.process(i, weight);
//! }
//! let sample = sampler.sample();
//! assert_eq!(sample.len(), 10);
//! ```

pub mod dist;
pub mod metrics;
pub mod sample;
pub mod seq;

pub use dist::{DistConfig, PipelineReport, SampleHandle, SamplingMode};
pub use metrics::{PhaseFractions, PhaseTimes};
pub use sample::SampleItem;
