//! The engine layer's registry names: per-batch protocol counters, the
//! parallel-scan tallies (views of [`ScanStats`]), and the accumulated
//! per-phase seconds (views of [`PhaseTimes`]). One `record_step` hook
//! keeps the engine's hot path to a single early-out branch when
//! observability is disarmed.

use reservoir_obs::{trace, LazyCounter, LazyGauge, TraceKind};

use crate::dist::local::ScanStats;
use crate::metrics::PhaseTimes;

pub(crate) static ENGINE_BATCHES: LazyCounter = LazyCounter::new(
    "engine_batches_total",
    "collective mini-batch steps driven through the protocol engine",
);
pub(crate) static ENGINE_ITEMS: LazyCounter = LazyCounter::new(
    "engine_items_total",
    "stream items offered to the protocol engine (all endpoints in-process)",
);
pub(crate) static ENGINE_SELECT_ROUNDS: LazyCounter = LazyCounter::new(
    "engine_select_rounds_total",
    "pivot rounds spent by batch-step threshold selections",
);
pub(crate) static ENGINE_EPOCHS: LazyCounter = LazyCounter::new(
    "engine_epochs_published_total",
    "sample epochs published to snapshot readers",
);

pub(crate) static SCAN_CHUNKS: LazyCounter = LazyCounter::new(
    "scan_chunks_total",
    "chunks the parallel scans split batches into (0 on sequential scans)",
);
pub(crate) static SCAN_STEALS: LazyCounter = LazyCounter::new(
    "scan_steals_total",
    "scan chunk tasks stolen across pool workers",
);
pub(crate) static SCAN_SPAWNS: LazyCounter = LazyCounter::new(
    "scan_spawns_total",
    "OS threads spawned for batch scans (0 with a persistent crew)",
);
pub(crate) static SCAN_RETRIES: LazyCounter = LazyCounter::new(
    "scan_retries_total",
    "seqlock conflicts retried by concurrent-merge scans",
);
pub(crate) static SCAN_INSERTED: LazyCounter = LazyCounter::new(
    "scan_inserted_total",
    "items that entered a local reservoir during scans",
);

static PHASE_INGEST: LazyGauge = LazyGauge::new(
    "phase_ingest_seconds",
    "accumulated seconds in the ingest phase (all endpoints in-process)",
);
static PHASE_INSERT: LazyGauge = LazyGauge::new(
    "phase_insert_seconds",
    "accumulated seconds in the insert_scan phase",
);
static PHASE_SELECT: LazyGauge = LazyGauge::new(
    "phase_select_seconds",
    "accumulated seconds in batch-step selection",
);
static PHASE_THRESHOLD: LazyGauge = LazyGauge::new(
    "phase_threshold_seconds",
    "accumulated seconds agreeing on and pruning to thresholds",
);
static PHASE_GATHER: LazyGauge = LazyGauge::new(
    "phase_gather_seconds",
    "accumulated seconds in gather-policy candidate funnels",
);
static PHASE_OUTPUT: LazyGauge = LazyGauge::new(
    "phase_output_seconds",
    "accumulated seconds in Section 5 output collection",
);
static PHASE_PAR_SCAN: LazyGauge = LazyGauge::new(
    "phase_par_scan_seconds",
    "accumulated seconds inside parallel scan scopes (overlaps insert)",
);

/// Fold one batch step's accounting into the registry and emit the
/// flight-recorder `BatchStart`/`SelectRound`/`BatchEnd` triple. Called
/// once per [`ReservoirProtocol::step`](crate::dist::engine::ReservoirProtocol::step)
/// after the collectives ran, so it can never perturb the protocol
/// schedule; one early-out branch when disarmed.
#[allow(clippy::too_many_arguments)]
pub(crate) fn record_step(
    rank: usize,
    seq: u64,
    offered: u64,
    union: u64,
    rounds: u32,
    stats: &ScanStats,
    times: &PhaseTimes,
) {
    if !reservoir_obs::enabled() {
        return;
    }
    let pe = rank as u32;
    trace::emit(pe, TraceKind::BatchStart, seq, offered);
    ENGINE_BATCHES.inc();
    ENGINE_ITEMS.add(offered);
    if rounds > 0 {
        ENGINE_SELECT_ROUNDS.add(rounds as u64);
        trace::emit(pe, TraceKind::SelectRound, rounds as u64, union);
    }
    SCAN_CHUNKS.add(stats.chunks);
    SCAN_STEALS.add(stats.steals);
    SCAN_SPAWNS.add(stats.spawns);
    SCAN_RETRIES.add(stats.retries);
    SCAN_INSERTED.add(stats.inserted);
    record_phases(times);
    trace::emit(pe, TraceKind::BatchEnd, seq, union);
}

/// Fold one [`PhaseTimes`] delta into the per-phase gauges (also used by
/// the output-collection path, whose seconds accrue outside `step`).
pub(crate) fn record_phases(times: &PhaseTimes) {
    if !reservoir_obs::enabled() {
        return;
    }
    PHASE_INGEST.add(times.ingest);
    PHASE_INSERT.add(times.insert);
    PHASE_SELECT.add(times.select);
    PHASE_THRESHOLD.add(times.threshold);
    PHASE_GATHER.add(times.gather);
    PHASE_OUTPUT.add(times.output);
    PHASE_PAR_SCAN.add(times.par_scan);
}

/// Count one epoch publication and emit its `EpochPublish` event.
pub(crate) fn record_epoch(rank: usize, epoch: u64, total: u64) {
    if !reservoir_obs::enabled() {
        return;
    }
    ENGINE_EPOCHS.inc();
    trace::emit(rank as u32, TraceKind::EpochPublish, epoch, total);
}
