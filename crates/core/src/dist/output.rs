//! Fully distributed output collection (paper Section 5).
//!
//! Algorithm 1 leaves the sample *distributed*: every PE holds the subset
//! of sample members whose keys its own stream produced. Funnelling those
//! members through a root (`gather_sample`) re-introduces exactly the
//! Θ(β·k) bottleneck the algorithm's per-batch protocol avoids, so the
//! paper's Section 5 keeps the output where it is and instead makes the
//! *locations* globally known:
//!
//! 1. **finalize** — if the union of local reservoirs currently exceeds the
//!    sample size `k` (variable-size mode between selections, or a stream
//!    cut mid-window), one distributed selection for exact rank `k` fixes
//!    the final threshold; each PE's contribution is its keys at or below
//!    it. No items move.
//! 2. **place** — one 1-word all-reduce agrees on the global sample size
//!    and one 1-word exclusive prefix sum (`exscan`) gives every PE the
//!    offset of its slice: PE `i` owns global output positions
//!    `[offset_i, offset_i + n_i)`, where slices are ordered by PE rank and
//!    by key within a PE.
//!
//! Total communication: O(d · selection rounds + 1) words per PE at
//! O(α log p) latency — independent of both `k` and the stream length,
//! versus Θ(β·k + α log p) for the centralized gather. The result is a
//! [`SampleHandle`]: a root-free view through which the caller can
//! enumerate its slice with global indices, route members to output shards,
//! or spill them to local storage. Collecting the whole sample on one PE
//! (or on all PEs) remains available as an explicit, costed choice.

use std::io::{self, Write};
use std::ops::Range;

use reservoir_comm::{Collectives, Communicator};

use crate::sample::SampleItem;

/// Wire representation of one sample member: `(id, weight, key)`.
type WireItem = (u64, f64, f64);

/// One PE's root-free view of the finalized distributed sample.
///
/// Produced collectively by
/// [`DistributedSampler::collect_output`](crate::dist::threaded::DistributedSampler::collect_output)
/// (and, for baseline comparisons,
/// [`GatherSampler::collect_output`](crate::dist::gather::GatherSampler::collect_output)).
/// The handle owns this PE's slice of the sample plus the global placement
/// metadata; all its inspection methods are local. [`Self::all_items`] and
/// [`Self::gather_to`] are collective conveniences that *do* move the
/// sample and are priced accordingly.
#[derive(Clone, Debug)]
pub struct SampleHandle {
    /// This PE's sample members, sorted by key.
    items: Vec<SampleItem>,
    /// Global output position of `items[0]` (exclusive prefix count).
    offset: u64,
    /// Global sample size (sum of all PEs' slice lengths).
    total: u64,
    /// This PE's rank and the communicator size, for shard bookkeeping.
    pe: usize,
    pes: usize,
    /// The final insertion threshold, if one was established.
    threshold: Option<f64>,
}

impl SampleHandle {
    /// Assemble the handle collectively: agree on the global size and this
    /// PE's offset for its (key-sorted) `items`. Two 1-word collectives —
    /// the reference implementation of the engine's place step (which the
    /// production path runs through [`Self::from_parts`]).
    #[cfg(test)]
    pub(crate) fn assemble<C: Communicator>(
        comm: &C,
        items: Vec<SampleItem>,
        threshold: Option<f64>,
    ) -> SampleHandle {
        let local = items.len() as u64;
        let placement = crate::dist::engine::Placement {
            offset: comm.exscan_sum_u64(local),
            total: comm.sum_u64(local),
        };
        Self::from_parts(items, placement, comm.rank(), comm.size(), threshold)
    }

    /// Build the handle from an already-agreed [`Placement`] — the
    /// engine's place step ran the collectives (or charged them, on the
    /// simulated backend).
    pub(crate) fn from_parts(
        items: Vec<SampleItem>,
        placement: crate::dist::engine::Placement,
        pe: usize,
        pes: usize,
        threshold: Option<f64>,
    ) -> SampleHandle {
        debug_assert!(placement.offset + items.len() as u64 <= placement.total);
        SampleHandle {
            items,
            offset: placement.offset,
            total: placement.total,
            pe,
            pes,
            threshold,
        }
    }

    /// This PE's sample members, sorted by key.
    pub fn local_items(&self) -> &[SampleItem] {
        &self.items
    }

    /// Number of sample members on this PE.
    pub fn local_len(&self) -> u64 {
        self.items.len() as u64
    }

    /// Global sample size.
    pub fn total_len(&self) -> u64 {
        self.total
    }

    /// Whether the global sample is empty.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Global output position of this PE's first member.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// The half-open range of global output positions this PE owns.
    /// Ranges of different PEs partition `0..total_len()` in rank order.
    pub fn global_range(&self) -> Range<u64> {
        self.offset..self.offset + self.local_len()
    }

    /// This PE's rank.
    pub fn pe(&self) -> usize {
        self.pe
    }

    /// Number of PEs the sample is distributed over.
    pub fn pes(&self) -> usize {
        self.pes
    }

    /// The final insertion threshold (`None` while the stream was still
    /// shorter than `k`). Every member's key is at or below it.
    pub fn threshold(&self) -> Option<f64> {
        self.threshold
    }

    /// Enumerate this PE's members with their global output positions.
    pub fn enumerate(&self) -> impl Iterator<Item = (u64, &SampleItem)> {
        self.items
            .iter()
            .enumerate()
            .map(move |(i, s)| (self.offset + i as u64, s))
    }

    /// Route this PE's members to `shards` output shards: yields
    /// `(shard, item)` with shards balanced by contiguous global position
    /// (shard `s` owns positions `[s·⌈total/shards⌉, …)`). No PE needs to
    /// see any other PE's members to compute a globally consistent routing.
    pub fn shards(&self, shards: u64) -> impl Iterator<Item = (u64, &SampleItem)> {
        assert!(shards >= 1, "at least one output shard");
        let per_shard = self.total.div_ceil(shards).max(1);
        self.enumerate()
            .map(move |(pos, s)| ((pos / per_shard).min(shards - 1), s))
    }

    /// Spill this PE's slice as tab-separated `position  id  weight  key`
    /// lines — the "write your part to local storage" exit of Section 5.
    /// Returns the number of members written.
    pub fn spill<W: Write>(&self, out: &mut W) -> io::Result<u64> {
        for (pos, s) in self.enumerate() {
            writeln!(out, "{pos}\t{}\t{}\t{}", s.id, s.weight, s.key)?;
        }
        Ok(self.local_len())
    }

    /// Collective: every PE receives the full sample in global output
    /// order. Moves Θ(β·k) words per PE (segmented all-gather) — the
    /// explicit, costed alternative to staying distributed.
    pub fn all_items<C: Communicator>(&self, comm: &C) -> Vec<SampleItem> {
        let wire: Vec<WireItem> = self.items.iter().map(|s| (s.id, s.weight, s.key)).collect();
        let (flat, counts) = comm.allgatherv(wire);
        debug_assert_eq!(counts.iter().sum::<u64>(), self.total);
        flat.into_iter()
            .map(|(id, weight, key)| SampleItem { id, weight, key })
            .collect()
    }

    /// Collective: gather the full sample at `root` (in global output
    /// order): `Some(sample)` there, `None` elsewhere. The Section 4.5-style
    /// root funnel, kept for comparison and for genuinely centralized sinks.
    pub fn gather_to<C: Communicator>(&self, comm: &C, root: usize) -> Option<Vec<SampleItem>> {
        let wire: Vec<WireItem> = self.items.iter().map(|s| (s.id, s.weight, s.key)).collect();
        comm.gather(root, wire).map(|parts| {
            parts
                .into_iter()
                .flatten()
                .map(|(id, weight, key)| SampleItem { id, weight, key })
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reservoir_comm::run_threads;

    fn item(id: u64, key: f64) -> SampleItem {
        SampleItem {
            id,
            weight: 1.0,
            key,
        }
    }

    /// PE r holds r+1 items; offsets must form the exclusive prefix sums.
    fn handles(p: usize) -> Vec<SampleHandle> {
        run_threads(p, |comm| {
            let r = comm.rank() as u64;
            let items: Vec<SampleItem> = (0..=r).map(|i| item((r << 8) | i, i as f64)).collect();
            SampleHandle::assemble(&comm, items, Some(9.0))
        })
    }

    #[test]
    fn offsets_partition_the_global_range() {
        for p in [1usize, 2, 3, 5] {
            let hs = handles(p);
            let total = (p * (p + 1) / 2) as u64;
            let mut next = 0u64;
            for (r, h) in hs.iter().enumerate() {
                assert_eq!(h.total_len(), total);
                assert_eq!(h.offset(), next, "p={p} rank={r}");
                assert_eq!(h.global_range(), next..next + r as u64 + 1);
                assert_eq!(h.pe(), r);
                assert_eq!(h.pes(), p);
                next += h.local_len();
            }
            assert_eq!(next, total);
        }
    }

    #[test]
    fn enumerate_assigns_global_positions() {
        let hs = handles(3);
        let mut seen = Vec::new();
        for h in &hs {
            for (pos, s) in h.enumerate() {
                seen.push((pos, s.id));
            }
        }
        seen.sort_unstable();
        let positions: Vec<u64> = seen.iter().map(|(p, _)| *p).collect();
        assert_eq!(positions, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn shards_are_contiguous_and_complete() {
        let hs = handles(4); // total = 10 members
        for shards in [1u64, 2, 3, 10, 64] {
            let mut per_shard = vec![0u64; shards as usize];
            let mut assignment = Vec::new();
            for h in &hs {
                for (shard, s) in h.shards(shards) {
                    assert!(shard < shards);
                    per_shard[shard as usize] += 1;
                    assignment.push((shard, s.id));
                }
            }
            assert_eq!(per_shard.iter().sum::<u64>(), 10);
            // Contiguity: shard indices are monotone in global position.
            let mut by_pos: Vec<(u64, u64)> = hs
                .iter()
                .flat_map(|h| h.enumerate().zip(h.shards(shards)))
                .map(|((pos, _), (shard, _))| (pos, shard))
                .collect();
            by_pos.sort_unstable();
            assert!(by_pos.windows(2).all(|w| w[0].1 <= w[1].1));
        }
    }

    #[test]
    fn spill_writes_one_line_per_member() {
        let hs = handles(2);
        let mut buf = Vec::new();
        let written = hs[1].spill(&mut buf).expect("in-memory write");
        assert_eq!(written, 2);
        let text = String::from_utf8(buf).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("1\t")); // global position 1
        assert_eq!(lines[0].split('\t').count(), 4);
    }

    #[test]
    fn all_items_and_gather_to_agree_with_enumeration() {
        let p = 3;
        let results = run_threads(p, |comm| {
            let r = comm.rank() as u64;
            let items: Vec<SampleItem> = (0..=r).map(|i| item((r << 8) | i, i as f64)).collect();
            let h = SampleHandle::assemble(&comm, items, None);
            (h.clone(), h.all_items(&comm), h.gather_to(&comm, 0))
        });
        let (h0, all0, rooted) = &results[0];
        assert_eq!(all0.len() as u64, h0.total_len());
        // Every PE got the identical global order.
        for (_, all, _) in &results[1..] {
            assert_eq!(all, all0);
        }
        // The gathered copy at the root matches the all-gathered one.
        assert_eq!(rooted.as_ref().expect("root"), all0);
        assert!(results[1..].iter().all(|(_, _, g)| g.is_none()));
        // Positions line up with the concatenation order.
        for h in results.iter().map(|(h, _, _)| h) {
            for (pos, s) in h.enumerate() {
                assert_eq!(all0[pos as usize].id, s.id);
            }
        }
    }
}
