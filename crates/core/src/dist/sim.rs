//! The cluster simulator: Algorithm 1's observable behaviour for thousands
//! of PEs inside one process — as a **backend of the shared engine**.
//!
//! [`SimBackend`] implements [`SamplerBackend`] as a whole-cluster
//! conductor: the engine's step sequence (the *same* code the threaded
//! backends execute) drives it, and each step **charges** time instead of
//! measuring it — local work through a [`LocalCostModel`] (calibrated on
//! the benchmark machine or analytic), communication through the α–β
//! [`CostModel`] of `reservoir-comm` (the substitution documented in
//! `DESIGN.md`). Because the costs are charged by the steps the real
//! protocol actually executes, a protocol change made in the engine is
//! automatically reflected in the simulated costs — there is no hand-ported
//! statistical re-implementation to keep in sync, and window-mode
//! finalization rounds fall out of the shared finalize step.
//!
//! Why the statistical insertion is sound: with threshold `T`, a PE's
//! batch contributes each item independently with probability
//! `q(T) = P(key < T)`, so the number of reservoir insertions is
//! Binomial(b, q(T)) (Poissonized here) and the inserted keys are i.i.d.
//! draws from the conditional key distribution given `key < T`. The
//! backend draws exactly that — per PE — and then the engine runs the
//! *identical* selection state machine as the real backend through
//! [`reservoir_select::select_conductor`], so pivot choices, round counts
//! and the final threshold have the protocol's true distribution.
//!
//! The simulated workload is the paper's: weights uniform on `(0, 100]`
//! (Section 6.1) for [`SamplingMode::Weighted`], unit weights for
//! [`SamplingMode::Uniform`].

use reservoir_btree::SampleKey;
use reservoir_comm::CostModel;
use reservoir_rng::{DefaultRng, Rng64, SeedSequence, StreamKind};
use reservoir_select::{select_conductor, CandidateSet, SelectParams, SelectResult, TargetRank};

use crate::dist::engine::{Charge, InsertOutcome, Placement, ReservoirProtocol, SamplerBackend};
use crate::dist::local::ScanStats;
use crate::dist::{DistConfig, SamplingMode};
use crate::metrics::PhaseTimes;
use crate::sample::SampleItem;

/// Maximum weight of the paper's uniform-weight workload.
const MAX_WEIGHT: f64 = 100.0;

/// Up to this many simulated items per batch, the growing phase draws
/// every key individually (exactly matching the threaded backend); above
/// it, a bootstrap threshold with the same selection law is used instead.
const FAITHFUL_GROWING_LIMIT: u64 = 4_000_000;

/// Amdahl's-law speedup of the local scan at `threads` workers given the
/// fraction `serial_frac` of the scan that stays sequential (the merge
/// epilogue's bookkeeping, chunk dispatch, memory-bandwidth ceiling).
pub fn amdahl_speedup(serial_frac: f64, threads: u64) -> f64 {
    let s = serial_frac.clamp(0.0, 1.0);
    let t = threads.max(1) as f64;
    1.0 / (s + (1.0 - s) / t)
}

/// Per-operation local-work costs (seconds) charged by the simulator.
///
/// Implemented by `reservoir-bench`'s measured calibration and by
/// [`AnalyticLocalCosts`].
pub trait LocalCostModel {
    /// One weighted jump scan over `items` batch items.
    fn scan_weighted(&self, items: u64) -> f64;

    /// One uniform jump scan that performed `inserted` insertions (the
    /// scan itself is O(inserted): geometric jumps skip for free).
    fn scan_uniform(&self, inserted: u64) -> f64;

    /// `count` B+ tree insertions into a tree of `tree_size` entries.
    fn tree_inserts(&self, count: u64, tree_size: u64) -> f64;

    /// Generating `count` candidate keys.
    fn keygen(&self, count: u64) -> f64;

    /// A sequential quickselect over `n` keys (gather baseline's root).
    fn quickselect(&self, n: u64) -> f64;

    /// One selection round's local work: pivot sampling plus rank queries
    /// on a tree of `tree_size` entries with `pivots` pivots.
    fn select_round_local(&self, tree_size: u64, pivots: u64) -> f64;

    /// Modeled speedup of the scan + key-generation phase when a PE runs
    /// its local scan on `threads` workers (`reservoir_par`); 1.0 at one
    /// thread. The default charges Amdahl's law with a 5% serial
    /// fraction; implementations with a calibrated fraction override it.
    fn scan_speedup(&self, threads: u64) -> f64 {
        amdahl_speedup(0.05, threads)
    }
}

/// Analytic per-operation costs for a generic ~3 GHz core; useful when no
/// calibration run is available (tests, quick sanity checks).
#[derive(Clone, Copy, Debug)]
pub struct AnalyticLocalCosts {
    /// Seconds per scanned item (weighted scan).
    pub scan_item_s: f64,
    /// Seconds per tree insertion per log₂(tree size).
    pub insert_s: f64,
    /// Seconds per generated key.
    pub keygen_s: f64,
    /// Seconds per element of a sequential quickselect.
    pub quickselect_s: f64,
    /// Seconds per rank query per log₂(tree size).
    pub rank_s: f64,
    /// Serial fraction of the parallel local scan (Amdahl's law input for
    /// [`LocalCostModel::scan_speedup`]).
    pub par_serial_frac: f64,
}

impl Default for AnalyticLocalCosts {
    fn default() -> Self {
        AnalyticLocalCosts {
            scan_item_s: 1.5e-9,
            insert_s: 1.5e-8,
            keygen_s: 1.5e-8,
            quickselect_s: 4.0e-9,
            rank_s: 3.0e-8,
            par_serial_frac: 0.05,
        }
    }
}

impl LocalCostModel for AnalyticLocalCosts {
    fn scan_weighted(&self, items: u64) -> f64 {
        items as f64 * self.scan_item_s
    }

    fn scan_uniform(&self, inserted: u64) -> f64 {
        2.0e-8 + inserted as f64 * self.keygen_s
    }

    fn tree_inserts(&self, count: u64, tree_size: u64) -> f64 {
        count as f64 * self.insert_s * ((tree_size + 2) as f64).log2()
    }

    fn keygen(&self, count: u64) -> f64 {
        count as f64 * self.keygen_s
    }

    fn quickselect(&self, n: u64) -> f64 {
        n as f64 * self.quickselect_s
    }

    fn select_round_local(&self, tree_size: u64, pivots: u64) -> f64 {
        pivots.max(1) as f64 * self.rank_s * ((tree_size + 2) as f64).log2()
    }

    fn scan_speedup(&self, threads: u64) -> f64 {
        amdahl_speedup(self.par_serial_frac, threads)
    }
}

/// Which algorithm the simulated cluster runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimAlgo {
    /// Algorithm 1 with `pivots` pivot candidates per selection round.
    Ours {
        /// The paper's `d`.
        pivots: usize,
    },
    /// The centralized gathering baseline (Section 4.5).
    Gather,
}

/// A simulated cluster configuration.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Number of simulated PEs.
    pub p: usize,
    /// Sample size.
    pub k: usize,
    /// Items per PE per mini-batch.
    pub b_per_pe: u64,
    /// Weighted or uniform sampling.
    pub mode: SamplingMode,
    /// Algorithm under simulation.
    pub algo: SimAlgo,
    /// Master seed.
    pub seed: u64,
    /// Worker threads each simulated PE's local scan runs on: the scan +
    /// key-generation charge is divided by
    /// [`LocalCostModel::scan_speedup`], modeling multicore PEs running
    /// `reservoir_par`'s chunked scan. The statistical behaviour is
    /// unchanged (the real parallel scan preserves the law exactly).
    pub threads_per_pe: usize,
    /// Variable-size window `(k, k̄)` of Section 4.4: the sample may grow
    /// to `k̄` before an *approximate* selection shrinks it back into the
    /// window, and output collection pays a finalization selection to
    /// exact rank `k`. `None` keeps the size exactly `k`. Only
    /// [`SimAlgo::Ours`] supports it (as on the real backends).
    pub size_window: Option<(u64, u64)>,
    /// Whether the simulated cluster publishes an always-fresh sample
    /// epoch per batch. Each publication drives the engine's real
    /// finalize/place sequence, so its count/select/place collectives are
    /// charged to the α–β model under the `output` phase — the modeled
    /// price of continuous reads. Defaults to `RESERVOIR_CONTINUOUS`.
    pub continuous: super::ContinuousMode,
}

impl SimConfig {
    /// An exact-size configuration (the historical constructor shape).
    pub fn new(
        p: usize,
        k: usize,
        b_per_pe: u64,
        mode: SamplingMode,
        algo: SimAlgo,
        seed: u64,
    ) -> Self {
        SimConfig {
            p,
            k,
            b_per_pe,
            mode,
            algo,
            seed,
            threads_per_pe: 1,
            size_window: None,
            continuous: super::default_continuous(),
        }
    }

    /// Model `t` scan workers per PE.
    pub fn with_threads(mut self, t: usize) -> Self {
        assert!(t >= 1, "at least one scan thread per PE");
        self.threads_per_pe = t;
        self
    }

    /// Tolerate any sample size in `lo..=hi` (Section 4.4).
    pub fn with_size_window(mut self, lo: u64, hi: u64) -> Self {
        assert!(1 <= lo && lo <= hi, "invalid size window {lo}..{hi}");
        self.size_window = Some((lo, hi));
        self
    }

    /// Publish always-fresh sample epochs per the given
    /// [`ContinuousMode`](super::ContinuousMode) (overrides the
    /// `RESERVOIR_CONTINUOUS` default).
    pub fn with_continuous(mut self, continuous: super::ContinuousMode) -> Self {
        self.continuous = continuous;
        self
    }

    /// The engine configuration this cluster's protocol endpoint runs
    /// with: the same `DistConfig` shape the real backends take.
    fn engine_config(&self) -> DistConfig {
        DistConfig {
            k: self.k,
            seed: self.seed,
            mode: self.mode,
            pivots: match self.algo {
                SimAlgo::Ours { pivots } => pivots,
                SimAlgo::Gather => 1,
            },
            size_window: self.size_window,
            threads_per_pe: self.threads_per_pe,
            persistent_pool: false,
            // The sim models the scan statistically; the merge schedule is
            // a real-backend concern and does not alter modeled costs.
            merge: super::MergeMode::Epilogue,
            continuous: self.continuous,
            leaf_affinity: true,
        }
    }

    /// The size the local reservoirs must retain during the growing phase.
    fn local_cap(&self) -> usize {
        match self.size_window {
            Some((_, hi)) => (hi as usize).max(self.k),
            None => self.k,
        }
    }
}

/// What one simulated mini-batch did.
#[derive(Clone, Copy, Debug)]
pub struct SimBatchReport {
    /// Selection rounds used (0 when no selection ran — or always for the
    /// gather baseline, whose root selects sequentially).
    pub rounds: u32,
    /// Modeled per-batch wall time, decomposed by phase. Parallel local
    /// work is charged as the maximum over PEs.
    pub times: PhaseTimes,
}

/// How the finalized sample leaves the cluster (paper Sections 4.5 vs 5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutputPath {
    /// Section 5: finalize in place — a distributed selection to rank `k`
    /// (only if the union currently exceeds `k`) plus one all-reduce and
    /// one exclusive prefix sum; no sample member moves.
    Distributed,
    /// Funnel every surviving member through a root gather (the output
    /// analogue of the Section 4.5 baseline).
    Gather,
}

/// Modeled cost of one output collection.
#[derive(Clone, Copy, Debug)]
pub struct SimOutputReport {
    /// Modeled wall time. Everything — including the finalization
    /// selection rounds on the distributed path — is charged to the
    /// `output` phase, matching the threaded backend's `collect_output`.
    pub times: PhaseTimes,
    /// Selection rounds the distributed finalization used (0 when the
    /// sample was already at `k`, and always 0 for the gather path).
    pub rounds: u32,
    /// Global sample size of the collected output.
    pub total: u64,
    /// Words through the busiest endpoint — the root's downlink for the
    /// gather path, one PE's collective payloads for the distributed path.
    /// This is the communication-volume bottleneck the paper compares.
    pub bottleneck_words: u64,
}

/// One simulated PE's reservoir: `(key, weight)` entries sorted by key.
#[derive(Debug, Default)]
struct SimPe {
    entries: Vec<(SampleKey, f64)>,
}

impl SimPe {
    fn keys(&self) -> impl Iterator<Item = &SampleKey> {
        self.entries.iter().map(|(k, _)| k)
    }

    fn merge_sorted(&mut self, mut new: Vec<(SampleKey, f64)>) {
        new.sort_unstable_by_key(|(k, _)| *k);
        let old = std::mem::take(&mut self.entries);
        self.entries = Vec::with_capacity(old.len() + new.len());
        let (mut a, mut b) = (old.into_iter().peekable(), new.into_iter().peekable());
        loop {
            let take_a = match (a.peek(), b.peek()) {
                (Some(x), Some(y)) => x.0 <= y.0,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let item = if take_a { a.next() } else { b.next() };
            self.entries.push(item.expect("peeked"));
        }
    }

    fn prune_above(&mut self, t: &SampleKey) {
        let cut = self.entries.partition_point(|(k, _)| k <= t);
        self.entries.truncate(cut);
    }

    /// Keep only the `cap` smallest entries.
    fn truncate_to(&mut self, cap: usize) {
        self.entries.truncate(cap);
    }
}

impl CandidateSet for SimPe {
    fn total(&self) -> u64 {
        self.entries.len() as u64
    }

    fn count_le(&self, k: &SampleKey) -> u64 {
        self.entries.partition_point(|(x, _)| x <= k) as u64
    }

    fn count_less(&self, k: &SampleKey) -> u64 {
        self.entries.partition_point(|(x, _)| x < k) as u64
    }

    fn select_above(&self, lo: Option<&SampleKey>, r: u64) -> Option<SampleKey> {
        let base = match lo {
            Some(l) => self.count_le(l),
            None => 0,
        };
        self.entries.get((base + r) as usize).map(|(k, _)| *k)
    }

    fn select_below(&self, hi: Option<&SampleKey>, r: u64) -> Option<SampleKey> {
        let below = match hi {
            Some(h) => self.count_less(h),
            None => self.entries.len() as u64,
        };
        below
            .checked_sub(1 + r)
            .and_then(|idx| self.entries.get(idx as usize).map(|(k, _)| *k))
    }
}

/// The engine's substrate for the cluster simulator: statistical per-PE
/// state plus cost accounting, conducted for all `p` PEs inside one
/// process. Every [`SamplerBackend`] step charges exactly what the real
/// protocol would pay for it.
pub struct SimBackend<L: LocalCostModel> {
    cfg: SimConfig,
    net: CostModel,
    costs: L,
    pes: Vec<SimPe>,
    work_rngs: Vec<DefaultRng>,
    select_rngs: Vec<DefaultRng>,
    items_seen: u64,
    next_local_id: Vec<u64>,
    /// Candidates the last insert step produced (the gather policy's
    /// shipping payload).
    last_inserted: u64,
    /// Words through the busiest endpoint, accumulated by Output-charged
    /// steps; reset per output collection.
    output_words: u64,
    /// Per-round payload words of the most recent distributed selection
    /// (empty until one runs, or when the last one was the gather
    /// funnel). [`SimShardedCluster`] reads these to price a joint
    /// cross-shard schedule against per-shard launches.
    last_select_payloads: Vec<u64>,
}

impl<L: LocalCostModel> SimBackend<L> {
    /// Build the conductor for `cfg`, charging communication to `net` and
    /// local work to `costs`.
    pub fn new(cfg: SimConfig, net: CostModel, costs: L) -> Self {
        assert!(cfg.p >= 1 && cfg.k >= 1 && cfg.b_per_pe >= 1 && cfg.threads_per_pe >= 1);
        assert!(
            cfg.size_window.is_none() || matches!(cfg.algo, SimAlgo::Ours { .. }),
            "the gather baseline has no variable-size mode"
        );
        let seq = SeedSequence::new(cfg.seed);
        SimBackend {
            pes: (0..cfg.p).map(|_| SimPe::default()).collect(),
            work_rngs: (0..cfg.p)
                .map(|pe| seq.rng_for(pe, StreamKind::Workload))
                .collect(),
            select_rngs: (0..cfg.p)
                .map(|pe| seq.rng_for(pe, StreamKind::Selection))
                .collect(),
            items_seen: 0,
            next_local_id: vec![0; cfg.p],
            last_inserted: 0,
            output_words: 0,
            last_select_payloads: Vec::new(),
            cfg,
            net,
            costs,
        }
    }

    /// Total items the simulated stream has produced.
    pub fn items_seen(&self) -> u64 {
        self.items_seen
    }

    /// Per-round payload words of the most recent distributed selection
    /// (empty until one runs). One entry per round, in order — the words
    /// the conductor's combined candidate + count exchange of that round
    /// carried.
    pub fn last_select_payloads(&self) -> &[u64] {
        &self.last_select_payloads
    }

    /// The configuration under simulation.
    pub fn sim_config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The current global sample (union of the per-PE reservoirs).
    pub fn sample(&self) -> Vec<SampleItem> {
        self.pes
            .iter()
            .flat_map(|pe| pe.entries.iter())
            .map(|(k, w)| SampleItem::from_entry(k, *w))
            .collect()
    }

    fn union(&self) -> u64 {
        self.pes.iter().map(|pe| pe.total()).sum()
    }

    fn charge(times: &mut PhaseTimes, charge: Charge, seconds: f64) {
        *charge.slot(times) += seconds;
    }

    // --- workload -------------------------------------------------------

    /// Inclusion probability `q(t) = P(key < t)` under the workload.
    fn q_of(&self, t: f64) -> f64 {
        match self.cfg.mode {
            // E_w[1 - e^{-t w}] for w ~ U(0, 100].
            SamplingMode::Weighted => {
                if t <= 0.0 {
                    0.0
                } else {
                    let x = MAX_WEIGHT * t;
                    1.0 + (-x).exp_m1() / x
                }
            }
            SamplingMode::Uniform => t.clamp(0.0, 1.0),
        }
    }

    /// Invert `q` by bisection: the threshold with inclusion probability
    /// `target`.
    fn q_inverse(&self, target: f64) -> f64 {
        match self.cfg.mode {
            SamplingMode::Uniform => target.clamp(0.0, 1.0),
            SamplingMode::Weighted => {
                let (mut lo, mut hi) = (0.0f64, 1.0f64);
                while self.q_of(hi) < target {
                    hi *= 2.0;
                    if hi > 1e12 {
                        return hi;
                    }
                }
                for _ in 0..80 {
                    let mid = 0.5 * (lo + hi);
                    if self.q_of(mid) < target {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                hi
            }
        }
    }

    /// Draw one `(key, weight)` with the key conditioned on `key < t`.
    fn conditional_key(mode: SamplingMode, t: f64, rng: &mut DefaultRng) -> (f64, f64) {
        match mode {
            SamplingMode::Uniform => (rng.rand_oc() * t.min(1.0), 1.0),
            SamplingMode::Weighted => {
                // Rejection on the weight marginal, tilted by the
                // per-weight inclusion probability 1 - e^{-t w} (maximal
                // at w = MAX_WEIGHT). Acceptance ≥ ~1/2.
                let bound = -(-t * MAX_WEIGHT).exp_m1();
                loop {
                    let w = rng.rand_oc() * MAX_WEIGHT;
                    let accept = -(-t * w).exp_m1();
                    if rng.rand_co() * bound < accept {
                        let floor = (-t * w).exp();
                        let v = -rng.rand_range_oc(floor, 1.0).ln() / w;
                        return (v, w);
                    }
                }
            }
        }
    }

    /// Draw one unconditioned `(key, weight)`.
    fn fresh_key(mode: SamplingMode, rng: &mut DefaultRng) -> (f64, f64) {
        match mode {
            SamplingMode::Uniform => (rng.rand_oc(), 1.0),
            SamplingMode::Weighted => {
                let w = rng.rand_oc() * MAX_WEIGHT;
                (rng.exponential(w), w)
            }
        }
    }

    fn make_id(&mut self, pe: usize) -> u64 {
        let id = ((pe as u64) << 44) | self.next_local_id[pe];
        self.next_local_id[pe] += 1;
        id
    }

    /// Steady state: per PE, Poissonized candidate counts and conditional
    /// keys below the agreed threshold `t`.
    fn steady_insert(&mut self, mode: SamplingMode, t: SampleKey, times: &mut PhaseTimes) -> u64 {
        let b = self.cfg.b_per_pe;
        let lambda = b as f64 * self.q_of(t.key);
        // Scan + keygen run inside the parallel region; the tree merge is
        // the sequential epilogue (matching the real parallel scan).
        let sp = self.costs.scan_speedup(self.cfg.threads_per_pe as u64);
        let mut max_cost = 0.0f64;
        let mut total_inserted = 0u64;
        for pe in 0..self.cfg.p {
            let count = {
                let rng = &mut self.work_rngs[pe];
                rng.poisson(lambda).min(b)
            };
            let mut new = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let (key, w) = {
                    let rng = &mut self.work_rngs[pe];
                    Self::conditional_key(mode, t.key, rng)
                };
                let id = self.make_id(pe);
                new.push((SampleKey::new(key, id), w));
            }
            let tree_size = self.pes[pe].total();
            self.pes[pe].merge_sorted(new);
            let scan = match mode {
                SamplingMode::Weighted => self.costs.scan_weighted(b),
                SamplingMode::Uniform => self.costs.scan_uniform(count),
            };
            let cost =
                (scan + self.costs.keygen(count)) / sp + self.costs.tree_inserts(count, tree_size);
            max_cost = max_cost.max(cost);
            total_inserted += count;
        }
        times.insert += max_cost;
        total_inserted
    }

    /// Growing phase: no threshold yet. Small batches draw every key
    /// (exactly the threaded backend's behaviour); large ones draw only
    /// the keys below a bootstrap threshold whose inclusion count is
    /// comfortably above `k` — the k smallest keys, and hence the
    /// selection input and the threshold law, are unaffected.
    fn growing_insert(&mut self, mode: SamplingMode, times: &mut PhaseTimes) -> u64 {
        let b = self.cfg.b_per_pe;
        let total_batch = self.cfg.p as u64 * b;
        let cap = self.cfg.local_cap();
        let sp = self.costs.scan_speedup(self.cfg.threads_per_pe as u64);
        let mut max_cost = 0.0f64;
        let mut total_inserted = 0u64;
        if total_batch <= FAITHFUL_GROWING_LIMIT {
            for pe in 0..self.cfg.p {
                let mut new = Vec::with_capacity(b as usize);
                for _ in 0..b {
                    let (key, w) = {
                        let rng = &mut self.work_rngs[pe];
                        Self::fresh_key(mode, rng)
                    };
                    let id = self.make_id(pe);
                    new.push((SampleKey::new(key, id), w));
                }
                let tree_size = self.pes[pe].total();
                self.pes[pe].merge_sorted(new);
                // Local reservoirs never need more than the cap smallest.
                self.pes[pe].truncate_to(cap);
                let kept = self.pes[pe].total();
                let scan = match mode {
                    SamplingMode::Weighted => self.costs.scan_weighted(b),
                    SamplingMode::Uniform => self.costs.scan_uniform(kept.min(b)),
                };
                let cost = (scan + self.costs.keygen(kept.min(b))) / sp
                    + self.costs.tree_inserts(kept.min(b), tree_size);
                max_cost = max_cost.max(cost);
                total_inserted += kept.min(b);
            }
        } else {
            // Bootstrap threshold: expected candidates ≈ 3·cap + 6√cap over
            // the whole stream seen after this batch.
            let n_after = self.items_seen + total_batch;
            let want = 3.0 * cap as f64 + 6.0 * (cap as f64).sqrt() + 16.0;
            let t0 = self.q_inverse((want / n_after as f64).min(0.9));
            let lambda = b as f64 * self.q_of(t0);
            for pe in 0..self.cfg.p {
                let count = {
                    let rng = &mut self.work_rngs[pe];
                    rng.poisson(lambda).min(b)
                };
                let mut new = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let (key, w) = {
                        let rng = &mut self.work_rngs[pe];
                        Self::conditional_key(mode, t0, rng)
                    };
                    let id = self.make_id(pe);
                    new.push((SampleKey::new(key, id), w));
                }
                let tree_size = self.pes[pe].total();
                self.pes[pe].merge_sorted(new);
                self.pes[pe].truncate_to(cap);
                let scan = match mode {
                    SamplingMode::Weighted => self.costs.scan_weighted(b),
                    SamplingMode::Uniform => self.costs.scan_uniform(count),
                };
                let cost = (scan + self.costs.keygen(count)) / sp
                    + self.costs.tree_inserts(count, tree_size);
                max_cost = max_cost.max(cost);
                total_inserted += count;
            }
        }
        times.insert += max_cost;
        total_inserted
    }
}

impl<L: LocalCostModel> SamplerBackend for SimBackend<L> {
    /// Statistical insertion for every simulated PE; `items` is ignored —
    /// the workload is the configured `b_per_pe` draw per PE.
    fn insert(
        &mut self,
        mode: SamplingMode,
        _items: &[reservoir_stream::Item],
        threshold: Option<SampleKey>,
        times: &mut PhaseTimes,
    ) -> InsertOutcome {
        let inserted = match threshold {
            Some(t) => self.steady_insert(mode, t, times),
            None => self.growing_insert(mode, times),
        };
        self.items_seen += self.cfg.p as u64 * self.cfg.b_per_pe;
        self.last_inserted = inserted;
        InsertOutcome {
            stats: ScanStats {
                processed: self.cfg.p as u64 * self.cfg.b_per_pe,
                inserted,
                ..ScanStats::default()
            },
        }
    }

    fn count(&mut self, times: &mut PhaseTimes, charge: Charge) -> u64 {
        Self::charge(times, charge, self.net.allreduce(self.cfg.p, 1).seconds());
        if charge == Charge::Output {
            self.output_words += 2 * CostModel::tree_rounds(self.cfg.p) as u64;
        }
        self.union()
    }

    /// Selection under the configured algorithm: [`SimAlgo::Ours`] runs
    /// the real protocol through the conductor and charges its rounds;
    /// [`SimAlgo::Gather`] charges the root funnel (candidate shipping,
    /// sequential quickselect, threshold broadcast) and computes the
    /// exact k-th smallest directly, as the root would.
    fn select(
        &mut self,
        target: TargetRank,
        union: u64,
        pivots: usize,
        times: &mut PhaseTimes,
        charge: Charge,
    ) -> SelectResult {
        match (self.cfg.algo, charge) {
            // The batch-step selection of the gather baseline is the
            // funnel; output-collection finalization always runs the
            // distributed protocol (the paper compares output designs
            // independently of the batch algorithm).
            (SimAlgo::Gather, Charge::Select) => {
                times.gather += self
                    .net
                    .gather(self.cfg.p, 3 * self.last_inserted + self.cfg.p as u64)
                    .seconds();
                times.select += self.costs.quickselect(union);
                times.threshold += self.net.tree_collective(self.cfg.p, 3).seconds();
                // The exact k-th smallest of the union.
                let mut keys: Vec<SampleKey> =
                    self.pes.iter().flat_map(|pe| pe.keys().copied()).collect();
                let k = self.cfg.k;
                let (_, cut, _) = keys.select_nth_unstable(k - 1);
                SelectResult {
                    threshold: *cut,
                    rank: k as u64,
                    rounds: 0,
                }
            }
            _ => {
                let refs: Vec<&SimPe> = self.pes.iter().collect();
                let report = select_conductor(
                    &refs,
                    target,
                    SelectParams::with_pivots(pivots),
                    &mut self.select_rngs,
                );
                debug_assert_eq!(union, refs.iter().map(|s| s.total()).sum::<u64>());
                self.last_select_payloads = report.round_payload_words.clone();
                let max_tree = self.pes.iter().map(|pe| pe.total()).max().unwrap_or(0);
                let tree = CostModel::tree_rounds(self.cfg.p) as u64;
                for &words in &report.round_payload_words {
                    Self::charge(
                        times,
                        charge,
                        self.net.allreduce(self.cfg.p, words).seconds()
                            + self.costs.select_round_local(max_tree, pivots as u64),
                    );
                    if charge == Charge::Output {
                        // Busiest endpoint: forwards the combined payload
                        // once per broadcast tree level.
                        self.output_words += words * (1 + tree);
                    }
                }
                report.result
            }
        }
    }

    /// Pruning is local bookkeeping; the model charges nothing for it (as
    /// it never has).
    fn prune(&mut self, t: &SampleKey, _times: &mut PhaseTimes, _charge: Charge) {
        for pe in &mut self.pes {
            pe.prune_above(t);
        }
    }

    /// The exclusive prefix sum that places every PE's slice. The
    /// conductor owns all slices, so the placement itself is trivial —
    /// only the cost is interesting.
    fn place(&mut self, local: u64, times: &mut PhaseTimes) -> Placement {
        times.output += self.net.exscan(self.cfg.p, 1).seconds();
        self.output_words += CostModel::tree_rounds(self.cfg.p) as u64;
        Placement {
            offset: 0,
            total: local,
        }
    }

    fn local_len(&self) -> u64 {
        self.union()
    }

    fn local_count_le(&self, t: &SampleKey) -> u64 {
        self.pes.iter().map(|pe| pe.count_le(t)).sum()
    }

    fn local_items_le(
        &self,
        t: Option<&SampleKey>,
        buf: &mut Vec<SampleItem>,
        _times: &mut PhaseTimes,
    ) {
        buf.clear();
        for pe in &self.pes {
            let take = match t {
                Some(t) => pe.count_le(t) as usize,
                None => pe.entries.len(),
            };
            buf.extend(
                pe.entries[..take]
                    .iter()
                    .map(|(k, w)| SampleItem::from_entry(k, *w)),
            );
        }
    }

    fn rank(&self) -> usize {
        0
    }

    fn size(&self) -> usize {
        self.cfg.p
    }

    fn select_rng_state(&self) -> Vec<DefaultRng> {
        self.select_rngs.clone()
    }

    fn restore_select_rng(&mut self, state: Vec<DefaultRng>) {
        debug_assert_eq!(state.len(), self.select_rngs.len());
        self.select_rngs = state;
    }
}

/// The simulated cluster: the shared engine over a [`SimBackend`].
pub struct SimCluster<L: LocalCostModel> {
    engine: ReservoirProtocol<SimBackend<L>>,
}

impl<L: LocalCostModel> SimCluster<L> {
    /// Build a cluster for `cfg`, charging communication to `net` and
    /// local work to `costs`.
    pub fn new(cfg: SimConfig, net: CostModel, costs: L) -> Self {
        let ecfg = cfg.engine_config();
        SimCluster {
            engine: ReservoirProtocol::new(SimBackend::new(cfg, net, costs), ecfg),
        }
    }

    /// Simulate one mini-batch on every PE (one engine step).
    pub fn process_batch(&mut self) -> SimBatchReport {
        let r = self.engine.step(&[]);
        SimBatchReport {
            rounds: r.select_rounds,
            times: r.times,
        }
    }

    /// Model one output collection (paper Section 5 vs the root funnel)
    /// over the current sample, without disturbing the cluster state —
    /// like the threaded backend's `collect_output`, this is a snapshot:
    /// streaming can continue afterwards.
    ///
    /// The distributed path drives the engine's *actual* finalize + place
    /// steps (a finalization selection to exact rank `k` only when the
    /// union currently exceeds `k` — variable-size mode or a mid-window
    /// cut — then one 1-word all-reduce and one 1-word exscan), so its
    /// charges follow the protocol by construction. The gather path
    /// charges shipping every surviving member (3 words each) through the
    /// root's downlink plus a sequential final quickselect there.
    /// `bottleneck_words` reports the busiest endpoint's traffic for the
    /// same two designs.
    pub fn collect_output(&mut self, path: OutputPath) -> SimOutputReport {
        match path {
            OutputPath::Distributed => {
                self.engine.backend_mut().output_words = 0;
                let (handle, times, rounds) = self.engine.collect_output();
                SimOutputReport {
                    times,
                    rounds,
                    total: handle.total_len(),
                    bottleneck_words: self.engine.backend().output_words,
                }
            }
            OutputPath::Gather => {
                let backend = self.engine.backend_mut();
                let p = backend.cfg.p;
                let k = backend.cfg.k as u64;
                let union = backend.union();
                let tree = CostModel::tree_rounds(p) as u64;
                let mut times = PhaseTimes::default();
                // Agree on the union size first (1-word all-reduce), then
                // move every surviving member: 3 words each, plus one
                // count word per PE, through the root's downlink.
                times.output += backend.net.allreduce(p, 1).seconds();
                let payload = 3 * union + p as u64;
                times.output += backend.net.gather(p, payload).seconds();
                if union > k {
                    times.output += backend.costs.quickselect(union);
                }
                // Announce the finalized threshold back.
                times.output += backend.net.tree_collective(p, 3).seconds();
                SimOutputReport {
                    times,
                    rounds: 0,
                    total: union.min(k),
                    bottleneck_words: 2 * tree + payload + 3 * tree,
                }
            }
        }
    }

    /// A read handle on the simulated cluster's always-fresh sample slot
    /// (see [`crate::dist::snapshot`]): the conductor publishes the
    /// *whole cluster's* finalized sample per epoch, so readers see what
    /// a real deployment's union view would serve.
    pub fn snapshot_reader(&self) -> crate::dist::snapshot::SnapshotReader {
        self.engine.snapshot_reader()
    }

    /// The current global threshold, once established.
    pub fn threshold(&self) -> Option<f64> {
        self.engine.threshold()
    }

    /// Total items the simulated stream has produced.
    pub fn items_seen(&self) -> u64 {
        self.engine.backend().items_seen()
    }

    /// The current global sample (union of the per-PE reservoirs).
    pub fn sample(&self) -> Vec<SampleItem> {
        self.engine.backend().sample()
    }

    /// The configuration under simulation.
    pub fn config(&self) -> &SimConfig {
        self.engine.backend().sim_config()
    }

    /// The protocol engine underneath (the same type the real backends
    /// drive — the point of the exercise).
    pub fn engine(&mut self) -> &mut ReservoirProtocol<SimBackend<L>> {
        &mut self.engine
    }
}

/// Cross-shard collective accounting for one mini-batch of a simulated
/// multi-tenant fleet (see [`SimShardedCluster`]).
///
/// Both schedules price a selection round as **one** collective launch —
/// the conductor's combined candidate + count payload — so the comparison
/// is purely about launches per shard vs launches per fleet.
#[derive(Clone, Debug)]
pub struct ShardedSimReport {
    /// Per-shard engine reports (each shard's own `times` are charged
    /// as-if independent, i.e. under the naive schedule).
    pub per_shard: Vec<SimBatchReport>,
    /// Shards whose selection fired this batch.
    pub shards_selected: usize,
    /// Collective launches under the naive schedule: one 1-word count
    /// all-reduce per shard, plus one all-reduce per selection round per
    /// selecting shard. Grows linearly with the shard count.
    pub naive_collectives: u64,
    /// Collective launches under the batched schedule: one vectorized
    /// count all-reduce for the whole fleet, plus one combined all-reduce
    /// per *joint* selection round (shards drop out as they decide).
    /// Bounded by `1 + max_s rounds_s` — independent of the shard count.
    pub batched_collectives: u64,
    /// α–β network seconds of the naive schedule's collectives.
    pub naive_net_s: f64,
    /// α–β network seconds of the batched schedule's collectives.
    pub batched_net_s: f64,
}

/// A simulated multi-tenant fleet: `S` per-shard [`SimCluster`]s (seeded
/// with [`shard_seed`](crate::dist::sharded::shard_seed), exactly like the
/// threaded [`ShardedSampler`](crate::dist::ShardedSampler)) stepped in
/// lockstep, with each batch's cross-shard collectives priced two ways —
/// naively (every shard launches its own) and batched (the sharded
/// backend's single vectorized count + joint selection schedule). The
/// per-shard statistical behaviour is untouched; only the accounting of
/// who pays α for which launch differs.
pub struct SimShardedCluster<L: LocalCostModel> {
    shards: Vec<SimCluster<L>>,
    net: CostModel,
    p: usize,
}

impl<L: LocalCostModel> SimShardedCluster<L> {
    /// Build a fleet of `shards` clusters over `cfg` (its `seed` is
    /// re-derived per shard). Requires [`SimAlgo::Ours`] — the joint
    /// schedule batches the distributed selection protocol, which the
    /// gather funnel does not run — and no continuous publication (the
    /// threaded sharded backend batches epoch placement separately).
    pub fn new(cfg: SimConfig, shards: usize, net: CostModel, costs: L) -> Self
    where
        L: Clone,
    {
        assert!(shards >= 1, "at least one shard");
        assert!(
            matches!(cfg.algo, SimAlgo::Ours { .. }),
            "the sharded schedule batches the distributed selection protocol"
        );
        assert!(
            cfg.continuous == super::ContinuousMode::Disabled,
            "sharded simulation models batch steps only"
        );
        let fleet = (0..shards)
            .map(|s| {
                let scfg = SimConfig {
                    seed: crate::dist::sharded::shard_seed(cfg.seed, s),
                    ..cfg
                };
                SimCluster::new(scfg, net, costs.clone())
            })
            .collect();
        SimShardedCluster {
            shards: fleet,
            net,
            p: cfg.p,
        }
    }

    /// Number of shards in the fleet.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// One shard's cluster, for inspection (threshold, sample, ...).
    pub fn shard(&mut self, s: usize) -> &mut SimCluster<L> {
        &mut self.shards[s]
    }

    /// Step every shard one mini-batch and account the cross-shard
    /// collectives both ways.
    pub fn process_batch(&mut self) -> ShardedSimReport {
        let s_count = self.shards.len() as u64;
        let mut per_shard = Vec::with_capacity(self.shards.len());
        let mut round_payloads: Vec<Vec<u64>> = Vec::with_capacity(self.shards.len());
        for cluster in &mut self.shards {
            let r = cluster.process_batch();
            let payloads = if r.rounds > 0 {
                cluster.engine().backend().last_select_payloads().to_vec()
            } else {
                Vec::new()
            };
            debug_assert_eq!(payloads.len(), r.rounds as usize);
            round_payloads.push(payloads);
            per_shard.push(r);
        }

        // Naive: every shard launches its own 1-word count all-reduce
        // plus one all-reduce per selection round.
        let mut naive_collectives = s_count;
        let mut naive_net_s = s_count as f64 * self.net.allreduce(self.p, 1).seconds();
        for payloads in &round_payloads {
            naive_collectives += payloads.len() as u64;
            for &words in payloads {
                naive_net_s += self.net.allreduce(self.p, words).seconds();
            }
        }

        // Batched: ONE vectorized count all-reduce (`S` words), then one
        // combined all-reduce per joint round carrying every still-active
        // shard's payload side by side. Latency per round is paid once
        // for the fleet; the payloads only widen β terms.
        let max_rounds = round_payloads.iter().map(Vec::len).max().unwrap_or(0);
        let batched_collectives = 1 + max_rounds as u64;
        let mut batched_net_s = self.net.allreduce(self.p, s_count).seconds();
        for j in 0..max_rounds {
            let words: u64 = round_payloads.iter().filter_map(|p| p.get(j)).sum();
            batched_net_s += self.net.allreduce(self.p, words).seconds();
        }

        let shards_selected = round_payloads.iter().filter(|p| !p.is_empty()).count();
        ShardedSimReport {
            per_shard,
            shards_selected,
            naive_collectives,
            batched_collectives,
            naive_net_s,
            batched_net_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(p: usize, k: usize, b: u64, algo: SimAlgo, seed: u64) -> SimConfig {
        SimConfig::new(p, k, b, SamplingMode::Weighted, algo, seed)
    }

    #[test]
    fn sample_reaches_k_and_threshold_brackets_it() {
        let mut sim = SimCluster::new(
            cfg(4, 100, 1_000, SimAlgo::Ours { pivots: 1 }, 1),
            CostModel::infiniband_edr(),
            AnalyticLocalCosts::default(),
        );
        for _ in 0..3 {
            sim.process_batch();
        }
        let sample = sim.sample();
        assert_eq!(sample.len(), 100);
        let t = sim.threshold().expect("established");
        assert!(sample.iter().all(|s| s.key <= t));
        assert_eq!(sim.items_seen(), 3 * 4 * 1_000);
        let mut ids: Vec<u64> = sample.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 100);
    }

    #[test]
    fn bootstrap_growing_matches_faithful_law() {
        // Same configuration just above/below the faithful limit must give
        // thresholds with the same law. Compare means over seeds.
        let mean_threshold = |b: u64, trials: u64| -> f64 {
            let mut acc = 0.0;
            for s in 0..trials {
                let mut sim = SimCluster::new(
                    cfg(8, 200, b, SimAlgo::Ours { pivots: 2 }, 100 + s),
                    CostModel::infiniband_edr(),
                    AnalyticLocalCosts::default(),
                );
                for _ in 0..2 {
                    sim.process_batch();
                }
                acc += sim.threshold().expect("established");
            }
            acc / trials as f64
        };
        // The theoretical threshold for n items solves n q(t) = k; compare
        // both paths against it at equal n.
        let faithful = mean_threshold(10_000, 20);
        // Force the bootstrap path via a tiny FAITHFUL limit stand-in: use
        // a batch size above the limit / p.
        let big_b = FAITHFUL_GROWING_LIMIT / 8 + 1;
        let boot = {
            let mut acc = 0.0;
            let trials = 10;
            for s in 0..trials {
                let mut sim = SimCluster::new(
                    cfg(8, 200, big_b, SimAlgo::Ours { pivots: 2 }, 500 + s),
                    CostModel::infiniband_edr(),
                    AnalyticLocalCosts::default(),
                );
                sim.process_batch();
                acc += sim.threshold().expect("established");
            }
            acc / trials as f64
        };
        // Both must track k/(50 n) for their own n (weighted q(t) ≈ 50t).
        let expect_small = 200.0 / (50.0 * (2.0 * 8.0 * 10_000.0));
        let expect_big = 200.0 / (50.0 * (8.0 * big_b as f64));
        assert!(
            (faithful - expect_small).abs() < 0.25 * expect_small,
            "faithful {faithful:.3e} vs {expect_small:.3e}"
        );
        assert!(
            (boot - expect_big).abs() < 0.25 * expect_big,
            "bootstrap {boot:.3e} vs {expect_big:.3e}"
        );
    }

    #[test]
    fn gather_and_ours_agree_on_threshold() {
        let mk = |algo| {
            SimCluster::new(
                cfg(4, 300, 5_000, algo, 7),
                CostModel::infiniband_edr(),
                AnalyticLocalCosts::default(),
            )
        };
        let mut ours = mk(SimAlgo::Ours { pivots: 1 });
        let mut gather = mk(SimAlgo::Gather);
        for _ in 0..3 {
            ours.process_batch();
            gather.process_batch();
        }
        let (a, b) = (ours.threshold().unwrap(), gather.threshold().unwrap());
        assert!(
            (a - b).abs() < 0.5 * a.max(b),
            "ours {a:.3e} gather {b:.3e}"
        );
        assert_eq!(gather.sample().len(), 300);
    }

    #[test]
    fn gather_charges_gather_phase_ours_does_not() {
        let mut ours = SimCluster::new(
            cfg(8, 100, 2_000, SimAlgo::Ours { pivots: 1 }, 3),
            CostModel::infiniband_edr(),
            AnalyticLocalCosts::default(),
        );
        let mut gather = SimCluster::new(
            cfg(8, 100, 2_000, SimAlgo::Gather, 3),
            CostModel::infiniband_edr(),
            AnalyticLocalCosts::default(),
        );
        let (mut ours_t, mut gather_t) = (PhaseTimes::default(), PhaseTimes::default());
        for _ in 0..3 {
            ours_t.accumulate(&ours.process_batch().times);
            gather_t.accumulate(&gather.process_batch().times);
        }
        assert_eq!(ours_t.gather, 0.0);
        assert!(ours_t.select > 0.0);
        assert!(gather_t.gather > 0.0);
    }

    #[test]
    fn distributed_output_beats_gather_at_scale() {
        // The Section 5 crossover: for a large machine and a large sample,
        // the root funnel pays Θ(β·k) on its downlink while the
        // distributed path pays O(α log p) — both in time and in words.
        let mut sim = SimCluster::new(
            cfg(1024, 50_000, 2_000, SimAlgo::Ours { pivots: 8 }, 5),
            CostModel::infiniband_edr(),
            AnalyticLocalCosts::default(),
        );
        for _ in 0..3 {
            sim.process_batch();
        }
        let dist = sim.collect_output(OutputPath::Distributed);
        let gather = sim.collect_output(OutputPath::Gather);
        assert_eq!(dist.total, 50_000);
        assert_eq!(gather.total, 50_000);
        assert!(
            dist.bottleneck_words * 10 < gather.bottleneck_words,
            "distributed {d} words should be far below gather {g}",
            d = dist.bottleneck_words,
            g = gather.bottleneck_words
        );
        assert!(
            dist.times.output < gather.times.output,
            "distributed {d:.2e}s should beat gather {g:.2e}s",
            d = dist.times.output,
            g = gather.times.output
        );
    }

    #[test]
    fn output_is_a_snapshot_and_finalizes_only_above_k() {
        let mut sim = SimCluster::new(
            cfg(8, 500, 2_000, SimAlgo::Ours { pivots: 2 }, 9),
            CostModel::infiniband_edr(),
            AnalyticLocalCosts::default(),
        );
        for _ in 0..2 {
            sim.process_batch();
        }
        let before = sim.sample().len();
        // Steady state: the sample is already exactly k, so the distributed
        // path needs no finalization selection.
        let out = sim.collect_output(OutputPath::Distributed);
        assert_eq!(out.rounds, 0);
        assert_eq!(out.total, 500);
        assert_eq!(sim.sample().len(), before, "collect_output must not prune");
        assert!(out.times.output > 0.0);
        assert!(out.times.insert == 0.0 && out.times.gather == 0.0);
    }

    #[test]
    fn window_mode_selects_into_window_and_finalizes_to_k() {
        // The engine's window support carries straight over to the
        // simulated backend: batch selections target the whole window,
        // and output collection pays a real finalization selection.
        let (k, hi) = (500u64, 1_000u64);
        let mut sim = SimCluster::new(
            cfg(8, k as usize, 2_000, SimAlgo::Ours { pivots: 2 }, 13).with_size_window(k, hi),
            CostModel::infiniband_edr(),
            AnalyticLocalCosts::default(),
        );
        let mut sizes = Vec::new();
        for _ in 0..4 {
            sim.process_batch();
            sizes.push(sim.sample().len() as u64);
        }
        // After the first selection the size stays within the window.
        assert!(
            sizes.iter().skip(1).all(|s| (k..=hi).contains(s)),
            "sizes {sizes:?} left the window"
        );
        let held = sim.sample().len();
        let out = sim.collect_output(OutputPath::Distributed);
        assert_eq!(out.total, k, "finalization must cut the window back to k");
        assert!(
            out.rounds >= 1,
            "a mid-window output must pay finalization selection rounds"
        );
        assert_eq!(sim.sample().len(), held, "output must stay a snapshot");
        // The window needs *fewer* batch selections than exact mode: the
        // approximate target window gives every selection slack.
        assert!(sim.threshold().is_some());
    }

    #[test]
    fn window_mode_charges_more_output_than_exact_mode() {
        let mk = |window: bool| {
            let mut c = cfg(64, 1_000, 5_000, SimAlgo::Ours { pivots: 2 }, 21);
            if window {
                c = c.with_size_window(1_000, 2_000);
            }
            let mut sim = SimCluster::new(
                c,
                CostModel::infiniband_edr(),
                AnalyticLocalCosts::default(),
            );
            for _ in 0..3 {
                sim.process_batch();
            }
            sim.collect_output(OutputPath::Distributed)
        };
        let exact = mk(false);
        let window = mk(true);
        assert_eq!(exact.rounds, 0, "exact mode is already finalized");
        assert!(window.rounds >= 1);
        assert!(
            window.times.output > exact.times.output,
            "finalization rounds must show up in the modeled output cost"
        );
        assert_eq!(window.total, exact.total);
    }

    #[test]
    fn amdahl_speedup_shapes() {
        assert_eq!(amdahl_speedup(0.0, 1), 1.0);
        assert_eq!(amdahl_speedup(0.0, 4), 4.0);
        assert_eq!(amdahl_speedup(1.0, 8), 1.0);
        let s = amdahl_speedup(0.05, 4);
        assert!(s > 3.0 && s < 4.0, "{s}");
        // Clamps out-of-range fractions.
        assert_eq!(amdahl_speedup(-3.0, 2), 2.0);
    }

    #[test]
    fn multicore_pes_shrink_the_insert_phase_only() {
        let run = |threads: usize| {
            let mut sim = SimCluster::new(
                cfg(8, 500, 50_000, SimAlgo::Ours { pivots: 2 }, 17).with_threads(threads),
                CostModel::infiniband_edr(),
                AnalyticLocalCosts::default(),
            );
            let mut times = PhaseTimes::default();
            for _ in 0..3 {
                times.accumulate(&sim.process_batch().times);
            }
            (times, sim.threshold().expect("established"))
        };
        let (t1, thr1) = run(1);
        let (t4, thr4) = run(4);
        // Multicore is a pure cost-model change: identical trajectory.
        assert_eq!(thr1, thr4, "thread count must not alter the sample law");
        assert!(
            t4.insert < t1.insert,
            "4 threads should shrink insert: {} vs {}",
            t4.insert,
            t1.insert
        );
        let speedup = t1.insert / t4.insert;
        let model = amdahl_speedup(AnalyticLocalCosts::default().par_serial_frac, 4);
        // The scan dominates this configuration's insert phase, so the
        // observed ratio lands near (below) the modeled scan speedup.
        assert!(
            speedup > 1.5 && speedup <= model + 0.3,
            "speedup {speedup} vs model {model}"
        );
        assert_eq!(t1.select > 0.0, t4.select > 0.0);
    }

    #[test]
    fn uniform_mode_threshold_tracks_k_over_n() {
        let mut sim = SimCluster::new(
            SimConfig::new(
                8,
                500,
                5_000,
                SamplingMode::Uniform,
                SimAlgo::Ours { pivots: 4 },
                11,
            ),
            CostModel::infiniband_edr(),
            AnalyticLocalCosts::default(),
        );
        for _ in 0..4 {
            sim.process_batch();
        }
        let n = sim.items_seen() as f64;
        let t = sim.threshold().expect("established");
        let expect = 500.0 / n;
        assert!((t - expect).abs() < 0.2 * expect, "{t:.3e} vs {expect:.3e}");
    }

    #[test]
    #[should_panic(expected = "no variable-size mode")]
    fn gather_algo_rejects_windows() {
        let _ = SimCluster::new(
            cfg(4, 100, 1_000, SimAlgo::Gather, 1).with_size_window(100, 200),
            CostModel::infiniband_edr(),
            AnalyticLocalCosts::default(),
        );
    }
}
