//! Multi-tenant sharded sampling: many independent weighted reservoirs
//! behind **one** collective schedule.
//!
//! The paper's per-batch communication bound — O(α log p) latency,
//! independent of the stream length — is paid *per sample*. Serving a
//! sample per key (per user, per tenant, per flow) naively multiplies
//! that latency by the key cardinality: S shards would pay S count
//! all-reduces and S independent selection protocols per mini-batch.
//! [`ShardedSampler`] collapses that to a **batched schedule**:
//!
//! 1. **route + scan** — each record goes to its shard's
//!    [`PeReservoir`] (sequential, parallel, or concurrent local scan —
//!    each shard is a full per-PE reservoir) below that shard's own
//!    threshold. Local, no communication.
//! 2. **batched count** — ONE vectorized all-reduce
//!    (`sum_u64_vec` over the `S`-entry vector of per-shard local
//!    sizes) replaces S scalar count rounds.
//! 3. **batched select/prune** — every shard whose union outgrew its
//!    limit joins ONE joint selection
//!    ([`select_threaded_many`]): per joint round, all active shards'
//!    pivot candidates ride one all-reduce and all their pivot counts
//!    ride one `sum_u64_vec`, so the whole fleet pays
//!    `max` (not `sum`) of the per-shard round counts. Pruning stays
//!    local per shard.
//! 4. **batched publish** (continuous mode) — the per-shard epoch
//!    placements ride ONE vectorized exclusive prefix sum.
//!
//! Each shard is driven by its own unmodified
//! [`ReservoirProtocol`] engine, so the protocol body — threshold
//! bookkeeping, continuous publication, Section 5 output — exists once
//! and is reused verbatim. The trick is the backend:
//! [`ShardEndpoint`] serves the engine's collective steps from a **plan**
//! the driver computed with the batched collectives above, instead of
//! issuing per-shard collectives. Every planned value is consumed
//! exactly once; a plan miss panics ("schedule drift") rather than
//! silently desynchronizing the fleet.
//!
//! **The law is unchanged per shard.** Shard `s` draws its RNG streams
//! through the same derivation a standalone
//! [`DistributedSampler`](crate::dist::threaded::DistributedSampler)
//! with seed [`shard_seed`]`(seed, s)` would use, and the joint
//! selection reproduces each shard's standalone selection trajectory
//! byte-for-byte — so a shard's sample is *byte-identical* to the
//! single-tenant sampler fed exactly that shard's records
//! (`tests/sharded.rs` pins this, and the χ² suites pin the law).

use std::sync::mpsc::Receiver;
use std::sync::Arc;
use std::time::Instant;

use reservoir_btree::{NodePool, SampleKey};
use reservoir_comm::{Collectives, Communicator};
use reservoir_rng::{DefaultRng, StreamKind};
use reservoir_select::{
    select_threaded_many, CandidateSet, SelectParams, SelectResult, TargetRank,
};
use reservoir_stream::ingest::MiniBatch;
use reservoir_stream::{Item, ShardRouter};

use reservoir_obs::LazyCounter;

use crate::dist::engine::{Charge, InsertOutcome, Placement, ReservoirProtocol, SamplerBackend};
use crate::dist::local::{PeReservoir, ScanStats};

/// Batched supersteps driven across whole shard fleets.
static SHARDED_BATCHES: LazyCounter = LazyCounter::new(
    "sharded_batches_total",
    "batched supersteps driven across shard fleets",
);
static SHARDED_JOINT_ROUNDS: LazyCounter = LazyCounter::new(
    "sharded_joint_rounds_total",
    "joint selection rounds paid on the wire by batched supersteps",
);
static SHARDED_SOLO_ROUNDS: LazyCounter = LazyCounter::new(
    "sharded_solo_rounds_total",
    "per-shard selection rounds solo scheduling would have paid instead",
);
static SHARDED_COLLECTIVE_LAUNCHES: LazyCounter = LazyCounter::new(
    "sharded_collective_launches_total",
    "collective launches amortized across shard fleets by batched supersteps",
);
static SHARDED_SPARSE_SKIPS: LazyCounter = LazyCounter::new(
    "shards_skipped_sparse_total",
    "shard engine steps skipped because the shard's bucket was empty fleet-wide",
);
use crate::dist::output::SampleHandle;
use crate::dist::snapshot::SnapshotReader;
use crate::dist::threaded::stream_seq;
use crate::dist::{
    BatchReport, ContinuousMode, DistConfig, MergeMode, SamplingMode, PAR_SCAN_STREAM,
};
use crate::metrics::PhaseTimes;
use crate::sample::SampleItem;

/// Shard `s`'s sampler seed under master seed `seed`: golden-ratio
/// salted so shard streams are pairwise independent, and exposed so a
/// reference single-tenant sampler can reproduce any one shard exactly.
pub fn shard_seed(seed: u64, shard: usize) -> u64 {
    seed ^ (shard as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Elementwise sum — the combine of the vectorized place collectives.
fn add_vecs(mut a: Vec<u64>, b: Vec<u64>) -> Vec<u64> {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter_mut().zip(b) {
        *x += y;
    }
    a
}

/// What the driver's real scan measured for one shard, replayed when
/// the engine's step reaches that shard.
struct PlannedScan {
    stats: ScanStats,
    insert_s: f64,
    par_scan_max_s: f64,
}

/// The per-superstep plan one shard's endpoint serves to its engine.
/// Each field is the result of a *batched* collective (or a value
/// derivable from one) plus this shard's amortized share of the
/// collective's measured wall time; each is taken exactly once.
#[derive(Default)]
struct ShardPlan {
    scan: Option<PlannedScan>,
    /// Served on `count(Charge::Threshold)`: this shard's slice of the
    /// batched pre-select union count.
    pre_union: Option<(u64, f64)>,
    /// Served on `select(Charge::Select)`: this shard's result from the
    /// joint batched selection.
    batch_select: Option<(SelectResult, f64)>,
    /// Served on `count(Charge::Output)`: the post-step (or collection
    /// time) union, known from the batched count + selection ranks.
    fin_union: Option<(u64, f64)>,
    /// Served on `select(Charge::Output)`: this shard's result from the
    /// joint finalize selection of `collect_output`.
    fin_select: Option<(SelectResult, f64)>,
    /// Served on `place`: `(expected keep, placement, time share)` from
    /// the vectorized exclusive prefix sum.
    placement: Option<(u64, Placement, f64)>,
}

/// One shard's endpoint of the engine: a real [`PeReservoir`] and real
/// RNG streams (byte-compatible with a standalone sampler under
/// [`shard_seed`]), but every collective step served from the driver's
/// batched [`ShardPlan`] instead of a per-shard wire round.
pub struct ShardEndpoint<'a, C: Communicator> {
    comm: &'a C,
    local: PeReservoir,
    key_rng: DefaultRng,
    select_rng: DefaultRng,
    plan: ShardPlan,
}

impl<'a, C: Communicator> ShardEndpoint<'a, C> {
    fn new(comm: &'a C, cfg: &DistConfig, node_pool: Option<Arc<NodePool>>) -> Self {
        let seq = stream_seq(cfg);
        ShardEndpoint {
            local: PeReservoir::for_config_pooled(
                cfg,
                cfg.local_cap(),
                seq.seed_for(comm.rank(), StreamKind::Custom(PAR_SCAN_STREAM)),
                node_pool,
            ),
            key_rng: seq.rng_for(comm.rank(), StreamKind::Keys),
            select_rng: seq.rng_for(comm.rank(), StreamKind::Selection),
            plan: ShardPlan::default(),
            comm,
        }
    }

    /// The driver-side real scan, run *before* the engine steps so the
    /// batched count collective can cover every shard's post-scan size.
    fn scan(&mut self, mode: SamplingMode, items: &[Item], threshold: Option<SampleKey>) {
        let t0 = Instant::now();
        let outcome = self
            .local
            .process(mode, items, threshold.map(|k| k.key), &mut self.key_rng);
        let planned = PlannedScan {
            stats: outcome.stats,
            insert_s: t0.elapsed().as_secs_f64(),
            par_scan_max_s: outcome.par_scan_max_s,
        };
        let stale = self.plan.scan.replace(planned);
        assert!(
            stale.is_none(),
            "sharded schedule drift: shard scanned twice without a step"
        );
    }
}

impl<C: Communicator> SamplerBackend for ShardEndpoint<'_, C> {
    fn insert(
        &mut self,
        _mode: SamplingMode,
        items: &[Item],
        _threshold: Option<SampleKey>,
        times: &mut PhaseTimes,
    ) -> InsertOutcome {
        debug_assert!(
            items.is_empty(),
            "the sharded driver scans shard buckets before stepping"
        );
        let planned = self
            .plan
            .scan
            .take()
            .expect("sharded schedule drift: step without a planned scan");
        times.insert += planned.insert_s;
        times.par_scan += planned.par_scan_max_s;
        InsertOutcome {
            stats: planned.stats,
        }
    }

    fn count(&mut self, times: &mut PhaseTimes, charge: Charge) -> u64 {
        let (union, share) = match charge {
            Charge::Threshold => self
                .plan
                .pre_union
                .take()
                .expect("sharded schedule drift: step without a batched union count"),
            Charge::Output => self
                .plan
                .fin_union
                .take()
                .expect("sharded schedule drift: finalize without a planned union"),
            Charge::Select => unreachable!("the engine never bills a count to Select"),
        };
        *charge.slot(times) += share;
        union
    }

    fn select(
        &mut self,
        target: TargetRank,
        _union: u64,
        _pivots: usize,
        times: &mut PhaseTimes,
        charge: Charge,
    ) -> SelectResult {
        let (res, share) = match charge {
            Charge::Select => self
                .plan
                .batch_select
                .take()
                .expect("sharded schedule drift: unplanned batch selection"),
            Charge::Output => self
                .plan
                .fin_select
                .take()
                .expect("sharded schedule drift: unplanned finalize selection"),
            Charge::Threshold => unreachable!("the engine never bills a selection to Threshold"),
        };
        debug_assert!(
            target.lo <= res.rank && res.rank <= target.hi,
            "planned selection rank {} outside the engine's target {target:?}",
            res.rank
        );
        *charge.slot(times) += share;
        res
    }

    fn prune(&mut self, t: &SampleKey, times: &mut PhaseTimes, charge: Charge) {
        let t0 = Instant::now();
        self.local.prune_above(t);
        *charge.slot(times) += t0.elapsed().as_secs_f64();
    }

    fn place(&mut self, local: u64, times: &mut PhaseTimes) -> Placement {
        let (keep, placement, share) = self
            .plan
            .placement
            .take()
            .expect("sharded schedule drift: place without a planned placement");
        debug_assert_eq!(
            local, keep,
            "planned placement disagrees with the engine's keep count"
        );
        times.output += share;
        placement
    }

    fn local_len(&self) -> u64 {
        self.local.len()
    }

    fn local_count_le(&self, t: &SampleKey) -> u64 {
        self.local.count_le(t)
    }

    fn local_items_le(
        &self,
        t: Option<&SampleKey>,
        buf: &mut Vec<SampleItem>,
        times: &mut PhaseTimes,
    ) {
        let t0 = Instant::now();
        self.local.items_into(buf);
        if let Some(t) = t {
            buf.truncate(self.local.count_le(t) as usize);
        }
        times.output += t0.elapsed().as_secs_f64();
    }

    fn rank(&self) -> usize {
        self.comm.rank()
    }

    fn size(&self) -> usize {
        self.comm.size()
    }

    fn select_rng_state(&self) -> Vec<DefaultRng> {
        vec![self.select_rng.clone()]
    }

    fn restore_select_rng(&mut self, mut state: Vec<DefaultRng>) {
        self.select_rng = state.pop().expect("one shard, one selection generator");
    }
}

/// What one batched superstep did across the whole shard fleet.
#[derive(Clone, Debug)]
pub struct ShardedBatchReport {
    /// Per-shard step reports, in shard order (the same [`BatchReport`]
    /// a standalone sampler would emit for that shard's bucket).
    pub per_shard: Vec<BatchReport>,
    /// Shards that ran a selection this superstep.
    pub shards_selected: usize,
    /// Shards the sparse-batch fast path skipped this superstep: their
    /// bucket was empty on **every** PE and their union did not trigger
    /// a selection, so no scan ran, no plan entries were made, and their
    /// engine did not step (their synthesized [`BatchReport`] carries
    /// only the known union size).
    pub shards_skipped: usize,
    /// Joint selection rounds the whole fleet paid (the **max** over
    /// the active shards' round counts — the amortization witness; a
    /// per-shard schedule would have paid their **sum**).
    pub joint_select_rounds: u32,
    /// Per-shard selection rounds summed — what S independent samplers
    /// would have paid (compare with `joint_select_rounds`).
    pub solo_select_rounds: u64,
    /// Vectorized collective calls this superstep issued: 1 batched
    /// count + 2 per joint selection round + 1 batched placement per
    /// continuous publication — independent of the shard count.
    pub collective_calls: u32,
}

/// The sharded pipeline's summary: per-shard Section 5 handles plus the
/// fleet-level round accounting.
#[derive(Debug)]
pub struct ShardedPipelineReport {
    /// Mini-batches this PE drained from its channel.
    pub batches: u64,
    /// Collective supersteps (max batches over PEs; every PE steps the
    /// same number of times).
    pub rounds: u64,
    /// Records this PE routed.
    pub records: u64,
    /// Total joint selection rounds across the run.
    pub joint_select_rounds: u64,
    /// Total per-shard selection rounds (what independent samplers
    /// would have paid).
    pub solo_select_rounds: u64,
    /// Total vectorized collective calls across the run.
    pub collective_calls: u64,
    /// One root-free output handle per shard, in shard order.
    pub handles: Vec<SampleHandle>,
}

/// Many independent per-key weighted reservoirs behind one collective
/// schedule. See the module docs for the batched superstep; see
/// [`shard_seed`] for the per-shard law guarantee.
///
/// Construction is collective (every PE passes the same `cfg` and
/// `shards`); `process_batch`, `run_pipeline` and `collect_output` are
/// collective; the accessors are local. Variable-size windows are
/// supported, but not combined with continuous snapshots (the step-time
/// publication of an over-`k` window would need an extra planned
/// selection; single-tenant samplers cover that case).
pub struct ShardedSampler<'a, C: Communicator> {
    comm: &'a C,
    engines: Vec<ReservoirProtocol<ShardEndpoint<'a, C>>>,
    /// One page-granular node pool shared by every shard's concurrent
    /// tree on this PE (`MergeMode::Concurrent` only): fleet
    /// construction costs O(pages) heap allocations instead of one
    /// arena per shard, and pruned shards recycle slots to growing ones.
    node_pool: Option<Arc<NodePool>>,
    /// Skip scan/plan/step for shards whose bucket is empty fleet-wide
    /// (on by default; [`Self::with_sparse_skip`]).
    sparse_skip: bool,
}

impl<'a, C: Communicator> ShardedSampler<'a, C> {
    /// One sampler fleet of `shards` shards, each configured as `cfg`
    /// except for its [`shard_seed`]-derived seed.
    pub fn new(comm: &'a C, cfg: DistConfig, shards: usize) -> Self {
        assert!(shards >= 1, "at least one shard");
        assert!(
            cfg.size_window.is_none() || cfg.continuous == ContinuousMode::Disabled,
            "sharded sampling supports a size window or continuous snapshots, not both"
        );
        // Under the concurrent merge every shard's tree borrows node
        // slots from one shared pool; the epilogue-merge arms use the
        // Box-node sequential tree, which has no pool to share.
        let node_pool = (cfg.merge == MergeMode::Concurrent).then(|| Arc::new(NodePool::new()));
        let engines = (0..shards)
            .map(|s| {
                let shard_cfg = DistConfig {
                    seed: shard_seed(cfg.seed, s),
                    ..cfg
                };
                ReservoirProtocol::new(
                    ShardEndpoint::new(comm, &shard_cfg, node_pool.clone()),
                    shard_cfg,
                )
            })
            .collect();
        ShardedSampler {
            comm,
            engines,
            node_pool,
            sparse_skip: true,
        }
    }

    /// Toggle the sparse-batch fast path (default **on**). Collective:
    /// every PE must pass the same value, since the skip decision gates
    /// which shards join the planned collectives. Turning it off makes
    /// every superstep step every engine, exactly the pre-skip schedule;
    /// the per-shard samples are byte-identical either way.
    pub fn with_sparse_skip(mut self, on: bool) -> Self {
        self.sparse_skip = on;
        self
    }

    /// The node pool every shard's concurrent tree draws from on this PE
    /// (`None` under the epilogue merge modes, whose sequential trees
    /// own their nodes directly).
    pub fn node_pool(&self) -> Option<&Arc<NodePool>> {
        self.node_pool.as_ref()
    }

    /// Number of shards in the fleet.
    pub fn shards(&self) -> usize {
        self.engines.len()
    }

    /// Shard `s`'s current insertion threshold, once established.
    pub fn threshold(&self, shard: usize) -> Option<f64> {
        self.engines[shard].threshold()
    }

    /// Members shard `s` holds on this PE.
    pub fn local_len(&self, shard: usize) -> u64 {
        self.engines[shard].backend().local.len()
    }

    /// Shard `s`'s sample members on this PE.
    pub fn local_sample(&self, shard: usize) -> Vec<SampleItem> {
        self.engines[shard].backend().local.items()
    }

    /// A snapshot reader over shard `s`'s always-fresh epoch slot
    /// (publishes under [`ContinuousMode::EveryBatch`]).
    pub fn snapshot_reader(&self, shard: usize) -> SnapshotReader {
        self.engines[shard].snapshot_reader()
    }

    /// One batched superstep over pre-routed buckets (collective; one
    /// bucket per shard, empty buckets fine — and required on PEs whose
    /// channel ran dry, since every PE must step every shard equally).
    pub fn process_batch(&mut self, buckets: &[Vec<Item>]) -> ShardedBatchReport {
        let s_count = self.engines.len();
        assert_eq!(buckets.len(), s_count, "one bucket per shard");

        // Phase 1 — real per-shard scans, local. Under the sparse fast
        // path a shard with an empty *local* bucket defers its scan: the
        // batched count below reveals whether the bucket was empty
        // fleet-wide (skip the shard entirely) or only here (run the
        // empty scan then, to keep the engine schedule aligned with the
        // standalone sampler). An empty scan never changes the local
        // length, so the deferred shards' count words are still correct.
        for (s, bucket) in buckets.iter().enumerate() {
            if self.sparse_skip && bucket.is_empty() {
                continue;
            }
            let threshold = self.engines[s].threshold_key();
            let mode = self.engines[s].config().mode;
            self.engines[s].backend_mut().scan(mode, bucket, threshold);
        }

        // Phase 2 — ONE vectorized count across all shards. With the
        // sparse fast path the same launch also carries the per-shard
        // bucket lengths (2S words instead of S, still one collective),
        // so every PE agrees on which shards saw no records anywhere.
        let t0 = Instant::now();
        let mut words: Vec<u64> = self
            .engines
            .iter()
            .map(|e| e.backend().local.len())
            .collect();
        if self.sparse_skip {
            words.extend(buckets.iter().map(|b| b.len() as u64));
        }
        let sums = self.comm.sum_u64_vec(words);
        let unions = &sums[..s_count];
        let count_share = t0.elapsed().as_secs_f64() / s_count as f64;
        let mut collective_calls = 1u32;

        // A shard skips when its bucket is empty on every PE *and* its
        // (unchanged) union does not trigger a selection — deterministic
        // from collective data, so the fleet agrees without extra wire.
        let skipped: Vec<bool> = (0..s_count)
            .map(|s| {
                self.sparse_skip && sums[s_count + s] == 0 && !self.engines[s].select_now(unions[s])
            })
            .collect();
        for s in 0..s_count {
            if skipped[s] {
                continue;
            }
            if self.sparse_skip && buckets[s].is_empty() {
                // Deferred in phase 1 but not skipped (nonempty
                // elsewhere, or a pending selection): run the empty scan
                // now so the engine's insert step finds its plan.
                let threshold = self.engines[s].threshold_key();
                let mode = self.engines[s].config().mode;
                self.engines[s]
                    .backend_mut()
                    .scan(mode, &buckets[s], threshold);
            }
            self.engines[s].backend_mut().plan.pre_union = Some((unions[s], count_share));
        }

        // Phase 3 — ONE joint selection for every shard over its limit.
        let active: Vec<usize> = (0..s_count)
            .filter(|&s| self.engines[s].select_now(unions[s]))
            .collect();
        let mut joint_rounds = 0u32;
        let mut solo_rounds = 0u64;
        if !active.is_empty() {
            let t0 = Instant::now();
            let pivots = self.engines[0].config().pivots;
            let targets: Vec<TargetRank> = active
                .iter()
                .map(|&s| self.engines[s].select_target())
                .collect();
            let totals: Vec<u64> = active.iter().map(|&s| unions[s]).collect();
            let mut rngs: Vec<DefaultRng> = active
                .iter()
                .map(|&s| self.engines[s].backend().select_rng.clone())
                .collect();
            let outcome = {
                let sets: Vec<&dyn CandidateSet> = active
                    .iter()
                    .map(|&s| self.engines[s].backend().local.candidates())
                    .collect();
                select_threaded_many(
                    self.comm,
                    &sets,
                    &targets,
                    &totals,
                    SelectParams::with_pivots(pivots),
                    &mut rngs,
                )
            };
            let select_share = t0.elapsed().as_secs_f64() / active.len() as f64;
            joint_rounds = outcome.joint_rounds;
            collective_calls += 2 * outcome.joint_rounds;
            let mut rngs = rngs.into_iter();
            for (i, &s) in active.iter().enumerate() {
                let be = self.engines[s].backend_mut();
                be.select_rng = rngs.next().expect("one stream per active shard");
                be.plan.batch_select = Some((outcome.results[i], select_share));
                solo_rounds += outcome.results[i].rounds as u64;
            }
        }

        // Phase 4 (continuous only) — plan each shard's epoch
        // publication: the post-step union is already known (selection
        // rank, or the batched count), so only the placement offsets
        // need a wire round — ONE vectorized exclusive prefix sum.
        if self.engines[0].config().continuous == ContinuousMode::EveryBatch {
            let mut keeps = Vec::with_capacity(s_count);
            let mut posts = Vec::with_capacity(s_count);
            for (s, engine) in self.engines.iter().enumerate() {
                if skipped[s] {
                    // A skipped shard keeps its previous epoch (its
                    // sample is unchanged this superstep — readers see a
                    // stale epoch number, same members); it neither
                    // publishes nor places, so it rides the collective
                    // with zero words.
                    keeps.push(0);
                    posts.push(0);
                    continue;
                }
                let be = engine.backend();
                match be.plan.batch_select {
                    Some((res, _)) => {
                        keeps.push(be.local.count_le(&res.threshold));
                        posts.push(res.rank);
                    }
                    None => {
                        keeps.push(be.local.len());
                        posts.push(unions[s]);
                    }
                }
            }
            let t0 = Instant::now();
            let offsets = self
                .comm
                .exscan(keeps.clone(), add_vecs)
                .unwrap_or_else(|| vec![0; s_count]);
            let output_share = t0.elapsed().as_secs_f64() / s_count as f64;
            collective_calls += 1;
            for s in 0..s_count {
                if skipped[s] {
                    continue;
                }
                let be = self.engines[s].backend_mut();
                be.plan.fin_union = Some((posts[s], output_share));
                be.plan.placement = Some((
                    keeps[s],
                    Placement {
                        offset: offsets[s],
                        total: posts[s],
                    },
                    output_share,
                ));
            }
        }

        // Phase 5 — every *active* engine steps; endpoints serve the
        // plan. The only remaining work is local (replayed insert,
        // prune, publication extract). A skipped shard's engine does not
        // step at all — its reservoir just accounts for the empty batch
        // (a batch-counter bump on the parallel paths, nothing on the
        // sequential one), which is exactly the state change processing
        // the empty bucket would have caused.
        let mut shards_skipped = 0usize;
        let per_shard: Vec<BatchReport> = (0..s_count)
            .map(|s| {
                if skipped[s] {
                    shards_skipped += 1;
                    self.engines[s].backend_mut().local.skip_batch();
                    return BatchReport {
                        sample_size: unions[s],
                        ..BatchReport::default()
                    };
                }
                self.engines[s].step(&[])
            })
            .collect();
        SHARDED_BATCHES.inc();
        SHARDED_JOINT_ROUNDS.add(joint_rounds as u64);
        SHARDED_SOLO_ROUNDS.add(solo_rounds);
        SHARDED_COLLECTIVE_LAUNCHES.add(collective_calls as u64);
        SHARDED_SPARSE_SKIPS.add(shards_skipped as u64);
        ShardedBatchReport {
            per_shard,
            shards_selected: active.len(),
            shards_skipped,
            joint_select_rounds: joint_rounds,
            solo_select_rounds: solo_rounds,
            collective_calls,
        }
    }

    /// Section 5 output for the whole fleet (collective): ONE batched
    /// union count, ONE joint finalize selection over every shard still
    /// above `k`, and ONE vectorized placement prefix sum — then each
    /// engine's unmodified `collect_output` serves its shard's handle.
    pub fn collect_output(&mut self) -> Vec<SampleHandle> {
        let s_count = self.engines.len();
        // Batched finalize count.
        let t0 = Instant::now();
        let lens: Vec<u64> = self
            .engines
            .iter()
            .map(|e| e.backend().local.len())
            .collect();
        let unions = self.comm.sum_u64_vec(lens);
        let count_share = t0.elapsed().as_secs_f64() / s_count as f64;
        // Joint finalize selection for shards whose union exceeds k.
        let need: Vec<usize> = (0..s_count)
            .filter(|&s| unions[s] > self.engines[s].config().k as u64)
            .collect();
        let mut fin_threshold: Vec<Option<SampleKey>> = vec![None; s_count];
        if !need.is_empty() {
            let t0 = Instant::now();
            let pivots = self.engines[0].config().pivots;
            let targets: Vec<TargetRank> = need
                .iter()
                .map(|&s| TargetRank::exact(self.engines[s].config().k as u64))
                .collect();
            let totals: Vec<u64> = need.iter().map(|&s| unions[s]).collect();
            let mut rngs: Vec<DefaultRng> = need
                .iter()
                .map(|&s| self.engines[s].backend().select_rng.clone())
                .collect();
            let outcome = {
                let sets: Vec<&dyn CandidateSet> = need
                    .iter()
                    .map(|&s| self.engines[s].backend().local.candidates())
                    .collect();
                select_threaded_many(
                    self.comm,
                    &sets,
                    &targets,
                    &totals,
                    SelectParams::with_pivots(pivots),
                    &mut rngs,
                )
            };
            let select_share = t0.elapsed().as_secs_f64() / need.len() as f64;
            let mut rngs = rngs.into_iter();
            for (i, &s) in need.iter().enumerate() {
                let be = self.engines[s].backend_mut();
                // The standalone finalize consumes the selection stream
                // (no checkpoint on the output path); match it.
                be.select_rng = rngs.next().expect("one stream per finalizing shard");
                be.plan.fin_select = Some((outcome.results[i], select_share));
                fin_threshold[s] = Some(outcome.results[i].threshold);
            }
        }
        // Vectorized placement.
        let keeps: Vec<u64> = (0..s_count)
            .map(|s| {
                let be = self.engines[s].backend();
                match &fin_threshold[s] {
                    Some(t) => be.local.count_le(t),
                    None => be.local.len(),
                }
            })
            .collect();
        let t0 = Instant::now();
        let offsets = self
            .comm
            .exscan(keeps.clone(), add_vecs)
            .unwrap_or_else(|| vec![0; s_count]);
        let output_share = t0.elapsed().as_secs_f64() / s_count as f64;
        for s in 0..s_count {
            let k = self.engines[s].config().k as u64;
            let be = self.engines[s].backend_mut();
            be.plan.fin_union = Some((unions[s], count_share));
            be.plan.placement = Some((
                keeps[s],
                Placement {
                    offset: offsets[s],
                    total: unions[s].min(k),
                },
                output_share,
            ));
        }
        self.engines
            .iter_mut()
            .map(|e| e.collect_output().0)
            .collect()
    }

    /// The sharded pipeline driver (collective): drain mini-batches
    /// from this PE's ingestion channel, route each record to its shard
    /// with `router`, run one batched superstep per drain round (ONE
    /// 1-word continue/stop vote per round fleet-wide, exactly like the
    /// single-tenant drain), and finish with [`Self::collect_output`].
    pub fn run_pipeline<F: Fn(&Item) -> u64>(
        &mut self,
        batches: &Receiver<MiniBatch>,
        router: &ShardRouter<F>,
    ) -> ShardedPipelineReport {
        assert_eq!(
            router.shards(),
            self.engines.len(),
            "router and sampler disagree on the shard count"
        );
        let mut buckets: Vec<Vec<Item>> = vec![Vec::new(); self.engines.len()];
        let (mut drained, mut rounds, mut records) = (0u64, 0u64, 0u64);
        let (mut joint, mut solo, mut calls) = (0u64, 0u64, 0u64);
        let mut open = true;
        loop {
            let next = if open {
                match batches.recv() {
                    Ok(batch) => Some(batch),
                    Err(_) => {
                        open = false;
                        None
                    }
                }
            } else {
                None
            };
            let active = self.comm.sum_u64(next.is_some() as u64);
            if active == 0 {
                break;
            }
            for bucket in &mut buckets {
                bucket.clear();
            }
            if let Some(batch) = next {
                drained += 1;
                records += batch.items.len() as u64;
                router.route_into(batch.items, &mut buckets);
            }
            let report = self.process_batch(&buckets);
            rounds += 1;
            joint += report.joint_select_rounds as u64;
            solo += report.solo_select_rounds;
            calls += report.collective_calls as u64;
        }
        let handles = self.collect_output();
        ShardedPipelineReport {
            batches: drained,
            rounds,
            records,
            joint_select_rounds: joint,
            solo_select_rounds: solo,
            collective_calls: calls,
            handles,
        }
    }
}
