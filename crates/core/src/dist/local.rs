//! The per-PE local reservoir: an augmented B+ tree fed by jump scans.
//!
//! Two insertion regimes, matching Algorithm 1:
//!
//! * **Threshold mode** (`threshold = Some(t)`, the steady state): every
//!   item whose key falls below the globally agreed threshold `t` enters
//!   the tree. The scan never draws a key per item — it skips
//!   `Exp(t)`-distributed amounts of *weight* (weighted) or geometrically
//!   many *items* (uniform) between insertions, and gives each inserted
//!   item a key drawn from its conditional distribution given `key < t`.
//!   The tree grows during the batch; the caller prunes it after the next
//!   distributed selection.
//! * **Growing mode** (`threshold = None`): the global sample has not
//!   reached the target size yet, so no global threshold exists. The PE
//!   keeps its local `cap` smallest keys (a plain sequential reservoir) —
//!   a superset of this PE's contribution to any future global sample.
//!
//! The weighted scan processes items in blocks of 32, summing whole blocks
//! against the remaining skip before touching individual weights (the
//! Section 5 implementation trick; `benches/micro.rs` measures the gain).

use reservoir_btree::{BPlusTree, SampleKey};
use reservoir_rng::Rng64;
use reservoir_stream::Item;

use crate::sample::SampleItem;

/// Block width of the weighted skip scan.
const SCAN_BLOCK: usize = 32;

/// Work counters for one scan call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Items offered.
    pub processed: u64,
    /// Items that entered the reservoir.
    pub inserted: u64,
    /// Skip values drawn.
    pub jumps: u64,
    /// Chunks the parallel scan split the batch into (0 on the sequential
    /// path, which scans the batch in one piece).
    pub chunks: u64,
    /// Chunk tasks a pool worker took from another worker's queue
    /// (parallel scan only; 0 on the sequential path).
    pub steals: u64,
    /// OS threads spawned for this scan: `threads − 1` per batch on the
    /// default per-scope pool, 0 on the sequential path *and* on a
    /// persistent crew (`DistConfig::with_persistent_pool`), which is
    /// exactly the saving the persistent option buys.
    pub spawns: u64,
    /// Seqlock conflicts the concurrent merge mode's shared tree retried
    /// during this scan (`MergeMode::Concurrent` only; 0 on the
    /// sequential and epilogue paths).
    pub retries: u64,
}

/// A PE's local reservoir over the augmented B+ tree.
pub struct LocalReservoir {
    cap: usize,
    tree: BPlusTree<SampleKey, f64>,
}

impl LocalReservoir {
    /// Reservoir capped at `cap` entries in growing mode, with B+ tree node
    /// degree `degree`.
    pub fn new(cap: usize, degree: usize) -> Self {
        assert!(cap >= 1, "reservoir capacity must be at least 1");
        LocalReservoir {
            cap,
            tree: BPlusTree::with_degree(degree),
        }
    }

    /// Number of entries currently held.
    pub fn len(&self) -> u64 {
        self.tree.len() as u64
    }

    /// Whether the reservoir holds no entries.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// The underlying tree (a [`reservoir_select::CandidateSet`] for the
    /// distributed selection).
    pub fn tree(&self) -> &BPlusTree<SampleKey, f64> {
        &self.tree
    }

    /// Drop every entry with a key strictly above `t`.
    pub fn prune_above(&mut self, t: &SampleKey) {
        let _ = self.tree.split_at_key(t, true);
    }

    /// Current entries as sample items.
    pub fn items(&self) -> Vec<SampleItem> {
        let mut out = Vec::with_capacity(self.tree.len());
        self.items_into(&mut out);
        out
    }

    /// Write the current entries into `buf` (cleared first), reusing its
    /// allocation — the counterpart of `StreamSource::next_batch_of_into`
    /// for the finalize/output path, where the same buffer is refilled
    /// every batch.
    pub fn items_into(&self, buf: &mut Vec<SampleItem>) {
        buf.clear();
        buf.extend(self.tree.iter().map(|(k, w)| SampleItem::from_entry(k, *w)));
    }

    /// Remove all entries.
    pub fn clear(&mut self) {
        self.tree.clear();
    }

    /// Remove and return all entries.
    pub fn drain(&mut self) -> Vec<SampleItem> {
        let out = self.items();
        self.clear();
        out
    }

    /// Move all entries into `buf` (cleared first), reusing its
    /// allocation; the reservoir is left empty.
    pub fn drain_into(&mut self, buf: &mut Vec<SampleItem>) {
        self.items_into(buf);
        self.clear();
    }

    /// Scan a weighted mini-batch. With `threshold = Some(t)`, insert every
    /// item whose key falls below `t` (exponential jumps, conditional
    /// keys); with `None`, keep the local `cap` smallest keys.
    pub fn process_weighted(
        &mut self,
        items: &[Item],
        threshold: Option<f64>,
        rng: &mut impl Rng64,
    ) -> ScanStats {
        match threshold {
            Some(t) => self.scan_weighted_threshold(items, t, rng),
            None => self.grow_weighted(items, rng),
        }
    }

    /// Scan a uniform mini-batch (all weights 1). Same regimes as
    /// [`Self::process_weighted`], with geometric jumps and `U(0, t]`
    /// conditional keys.
    pub fn process_uniform(
        &mut self,
        items: &[Item],
        threshold: Option<f64>,
        rng: &mut impl Rng64,
    ) -> ScanStats {
        match threshold {
            Some(t) => self.scan_uniform_threshold(items, t, rng),
            None => self.grow_uniform(items, rng),
        }
    }

    /// Fixed-threshold weighted scan: blocked exponential jumps.
    fn scan_weighted_threshold(
        &mut self,
        items: &[Item],
        t: f64,
        rng: &mut impl Rng64,
    ) -> ScanStats {
        debug_assert!(t > 0.0, "threshold must be positive");
        let mut stats = ScanStats {
            processed: items.len() as u64,
            ..ScanStats::default()
        };
        if items.is_empty() {
            // Draw-free on empty batches: the exponential jump sequence is
            // drawn fresh each batch, so skipping the initial draw changes
            // no insertion law — and it makes an empty batch consume zero
            // randomness on every scan path (the sharded sparse-batch fast
            // path leans on this to skip fleet-empty shards entirely).
            return stats;
        }
        let mut skip = rng.exponential(t);
        stats.jumps += 1;
        let mut i = 0;
        while i < items.len() {
            let end = (i + SCAN_BLOCK).min(items.len());
            let block_weight: f64 = items[i..end].iter().map(|it| it.weight).sum();
            if skip > block_weight {
                // The whole block is skipped: one subtraction, no keys.
                skip -= block_weight;
                i = end;
                continue;
            }
            for item in &items[i..end] {
                skip -= item.weight;
                if skip <= 0.0 {
                    // This item crosses the jump boundary: its key is
                    // conditioned on beating the threshold (Section 4.1).
                    let x = (-t * item.weight).exp();
                    let v = -rng.rand_range_oc(x, 1.0).ln() / item.weight;
                    self.tree.insert(SampleKey::new(v, item.id), item.weight);
                    stats.inserted += 1;
                    skip = rng.exponential(t);
                    stats.jumps += 1;
                }
            }
            i = end;
        }
        stats
    }

    /// Fixed-threshold uniform scan: geometric jumps over item counts.
    fn scan_uniform_threshold(
        &mut self,
        items: &[Item],
        t: f64,
        rng: &mut impl Rng64,
    ) -> ScanStats {
        debug_assert!(t > 0.0);
        let mut stats = ScanStats {
            processed: items.len() as u64,
            ..ScanStats::default()
        };
        if t >= 1.0 {
            // Degenerate threshold: every key qualifies.
            for item in items {
                let v = rng.rand_oc();
                self.tree.insert(SampleKey::new(v, item.id), item.weight);
                stats.inserted += 1;
            }
            return stats;
        }
        let mut next = 0u64;
        let n = items.len() as u64;
        while next < n {
            let skip = rng.geometric_skips(t);
            stats.jumps += 1;
            if skip >= n - next {
                break;
            }
            next += skip;
            let item = &items[next as usize];
            // Key conditioned on < t: uniform in (0, t].
            let v = rng.rand_oc() * t;
            self.tree.insert(SampleKey::new(v, item.id), item.weight);
            stats.inserted += 1;
            next += 1;
        }
        stats
    }

    /// Growing-phase weighted scan: a sequential jump reservoir over the
    /// local `cap` smallest keys.
    fn grow_weighted(&mut self, items: &[Item], rng: &mut impl Rng64) -> ScanStats {
        let mut stats = ScanStats {
            processed: items.len() as u64,
            ..ScanStats::default()
        };
        let mut iter = items.iter();
        // Fill phase: every item draws a key and enters.
        for item in iter.by_ref() {
            if self.tree.len() >= self.cap {
                // Un-consume is impossible; handle this item in the jump
                // phase by seeding the scan with it.
                self.grow_weighted_jump(item, iter.as_slice(), rng, &mut stats);
                return stats;
            }
            let v = rng.exponential(item.weight);
            self.tree.insert(SampleKey::new(v, item.id), item.weight);
            stats.inserted += 1;
        }
        stats
    }

    /// Jump phase of the growing weighted scan, starting at `first` then
    /// continuing over `rest`.
    fn grow_weighted_jump(
        &mut self,
        first: &Item,
        rest: &[Item],
        rng: &mut impl Rng64,
        stats: &mut ScanStats,
    ) {
        let mut t = self.local_threshold().expect("tree at capacity");
        let mut skip = rng.exponential(t);
        stats.jumps += 1;
        for item in std::iter::once(first).chain(rest) {
            skip -= item.weight;
            if skip > 0.0 {
                continue;
            }
            let x = (-t * item.weight).exp();
            let v = -rng.rand_range_oc(x, 1.0).ln() / item.weight;
            self.replace_max(SampleKey::new(v, item.id), item.weight);
            stats.inserted += 1;
            t = self.local_threshold().expect("tree at capacity");
            skip = rng.exponential(t);
            stats.jumps += 1;
        }
    }

    /// Growing-phase uniform scan.
    fn grow_uniform(&mut self, items: &[Item], rng: &mut impl Rng64) -> ScanStats {
        let mut stats = ScanStats {
            processed: items.len() as u64,
            ..ScanStats::default()
        };
        let mut idx = 0usize;
        // Fill phase.
        while idx < items.len() && self.tree.len() < self.cap {
            let item = &items[idx];
            let v = rng.rand_oc();
            self.tree.insert(SampleKey::new(v, item.id), item.weight);
            stats.inserted += 1;
            idx += 1;
        }
        // Jump phase against the evolving local threshold.
        while idx < items.len() {
            let t = self.local_threshold().expect("tree at capacity");
            if t >= 1.0 {
                // Cannot skip; fall back to a direct draw.
                let item = &items[idx];
                let v = rng.rand_oc();
                if v < t {
                    self.replace_max(SampleKey::new(v, item.id), item.weight);
                    stats.inserted += 1;
                }
                idx += 1;
                continue;
            }
            let skip = rng.geometric_skips(t);
            stats.jumps += 1;
            let remaining = (items.len() - idx) as u64;
            if skip >= remaining {
                break;
            }
            idx += skip as usize;
            let item = &items[idx];
            let v = rng.rand_oc() * t;
            self.replace_max(SampleKey::new(v, item.id), item.weight);
            stats.inserted += 1;
            idx += 1;
        }
        stats
    }

    /// The local threshold in growing mode: the largest key held, once the
    /// tree is at capacity.
    fn local_threshold(&self) -> Option<f64> {
        (self.tree.len() >= self.cap).then(|| self.tree.max().expect("at capacity").0.key)
    }

    /// Insert `key` and evict the largest entry (growing mode at capacity).
    fn replace_max(&mut self, key: SampleKey, weight: f64) {
        let max = *self.tree.max().expect("nonempty").0;
        debug_assert!(key <= max, "replacement key must beat the local threshold");
        self.tree.insert(key, weight);
        self.tree.remove(&max);
    }
}

/// What one [`PeReservoir::process`] call did: the scan counters plus the
/// parallel path's timing detail.
pub(crate) struct ScanOutcome {
    /// The (backend-agnostic) scan counters.
    pub stats: ScanStats,
    /// Busiest worker's seconds inside the parallel scan region (0 on the
    /// sequential path); accrues into [`crate::metrics::PhaseTimes::par_scan`].
    pub par_scan_max_s: f64,
    /// The full per-worker breakdown (parallel path only).
    pub par: Option<reservoir_par::ParScanStats>,
}

/// A PE's local reservoir behind the `threads_per_pe` and `merge` knobs:
/// the sequential [`LocalReservoir`] at one thread, `reservoir_par`'s
/// chunked work-stealing scan above that, and the shared concurrent tree
/// (`reservoir_par::ConcurrentReservoir`) when
/// `MergeMode::Concurrent` is selected — at *any* thread count, so a
/// single-threaded concurrent baseline exists for the no-regression
/// guard. All three realize the identical sampling law (the paper's
/// Section 4 regimes); only the scan/merge schedule differs.
pub(crate) enum PeReservoir {
    /// `threads_per_pe == 1` (epilogue merge): the classic sequential jump
    /// scan, drawing from the caller's key RNG.
    Seq(LocalReservoir),
    /// `threads_per_pe > 1` (epilogue merge): chunked parallel scans with
    /// per-chunk RNG streams rooted at the PE's dedicated parallel-scan
    /// seed, merged by a sequential epilogue.
    Par(reservoir_par::ParLocalReservoir),
    /// `MergeMode::Concurrent`: the same chunked scans inserting directly
    /// into one shared optimistic-lock-coupling tree.
    Conc(reservoir_par::ConcurrentReservoir),
}

impl PeReservoir {
    /// Build the reservoir for `threads` workers. `par_seed` roots the
    /// parallel paths' per-chunk streams (unused sequentially);
    /// `persistent` keeps one worker crew alive across batches instead of
    /// spawning helpers per scan (`reservoir_par::Pool::persistent`);
    /// `merge` selects buffered-epilogue vs shared-tree candidate merging.
    /// `node_pool` (optional) shares a page-granular allocator with other
    /// reservoirs' concurrent trees — the shard-fleet storage lever.
    /// `None` keeps each tree's private pool. `leaf_affinity` selects
    /// key-ordered micro-batched inserts on the concurrent path. The
    /// Seq/Par arms use the `Box`-node sequential tree and ignore both.
    #[allow(clippy::too_many_arguments)] // one knob per parameter; config-shaped callers use for_config_pooled
    pub fn new(
        cap: usize,
        degree: usize,
        threads: usize,
        par_seed: u64,
        persistent: bool,
        merge: crate::dist::MergeMode,
        leaf_affinity: bool,
        node_pool: Option<std::sync::Arc<reservoir_btree::NodePool>>,
    ) -> Self {
        if merge == crate::dist::MergeMode::Concurrent {
            let mut conc = match node_pool {
                Some(pool) => {
                    reservoir_par::ConcurrentReservoir::new_in_pool(cap, threads, par_seed, pool)
                }
                None => reservoir_par::ConcurrentReservoir::new(cap, threads, par_seed),
            }
            .with_leaf_affinity(leaf_affinity);
            if persistent {
                conc = conc.with_pool(reservoir_par::Pool::persistent(threads));
            }
            return PeReservoir::Conc(conc);
        }
        if threads <= 1 {
            PeReservoir::Seq(LocalReservoir::new(cap, degree))
        } else {
            let mut par = reservoir_par::ParLocalReservoir::new(cap, degree, threads, par_seed);
            if persistent {
                par = par.with_pool(reservoir_par::Pool::persistent(threads));
            }
            PeReservoir::Par(par)
        }
    }

    /// Build from a [`DistConfig`]'s scan knobs (`threads_per_pe`,
    /// `persistent_pool`, `merge`) with capacity `cap`.
    pub fn for_config(cfg: &crate::dist::DistConfig, cap: usize, par_seed: u64) -> Self {
        Self::for_config_pooled(cfg, cap, par_seed, None)
    }

    /// [`Self::for_config`] with an optional shared node pool (see
    /// [`Self::new`]).
    pub fn for_config_pooled(
        cfg: &crate::dist::DistConfig,
        cap: usize,
        par_seed: u64,
        node_pool: Option<std::sync::Arc<reservoir_btree::NodePool>>,
    ) -> Self {
        Self::new(
            cap,
            reservoir_btree::DEFAULT_DEGREE,
            cfg.threads_per_pe,
            par_seed,
            cfg.persistent_pool,
            cfg.merge,
            cfg.leaf_affinity,
            node_pool,
        )
    }

    /// Number of entries currently held.
    pub fn len(&self) -> u64 {
        match self {
            PeReservoir::Seq(r) => r.len(),
            PeReservoir::Par(r) => r.len(),
            PeReservoir::Conc(r) => r.len(),
        }
    }

    /// The local candidate set the distributed selection runs over. The
    /// concurrent tree's subtree sizes are refreshed at the end of every
    /// `process` call, so its rank queries are valid in the protocol's
    /// sequential phases — exactly where selection runs.
    pub fn candidates(&self) -> &dyn reservoir_select::CandidateSet {
        match self {
            PeReservoir::Seq(r) => r.tree(),
            PeReservoir::Par(r) => r.tree(),
            PeReservoir::Conc(r) => r.tree(),
        }
    }

    /// Number of keys at or below `t`.
    pub fn count_le(&self, t: &SampleKey) -> u64 {
        reservoir_select::CandidateSet::count_le(self.candidates(), t)
    }

    /// Drop every entry with a key strictly above `t`.
    pub fn prune_above(&mut self, t: &SampleKey) {
        match self {
            PeReservoir::Seq(r) => r.prune_above(t),
            PeReservoir::Par(r) => r.prune_above(t),
            PeReservoir::Conc(r) => r.prune_above(t),
        }
    }

    /// Current entries as sample items.
    pub fn items(&self) -> Vec<SampleItem> {
        let mut out = Vec::with_capacity(self.len() as usize);
        self.items_into(&mut out);
        out
    }

    /// Write the current entries into `buf` (cleared first), reusing its
    /// allocation; all arms emit in ascending key order, so the extract
    /// paths cannot diverge.
    pub fn items_into(&self, buf: &mut Vec<SampleItem>) {
        buf.clear();
        match self {
            PeReservoir::Seq(r) => {
                buf.extend(r.tree().iter().map(|(k, w)| SampleItem::from_entry(k, *w)));
            }
            PeReservoir::Par(r) => {
                buf.extend(r.tree().iter().map(|(k, w)| SampleItem::from_entry(k, *w)));
            }
            PeReservoir::Conc(r) => {
                r.tree()
                    .for_each(|k, w| buf.push(SampleItem::from_entry(k, w)));
            }
        }
    }

    /// Move all entries into `buf` (cleared first), reusing its allocation.
    pub fn drain_into(&mut self, buf: &mut Vec<SampleItem>) {
        self.items_into(buf);
        match self {
            PeReservoir::Seq(r) => r.clear(),
            PeReservoir::Par(r) => r.clear(),
            PeReservoir::Conc(r) => r.clear(),
        }
    }

    /// Scan one mini-batch in the given sampling mode. The sequential path
    /// consumes `rng`; the parallel path uses its own per-chunk streams.
    pub fn process(
        &mut self,
        mode: crate::dist::SamplingMode,
        items: &[Item],
        threshold: Option<f64>,
        rng: &mut impl Rng64,
    ) -> ScanOutcome {
        use crate::dist::SamplingMode;
        match self {
            PeReservoir::Seq(r) => {
                let stats = match mode {
                    SamplingMode::Weighted => r.process_weighted(items, threshold, rng),
                    SamplingMode::Uniform => r.process_uniform(items, threshold, rng),
                };
                ScanOutcome {
                    stats,
                    par_scan_max_s: 0.0,
                    par: None,
                }
            }
            PeReservoir::Par(r) => {
                let par = match mode {
                    SamplingMode::Weighted => r.process_weighted(items, threshold),
                    SamplingMode::Uniform => r.process_uniform(items, threshold),
                };
                Self::par_outcome(par)
            }
            PeReservoir::Conc(r) => {
                let par = match mode {
                    SamplingMode::Weighted => r.process_weighted(items, threshold),
                    SamplingMode::Uniform => r.process_uniform(items, threshold),
                };
                Self::par_outcome(par)
            }
        }
    }

    /// Account for a mini-batch this reservoir never saw — the sharded
    /// sparse-batch fast path, which skips the scan (and the engine step)
    /// for shards whose bucket is empty fleet-wide. Equivalent to
    /// `process` on an empty slice: the sequential scan draws nothing on
    /// an empty batch, and the parallel paths only advance their batch
    /// counter (which roots the per-chunk RNG streams), so the sampling
    /// trajectory stays byte-identical to processing the empty bucket.
    pub fn skip_batch(&mut self) {
        match self {
            PeReservoir::Seq(_) => {}
            PeReservoir::Par(r) => r.note_empty_batch(),
            PeReservoir::Conc(r) => r.note_empty_batch(),
        }
    }

    fn par_outcome(par: reservoir_par::ParScanStats) -> ScanOutcome {
        ScanOutcome {
            stats: ScanStats {
                processed: par.processed,
                inserted: par.inserted,
                jumps: par.jumps,
                chunks: par.chunks,
                steals: par.steals,
                spawns: par.spawns,
                retries: par.retries,
            },
            par_scan_max_s: par.max_worker_scan_s(),
            par: Some(par),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reservoir_rng::default_rng;

    fn batch(n: u64, weight: impl Fn(u64) -> f64) -> Vec<Item> {
        (0..n).map(|i| Item::new(i, weight(i))).collect()
    }

    #[test]
    fn threshold_scan_inserts_only_below_threshold() {
        let mut r = LocalReservoir::new(8, 32);
        let mut rng = default_rng(1);
        let t = 0.01;
        let stats = r.process_weighted(&batch(10_000, |_| 1.0), Some(t), &mut rng);
        assert_eq!(stats.processed, 10_000);
        assert_eq!(stats.inserted, r.len());
        // E[inserted] = n (1 - e^{-t}) ≈ 99.5.
        assert!((30..300).contains(&stats.inserted), "{}", stats.inserted);
        assert!(r.items().iter().all(|s| s.key <= t));
    }

    #[test]
    fn threshold_scan_matches_bernoulli_rate() {
        // P(key < t) = 1 - e^{-t w}; check the aggregate insertion rate.
        let t = 0.05;
        let w = 2.0f64;
        let expect = 1.0 - (-t * w).exp();
        let mut total = 0u64;
        let n = 20_000u64;
        for seed in 0..10 {
            let mut r = LocalReservoir::new(8, 32);
            let mut rng = default_rng(seed);
            total += r
                .process_weighted(&batch(n, |_| w), Some(t), &mut rng)
                .inserted;
        }
        let rate = total as f64 / (10 * n) as f64;
        assert!(
            (rate - expect).abs() < 0.1 * expect,
            "rate {rate} vs {expect}"
        );
    }

    #[test]
    fn growing_mode_keeps_cap_smallest() {
        let mut r = LocalReservoir::new(50, 32);
        let mut rng = default_rng(3);
        let stats = r.process_weighted(&batch(5_000, |i| 1.0 + (i % 7) as f64), None, &mut rng);
        assert_eq!(r.len(), 50);
        assert_eq!(stats.processed, 5_000);
        // Jump scanning touches far fewer items than it processes.
        assert!(stats.inserted < 1_500, "{}", stats.inserted);
        let items = r.items();
        let max = items.iter().map(|s| s.key).fold(f64::MIN, f64::max);
        assert_eq!(r.local_threshold(), Some(max));
    }

    #[test]
    fn growing_mode_partial_fill() {
        let mut r = LocalReservoir::new(100, 32);
        let mut rng = default_rng(4);
        r.process_weighted(&batch(30, |_| 1.0), None, &mut rng);
        assert_eq!(r.len(), 30);
        // A second batch continues filling, then spills into jumps.
        r.process_weighted(&batch(500, |_| 1.0), None, &mut rng);
        assert_eq!(r.len(), 100);
    }

    #[test]
    fn uniform_threshold_scan_rate_and_range() {
        let t = 0.02;
        let n = 50_000u64;
        let mut r = LocalReservoir::new(8, 32);
        let mut rng = default_rng(5);
        let stats = r.process_uniform(&batch(n, |_| 1.0), Some(t), &mut rng);
        let expect = n as f64 * t;
        assert!(
            (stats.inserted as f64 - expect).abs() < 6.0 * expect.sqrt() + 10.0,
            "inserted {} vs {expect}",
            stats.inserted
        );
        assert!(r.items().iter().all(|s| s.key > 0.0 && s.key <= t));
    }

    #[test]
    fn uniform_growing_mode_inclusion() {
        // Inclusion of the last item must be cap/n.
        let n = 400u64;
        let cap = 20usize;
        let trials = 3_000u64;
        let mut hits = 0u32;
        for seed in 0..trials {
            let mut r = LocalReservoir::new(cap, 32);
            let mut rng = default_rng(seed);
            r.process_uniform(&batch(n, |_| 1.0), None, &mut rng);
            if r.items().iter().any(|s| s.id == n - 1) {
                hits += 1;
            }
        }
        let frac = hits as f64 / trials as f64;
        let expect = cap as f64 / n as f64;
        assert!((frac - expect).abs() < 0.015, "{frac} vs {expect}");
    }

    #[test]
    fn prune_and_drain() {
        let mut r = LocalReservoir::new(10, 32);
        let mut rng = default_rng(6);
        r.process_weighted(&batch(200, |_| 1.0), None, &mut rng);
        let items = r.items();
        let mut keys: Vec<f64> = items.iter().map(|s| s.key).collect();
        keys.sort_by(f64::total_cmp);
        let cut = SampleKey::new(keys[4], u64::MAX);
        r.prune_above(&cut);
        assert_eq!(r.len(), 5);
        let drained = r.drain();
        assert_eq!(drained.len(), 5);
        assert!(r.is_empty());
    }

    #[test]
    fn empty_batches_are_noops() {
        let mut r = LocalReservoir::new(10, 32);
        let mut rng = default_rng(7);
        let s1 = r.process_weighted(&[], Some(0.5), &mut rng);
        let s2 = r.process_weighted(&[], None, &mut rng);
        let s3 = r.process_uniform(&[], Some(0.5), &mut rng);
        assert_eq!(s1.inserted + s2.inserted + s3.inserted, 0);
        assert!(r.is_empty());
    }
}
