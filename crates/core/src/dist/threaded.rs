//! Algorithm 1 on the real message-passing backend: every PE runs one
//! [`DistributedSampler`] over a shared [`Communicator`].
//!
//! `process_batch` must be called collectively (same number of calls on
//! every PE, empty slices allowed); all other methods are local except
//! [`DistributedSampler::gather_sample`], which is also collective.

use std::sync::mpsc::Receiver;
use std::time::Instant;

use reservoir_btree::{SampleKey, DEFAULT_DEGREE};
use reservoir_comm::{Collectives, Communicator};
use reservoir_rng::{DefaultRng, SeedSequence, StreamKind};
use reservoir_select::{select_threaded, SelectParams, TargetRank};
use reservoir_stream::ingest::MiniBatch;
use reservoir_stream::Item;

use crate::dist::local::PeReservoir;
use crate::dist::output::SampleHandle;
use crate::dist::{BatchReport, DistConfig, PipelineReport, PAR_SCAN_STREAM};
use crate::metrics::PhaseTimes;
use crate::sample::SampleItem;

/// Wire representation of one sample member: `(id, weight, key)`.
type WireItem = (u64, f64, f64);

/// One PE's endpoint of the distributed mini-batch sampler (Algorithm 1).
pub struct DistributedSampler<'a, C: Communicator> {
    comm: &'a C,
    cfg: DistConfig,
    local: PeReservoir,
    threshold: Option<SampleKey>,
    key_rng: DefaultRng,
    select_rng: DefaultRng,
    phases: PhaseTimes,
    last_par: Option<reservoir_par::ParScanStats>,
}

impl<'a, C: Communicator> DistributedSampler<'a, C> {
    /// Create this PE's endpoint. Every PE of `comm` must construct its
    /// sampler with an identical `cfg` (including `threads_per_pe` — the
    /// scan schedule is local, but reports should be comparable).
    pub fn new(comm: &'a C, cfg: DistConfig) -> Self {
        // Salt the master seed with the sample size so samplers of
        // different geometry draw independent streams even under the same
        // user seed.
        let seq = SeedSequence::new(cfg.seed ^ (cfg.k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        DistributedSampler {
            comm,
            local: PeReservoir::new(
                cfg.local_cap(),
                DEFAULT_DEGREE,
                cfg.threads_per_pe,
                seq.seed_for(comm.rank(), StreamKind::Custom(PAR_SCAN_STREAM)),
            ),
            threshold: None,
            key_rng: seq.rng_for(comm.rank(), StreamKind::Keys),
            select_rng: seq.rng_for(comm.rank(), StreamKind::Selection),
            phases: PhaseTimes::default(),
            last_par: None,
            cfg,
        }
    }

    /// Process one mini-batch (collective). Returns what happened.
    pub fn process_batch(&mut self, items: &[Item]) -> BatchReport {
        let mut times = PhaseTimes::default();

        // Phase 1: local insertion below the current threshold.
        let t0 = Instant::now();
        let t = self.threshold.map(|k| k.key);
        let outcome = self
            .local
            .process(self.cfg.mode, items, t, &mut self.key_rng);
        times.insert += t0.elapsed().as_secs_f64();
        times.par_scan += outcome.par_scan_max_s;
        let stats = outcome.stats;
        self.last_par = outcome.par;

        // Phase 2: agree on the union size.
        let t1 = Instant::now();
        let union = self.comm.sum_u64(self.local.len());
        times.threshold += t1.elapsed().as_secs_f64();

        // Phase 3: if the union outgrew the limit, re-select the threshold
        // and prune. The first selection already runs when the union
        // *reaches* the target size — that is the moment the reservoir
        // fills and the insertion threshold comes into existence.
        let mut sample_size = union;
        let mut rounds = 0u32;
        let select_now = union > self.cfg.size_limit()
            || (self.threshold.is_none()
                && self.cfg.size_window.is_none()
                && union >= self.cfg.k as u64);
        if select_now {
            let t2 = Instant::now();
            let target = match self.cfg.size_window {
                Some((lo, hi)) => TargetRank::range(lo, hi),
                None => TargetRank::exact(self.cfg.k as u64),
            };
            let res = select_threaded(
                self.comm,
                self.local.tree(),
                target,
                union,
                SelectParams::with_pivots(self.cfg.pivots),
                &mut self.select_rng,
            );
            times.select += t2.elapsed().as_secs_f64();
            let t3 = Instant::now();
            self.threshold = Some(res.threshold);
            self.local.prune_above(&res.threshold);
            sample_size = res.rank;
            rounds = res.rounds;
            times.threshold += t3.elapsed().as_secs_f64();
        }
        self.phases.accumulate(&times);
        BatchReport {
            sample_size,
            select_rounds: rounds,
            inserted: stats.inserted,
            scan: stats,
            times,
        }
    }

    /// The parallel scan's per-worker breakdown for the most recent batch
    /// (`None` at one thread per PE, or before the first batch).
    pub fn last_par_scan(&self) -> Option<&reservoir_par::ParScanStats> {
        self.last_par.as_ref()
    }

    /// Drive the sampler from a push-based ingestion channel (collective):
    /// drain mini-batches cut by a `reservoir_stream::ingest::Batcher`,
    /// [`Self::process_batch`] each, and finish with one collective
    /// [`Self::collect_output`].
    ///
    /// The drain itself is made collective by a 1-word all-reduce per
    /// round: a PE whose channel is closed and drained contributes an
    /// empty batch as long as any other PE still has input, and the loop
    /// ends only when every channel is exhausted — so `process_batch`'s
    /// "same number of calls on every PE" contract holds even when
    /// streams have unequal lengths. Time blocked on the channel (the
    /// producer being slower than the sampler) and in the continue/stop
    /// agreement accrues in [`PhaseTimes::ingest`]; the report's `times`
    /// carries this drain's full phase decomposition.
    pub fn run_pipeline(&mut self, batches: &Receiver<MiniBatch>) -> PipelineReport {
        let comm = self.comm;
        let before = self.phases;
        let mut inserted = 0u64;
        let mut select_rounds = 0u64;
        let stats = crate::dist::drain_collective(comm, batches, |items| {
            let report = self.process_batch(items);
            inserted += report.inserted;
            select_rounds += report.select_rounds as u64;
        });
        self.phases.ingest += stats.ingest_wait_s;
        let handle = self.collect_output();
        PipelineReport {
            batches: stats.batches,
            rounds: stats.rounds,
            records: stats.records,
            inserted,
            select_rounds,
            ingest_wait_s: stats.ingest_wait_s,
            times: self.phases.delta_since(&before),
            handle,
        }
    }

    /// Fully distributed output collection (collective; paper Section 5).
    ///
    /// Finalizes the sample to exactly `min(k, items seen)` members — in
    /// variable-size mode (or after a mid-window stream cut) one
    /// distributed selection for rank `k` fixes the final threshold; no
    /// items move — and assigns every PE the global output positions of its
    /// slice via an exclusive prefix count. O(d · rounds + 1) words per PE
    /// at O(α log p) latency, independent of `k` and the stream length.
    ///
    /// The sampler itself is left untouched (its local reservoir keeps any
    /// members above the finalization threshold), so streaming may continue
    /// afterwards; the handle is a consistent snapshot.
    pub fn collect_output(&mut self) -> SampleHandle {
        let t0 = Instant::now();
        let union = self.comm.sum_u64(self.local.len());
        let k = self.cfg.k as u64;
        let (items, threshold) = if union > k {
            // Variable-size mode holds up to k̄ members between selections;
            // the output is defined as the exact-k sample (Section 4.4).
            let res = select_threaded(
                self.comm,
                self.local.tree(),
                TargetRank::exact(k),
                union,
                SelectParams::with_pivots(self.cfg.pivots),
                &mut self.select_rng,
            );
            let keep = self.local.tree().count_le(&res.threshold);
            let mut items = Vec::with_capacity(keep);
            self.local.items_into(&mut items);
            items.truncate(keep);
            (items, Some(res.threshold.key))
        } else {
            (self.local.items(), self.threshold.map(|t| t.key))
        };
        let handle = SampleHandle::assemble(self.comm, items, threshold);
        self.phases.output += t0.elapsed().as_secs_f64();
        handle
    }

    /// The current global insertion threshold, once established.
    pub fn threshold(&self) -> Option<f64> {
        self.threshold.map(|k| k.key)
    }

    /// Number of sample members held by this PE.
    pub fn local_len(&self) -> u64 {
        self.local.len()
    }

    /// This PE's sample members.
    pub fn local_sample(&self) -> Vec<SampleItem> {
        self.local.items()
    }

    /// Gather the full sample at PE 0 (collective): `Some(sample)` there,
    /// `None` elsewhere.
    pub fn gather_sample(&self) -> Option<Vec<SampleItem>> {
        let wire: Vec<WireItem> = self
            .local
            .items()
            .into_iter()
            .map(|s| (s.id, s.weight, s.key))
            .collect();
        self.comm.gather(0, wire).map(|parts| {
            parts
                .into_iter()
                .flatten()
                .map(|(id, weight, key)| SampleItem { id, weight, key })
                .collect()
        })
    }

    /// Accumulated wall-clock seconds per algorithm phase.
    pub fn phase_totals(&self) -> PhaseTimes {
        self.phases
    }

    /// The configuration this sampler runs with.
    pub fn config(&self) -> &DistConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reservoir_comm::run_threads;
    use reservoir_stream::ingest::{spawn_source, BatchPolicy, ReplayRecords};

    fn unit_batch(rank: usize, batch: u64, n: u64) -> Vec<Item> {
        (0..n)
            .map(|i| Item::new(((rank as u64) << 40) | (batch << 20) | i, 1.0))
            .collect()
    }

    #[test]
    fn single_pe_matches_sequential_law() {
        // p = 1 distributed sampling is just reservoir sampling.
        let results = run_threads(1, |comm| {
            let mut s = DistributedSampler::new(&comm, DistConfig::weighted(20, 5));
            for b in 0..4u64 {
                s.process_batch(&unit_batch(0, b, 100));
            }
            (s.local_len(), s.threshold(), s.gather_sample())
        });
        let (len, t, sample) = &results[0];
        assert_eq!(*len, 20);
        let sample = sample.as_ref().expect("root");
        assert_eq!(sample.len(), 20);
        let max_key = sample.iter().map(|s| s.key).fold(f64::MIN, f64::max);
        assert_eq!(*t, Some(max_key));
    }

    #[test]
    fn threshold_is_agreed_and_monotone() {
        let results = run_threads(3, |comm| {
            let mut s = DistributedSampler::new(&comm, DistConfig::weighted(50, 9));
            let mut history = Vec::new();
            for b in 0..5u64 {
                s.process_batch(&unit_batch(comm.rank(), b, 200));
                history.push(s.threshold());
            }
            history
        });
        for r in &results[1..] {
            assert_eq!(r, &results[0]);
        }
        let established: Vec<f64> = results[0].iter().flatten().copied().collect();
        assert!(!established.is_empty());
        assert!(established.windows(2).all(|w| w[1] <= w[0]));
    }

    #[test]
    fn phase_totals_accumulate() {
        let results = run_threads(2, |comm| {
            let mut s = DistributedSampler::new(&comm, DistConfig::uniform(10, 3));
            for b in 0..3u64 {
                s.process_batch(&unit_batch(comm.rank(), b, 500));
            }
            s.phase_totals()
        });
        assert!(results[0].total() > 0.0);
        assert!(results[0].gather == 0.0);
    }

    #[test]
    fn collect_output_matches_gather_sample() {
        // The distributed output must contain exactly the members the root
        // funnel would collect — same ids, same keys, no movement needed.
        let results = run_threads(3, |comm| {
            let mut s = DistributedSampler::new(&comm, DistConfig::weighted(40, 21));
            for b in 0..4u64 {
                s.process_batch(&unit_batch(comm.rank(), b, 120));
            }
            let gathered = s.gather_sample();
            let handle = s.collect_output();
            let all = handle.all_items(&comm);
            (gathered, handle, all)
        });
        let rooted = results[0].0.as_ref().expect("root");
        let mut rooted_ids: Vec<u64> = rooted.iter().map(|s| s.id).collect();
        rooted_ids.sort_unstable();
        for (_, handle, all) in &results {
            assert_eq!(handle.total_len(), 40);
            let mut ids: Vec<u64> = all.iter().map(|s| s.id).collect();
            ids.sort_unstable();
            assert_eq!(ids, rooted_ids, "distributed output lost/changed members");
        }
        // Offsets partition 0..total in rank order.
        let mut next = 0u64;
        for (_, handle, _) in &results {
            assert_eq!(handle.offset(), next);
            next += handle.local_len();
        }
        assert_eq!(next, 40);
    }

    #[test]
    fn collect_output_finalizes_window_mode_to_exactly_k() {
        let (lo, hi) = (25u64, 60u64);
        let results = run_threads(2, |comm| {
            let cfg = DistConfig::weighted(25, 13).with_size_window(lo, hi);
            let mut s = DistributedSampler::new(&comm, cfg);
            for b in 0..5u64 {
                s.process_batch(&unit_batch(comm.rank(), b, 200));
            }
            let before = s.local_len();
            let handle = s.collect_output();
            // The sampler keeps streaming state: nothing was pruned.
            assert_eq!(s.local_len(), before);
            let t = handle.threshold().expect("finalized");
            assert!(handle.local_items().iter().all(|m| m.key <= t));
            (handle, s.phase_totals())
        });
        let total: u64 = results.iter().map(|(h, _)| h.local_len()).sum();
        assert_eq!(total, lo, "finalization must cut the window back to k");
        assert_eq!(results[0].0.total_len(), lo);
        // Output phase time was recorded.
        assert!(results.iter().all(|(_, p)| p.output > 0.0));
    }

    #[test]
    fn collect_output_before_fill_keeps_everything() {
        let results = run_threads(2, |comm| {
            let mut s = DistributedSampler::new(&comm, DistConfig::uniform(100, 5));
            s.process_batch(&unit_batch(comm.rank(), 0, 20));
            s.collect_output()
        });
        let total: u64 = results.iter().map(|h| h.local_len()).sum();
        assert_eq!(total, 40);
        assert_eq!(results[0].total_len(), 40);
        assert_eq!(results[0].threshold(), None);
    }

    #[test]
    fn pipeline_matches_direct_batch_feeding() {
        // Pushing records through the ingestion runtime with count-driven
        // cuts of the same size must reproduce the direct process_batch
        // path bit for bit: same batches, same randomness, same sample.
        let p = 3;
        let b = 120;
        let direct = run_threads(p, |comm| {
            let mut s = DistributedSampler::new(&comm, DistConfig::weighted(40, 77));
            for batch in 0..4u64 {
                s.process_batch(&unit_batch(comm.rank(), batch, b));
            }
            let handle = s.collect_output();
            let mut ids: Vec<u64> = handle.local_items().iter().map(|m| m.id).collect();
            ids.sort_unstable();
            ids
        });
        let piped = run_threads(p, |comm| {
            let mut s = DistributedSampler::new(&comm, DistConfig::weighted(40, 77));
            let records: Vec<Item> = (0..4u64)
                .flat_map(|batch| unit_batch(comm.rank(), batch, b))
                .collect();
            let mut ingest = spawn_source(
                ReplayRecords::new(records),
                BatchPolicy::by_size(b as usize),
                2,
            );
            let rx = ingest.take_receiver();
            let report = s.run_pipeline(&rx);
            let counters = ingest.join();
            assert_eq!(counters.records_in, 4 * b);
            assert_eq!(counters.batches_cut, 4);
            assert_eq!(report.batches, 4);
            assert_eq!(report.rounds, 4);
            assert_eq!(report.records, 4 * b);
            assert_eq!(report.sample_size(), 40);
            assert!(s.phase_totals().ingest > 0.0, "ingest wait not recorded");
            // The report's phase decomposition covers this drain: ingest
            // matches the wait, and the algorithm phases ran too.
            assert!((report.times.ingest - report.ingest_wait_s).abs() < 1e-9);
            assert!(report.times.insert > 0.0 && report.times.output > 0.0);
            let mut ids: Vec<u64> = report.handle.local_items().iter().map(|m| m.id).collect();
            ids.sort_unstable();
            ids
        });
        assert_eq!(direct, piped, "pipeline path diverged from direct path");
    }

    #[test]
    fn pipeline_survives_unequal_stream_lengths() {
        // PE r produces r+1 batches; the drain must keep process_batch
        // collective (empty contributions) until every channel is dry.
        let p = 3;
        let results = run_threads(p, |comm| {
            let mut s = DistributedSampler::new(&comm, DistConfig::uniform(25, 5));
            let mine: Vec<Item> = (0..=comm.rank() as u64)
                .flat_map(|batch| unit_batch(comm.rank(), batch, 60))
                .collect();
            let mut ingest = spawn_source(ReplayRecords::new(mine), BatchPolicy::by_size(60), 1);
            let rx = ingest.take_receiver();
            let report = s.run_pipeline(&rx);
            ingest.join();
            (report.batches, report.rounds, report.handle.total_len())
        });
        for (rank, (batches, rounds, total)) in results.iter().enumerate() {
            assert_eq!(*batches, rank as u64 + 1);
            assert_eq!(*rounds, 3, "every PE must run the longest stream's rounds");
            assert_eq!(*total, 25);
        }
    }

    #[test]
    fn pipeline_on_empty_streams_yields_an_empty_sample() {
        let results = run_threads(2, |comm| {
            let mut s = DistributedSampler::new(&comm, DistConfig::weighted(10, 3));
            let mut ingest =
                spawn_source(ReplayRecords::new(Vec::new()), BatchPolicy::by_size(8), 1);
            let rx = ingest.take_receiver();
            let report = s.run_pipeline(&rx);
            assert_eq!(ingest.join().records_in, 0);
            (report.rounds, report.handle.total_len())
        });
        assert!(results.iter().all(|r| *r == (0, 0)));
    }

    #[test]
    fn window_mode_keeps_size_in_window() {
        let (lo, hi) = (30u64, 60u64);
        let results = run_threads(2, |comm| {
            let cfg = DistConfig::weighted(30, 11).with_size_window(lo, hi);
            let mut s = DistributedSampler::new(&comm, cfg);
            let mut sizes = Vec::new();
            for b in 0..6u64 {
                let rep = s.process_batch(&unit_batch(comm.rank(), b, 300));
                sizes.push(rep.sample_size);
            }
            sizes
        });
        // After the first selection the size stays within the window.
        assert!(results[0].iter().skip(1).all(|s| (lo..=hi).contains(s)));
        assert_eq!(results[0], results[1]);
    }
}
