//! Algorithm 1 on the real message-passing substrate: every PE runs one
//! [`DistributedSampler`] over a shared [`Communicator`].
//!
//! The protocol body lives in [`crate::dist::engine`]; this module
//! supplies the substrate — [`CommBackend`], which scans a real
//! [`PeReservoir`] and runs each engine step over the wire (`sum_u64`,
//! `select_threaded`, `exscan`), measuring wall-clock into the phase slot
//! the engine names — and keeps `DistributedSampler` as the thin
//! stable-API wrapper over `ReservoirProtocol<CommBackend>`.
//!
//! `process_batch` must be called collectively (same number of calls on
//! every PE, empty slices allowed); all other methods are local except
//! [`DistributedSampler::gather_sample`] and
//! [`DistributedSampler::collect_output`], which are also collective.

use std::sync::mpsc::Receiver;
use std::time::Instant;

use reservoir_btree::SampleKey;
use reservoir_comm::{Collectives, Communicator};
use reservoir_rng::{DefaultRng, SeedSequence, StreamKind};
use reservoir_select::{select_threaded, SelectParams, SelectResult, TargetRank};
use reservoir_stream::ingest::MiniBatch;
use reservoir_stream::Item;

use crate::dist::engine::{Charge, InsertOutcome, Placement, ReservoirProtocol, SamplerBackend};
use crate::dist::local::PeReservoir;
use crate::dist::output::SampleHandle;
use crate::dist::{BatchReport, DistConfig, PipelineReport, SamplingMode, PAR_SCAN_STREAM};
use crate::metrics::PhaseTimes;
use crate::sample::SampleItem;

/// Wire representation of one sample member: `(id, weight, key)`.
type WireItem = (u64, f64, f64);

/// The master seed-stream derivation every real-collective backend uses:
/// the user seed salted with the sample size, so samplers of different
/// geometry draw independent streams even under the same user seed. The
/// sharded backend derives each shard's streams through this same
/// function so a shard is byte-identical to a standalone sampler with the
/// shard's config.
pub(crate) fn stream_seq(cfg: &DistConfig) -> SeedSequence {
    SeedSequence::new(cfg.seed ^ (cfg.k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// One PE's endpoint of the engine over real collectives: a
/// [`PeReservoir`] fed by jump scans, distributed selection over the
/// wire, wall-clock phase measurement.
pub struct CommBackend<'a, C: Communicator> {
    comm: &'a C,
    local: PeReservoir,
    key_rng: DefaultRng,
    select_rng: DefaultRng,
    last_par: Option<reservoir_par::ParScanStats>,
}

impl<'a, C: Communicator> CommBackend<'a, C> {
    /// Build this PE's backend for `cfg`. The master seed is salted with
    /// the sample size so samplers of different geometry draw independent
    /// streams even under the same user seed (the derivation
    /// [`DistributedSampler`] has always used).
    pub fn new(comm: &'a C, cfg: &DistConfig) -> Self {
        let seq = stream_seq(cfg);
        CommBackend {
            local: PeReservoir::for_config(
                cfg,
                cfg.local_cap(),
                seq.seed_for(comm.rank(), StreamKind::Custom(PAR_SCAN_STREAM)),
            ),
            key_rng: seq.rng_for(comm.rank(), StreamKind::Keys),
            select_rng: seq.rng_for(comm.rank(), StreamKind::Selection),
            last_par: None,
            comm,
        }
    }

    /// The communicator this endpoint runs over.
    pub fn comm(&self) -> &'a C {
        self.comm
    }

    /// The parallel scan's per-worker breakdown for the most recent batch
    /// (`None` at one thread per PE, or before the first batch).
    pub fn last_par_scan(&self) -> Option<&reservoir_par::ParScanStats> {
        self.last_par.as_ref()
    }

    /// This PE's sample members.
    pub fn local_items(&self) -> Vec<SampleItem> {
        self.local.items()
    }
}

impl<C: Communicator> SamplerBackend for CommBackend<'_, C> {
    fn insert(
        &mut self,
        mode: SamplingMode,
        items: &[Item],
        threshold: Option<SampleKey>,
        times: &mut PhaseTimes,
    ) -> InsertOutcome {
        let t0 = Instant::now();
        let outcome = self
            .local
            .process(mode, items, threshold.map(|k| k.key), &mut self.key_rng);
        times.insert += t0.elapsed().as_secs_f64();
        times.par_scan += outcome.par_scan_max_s;
        self.last_par = outcome.par;
        InsertOutcome {
            stats: outcome.stats,
        }
    }

    fn count(&mut self, times: &mut PhaseTimes, charge: Charge) -> u64 {
        let t0 = Instant::now();
        let union = self.comm.sum_u64(self.local.len());
        *charge.slot(times) += t0.elapsed().as_secs_f64();
        union
    }

    fn select(
        &mut self,
        target: TargetRank,
        union: u64,
        pivots: usize,
        times: &mut PhaseTimes,
        charge: Charge,
    ) -> SelectResult {
        let t0 = Instant::now();
        let res = select_threaded(
            self.comm,
            self.local.candidates(),
            target,
            union,
            SelectParams::with_pivots(pivots),
            &mut self.select_rng,
        );
        *charge.slot(times) += t0.elapsed().as_secs_f64();
        res
    }

    fn prune(&mut self, t: &SampleKey, times: &mut PhaseTimes, charge: Charge) {
        let t0 = Instant::now();
        self.local.prune_above(t);
        *charge.slot(times) += t0.elapsed().as_secs_f64();
    }

    fn place(&mut self, local: u64, times: &mut PhaseTimes) -> Placement {
        crate::dist::engine::place_over_collectives(self.comm, local, times)
    }

    fn local_len(&self) -> u64 {
        self.local.len()
    }

    fn local_count_le(&self, t: &SampleKey) -> u64 {
        self.local.count_le(t)
    }

    fn local_items_le(
        &self,
        t: Option<&SampleKey>,
        buf: &mut Vec<SampleItem>,
        times: &mut PhaseTimes,
    ) {
        let t0 = Instant::now();
        self.local.items_into(buf);
        if let Some(t) = t {
            buf.truncate(self.local.count_le(t) as usize);
        }
        times.output += t0.elapsed().as_secs_f64();
    }

    fn rank(&self) -> usize {
        self.comm.rank()
    }

    fn size(&self) -> usize {
        self.comm.size()
    }

    fn vote(&mut self, active: u64) -> u64 {
        crate::dist::engine::vote_over_collectives(self.comm, active)
    }

    fn select_rng_state(&self) -> Vec<DefaultRng> {
        vec![self.select_rng.clone()]
    }

    fn restore_select_rng(&mut self, mut state: Vec<DefaultRng>) {
        self.select_rng = state.pop().expect("one PE, one selection generator");
    }
}

/// One PE's endpoint of the distributed mini-batch sampler (Algorithm 1):
/// the stable API over `ReservoirProtocol<CommBackend>`.
pub struct DistributedSampler<'a, C: Communicator> {
    engine: ReservoirProtocol<CommBackend<'a, C>>,
}

impl<'a, C: Communicator> DistributedSampler<'a, C> {
    /// Create this PE's endpoint. Every PE of `comm` must construct its
    /// sampler with an identical `cfg` (including `threads_per_pe` — the
    /// scan schedule is local, but reports should be comparable).
    pub fn new(comm: &'a C, cfg: DistConfig) -> Self {
        DistributedSampler {
            engine: ReservoirProtocol::new(CommBackend::new(comm, &cfg), cfg),
        }
    }

    /// Process one mini-batch (collective). Returns what happened.
    pub fn process_batch(&mut self, items: &[Item]) -> BatchReport {
        self.engine.step(items)
    }

    /// The parallel scan's per-worker breakdown for the most recent batch
    /// (`None` at one thread per PE, or before the first batch).
    pub fn last_par_scan(&self) -> Option<&reservoir_par::ParScanStats> {
        self.engine.backend().last_par_scan()
    }

    /// Drive the sampler from a push-based ingestion channel (collective):
    /// the engine's unified pipeline driver drains mini-batches cut by a
    /// `reservoir_stream::ingest::Batcher`, [`Self::process_batch`]s each,
    /// and finishes with one collective [`Self::collect_output`]. See
    /// [`ReservoirProtocol::run_pipeline`] for the drain protocol.
    pub fn run_pipeline(&mut self, batches: &Receiver<MiniBatch>) -> PipelineReport {
        self.engine.run_pipeline(batches)
    }

    /// Fully distributed output collection (collective; paper Section 5):
    /// the engine's finalize + place steps. Finalizes the sample to
    /// exactly `min(k, items seen)` members — in variable-size mode (or
    /// after a mid-window stream cut) one distributed selection for rank
    /// `k` fixes the final threshold; no items move — and assigns every
    /// PE the global output positions of its slice via an exclusive
    /// prefix count. O(d · rounds + 1) words per PE at O(α log p)
    /// latency, independent of `k` and the stream length.
    ///
    /// The sampler itself is left untouched (its local reservoir keeps any
    /// members above the finalization threshold), so streaming may continue
    /// afterwards; the handle is a consistent snapshot.
    pub fn collect_output(&mut self) -> SampleHandle {
        self.engine.collect_output().0
    }

    /// The current global insertion threshold, once established.
    pub fn threshold(&self) -> Option<f64> {
        self.engine.threshold()
    }

    /// Number of sample members held by this PE.
    pub fn local_len(&self) -> u64 {
        self.engine.backend().local_len()
    }

    /// This PE's sample members.
    pub fn local_sample(&self) -> Vec<SampleItem> {
        self.engine.backend().local_items()
    }

    /// Gather the full sample at PE 0 (collective): `Some(sample)` there,
    /// `None` elsewhere.
    pub fn gather_sample(&self) -> Option<Vec<SampleItem>> {
        let backend = self.engine.backend();
        let wire: Vec<WireItem> = backend
            .local_items()
            .into_iter()
            .map(|s| (s.id, s.weight, s.key))
            .collect();
        backend.comm().gather(0, wire).map(|parts| {
            parts
                .into_iter()
                .flatten()
                .map(|(id, weight, key)| SampleItem { id, weight, key })
                .collect()
        })
    }

    /// A read handle on this PE's always-fresh sample slot (see
    /// [`crate::dist::snapshot`]): clone it into any number of reader
    /// threads to query the live sample while ingestion runs. Fresh
    /// epochs appear per batch under
    /// [`ContinuousMode::EveryBatch`](crate::dist::ContinuousMode), plus
    /// one final epoch at [`Self::collect_output`].
    pub fn snapshot_reader(&self) -> crate::dist::snapshot::SnapshotReader {
        self.engine.snapshot_reader()
    }

    /// Accumulated wall-clock seconds per algorithm phase.
    pub fn phase_totals(&self) -> PhaseTimes {
        self.engine.phase_totals()
    }

    /// The configuration this sampler runs with.
    pub fn config(&self) -> &DistConfig {
        self.engine.config()
    }

    /// The protocol engine underneath (direct step access; the wrapper
    /// adds nothing but naming).
    pub fn engine(&mut self) -> &mut ReservoirProtocol<CommBackend<'a, C>> {
        &mut self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reservoir_comm::run_threads;
    use reservoir_stream::ingest::{spawn_source, BatchPolicy, ReplayRecords};

    fn unit_batch(rank: usize, batch: u64, n: u64) -> Vec<Item> {
        (0..n)
            .map(|i| Item::new(((rank as u64) << 40) | (batch << 20) | i, 1.0))
            .collect()
    }

    #[test]
    fn single_pe_matches_sequential_law() {
        // p = 1 distributed sampling is just reservoir sampling.
        let results = run_threads(1, |comm| {
            let mut s = DistributedSampler::new(&comm, DistConfig::weighted(20, 5));
            for b in 0..4u64 {
                s.process_batch(&unit_batch(0, b, 100));
            }
            (s.local_len(), s.threshold(), s.gather_sample())
        });
        let (len, t, sample) = &results[0];
        assert_eq!(*len, 20);
        let sample = sample.as_ref().expect("root");
        assert_eq!(sample.len(), 20);
        let max_key = sample.iter().map(|s| s.key).fold(f64::MIN, f64::max);
        assert_eq!(*t, Some(max_key));
    }

    #[test]
    fn threshold_is_agreed_and_monotone() {
        let results = run_threads(3, |comm| {
            let mut s = DistributedSampler::new(&comm, DistConfig::weighted(50, 9));
            let mut history = Vec::new();
            for b in 0..5u64 {
                s.process_batch(&unit_batch(comm.rank(), b, 200));
                history.push(s.threshold());
            }
            history
        });
        for r in &results[1..] {
            assert_eq!(r, &results[0]);
        }
        let established: Vec<f64> = results[0].iter().flatten().copied().collect();
        assert!(!established.is_empty());
        assert!(established.windows(2).all(|w| w[1] <= w[0]));
    }

    #[test]
    fn phase_totals_accumulate() {
        let results = run_threads(2, |comm| {
            let mut s = DistributedSampler::new(&comm, DistConfig::uniform(10, 3));
            for b in 0..3u64 {
                s.process_batch(&unit_batch(comm.rank(), b, 500));
            }
            s.phase_totals()
        });
        assert!(results[0].total() > 0.0);
        assert!(results[0].gather == 0.0);
    }

    #[test]
    fn collect_output_matches_gather_sample() {
        // The distributed output must contain exactly the members the root
        // funnel would collect — same ids, same keys, no movement needed.
        let results = run_threads(3, |comm| {
            let mut s = DistributedSampler::new(&comm, DistConfig::weighted(40, 21));
            for b in 0..4u64 {
                s.process_batch(&unit_batch(comm.rank(), b, 120));
            }
            let gathered = s.gather_sample();
            let handle = s.collect_output();
            let all = handle.all_items(&comm);
            (gathered, handle, all)
        });
        let rooted = results[0].0.as_ref().expect("root");
        let mut rooted_ids: Vec<u64> = rooted.iter().map(|s| s.id).collect();
        rooted_ids.sort_unstable();
        for (_, handle, all) in &results {
            assert_eq!(handle.total_len(), 40);
            let mut ids: Vec<u64> = all.iter().map(|s| s.id).collect();
            ids.sort_unstable();
            assert_eq!(ids, rooted_ids, "distributed output lost/changed members");
        }
        // Offsets partition 0..total in rank order.
        let mut next = 0u64;
        for (_, handle, _) in &results {
            assert_eq!(handle.offset(), next);
            next += handle.local_len();
        }
        assert_eq!(next, 40);
    }

    #[test]
    fn collect_output_finalizes_window_mode_to_exactly_k() {
        let (lo, hi) = (25u64, 60u64);
        let results = run_threads(2, |comm| {
            let cfg = DistConfig::weighted(25, 13).with_size_window(lo, hi);
            let mut s = DistributedSampler::new(&comm, cfg);
            for b in 0..5u64 {
                s.process_batch(&unit_batch(comm.rank(), b, 200));
            }
            let before = s.local_len();
            let handle = s.collect_output();
            // The sampler keeps streaming state: nothing was pruned.
            assert_eq!(s.local_len(), before);
            let t = handle.threshold().expect("finalized");
            assert!(handle.local_items().iter().all(|m| m.key <= t));
            (handle, s.phase_totals())
        });
        let total: u64 = results.iter().map(|(h, _)| h.local_len()).sum();
        assert_eq!(total, lo, "finalization must cut the window back to k");
        assert_eq!(results[0].0.total_len(), lo);
        // Output phase time was recorded.
        assert!(results.iter().all(|(_, p)| p.output > 0.0));
    }

    #[test]
    fn collect_output_before_fill_keeps_everything() {
        let results = run_threads(2, |comm| {
            let mut s = DistributedSampler::new(&comm, DistConfig::uniform(100, 5));
            s.process_batch(&unit_batch(comm.rank(), 0, 20));
            s.collect_output()
        });
        let total: u64 = results.iter().map(|h| h.local_len()).sum();
        assert_eq!(total, 40);
        assert_eq!(results[0].total_len(), 40);
        assert_eq!(results[0].threshold(), None);
    }

    #[test]
    fn pipeline_matches_direct_batch_feeding() {
        // Pushing records through the ingestion runtime with count-driven
        // cuts of the same size must reproduce the direct process_batch
        // path bit for bit: same batches, same randomness, same sample.
        let p = 3;
        let b = 120;
        let direct = run_threads(p, |comm| {
            let mut s = DistributedSampler::new(&comm, DistConfig::weighted(40, 77));
            for batch in 0..4u64 {
                s.process_batch(&unit_batch(comm.rank(), batch, b));
            }
            let handle = s.collect_output();
            let mut ids: Vec<u64> = handle.local_items().iter().map(|m| m.id).collect();
            ids.sort_unstable();
            ids
        });
        let piped = run_threads(p, |comm| {
            let mut s = DistributedSampler::new(&comm, DistConfig::weighted(40, 77));
            let records: Vec<Item> = (0..4u64)
                .flat_map(|batch| unit_batch(comm.rank(), batch, b))
                .collect();
            let mut ingest = spawn_source(
                ReplayRecords::new(records),
                BatchPolicy::by_size(b as usize),
                2,
            );
            let rx = ingest.take_receiver();
            let report = s.run_pipeline(&rx);
            let counters = ingest.join();
            assert_eq!(counters.records_in, 4 * b);
            assert_eq!(counters.batches_cut, 4);
            assert_eq!(report.batches, 4);
            assert_eq!(report.rounds, 4);
            assert_eq!(report.records, 4 * b);
            assert_eq!(report.sample_size(), 40);
            assert!(s.phase_totals().ingest > 0.0, "ingest wait not recorded");
            // The report's phase decomposition covers this drain: ingest
            // matches the wait, and the algorithm phases ran too.
            assert!((report.times.ingest - report.ingest_wait_s).abs() < 1e-9);
            assert!(report.times.insert > 0.0 && report.times.output > 0.0);
            let mut ids: Vec<u64> = report.handle.local_items().iter().map(|m| m.id).collect();
            ids.sort_unstable();
            ids
        });
        assert_eq!(direct, piped, "pipeline path diverged from direct path");
    }

    #[test]
    fn pipeline_survives_unequal_stream_lengths() {
        // PE r produces r+1 batches; the drain must keep process_batch
        // collective (empty contributions) until every channel is dry.
        let p = 3;
        let results = run_threads(p, |comm| {
            let mut s = DistributedSampler::new(&comm, DistConfig::uniform(25, 5));
            let mine: Vec<Item> = (0..=comm.rank() as u64)
                .flat_map(|batch| unit_batch(comm.rank(), batch, 60))
                .collect();
            let mut ingest = spawn_source(ReplayRecords::new(mine), BatchPolicy::by_size(60), 1);
            let rx = ingest.take_receiver();
            let report = s.run_pipeline(&rx);
            ingest.join();
            (report.batches, report.rounds, report.handle.total_len())
        });
        for (rank, (batches, rounds, total)) in results.iter().enumerate() {
            assert_eq!(*batches, rank as u64 + 1);
            assert_eq!(*rounds, 3, "every PE must run the longest stream's rounds");
            assert_eq!(*total, 25);
        }
    }

    #[test]
    fn pipeline_on_empty_streams_yields_an_empty_sample() {
        let results = run_threads(2, |comm| {
            let mut s = DistributedSampler::new(&comm, DistConfig::weighted(10, 3));
            let mut ingest =
                spawn_source(ReplayRecords::new(Vec::new()), BatchPolicy::by_size(8), 1);
            let rx = ingest.take_receiver();
            let report = s.run_pipeline(&rx);
            assert_eq!(ingest.join().records_in, 0);
            (report.rounds, report.handle.total_len())
        });
        assert!(results.iter().all(|r| *r == (0, 0)));
    }

    #[test]
    fn window_mode_keeps_size_in_window() {
        let (lo, hi) = (30u64, 60u64);
        let results = run_threads(2, |comm| {
            let cfg = DistConfig::weighted(30, 11).with_size_window(lo, hi);
            let mut s = DistributedSampler::new(&comm, cfg);
            let mut sizes = Vec::new();
            for b in 0..6u64 {
                let rep = s.process_batch(&unit_batch(comm.rank(), b, 300));
                sizes.push(rep.sample_size);
            }
            sizes
        });
        // After the first selection the size stays within the window.
        assert!(results[0].iter().skip(1).all(|s| (lo..=hi).contains(s)));
        assert_eq!(results[0], results[1]);
    }

    #[test]
    fn persistent_pool_matches_per_scope_pool_bit_for_bit() {
        // The worker strategy is invisible to the protocol: same seed ⇒
        // same sample, only the spawn accounting changes.
        let run = |persistent: bool| {
            run_threads(2, move |comm| {
                let cfg = DistConfig::weighted(30, 41)
                    .with_threads(4)
                    .with_persistent_pool(persistent);
                let mut s = DistributedSampler::new(&comm, cfg);
                let mut spawns = 0u64;
                for b in 0..3u64 {
                    spawns += s
                        .process_batch(&unit_batch(comm.rank(), b, 400))
                        .scan
                        .spawns;
                }
                let mut ids: Vec<u64> = s.local_sample().iter().map(|m| m.id).collect();
                ids.sort_unstable();
                (ids, spawns)
            })
        };
        let per_scope = run(false);
        let crew = run(true);
        for ((a, sa), (b, sb)) in per_scope.iter().zip(&crew) {
            assert_eq!(a, b, "pool strategy changed the sample");
            assert_eq!(*sa, 9, "per-scope: 3 spawns per batch × 3 batches");
            assert_eq!(*sb, 0, "persistent crew spawns nothing per batch");
        }
    }
}
