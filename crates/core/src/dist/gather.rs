//! The centralized gathering baseline (paper Section 4.5).
//!
//! Every PE scans its batch exactly like the distributed algorithm —
//! jump-scanning below the current threshold — but instead of running
//! distributed selection, all candidates are **gathered at a root PE**,
//! which merges them into the one true reservoir, re-computes the
//! threshold with a sequential quickselect, and broadcasts it. The root's
//! downlink carries Θ(candidates) words per batch (Θ(p·k) in the worst
//! case), which is the bottleneck the paper's algorithm removes.

use std::sync::mpsc::Receiver;

use reservoir_btree::{SampleKey, DEFAULT_DEGREE};
use reservoir_comm::{Collectives, Communicator};
use reservoir_rng::{DefaultRng, SeedSequence, StreamKind};
use reservoir_select::kth_smallest;
use reservoir_stream::ingest::MiniBatch;
use reservoir_stream::Item;

use crate::dist::local::PeReservoir;
use crate::dist::output::SampleHandle;
use crate::dist::{DistConfig, PipelineReport, PAR_SCAN_STREAM};
use crate::metrics::PhaseTimes;
use crate::sample::SampleItem;

/// Wire representation of one candidate: `(id, weight, key)`.
type WireItem = (u64, f64, f64);

/// The root PE holding the global reservoir.
const ROOT: usize = 0;

/// One PE's endpoint of the centralized gathering sampler.
pub struct GatherSampler<'a, C: Communicator> {
    comm: &'a C,
    cfg: DistConfig,
    /// Per-batch candidate buffer (drained after every gather); runs the
    /// parallel chunked scan when `cfg.threads_per_pe > 1`.
    scratch: PeReservoir,
    /// Reused per batch to drain `scratch` without a fresh allocation.
    drain_buf: Vec<SampleItem>,
    /// The global reservoir; non-empty only at the root.
    reservoir: Vec<(SampleKey, f64)>,
    threshold: Option<SampleKey>,
    key_rng: DefaultRng,
    select_rng: DefaultRng,
}

impl<'a, C: Communicator> GatherSampler<'a, C> {
    /// Create this PE's endpoint. Every PE must pass an identical `cfg`.
    pub fn new(comm: &'a C, cfg: DistConfig) -> Self {
        let seq = SeedSequence::new(cfg.seed);
        GatherSampler {
            comm,
            scratch: PeReservoir::new(
                cfg.k,
                DEFAULT_DEGREE,
                cfg.threads_per_pe,
                seq.seed_for(comm.rank(), StreamKind::Custom(PAR_SCAN_STREAM)),
            ),
            drain_buf: Vec::new(),
            reservoir: Vec::new(),
            threshold: None,
            key_rng: seq.rng_for(comm.rank(), StreamKind::Keys),
            select_rng: seq.rng_for(comm.rank(), StreamKind::Selection),
            cfg,
        }
    }

    /// Process one mini-batch (collective). Returns the number of
    /// candidates this PE generated (and shipped to the root).
    pub fn process_batch(&mut self, items: &[Item]) -> u64 {
        // Local candidate generation: identical scan to the distributed
        // algorithm, but into a throwaway buffer (drained into the reused
        // `drain_buf`, so the per-batch path performs no fresh item
        // allocation).
        let t = self.threshold.map(|k| k.key);
        self.scratch
            .process(self.cfg.mode, items, t, &mut self.key_rng);
        self.scratch.drain_into(&mut self.drain_buf);
        let wire: Vec<WireItem> = self
            .drain_buf
            .iter()
            .map(|s| (s.id, s.weight, s.key))
            .collect();
        let candidates = wire.len() as u64;

        // Ship every candidate to the root.
        let gathered = self.comm.gather(ROOT, wire);

        // Root: merge, select the k-th smallest key, prune, broadcast.
        let announced = gathered.map(|parts| {
            for (id, weight, key) in parts.into_iter().flatten() {
                self.reservoir.push((SampleKey::new(key, id), weight));
            }
            let k = self.cfg.k;
            if self.reservoir.len() > k {
                let mut keys: Vec<SampleKey> = self.reservoir.iter().map(|(k, _)| *k).collect();
                let cut = kth_smallest(&mut keys, k - 1, &mut self.select_rng);
                self.reservoir.retain(|(key, _)| *key <= cut);
                debug_assert_eq!(self.reservoir.len(), k);
            }
            let t = (self.reservoir.len() >= k)
                .then(|| self.reservoir.iter().map(|(k, _)| *k).max())
                .flatten();
            t.map(|k| (k.key, k.id))
        });
        let wire_t: Option<(f64, u64)> = self.comm.broadcast(ROOT, announced);
        self.threshold = wire_t.map(|(key, id)| SampleKey::new(key, id));
        candidates
    }

    /// Drive the baseline from a push-based ingestion channel
    /// (collective): the same drain protocol as
    /// [`crate::dist::threaded::DistributedSampler::run_pipeline`] — one
    /// 1-word all-reduce per round keeps `process_batch` collective across
    /// unequal stream lengths, and a final collective
    /// [`Self::collect_output`] yields the handle (the whole sample at the
    /// root, empty slices elsewhere). The baseline instruments only the
    /// ingest wait (`report.times.ingest`); its other phases are not
    /// timed.
    pub fn run_pipeline(&mut self, batches: &Receiver<MiniBatch>) -> PipelineReport {
        let comm = self.comm;
        let mut candidates = 0u64;
        let stats = crate::dist::drain_collective(comm, batches, |items| {
            candidates += self.process_batch(items);
        });
        let handle = self.collect_output();
        PipelineReport {
            batches: stats.batches,
            rounds: stats.rounds,
            records: stats.records,
            inserted: candidates,
            select_rounds: 0,
            ingest_wait_s: stats.ingest_wait_s,
            times: PhaseTimes {
                ingest: stats.ingest_wait_s,
                ..Default::default()
            },
            handle,
        }
    }

    /// The current insertion threshold, once the reservoir filled.
    pub fn threshold(&self) -> Option<f64> {
        self.threshold.map(|k| k.key)
    }

    /// The sample: the full reservoir at the root, empty elsewhere.
    pub fn sample(&self) -> Vec<SampleItem> {
        self.reservoir
            .iter()
            .map(|(k, w)| SampleItem::from_entry(k, *w))
            .collect()
    }

    /// Number of sample members held by this PE (root: the whole sample).
    pub fn local_len(&self) -> u64 {
        self.reservoir.len() as u64
    }

    /// Output collection for the centralized baseline (collective): the
    /// root already holds the whole reservoir, so the returned
    /// [`SampleHandle`] simply places the root's slice at offset 0 and
    /// gives every other PE an empty slice. This is the comparison point
    /// for the Section 5 distributed output — here all Θ(β·k) words
    /// already moved through the root's downlink during the batches.
    pub fn collect_output(&self) -> SampleHandle {
        let mut items: Vec<SampleItem> = self.sample();
        items
            .sort_unstable_by(|a, b| SampleKey::new(a.key, a.id).cmp(&SampleKey::new(b.key, b.id)));
        SampleHandle::assemble(self.comm, items, self.threshold())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reservoir_comm::run_threads;

    fn unit_batch(rank: usize, batch: u64, n: u64) -> Vec<Item> {
        (0..n)
            .map(|i| Item::new(((rank as u64) << 40) | (batch << 20) | i, 1.0))
            .collect()
    }

    #[test]
    fn root_holds_k_distinct_members() {
        let k = 40;
        let results = run_threads(3, |comm| {
            let mut s = GatherSampler::new(&comm, DistConfig::weighted(k, 7));
            for b in 0..4u64 {
                s.process_batch(&unit_batch(comm.rank(), b, 100));
            }
            (s.sample(), s.threshold())
        });
        let (sample, t) = &results[0];
        assert_eq!(sample.len(), k);
        let mut ids: Vec<u64> = sample.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), k);
        let t = t.expect("threshold established");
        assert!(sample.iter().all(|s| s.key <= t));
        // Non-roots hold nothing but agree on the threshold.
        for (sample, other_t) in &results[1..] {
            assert!(sample.is_empty());
            assert_eq!(other_t, &Some(t));
        }
    }

    #[test]
    fn collect_output_places_everything_at_the_root() {
        let k = 30;
        let results = run_threads(3, |comm| {
            let mut s = GatherSampler::new(&comm, DistConfig::weighted(k, 19));
            for b in 0..3u64 {
                s.process_batch(&unit_batch(comm.rank(), b, 80));
            }
            s.collect_output()
        });
        assert_eq!(results[0].local_len(), k as u64);
        assert_eq!(results[0].offset(), 0);
        for h in &results {
            assert_eq!(h.total_len(), k as u64);
        }
        assert!(results[1..].iter().all(|h| h.local_len() == 0));
        // The root's slice is key-sorted, as the handle contract requires.
        let keys: Vec<f64> = results[0].local_items().iter().map(|s| s.key).collect();
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn pipeline_places_the_sample_at_the_root() {
        use reservoir_stream::ingest::{spawn_source, BatchPolicy, ReplayRecords};
        let k = 20;
        let results = run_threads(3, |comm| {
            let mut s = GatherSampler::new(&comm, DistConfig::weighted(k, 23));
            // Unequal stream lengths: PE r pushes (r+1)·50 records.
            let mine: Vec<Item> = (0..=comm.rank() as u64)
                .flat_map(|batch| unit_batch(comm.rank(), batch, 50))
                .collect();
            let mut ingest = spawn_source(ReplayRecords::new(mine), BatchPolicy::by_size(50), 2);
            let rx = ingest.take_receiver();
            let report = s.run_pipeline(&rx);
            let counters = ingest.join();
            assert_eq!(counters.records_in, (comm.rank() as u64 + 1) * 50);
            (report.rounds, report.records, report.handle)
        });
        for (rank, (rounds, records, handle)) in results.iter().enumerate() {
            assert_eq!(*rounds, 3);
            assert_eq!(*records, (rank as u64 + 1) * 50);
            assert_eq!(handle.total_len(), k as u64);
        }
        assert_eq!(results[0].2.local_len(), k as u64, "root holds everything");
        assert!(results[1..].iter().all(|(_, _, h)| h.local_len() == 0));
    }

    #[test]
    fn growing_phase_keeps_everything() {
        let results = run_threads(2, |comm| {
            let mut s = GatherSampler::new(&comm, DistConfig::uniform(100, 3));
            s.process_batch(&unit_batch(comm.rank(), 0, 20));
            (s.sample().len(), s.threshold())
        });
        assert_eq!(results[0].0, 40);
        assert_eq!(results[0].1, None);
    }
}
