//! The centralized gathering baseline (paper Section 4.5) as a **backend
//! policy** of the shared engine — not a parallel protocol copy.
//!
//! Every PE scans its batch exactly like the distributed algorithm —
//! jump-scanning below the current threshold — but [`GatherBackend`]
//! realizes the engine's steps through a root funnel: **insert** ships
//! every candidate to a root PE that merges them into the one true
//! reservoir, **count** broadcasts the root's reservoir size, **select**
//! re-computes the threshold with a sequential quickselect at the root and
//! broadcasts it, and **prune** is a no-op (the root pruned inside its
//! selection; the other PEs hold no reservoir). The root's downlink
//! carries Θ(candidates) words per batch (Θ(p·k) in the worst case), which
//! is the bottleneck the paper's algorithm removes.
//!
//! [`GatherSampler`] is the thin stable-API wrapper over
//! `ReservoirProtocol<GatherBackend>`.

use std::sync::mpsc::Receiver;
use std::time::Instant;

use reservoir_btree::SampleKey;
use reservoir_comm::{Collectives, Communicator};
use reservoir_rng::{DefaultRng, SeedSequence, StreamKind};
use reservoir_select::{kth_smallest, SelectResult, TargetRank};
use reservoir_stream::ingest::MiniBatch;
use reservoir_stream::Item;

use crate::dist::engine::{Charge, InsertOutcome, Placement, ReservoirProtocol, SamplerBackend};
use crate::dist::local::PeReservoir;
use crate::dist::output::SampleHandle;
use crate::dist::{BatchReport, DistConfig, PipelineReport, SamplingMode, PAR_SCAN_STREAM};
use crate::metrics::PhaseTimes;
use crate::sample::SampleItem;

/// Wire representation of one candidate: `(id, weight, key)`.
type WireItem = (u64, f64, f64);

/// The root PE holding the global reservoir.
const ROOT: usize = 0;

/// The engine's substrate under the Section 4.5 root-funnel policy.
pub struct GatherBackend<'a, C: Communicator> {
    comm: &'a C,
    /// Per-batch candidate buffer (drained after every gather); runs the
    /// parallel chunked scan when `threads_per_pe > 1`.
    scratch: PeReservoir,
    /// Reused per batch to drain `scratch` without a fresh allocation.
    drain_buf: Vec<SampleItem>,
    /// The global reservoir; non-empty only at the root.
    reservoir: Vec<(SampleKey, f64)>,
    key_rng: DefaultRng,
    select_rng: DefaultRng,
    k: usize,
}

impl<'a, C: Communicator> GatherBackend<'a, C> {
    /// Build this PE's backend for `cfg` (the unsalted seed derivation
    /// [`GatherSampler`] has always used).
    pub fn new(comm: &'a C, cfg: &DistConfig) -> Self {
        assert!(
            cfg.size_window.is_none(),
            "the gather baseline has no variable-size mode (GatherSampler::new strips it)"
        );
        let seq = SeedSequence::new(cfg.seed);
        GatherBackend {
            scratch: PeReservoir::for_config(
                cfg,
                cfg.k,
                seq.seed_for(comm.rank(), StreamKind::Custom(PAR_SCAN_STREAM)),
            ),
            drain_buf: Vec::new(),
            reservoir: Vec::new(),
            key_rng: seq.rng_for(comm.rank(), StreamKind::Keys),
            select_rng: seq.rng_for(comm.rank(), StreamKind::Selection),
            k: cfg.k,
            comm,
        }
    }

    /// The sample: the full reservoir at the root, empty elsewhere.
    pub fn sample(&self) -> Vec<SampleItem> {
        self.reservoir
            .iter()
            .map(|(k, w)| SampleItem::from_entry(k, *w))
            .collect()
    }
}

impl<C: Communicator> SamplerBackend for GatherBackend<'_, C> {
    /// Local candidate generation — identical scan to the distributed
    /// algorithm, into a throwaway buffer — followed by the policy's
    /// defining move: every candidate ships to the root, which merges
    /// them into the global reservoir. Bills the scan to `insert` and the
    /// funnel to `gather`.
    fn insert(
        &mut self,
        mode: SamplingMode,
        items: &[Item],
        threshold: Option<SampleKey>,
        times: &mut PhaseTimes,
    ) -> InsertOutcome {
        let t0 = Instant::now();
        let outcome =
            self.scratch
                .process(mode, items, threshold.map(|k| k.key), &mut self.key_rng);
        self.scratch.drain_into(&mut self.drain_buf);
        // The policy's contribution count is what ships to the root, not
        // the scan's gross insertion count (growing-phase evictions never
        // leave the scratch buffer).
        let mut stats = outcome.stats;
        stats.inserted = self.drain_buf.len() as u64;
        times.insert += t0.elapsed().as_secs_f64();
        times.par_scan += outcome.par_scan_max_s;
        let t1 = Instant::now();
        let wire: Vec<WireItem> = self
            .drain_buf
            .iter()
            .map(|s| (s.id, s.weight, s.key))
            .collect();
        if let Some(parts) = self.comm.gather(ROOT, wire) {
            for (id, weight, key) in parts.into_iter().flatten() {
                self.reservoir.push((SampleKey::new(key, id), weight));
            }
        }
        times.gather += t1.elapsed().as_secs_f64();
        InsertOutcome { stats }
    }

    /// The union size is whatever the root's reservoir holds: one
    /// broadcast instead of an all-reduce.
    fn count(&mut self, times: &mut PhaseTimes, charge: Charge) -> u64 {
        let t0 = Instant::now();
        let announced = (self.comm.rank() == ROOT).then_some(self.reservoir.len() as u64);
        let union = self.comm.broadcast(ROOT, announced);
        *charge.slot(times) += t0.elapsed().as_secs_f64();
        union
    }

    /// Sequential selection at the root: quickselect the k-th smallest
    /// key when the reservoir overflowed (prune to it in place), take the
    /// maximum when it just filled, broadcast the result. Always reports
    /// 0 distributed rounds — that is the baseline's point.
    fn select(
        &mut self,
        target: TargetRank,
        union: u64,
        _pivots: usize,
        times: &mut PhaseTimes,
        charge: Charge,
    ) -> SelectResult {
        let t0 = Instant::now();
        let k = self.k;
        debug_assert_eq!(
            (target.lo, target.hi),
            (k as u64, k as u64),
            "the root funnel only performs exact-k selection"
        );
        let announced = (self.comm.rank() == ROOT).then(|| {
            if union > k as u64 {
                let mut keys: Vec<SampleKey> = self.reservoir.iter().map(|(k, _)| *k).collect();
                let cut = kth_smallest(&mut keys, k - 1, &mut self.select_rng);
                self.reservoir.retain(|(key, _)| *key <= cut);
                debug_assert_eq!(self.reservoir.len(), k);
            }
            let t = self
                .reservoir
                .iter()
                .map(|(key, _)| *key)
                .max()
                .expect("selection only runs once the reservoir filled");
            (t.key, t.id)
        });
        let (key, id) = self.comm.broadcast(ROOT, announced);
        *charge.slot(times) += t0.elapsed().as_secs_f64();
        SelectResult {
            threshold: SampleKey::new(key, id),
            rank: k as u64,
            rounds: 0,
        }
    }

    /// The root already pruned inside its selection; non-roots hold no
    /// reservoir.
    fn prune(&mut self, _t: &SampleKey, _times: &mut PhaseTimes, _charge: Charge) {}

    fn place(&mut self, local: u64, times: &mut PhaseTimes) -> Placement {
        crate::dist::engine::place_over_collectives(self.comm, local, times)
    }

    fn local_len(&self) -> u64 {
        self.reservoir.len() as u64
    }

    fn local_count_le(&self, t: &SampleKey) -> u64 {
        self.reservoir.iter().filter(|(k, _)| k <= t).count() as u64
    }

    fn local_items_le(
        &self,
        t: Option<&SampleKey>,
        buf: &mut Vec<SampleItem>,
        times: &mut PhaseTimes,
    ) {
        let t0 = Instant::now();
        buf.clear();
        let mut members: Vec<&(SampleKey, f64)> = self
            .reservoir
            .iter()
            .filter(|(k, _)| t.is_none_or(|t| *k <= *t))
            .collect();
        members.sort_unstable_by_key(|(k, _)| *k);
        buf.extend(
            members
                .into_iter()
                .map(|(k, w)| SampleItem::from_entry(k, *w)),
        );
        times.output += t0.elapsed().as_secs_f64();
    }

    fn rank(&self) -> usize {
        self.comm.rank()
    }

    fn size(&self) -> usize {
        self.comm.size()
    }

    fn vote(&mut self, active: u64) -> u64 {
        crate::dist::engine::vote_over_collectives(self.comm, active)
    }

    fn select_rng_state(&self) -> Vec<DefaultRng> {
        vec![self.select_rng.clone()]
    }

    fn restore_select_rng(&mut self, mut state: Vec<DefaultRng>) {
        self.select_rng = state.pop().expect("one PE, one selection generator");
    }
}

/// One PE's endpoint of the centralized gathering sampler: the stable API
/// over `ReservoirProtocol<GatherBackend>`.
pub struct GatherSampler<'a, C: Communicator> {
    engine: ReservoirProtocol<GatherBackend<'a, C>>,
}

impl<'a, C: Communicator> GatherSampler<'a, C> {
    /// Create this PE's endpoint. Every PE must pass an identical `cfg`.
    /// The baseline has no variable-size mode: any `size_window` is
    /// ignored (the root always prunes to exactly `k`), as it always was.
    pub fn new(comm: &'a C, cfg: DistConfig) -> Self {
        let cfg = DistConfig {
            size_window: None,
            ..cfg
        };
        GatherSampler {
            engine: ReservoirProtocol::new(GatherBackend::new(comm, &cfg), cfg),
        }
    }

    /// Process one mini-batch (collective). Returns the number of
    /// candidates this PE generated (and shipped to the root).
    pub fn process_batch(&mut self, items: &[Item]) -> u64 {
        self.engine.step(items).inserted
    }

    /// Like [`Self::process_batch`], with the engine's full per-batch
    /// report (sample size, scan counters, measured phase times).
    pub fn process_batch_report(&mut self, items: &[Item]) -> BatchReport {
        self.engine.step(items)
    }

    /// Drive the baseline from a push-based ingestion channel
    /// (collective): the same unified engine driver as
    /// [`crate::dist::threaded::DistributedSampler::run_pipeline`] — one
    /// 1-word vote per round keeps the drain collective across unequal
    /// stream lengths, and a final collective [`Self::collect_output`]
    /// yields the handle (the whole sample at the root, empty slices
    /// elsewhere). `report.inserted` counts the candidates this PE
    /// shipped; `report.times` now carries the full measured phase
    /// decomposition, including the root funnel under `gather`.
    pub fn run_pipeline(&mut self, batches: &Receiver<MiniBatch>) -> PipelineReport {
        self.engine.run_pipeline(batches)
    }

    /// The current insertion threshold, once the reservoir filled.
    pub fn threshold(&self) -> Option<f64> {
        self.engine.threshold()
    }

    /// The sample: the full reservoir at the root, empty elsewhere.
    pub fn sample(&self) -> Vec<SampleItem> {
        self.engine.backend().sample()
    }

    /// Number of sample members held by this PE (root: the whole sample).
    pub fn local_len(&self) -> u64 {
        self.engine.backend().local_len()
    }

    /// A read handle on this PE's always-fresh sample slot (see
    /// [`crate::dist::snapshot`]). Under
    /// [`ContinuousMode::EveryBatch`](crate::dist::ContinuousMode) the
    /// root's epochs carry the whole sample; non-root epochs hold empty
    /// slices with the agreed global placement — the same shape
    /// [`Self::collect_output`] produces.
    pub fn snapshot_reader(&self) -> crate::dist::snapshot::SnapshotReader {
        self.engine.snapshot_reader()
    }

    /// Accumulated wall-clock seconds per algorithm phase (the funnel's
    /// candidate shipping accrues under `gather`).
    pub fn phase_totals(&self) -> PhaseTimes {
        self.engine.phase_totals()
    }

    /// Output collection for the centralized baseline (collective): the
    /// engine's finalize + place steps over the root-funnel backend. The
    /// root already holds the whole reservoir, so the returned
    /// [`SampleHandle`] simply places the root's slice at offset 0 and
    /// gives every other PE an empty slice. This is the comparison point
    /// for the Section 5 distributed output — here all Θ(β·k) words
    /// already moved through the root's downlink during the batches.
    pub fn collect_output(&mut self) -> SampleHandle {
        self.engine.collect_output().0
    }

    /// The protocol engine underneath.
    pub fn engine(&mut self) -> &mut ReservoirProtocol<GatherBackend<'a, C>> {
        &mut self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reservoir_comm::run_threads;

    fn unit_batch(rank: usize, batch: u64, n: u64) -> Vec<Item> {
        (0..n)
            .map(|i| Item::new(((rank as u64) << 40) | (batch << 20) | i, 1.0))
            .collect()
    }

    #[test]
    fn root_holds_k_distinct_members() {
        let k = 40;
        let results = run_threads(3, |comm| {
            let mut s = GatherSampler::new(&comm, DistConfig::weighted(k, 7));
            for b in 0..4u64 {
                s.process_batch(&unit_batch(comm.rank(), b, 100));
            }
            (s.sample(), s.threshold())
        });
        let (sample, t) = &results[0];
        assert_eq!(sample.len(), k);
        let mut ids: Vec<u64> = sample.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), k);
        let t = t.expect("threshold established");
        assert!(sample.iter().all(|s| s.key <= t));
        // Non-roots hold nothing but agree on the threshold.
        for (sample, other_t) in &results[1..] {
            assert!(sample.is_empty());
            assert_eq!(other_t, &Some(t));
        }
    }

    #[test]
    fn collect_output_places_everything_at_the_root() {
        let k = 30;
        let results = run_threads(3, |comm| {
            let mut s = GatherSampler::new(&comm, DistConfig::weighted(k, 19));
            for b in 0..3u64 {
                s.process_batch(&unit_batch(comm.rank(), b, 80));
            }
            s.collect_output()
        });
        assert_eq!(results[0].local_len(), k as u64);
        assert_eq!(results[0].offset(), 0);
        for h in &results {
            assert_eq!(h.total_len(), k as u64);
        }
        assert!(results[1..].iter().all(|h| h.local_len() == 0));
        // The root's slice is key-sorted, as the handle contract requires.
        let keys: Vec<f64> = results[0].local_items().iter().map(|s| s.key).collect();
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn pipeline_places_the_sample_at_the_root() {
        use reservoir_stream::ingest::{spawn_source, BatchPolicy, ReplayRecords};
        let k = 20;
        let results = run_threads(3, |comm| {
            let mut s = GatherSampler::new(&comm, DistConfig::weighted(k, 23));
            // Unequal stream lengths: PE r pushes (r+1)·50 records.
            let mine: Vec<Item> = (0..=comm.rank() as u64)
                .flat_map(|batch| unit_batch(comm.rank(), batch, 50))
                .collect();
            let mut ingest = spawn_source(ReplayRecords::new(mine), BatchPolicy::by_size(50), 2);
            let rx = ingest.take_receiver();
            let report = s.run_pipeline(&rx);
            let counters = ingest.join();
            assert_eq!(counters.records_in, (comm.rank() as u64 + 1) * 50);
            // The unified driver instruments the funnel's phases too.
            assert!(report.times.ingest > 0.0 && report.times.gather > 0.0);
            (report.rounds, report.records, report.handle)
        });
        for (rank, (rounds, records, handle)) in results.iter().enumerate() {
            assert_eq!(*rounds, 3);
            assert_eq!(*records, (rank as u64 + 1) * 50);
            assert_eq!(handle.total_len(), k as u64);
        }
        assert_eq!(results[0].2.local_len(), k as u64, "root holds everything");
        assert!(results[1..].iter().all(|(_, _, h)| h.local_len() == 0));
    }

    #[test]
    fn growing_phase_keeps_everything() {
        let results = run_threads(2, |comm| {
            let mut s = GatherSampler::new(&comm, DistConfig::uniform(100, 3));
            s.process_batch(&unit_batch(comm.rank(), 0, 20));
            (s.sample().len(), s.threshold())
        });
        assert_eq!(results[0].0, 40);
        assert_eq!(results[0].1, None);
    }
}
