//! The distributed mini-batch reservoir sampler — Algorithm 1 of the paper.
//!
//! Every PE keeps its part of the global sample in a local reservoir (an
//! augmented B+ tree, [`local::LocalReservoir`]) and agrees with all other
//! PEs on a single **insertion threshold**: the key of global rank `k`
//! over the union of the local reservoirs. A mini-batch step is
//!
//! 1. **insert** — scan the local batch with exponential (weighted) or
//!    geometric (uniform) jumps, inserting every item whose key beats the
//!    current threshold (no communication);
//! 2. **count** — one `O(α log p)` all-reduce agrees on the union size;
//! 3. **select** — if the union outgrew `k`, communication-efficient
//!    distributed selection ([`reservoir_select`]) finds the key of rank
//!    `k`; it becomes the new threshold and every PE prunes its local
//!    reservoir to the keys at or below it.
//!
//! Per batch the algorithm moves `O(d)`-word payloads for an expected
//! logarithmic number of selection rounds — independent of the batch size,
//! which is the paper's headline claim.
//!
//! The step sequence itself — and the Section 5 finalize/place sequence —
//! is implemented exactly once, in [`engine::ReservoirProtocol`], over the
//! [`engine::SamplerBackend`] substrate trait. Three backends drive it:
//! [`threaded`] on real threads over real collectives, [`gather`] — the
//! same collectives under the centralized root-funnel *policy* of Section
//! 4.5 — and [`sim`], a statistical cluster simulator that reproduces the
//! algorithm's observable behaviour (sample law, threshold law, selection
//! round counts) for thousands of PEs in one process while charging the
//! very steps the engine executes to an α–β cost model.
//!
//! The sample itself stays distributed: [`output`] implements the Section 5
//! output collection, which finalizes the sample to exactly `k` members and
//! hands every PE a root-free [`output::SampleHandle`] over its slice of
//! the global output — O(log p) small messages instead of a Θ(β·k) root
//! funnel.
//!
//! Batches may be handed in directly (`process_batch`) or pushed through
//! the ingestion runtime of `reservoir_stream::ingest`: `run_pipeline` on
//! either backend drains a bounded batch channel collectively (empty
//! contributions keep lagging PEs in step), processes every batch, and
//! finishes with one `collect_output` — see [`PipelineReport`].

pub mod engine;
pub mod gather;
pub mod local;
pub(crate) mod obs_metrics;
pub mod output;
pub mod sharded;
pub mod sim;
pub mod snapshot;
pub mod threaded;

/// Whether items carry weights or are sampled uniformly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SamplingMode {
    /// Weighted sampling: keys are `Exp(weight)` variates (Section 4.1).
    Weighted,
    /// Uniform sampling: keys are `U(0, 1]` variates (Section 4.3).
    Uniform,
}

/// The seed-derivation stream of the parallel scan's per-chunk RNGs, kept
/// distinct from [`reservoir_rng::StreamKind::Keys`] so the sequential and
/// parallel paths never share raw generator state.
pub(crate) const PAR_SCAN_STREAM: u16 = 0x5041; // "PA"

/// Parse a `RESERVOIR_THREADS` value: a positive integer, surrounding
/// whitespace tolerated.
fn parse_threads(v: &str) -> Result<usize, String> {
    match v.trim().parse::<usize>() {
        Ok(t) if t >= 1 => Ok(t),
        _ => Err(format!(
            "RESERVOIR_THREADS accepts a positive integer (worker threads \
             per PE), got {v:?}"
        )),
    }
}

/// How a parallel local scan's surviving candidates reach the reservoir
/// tree. Both modes draw the identical per-`(seed, batch, chunk)` RNG
/// streams, so the fixed-seed sample is the same either way — only the
/// merge schedule (and its scaling behaviour) differs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MergeMode {
    /// Buffer candidates per chunk; one sequential epilogue merges them
    /// into the B+ tree after the scan scope joins (PR 4's scheme; the
    /// sequential scan at `threads_per_pe == 1`).
    #[default]
    Epilogue,
    /// Scan workers insert candidates directly into one shared concurrent
    /// tree (`reservoir_par::ConcurrentReservoir` over seqlock-based
    /// optimistic lock coupling) — no sequential merge. Selected at *any*
    /// thread count so a single-threaded concurrent baseline exists.
    Concurrent,
}

/// Parse a `RESERVOIR_MERGE` value: `epilogue` | `concurrent`,
/// case-insensitive, surrounding whitespace tolerated.
fn parse_merge(v: &str) -> Result<MergeMode, String> {
    match v.trim().to_ascii_lowercase().as_str() {
        "epilogue" => Ok(MergeMode::Epilogue),
        "concurrent" => Ok(MergeMode::Concurrent),
        _ => Err(format!(
            "RESERVOIR_MERGE accepts 'epilogue' or 'concurrent', got {v:?}"
        )),
    }
}

/// Whether the engine publishes an always-fresh [`snapshot::SampleEpoch`]
/// while ingestion runs. Publication rides the existing Section 5
/// finalize/place path and restores the selection RNG afterwards, so the
/// fixed-seed final sample is byte-identical in both modes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ContinuousMode {
    /// Classic semantics: the sample only materializes at
    /// `collect_output`. Snapshot readers see the genesis (empty) epoch
    /// until then, plus the final epoch once collected.
    #[default]
    Disabled,
    /// Publish a finalized-to-`k` epoch after every collective batch
    /// step, so concurrent [`snapshot::SnapshotReader`]s always hold a
    /// sample at most one batch stale. Costs one finalize/place sequence
    /// per batch (the simulator charges it to the α–β model).
    EveryBatch,
}

/// Parse a `RESERVOIR_CONTINUOUS` value: `0` | `off` | `disabled` for
/// [`ContinuousMode::Disabled`], `1` | `on` | `every-batch` | `everybatch`
/// for [`ContinuousMode::EveryBatch`]; case-insensitive, surrounding
/// whitespace tolerated.
fn parse_continuous(v: &str) -> Result<ContinuousMode, String> {
    match v.trim().to_ascii_lowercase().as_str() {
        "0" | "off" | "disabled" => Ok(ContinuousMode::Disabled),
        "1" | "on" | "every-batch" | "everybatch" => Ok(ContinuousMode::EveryBatch),
        _ => Err(format!(
            "RESERVOIR_CONTINUOUS accepts 0/off/disabled or \
             1/on/every-batch, got {v:?}"
        )),
    }
}

/// Continuous mode when the configuration does not say otherwise: the
/// `RESERVOIR_CONTINUOUS` environment variable, or
/// [`ContinuousMode::Disabled`]. The CI snapshot-stress job sets
/// `RESERVOIR_CONTINUOUS=1` to run the whole suite with per-batch
/// publication on.
fn default_continuous() -> ContinuousMode {
    match std::env::var("RESERVOIR_CONTINUOUS") {
        Ok(v) => parse_continuous(&v).unwrap_or_else(|e| panic!("{e}")),
        Err(_) => ContinuousMode::Disabled,
    }
}

/// Read every sampler environment default in one validated pass:
/// `RESERVOIR_THREADS` (the CI matrix sets 4 to run the suite down the
/// parallel scan path), `RESERVOIR_MERGE` (the stress job sets
/// `concurrent`), `RESERVOIR_CONTINUOUS`, and `RESERVOIR_OBS` (arms the
/// `reservoir_obs` metrics registry and flight recorder; the CI obs job
/// sets 1). All malformed variables are reported in a single panic
/// message — a user with two typos fixes both on the first round trip —
/// and validation happens once, at config construction, not on some
/// later batch.
fn env_defaults() -> (usize, MergeMode, ContinuousMode) {
    let mut errors = Vec::new();
    // First touch wins for the gate itself (a programmatic
    // `reservoir_obs::set_enabled` is never overridden), but a malformed
    // value still joins the aggregate report here.
    if let Err(e) = reservoir_obs::init_env() {
        errors.push(e);
    }
    let threads = match std::env::var("RESERVOIR_THREADS") {
        Ok(v) => parse_threads(&v).unwrap_or_else(|e| {
            errors.push(e);
            1
        }),
        Err(_) => 1,
    };
    let merge = match std::env::var("RESERVOIR_MERGE") {
        Ok(v) => parse_merge(&v).unwrap_or_else(|e| {
            errors.push(e);
            MergeMode::Epilogue
        }),
        Err(_) => MergeMode::Epilogue,
    };
    let continuous = match std::env::var("RESERVOIR_CONTINUOUS") {
        Ok(v) => parse_continuous(&v).unwrap_or_else(|e| {
            errors.push(e);
            ContinuousMode::Disabled
        }),
        Err(_) => ContinuousMode::Disabled,
    };
    assert!(
        errors.is_empty(),
        "invalid sampler environment: {}",
        errors.join("; ")
    );
    (threads, merge, continuous)
}

/// Configuration shared by the distributed samplers.
#[derive(Clone, Copy, Debug)]
pub struct DistConfig {
    /// Sample size `k` (the lower bound `k` in variable-size mode).
    pub k: usize,
    /// Master seed; per-PE streams are derived deterministically.
    pub seed: u64,
    /// Weighted or uniform sampling.
    pub mode: SamplingMode,
    /// Pivot candidates per selection round (the paper's `d`).
    pub pivots: usize,
    /// Variable-size window `(k, k̄)` of Section 4.4: the sample may grow
    /// to `k̄` before an *approximate* selection shrinks it back into the
    /// window. `None` keeps the size exactly `k`.
    pub size_window: Option<(u64, u64)>,
    /// Worker threads each PE's local scan runs on (`reservoir_par`'s
    /// work-stealing pool above 1; the classic sequential scan at 1). The
    /// sampling law is identical either way. Constructors default this to
    /// the `RESERVOIR_THREADS` environment variable, falling back to 1.
    pub threads_per_pe: usize,
    /// Reuse one persistent worker crew (`reservoir_par::Pool::persistent`)
    /// across every batch scan instead of spawning helpers per scope —
    /// worthwhile when mini-batches are too small to amortize the ~100 µs
    /// per-helper spawn cost. No effect at `threads_per_pe == 1`; the
    /// sample is identical either way (see `ScanStats::spawns`).
    pub persistent_pool: bool,
    /// How scan candidates are merged into the local reservoir tree:
    /// buffered + sequential epilogue, or direct concurrent insertion into
    /// a shared tree. Constructors default this to the `RESERVOIR_MERGE`
    /// environment variable, falling back to [`MergeMode::Epilogue`]. The
    /// fixed-seed sample is identical in both modes.
    pub merge: MergeMode,
    /// Whether the engine publishes an always-fresh sample epoch per
    /// batch step for concurrent snapshot readers. Constructors default
    /// this to the `RESERVOIR_CONTINUOUS` environment variable, falling
    /// back to [`ContinuousMode::Disabled`]. The fixed-seed final sample
    /// is identical in both modes.
    pub continuous: ContinuousMode,
    /// Contention-aware insertion on the concurrent merge path
    /// ([`MergeMode::Concurrent`] only): scan workers micro-batch their
    /// candidates and insert them in key order, so consecutive inserts
    /// descend to the same leaf and optimistic restarts drop. Defaults
    /// to `true`; the candidate *set* is unchanged (only its insertion
    /// order), so the fixed-seed sample is identical either way.
    pub leaf_affinity: bool,
}

impl DistConfig {
    /// Weighted sampling with sample size `k`.
    pub fn weighted(k: usize, seed: u64) -> Self {
        assert!(k >= 1, "sample size must be at least 1");
        let (threads_per_pe, merge, continuous) = env_defaults();
        DistConfig {
            k,
            seed,
            mode: SamplingMode::Weighted,
            pivots: 1,
            size_window: None,
            threads_per_pe,
            persistent_pool: false,
            merge,
            continuous,
            leaf_affinity: true,
        }
    }

    /// Uniform (unweighted) sampling with sample size `k`.
    pub fn uniform(k: usize, seed: u64) -> Self {
        DistConfig {
            mode: SamplingMode::Uniform,
            ..Self::weighted(k, seed)
        }
    }

    /// Use `d` pivot candidates per selection round.
    pub fn with_pivots(mut self, d: usize) -> Self {
        assert!(d >= 1, "at least one pivot per round");
        self.pivots = d;
        self
    }

    /// Run every PE's local scan on `t` worker threads (overrides the
    /// `RESERVOIR_THREADS` default). `1` selects the sequential scan.
    pub fn with_threads(mut self, t: usize) -> Self {
        assert!(t >= 1, "at least one scan thread per PE");
        self.threads_per_pe = t;
        self
    }

    /// Keep one persistent scan-worker crew alive across batches instead
    /// of spawning helper threads per batch (`threads_per_pe > 1` only).
    pub fn with_persistent_pool(mut self, persistent: bool) -> Self {
        self.persistent_pool = persistent;
        self
    }

    /// Merge scan candidates through the given [`MergeMode`] (overrides
    /// the `RESERVOIR_MERGE` default).
    pub fn with_merge(mut self, merge: MergeMode) -> Self {
        self.merge = merge;
        self
    }

    /// Publish always-fresh sample epochs per the given
    /// [`ContinuousMode`] (overrides the `RESERVOIR_CONTINUOUS` default).
    pub fn with_continuous(mut self, continuous: ContinuousMode) -> Self {
        self.continuous = continuous;
        self
    }

    /// Toggle contention-aware (key-ordered, micro-batched) insertion on
    /// the concurrent merge path. On by default; off reverts to
    /// arrival-order inserts. The sample is identical either way.
    pub fn with_leaf_affinity(mut self, on: bool) -> Self {
        self.leaf_affinity = on;
        self
    }

    /// Tolerate any sample size in `lo..=hi` (Section 4.4). Selection only
    /// runs once the sample outgrows `hi`, and it targets the whole window
    /// instead of an exact rank — far fewer selection rounds.
    pub fn with_size_window(mut self, lo: u64, hi: u64) -> Self {
        assert!(1 <= lo && lo <= hi, "invalid size window {lo}..{hi}");
        self.size_window = Some((lo, hi));
        self
    }

    /// The size the local reservoirs must retain during the growing phase:
    /// the union of per-PE `cap`-smallest sets must contain the global
    /// `cap`-smallest set for the largest rank selection may target.
    pub(crate) fn local_cap(&self) -> usize {
        match self.size_window {
            Some((_, hi)) => (hi as usize).max(self.k),
            None => self.k,
        }
    }

    /// The union size above which a selection is triggered.
    pub(crate) fn size_limit(&self) -> u64 {
        match self.size_window {
            Some((_, hi)) => hi,
            None => self.k as u64,
        }
    }
}

/// What one [`threaded::DistributedSampler::process_batch`] call did.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BatchReport {
    /// Global sample size after the batch (union of the local reservoirs).
    pub sample_size: u64,
    /// Selection rounds used this batch (0 when no selection ran).
    pub select_rounds: u32,
    /// Items inserted into *this PE's* local reservoir during the batch.
    pub inserted: u64,
    /// The local scan's work counters for this batch, including the
    /// parallel path's chunk and steal counts.
    pub scan: local::ScanStats,
    /// Wall-clock seconds this batch spent per algorithm phase on this PE
    /// (`ingest` is always 0 here; it accrues in the `run_pipeline`
    /// drain. `output` is 0 except under
    /// [`ContinuousMode::EveryBatch`], where each step's epoch
    /// publication bills its finalize/place sequence here).
    /// `times.par_scan` carries the busiest scan worker's seconds when
    /// `threads_per_pe > 1`.
    pub times: crate::metrics::PhaseTimes,
}

/// What one `run_pipeline` drain did on this PE: the samplers' driver for
/// the push-based ingestion runtime (`reservoir_stream::ingest`). The
/// drain is collective — every PE executes the same number of
/// `process_batch` rounds (PEs whose channel ran dry contribute empty
/// batches until every channel is closed and drained), then one
/// collective `collect_output` produces the final [`SampleHandle`].
#[derive(Clone, Debug)]
pub struct PipelineReport {
    /// Mini-batches this PE actually drained from its channel.
    pub batches: u64,
    /// Collective `process_batch` rounds executed (identical on every PE;
    /// at least `batches`, more when other PEs had longer streams).
    pub rounds: u64,
    /// Records this PE pushed through the sampler.
    pub records: u64,
    /// Items this PE contributed across the drain: reservoir insertions
    /// on the distributed backend; candidates generated for the root on
    /// the gather baseline (whose non-root PEs hold no local reservoir).
    pub inserted: u64,
    /// Distributed selection rounds summed over all batches (always 0 on
    /// the gather baseline, which selects sequentially at the root).
    pub select_rounds: u64,
    /// Seconds this PE spent blocked on the ingestion channel plus in the
    /// drain's own continue/stop agreement (equals `times.ingest`).
    pub ingest_wait_s: f64,
    /// Phase times of this drain on this PE, including the ingest wait —
    /// the engine's unified pipeline driver fills every phase on both
    /// backend policies (the same accounting as
    /// [`threaded::DistributedSampler::phase_totals`], restricted to this
    /// drain).
    pub times: crate::metrics::PhaseTimes,
    /// The Section 5 output handle over the final sample.
    pub handle: SampleHandle,
}

impl PipelineReport {
    /// Global size of the final sample.
    pub fn sample_size(&self) -> u64 {
        self.handle.total_len()
    }
}

pub use engine::{ReservoirProtocol, SamplerBackend};
pub use gather::GatherSampler;
pub use local::LocalReservoir;
pub use output::SampleHandle;
pub use sharded::{shard_seed, ShardedBatchReport, ShardedPipelineReport, ShardedSampler};
pub use snapshot::{EpochPublisher, SampleEpoch, SnapshotReader};
pub use threaded::DistributedSampler;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_constructors() {
        let w = DistConfig::weighted(10, 1);
        assert_eq!(w.mode, SamplingMode::Weighted);
        assert_eq!(w.pivots, 1);
        assert_eq!(w.local_cap(), 10);
        assert_eq!(w.size_limit(), 10);
        assert!(w.threads_per_pe >= 1, "env default must be positive");
        let u = DistConfig::uniform(10, 1).with_pivots(8);
        assert_eq!(u.mode, SamplingMode::Uniform);
        assert_eq!(u.pivots, 8);
        let v = DistConfig::weighted(10, 1).with_size_window(10, 25);
        assert_eq!(v.local_cap(), 25);
        assert_eq!(v.size_limit(), 25);
        let t = DistConfig::weighted(10, 1).with_threads(4);
        assert_eq!(t.threads_per_pe, 4);
        assert!(!t.persistent_pool);
        let p = t.with_persistent_pool(true);
        assert!(p.persistent_pool);
        let c = p.with_merge(MergeMode::Concurrent);
        assert_eq!(c.merge, MergeMode::Concurrent);
        assert_eq!(
            DistConfig::weighted(10, 1)
                .with_merge(MergeMode::Epilogue)
                .merge,
            MergeMode::Epilogue
        );
        let s = c.with_continuous(ContinuousMode::EveryBatch);
        assert_eq!(s.continuous, ContinuousMode::EveryBatch);
        assert_eq!(
            s.with_continuous(ContinuousMode::Disabled).continuous,
            ContinuousMode::Disabled
        );
    }

    #[test]
    #[should_panic(expected = "at least one scan thread")]
    fn zero_threads_rejected() {
        let _ = DistConfig::weighted(10, 1).with_threads(0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_k_rejected() {
        let _ = DistConfig::weighted(0, 1);
    }

    #[test]
    #[should_panic(expected = "invalid size window")]
    fn inverted_window_rejected() {
        let _ = DistConfig::weighted(10, 1).with_size_window(20, 10);
    }

    // The environment parsers are pure functions, tested without touching
    // the process environment (the suite runs tests concurrently).

    #[test]
    fn parse_threads_accepts_positive_integers_and_whitespace() {
        assert_eq!(parse_threads("1"), Ok(1));
        assert_eq!(parse_threads(" 8 "), Ok(8));
        assert_eq!(parse_threads("\t16\n"), Ok(16));
    }

    #[test]
    fn parse_threads_rejects_junk_with_a_named_error() {
        for bad in ["", "   ", "0", "-2", "four", "4.0"] {
            let e = parse_threads(bad).unwrap_err();
            assert!(
                e.contains("RESERVOIR_THREADS") && e.contains("positive integer"),
                "error for {bad:?} must name the variable and the accepted \
                 form, got {e:?}"
            );
        }
    }

    #[test]
    fn parse_merge_is_case_insensitive_and_trimmed() {
        assert_eq!(parse_merge("epilogue"), Ok(MergeMode::Epilogue));
        assert_eq!(parse_merge("Concurrent"), Ok(MergeMode::Concurrent));
        assert_eq!(parse_merge(" EPILOGUE\t"), Ok(MergeMode::Epilogue));
    }

    #[test]
    fn parse_merge_rejects_junk_with_all_accepted_values_named() {
        for bad in ["", "  ", "eplogue", "shared", "2"] {
            let e = parse_merge(bad).unwrap_err();
            assert!(
                e.contains("RESERVOIR_MERGE") && e.contains("epilogue") && e.contains("concurrent"),
                "error for {bad:?} must name every accepted value, got {e:?}"
            );
        }
    }

    #[test]
    fn parse_continuous_accepts_every_alias() {
        for (v, want) in [
            ("0", ContinuousMode::Disabled),
            ("off", ContinuousMode::Disabled),
            ("Disabled", ContinuousMode::Disabled),
            ("1", ContinuousMode::EveryBatch),
            ("ON", ContinuousMode::EveryBatch),
            (" every-batch ", ContinuousMode::EveryBatch),
            ("EveryBatch", ContinuousMode::EveryBatch),
        ] {
            assert_eq!(parse_continuous(v), Ok(want), "value {v:?}");
        }
    }

    #[test]
    fn parse_continuous_rejects_junk_with_all_accepted_values_named() {
        for bad in ["", " \n", "2", "always", "batch"] {
            let e = parse_continuous(bad).unwrap_err();
            assert!(
                e.contains("RESERVOIR_CONTINUOUS")
                    && e.contains("disabled")
                    && e.contains("every-batch"),
                "error for {bad:?} must name every accepted value, got {e:?}"
            );
        }
    }
}
