//! The distributed mini-batch reservoir sampler — Algorithm 1 of the paper.
//!
//! Every PE keeps its part of the global sample in a local reservoir (an
//! augmented B+ tree, [`local::LocalReservoir`]) and agrees with all other
//! PEs on a single **insertion threshold**: the key of global rank `k`
//! over the union of the local reservoirs. A mini-batch step is
//!
//! 1. **insert** — scan the local batch with exponential (weighted) or
//!    geometric (uniform) jumps, inserting every item whose key beats the
//!    current threshold (no communication);
//! 2. **count** — one `O(α log p)` all-reduce agrees on the union size;
//! 3. **select** — if the union outgrew `k`, communication-efficient
//!    distributed selection ([`reservoir_select`]) finds the key of rank
//!    `k`; it becomes the new threshold and every PE prunes its local
//!    reservoir to the keys at or below it.
//!
//! Per batch the algorithm moves `O(d)`-word payloads for an expected
//! logarithmic number of selection rounds — independent of the batch size,
//! which is the paper's headline claim.
//!
//! Two backends execute this identically: [`threaded`] on real threads over
//! real collectives, and [`sim`] — a statistical cluster simulator that
//! reproduces the algorithm's observable behaviour (sample law, threshold
//! law, selection round counts) for thousands of PEs in one process while
//! charging communication to an α–β cost model. [`gather`] is the
//! centralized baseline of Section 4.5.
//!
//! The sample itself stays distributed: [`output`] implements the Section 5
//! output collection, which finalizes the sample to exactly `k` members and
//! hands every PE a root-free [`output::SampleHandle`] over its slice of
//! the global output — O(log p) small messages instead of a Θ(β·k) root
//! funnel.

pub mod gather;
pub mod local;
pub mod output;
pub mod sim;
pub mod threaded;

/// Whether items carry weights or are sampled uniformly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SamplingMode {
    /// Weighted sampling: keys are `Exp(weight)` variates (Section 4.1).
    Weighted,
    /// Uniform sampling: keys are `U(0, 1]` variates (Section 4.3).
    Uniform,
}

/// Configuration shared by the distributed samplers.
#[derive(Clone, Copy, Debug)]
pub struct DistConfig {
    /// Sample size `k` (the lower bound `k` in variable-size mode).
    pub k: usize,
    /// Master seed; per-PE streams are derived deterministically.
    pub seed: u64,
    /// Weighted or uniform sampling.
    pub mode: SamplingMode,
    /// Pivot candidates per selection round (the paper's `d`).
    pub pivots: usize,
    /// Variable-size window `(k, k̄)` of Section 4.4: the sample may grow
    /// to `k̄` before an *approximate* selection shrinks it back into the
    /// window. `None` keeps the size exactly `k`.
    pub size_window: Option<(u64, u64)>,
}

impl DistConfig {
    /// Weighted sampling with sample size `k`.
    pub fn weighted(k: usize, seed: u64) -> Self {
        assert!(k >= 1, "sample size must be at least 1");
        DistConfig {
            k,
            seed,
            mode: SamplingMode::Weighted,
            pivots: 1,
            size_window: None,
        }
    }

    /// Uniform (unweighted) sampling with sample size `k`.
    pub fn uniform(k: usize, seed: u64) -> Self {
        DistConfig {
            mode: SamplingMode::Uniform,
            ..Self::weighted(k, seed)
        }
    }

    /// Use `d` pivot candidates per selection round.
    pub fn with_pivots(mut self, d: usize) -> Self {
        assert!(d >= 1, "at least one pivot per round");
        self.pivots = d;
        self
    }

    /// Tolerate any sample size in `lo..=hi` (Section 4.4). Selection only
    /// runs once the sample outgrows `hi`, and it targets the whole window
    /// instead of an exact rank — far fewer selection rounds.
    pub fn with_size_window(mut self, lo: u64, hi: u64) -> Self {
        assert!(1 <= lo && lo <= hi, "invalid size window {lo}..{hi}");
        self.size_window = Some((lo, hi));
        self
    }

    /// The size the local reservoirs must retain during the growing phase:
    /// the union of per-PE `cap`-smallest sets must contain the global
    /// `cap`-smallest set for the largest rank selection may target.
    pub(crate) fn local_cap(&self) -> usize {
        match self.size_window {
            Some((_, hi)) => (hi as usize).max(self.k),
            None => self.k,
        }
    }

    /// The union size above which a selection is triggered.
    pub(crate) fn size_limit(&self) -> u64 {
        match self.size_window {
            Some((_, hi)) => hi,
            None => self.k as u64,
        }
    }
}

/// What one [`threaded::DistributedSampler::process_batch`] call did.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BatchReport {
    /// Global sample size after the batch (union of the local reservoirs).
    pub sample_size: u64,
    /// Selection rounds used this batch (0 when no selection ran).
    pub select_rounds: u32,
    /// Items inserted into *this PE's* local reservoir during the batch.
    pub inserted: u64,
    /// Wall-clock seconds this batch spent per algorithm phase on this PE
    /// (`output` is always 0 here; it accrues in `collect_output`).
    pub times: crate::metrics::PhaseTimes,
}

pub use gather::GatherSampler;
pub use local::LocalReservoir;
pub use output::SampleHandle;
pub use threaded::DistributedSampler;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_constructors() {
        let w = DistConfig::weighted(10, 1);
        assert_eq!(w.mode, SamplingMode::Weighted);
        assert_eq!(w.pivots, 1);
        assert_eq!(w.local_cap(), 10);
        assert_eq!(w.size_limit(), 10);
        let u = DistConfig::uniform(10, 1).with_pivots(8);
        assert_eq!(u.mode, SamplingMode::Uniform);
        assert_eq!(u.pivots, 8);
        let v = DistConfig::weighted(10, 1).with_size_window(10, 25);
        assert_eq!(v.local_cap(), 25);
        assert_eq!(v.size_limit(), 25);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_k_rejected() {
        let _ = DistConfig::weighted(0, 1);
    }

    #[test]
    #[should_panic(expected = "invalid size window")]
    fn inverted_window_rejected() {
        let _ = DistConfig::weighted(10, 1).with_size_window(20, 10);
    }
}
