//! The backend-agnostic protocol engine: **one** implementation of the
//! Algorithm 1 step sequence and the Section 5 finalize/place sequence,
//! parameterized by the communication substrate.
//!
//! The paper defines a single collective protocol whose only variable is
//! the machine underneath it (and its companion *Parallel Weighted Random
//! Sampling* factoring makes the same algorithm-over-abstract-machine
//! move). This module mirrors that: [`ReservoirProtocol`] owns the
//! protocol state — the insertion threshold, the configuration, the phase
//! accounting — and drives the per-batch step sequence
//!
//! 1. **insert_scan** — scan this endpoint's share of the batch below the
//!    current threshold (no communication);
//! 2. **count** — agree on the union size (one 1-word all-reduce);
//! 3. **select_prune** — when the union outgrew the limit, select the new
//!    threshold over the union and prune every local reservoir to it;
//!
//! plus the Section 5 output sequence
//!
//! 4. **finalize** — if the union currently exceeds `k`, one selection to
//!    exact rank `k` fixes the final threshold; no items move;
//! 5. **place** — an exclusive prefix count assigns every endpoint the
//!    global output positions of its slice.
//!
//! What varies between execution, baseline comparison, and cost modeling
//! is confined to the [`SamplerBackend`] trait:
//!
//! | backend | substrate | insert | select |
//! |---|---|---|---|
//! | [`CommBackend`](crate::dist::threaded::CommBackend) | real [`Collectives`](reservoir_comm::Collectives) | jump scans into a [`PeReservoir`](crate::dist::local) | `select_threaded` over the wire |
//! | [`GatherBackend`](crate::dist::gather::GatherBackend) | real collectives, root-funnel *policy* | jump scans + ship candidates to the root | sequential quickselect at the root, broadcast |
//! | [`SimBackend`](crate::dist::sim::SimBackend) | α–β [`CostModel`](reservoir_comm::CostModel) | statistical (Poissonized) insertion, costs charged | `select_conductor` folds, costs charged |
//!
//! Because the simulator drives the *same* engine code, every cost it
//! charges corresponds to a step the real protocol actually executes —
//! and window-mode finalization rounds fall out of the shared
//! [`ReservoirProtocol::finalize`] instead of needing a fourth protocol
//! copy.
//!
//! Cost/time attribution is the backend's job, not the engine's: each
//! step hands the backend a [`PhaseTimes`] and a [`Charge`] naming the
//! slot to bill, so the threaded backends bill measured wall-clock and
//! the simulated backend bills modeled time into the identical structure.

use std::sync::mpsc::Receiver;
use std::time::Instant;

use reservoir_btree::SampleKey;
use reservoir_select::{SelectResult, TargetRank};
use reservoir_stream::ingest::MiniBatch;
use reservoir_stream::Item;

use crate::dist::local::ScanStats;
use crate::dist::obs_metrics;
use crate::dist::output::SampleHandle;
use crate::dist::snapshot::{EpochPublisher, SampleEpoch, SnapshotReader};
use crate::dist::{BatchReport, ContinuousMode, DistConfig, PipelineReport, SamplingMode};
use crate::metrics::PhaseTimes;
use crate::sample::SampleItem;

/// Which phase slot a backend bills a step's cost to. The same collective
/// is charged differently depending on where the protocol stands: the
/// union count bills `threshold` inside a batch step but `output` inside
/// the Section 5 collection, exactly as the paper's Figure 6 decomposes
/// running time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Charge {
    /// Batch-step selection (`PhaseTimes::select`, plus `gather` /
    /// `threshold` for the root-funnel policy's shipping and broadcast).
    Select,
    /// Threshold agreement and pruning (`PhaseTimes::threshold`).
    Threshold,
    /// Section 5 output collection (`PhaseTimes::output`).
    Output,
}

impl Charge {
    /// The slot of `times` this charge bills — the one mapping every
    /// backend uses, so a new phase or charge kind is wired in one place.
    pub fn slot(self, times: &mut PhaseTimes) -> &mut f64 {
        match self {
            Charge::Select => &mut times.select,
            Charge::Threshold => &mut times.threshold,
            Charge::Output => &mut times.output,
        }
    }
}

/// What one backend insert step did on this endpoint.
#[derive(Clone, Debug, Default)]
pub struct InsertOutcome {
    /// Scan counters (the simulated backend fills `processed`/`inserted`;
    /// the threaded backends fill everything including the parallel
    /// chunk/steal/spawn counts). `inserted` counts this endpoint's
    /// *contribution* — reservoir insertions on the distributed policy,
    /// candidates shipped to the root on the gather policy.
    pub stats: ScanStats,
}

/// Where this endpoint's output slice lands in the global sample.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Placement {
    /// Global output position of the slice's first member (exclusive
    /// prefix count over endpoint ranks).
    pub offset: u64,
    /// Global sample size.
    pub total: u64,
}

/// Outcome of the Section 5 finalize step on this endpoint.
#[derive(Clone, Copy, Debug)]
pub struct Finalized {
    /// The finalization threshold: the key of exact global rank `k` when
    /// the union exceeded `k`, otherwise the protocol's current
    /// threshold. Every output member's key is at or below it.
    pub threshold: Option<SampleKey>,
    /// Members of this endpoint's slice (keys at or below `threshold`).
    pub keep: u64,
    /// Selection rounds the finalization used (0 when the sample already
    /// fit in `k`).
    pub rounds: u32,
}

/// The communication substrate one protocol endpoint runs on.
///
/// A real backend ([`CommBackend`](crate::dist::threaded::CommBackend),
/// [`GatherBackend`](crate::dist::gather::GatherBackend)) is one PE's
/// endpoint over a [`Communicator`](reservoir_comm::Communicator) and
/// *measures* wall-clock into the [`PhaseTimes`] slot the [`Charge`]
/// names; the simulated backend
/// ([`SimBackend`](crate::dist::sim::SimBackend)) is the whole cluster's
/// conductor and *charges* the α–β model instead. Either way, the engine
/// calls the steps in the same order, so the protocol body exists once.
pub trait SamplerBackend {
    /// **insert_scan**: process this endpoint's share of one mini-batch
    /// below `threshold` (`None` = growing mode). The simulated backend
    /// ignores `items` and draws its configured workload statistically.
    /// Bills `times.insert` (and `times.par_scan` for the overlap).
    fn insert(
        &mut self,
        mode: SamplingMode,
        items: &[Item],
        threshold: Option<SampleKey>,
        times: &mut PhaseTimes,
    ) -> InsertOutcome;

    /// **count**: the 1-word all-reduce agreeing on the union size.
    fn count(&mut self, times: &mut PhaseTimes, charge: Charge) -> u64;

    /// **select**: find the key whose global rank lies in `target` over
    /// the union of all endpoints' reservoirs (`union` keys, agreed by
    /// [`Self::count`]). Collective; all endpoints return the same
    /// result.
    fn select(
        &mut self,
        target: TargetRank,
        union: u64,
        pivots: usize,
        times: &mut PhaseTimes,
        charge: Charge,
    ) -> SelectResult;

    /// **prune**: drop every local reservoir entry above `t` (local).
    fn prune(&mut self, t: &SampleKey, times: &mut PhaseTimes, charge: Charge);

    /// **place**: agree on the global sample size and this endpoint's
    /// output offset for a slice of `local` members. Bills
    /// `times.output`.
    fn place(&mut self, local: u64, times: &mut PhaseTimes) -> Placement;

    /// Members this endpoint's reservoir currently holds (local, free).
    fn local_len(&self) -> u64;

    /// How many of this endpoint's members have keys at or below `t`
    /// (local, free).
    fn local_count_le(&self, t: &SampleKey) -> u64;

    /// **extract**: write this endpoint's members with keys at or below
    /// `t` (`None` = all), key-sorted within the endpoint's output order,
    /// into `buf` (cleared first). The O(k) local copy is part of the
    /// output collection: real backends bill `times.output` wall-clock;
    /// the simulated conductor charges nothing (the cost model has no
    /// extraction term — local output bookkeeping is free, as it always
    /// was).
    fn local_items_le(
        &self,
        t: Option<&SampleKey>,
        buf: &mut Vec<SampleItem>,
        times: &mut PhaseTimes,
    );

    /// This endpoint's rank and the number of endpoints, for output
    /// placement bookkeeping (the simulated conductor reports `(0, p)`).
    fn rank(&self) -> usize;
    /// See [`Self::rank`].
    fn size(&self) -> usize;

    /// Checkpoint the selection RNG state (one generator per endpoint
    /// this backend drives; the conductor-style simulator returns all
    /// `p`). Continuous-mode epoch publication brackets its finalize
    /// selection with checkpoint/restore so the publication consumes no
    /// randomness the batch protocol would otherwise see — the key to
    /// byte-identical fixed-seed samples with publication on or off.
    fn select_rng_state(&self) -> Vec<reservoir_rng::DefaultRng>;

    /// Restore a checkpoint taken by [`Self::select_rng_state`].
    fn restore_select_rng(&mut self, state: Vec<reservoir_rng::DefaultRng>);

    /// One 1-word all-reduce outside the phase accounting — the
    /// ingestion drain's continue/stop vote. Only the real backends
    /// drive pipelines; the conductor-style simulator has no ingestion
    /// substrate.
    fn vote(&mut self, active: u64) -> u64 {
        let _ = active;
        unimplemented!("this backend has no ingestion substrate")
    }
}

/// The place step over real collectives — one exclusive prefix sum plus
/// one sum, billed to `output` — shared by every `Communicator`-based
/// backend policy so the output placement cannot drift between them.
pub(crate) fn place_over_collectives<C: reservoir_comm::Communicator>(
    comm: &C,
    local: u64,
    times: &mut PhaseTimes,
) -> Placement {
    use reservoir_comm::Collectives;
    let t0 = Instant::now();
    let placement = Placement {
        offset: comm.exscan_sum_u64(local),
        total: comm.sum_u64(local),
    };
    times.output += t0.elapsed().as_secs_f64();
    placement
}

/// The drain vote over real collectives, shared by the same policies.
pub(crate) fn vote_over_collectives<C: reservoir_comm::Communicator>(comm: &C, active: u64) -> u64 {
    use reservoir_comm::Collectives;
    comm.sum_u64(active)
}

/// One endpoint of the Algorithm 1 + Section 5 protocol over any
/// [`SamplerBackend`]: the single copy of the step sequence that
/// [`DistributedSampler`](crate::dist::threaded::DistributedSampler),
/// [`GatherSampler`](crate::dist::gather::GatherSampler) and
/// [`SimCluster`](crate::dist::sim::SimCluster) all drive.
pub struct ReservoirProtocol<B: SamplerBackend> {
    backend: B,
    cfg: DistConfig,
    threshold: Option<SampleKey>,
    phases: PhaseTimes,
    /// Batch steps driven so far — the `a` payload of this endpoint's
    /// `BatchStart`/`BatchEnd` flight-recorder events.
    steps: u64,
    /// The always-fresh read slot this endpoint publishes into. Always
    /// present (readers can be handed out before the first publication);
    /// publication itself only runs under [`ContinuousMode::EveryBatch`]
    /// plus once per `collect_output`.
    publisher: EpochPublisher,
}

impl<B: SamplerBackend> ReservoirProtocol<B> {
    /// Wrap `backend` in a protocol endpoint. Every endpoint of the same
    /// cluster must use an identical `cfg`.
    pub fn new(backend: B, cfg: DistConfig) -> Self {
        let publisher = EpochPublisher::new(backend.rank(), backend.size());
        ReservoirProtocol {
            backend,
            cfg,
            threshold: None,
            phases: PhaseTimes::default(),
            steps: 0,
            publisher,
        }
    }

    /// A read handle on this endpoint's always-fresh sample slot; clone
    /// freely across threads. Before the first publication it serves the
    /// empty genesis epoch.
    pub fn snapshot_reader(&self) -> SnapshotReader {
        self.publisher.reader()
    }

    /// The substrate underneath (reservoir inspection, simulator cost
    /// counters, …).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable access to the substrate.
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// The configuration this endpoint runs with.
    pub fn config(&self) -> &DistConfig {
        &self.cfg
    }

    /// The current global insertion threshold, once established.
    pub fn threshold(&self) -> Option<f64> {
        self.threshold.map(|k| k.key)
    }

    /// The current threshold with its tie-breaking id.
    pub fn threshold_key(&self) -> Option<SampleKey> {
        self.threshold
    }

    /// Accumulated time per phase across every step this endpoint ran
    /// (measured on real backends, modeled on the simulated one).
    pub fn phase_totals(&self) -> PhaseTimes {
        self.phases
    }

    /// Whether the union size `union` triggers a selection: the sample
    /// outgrew its limit (`k`, or `k̄` in window mode), or the reservoir
    /// just filled for the first time and the insertion threshold comes
    /// into existence (exact-size mode only — window mode waits for the
    /// overflow).
    pub(crate) fn select_now(&self, union: u64) -> bool {
        union > self.cfg.size_limit()
            || (self.threshold.is_none()
                && self.cfg.size_window.is_none()
                && union >= self.cfg.k as u64)
    }

    /// The rank the batch-step selection targets: exact `k`, or the whole
    /// window in variable-size mode (Section 4.4's far cheaper
    /// approximate selection).
    pub(crate) fn select_target(&self) -> TargetRank {
        match self.cfg.size_window {
            Some((lo, hi)) => TargetRank::range(lo, hi),
            None => TargetRank::exact(self.cfg.k as u64),
        }
    }

    /// One collective mini-batch step: **insert_scan → count →
    /// select_prune** (Algorithm 1). Every endpoint must call this the
    /// same number of times; empty batches are fine.
    pub fn step(&mut self, items: &[Item]) -> BatchReport {
        let mut times = PhaseTimes::default();
        let outcome = self
            .backend
            .insert(self.cfg.mode, items, self.threshold, &mut times);
        let union = self.backend.count(&mut times, Charge::Threshold);
        let mut sample_size = union;
        let mut rounds = 0u32;
        if self.select_now(union) {
            let res = self.backend.select(
                self.select_target(),
                union,
                self.cfg.pivots,
                &mut times,
                Charge::Select,
            );
            self.threshold = Some(res.threshold);
            self.backend
                .prune(&res.threshold, &mut times, Charge::Threshold);
            sample_size = res.rank;
            rounds = res.rounds;
        }
        if self.cfg.continuous == ContinuousMode::EveryBatch {
            self.publish_epoch(&mut times);
        }
        self.phases.accumulate(&times);
        obs_metrics::record_step(
            self.backend.rank(),
            self.steps,
            items.len() as u64,
            sample_size,
            rounds,
            &outcome.stats,
            &times,
        );
        self.steps += 1;
        BatchReport {
            sample_size,
            select_rounds: rounds,
            inserted: outcome.stats.inserted,
            scan: outcome.stats,
            times,
        }
    }

    /// Continuous-mode publication (collective): run the Section 5
    /// finalize → extract → place sequence and swap the resulting
    /// finalized-to-`k` view into this endpoint's snapshot slot. Billed
    /// entirely to `times.output` (the simulated backend charges the
    /// count/select/place collectives to its α–β model, so per-epoch cost
    /// shows up in the cost report). The selection RNG is checkpointed
    /// around the finalize selection, so publication leaves the batch
    /// protocol's random schedule untouched — streaming state (reservoirs,
    /// threshold) is never modified here.
    fn publish_epoch(&mut self, times: &mut PhaseTimes) {
        let rng = self.backend.select_rng_state();
        let fin = self.finalize(times);
        let mut items = Vec::with_capacity(fin.keep as usize);
        self.backend
            .local_items_le(fin.threshold.as_ref(), &mut items, times);
        let placement = self.backend.place(fin.keep, times);
        self.backend.restore_select_rng(rng);
        let epoch_no = self.publisher.next_epoch();
        let epoch = SampleEpoch::new(
            epoch_no,
            items,
            placement.offset,
            placement.total,
            self.backend.rank(),
            self.backend.size(),
            fin.threshold.map(|t| t.key),
            fin.rounds,
        );
        self.publisher.publish(epoch);
        obs_metrics::record_epoch(self.backend.rank(), epoch_no, placement.total);
    }

    /// Section 5 step 1, **finalize** (collective): if the union currently
    /// exceeds `k` (variable-size mode between selections, or a stream cut
    /// mid-window), one selection for exact rank `k` fixes the final
    /// threshold. No reservoir is pruned — the protocol keeps streaming
    /// state and the output is a consistent snapshot.
    pub fn finalize(&mut self, times: &mut PhaseTimes) -> Finalized {
        let union = self.backend.count(times, Charge::Output);
        let k = self.cfg.k as u64;
        if union > k {
            let res = self.backend.select(
                TargetRank::exact(k),
                union,
                self.cfg.pivots,
                times,
                Charge::Output,
            );
            Finalized {
                threshold: Some(res.threshold),
                keep: self.backend.local_count_le(&res.threshold),
                rounds: res.rounds,
            }
        } else {
            Finalized {
                threshold: self.threshold,
                keep: self.backend.local_len(),
                rounds: 0,
            }
        }
    }

    /// Section 5 step 2, **place** (collective): the exclusive prefix
    /// count assigning this endpoint's `local`-member slice its global
    /// output positions.
    pub fn place(&mut self, local: u64, times: &mut PhaseTimes) -> Placement {
        self.backend.place(local, times)
    }

    /// The full Section 5 output collection — **finalize → extract →
    /// place** — yielding this endpoint's root-free [`SampleHandle`].
    /// Collective; O(d · rounds + 1) words per endpoint at O(α log p)
    /// latency on the distributed backends. Also returns this
    /// collection's phase times and the finalization round count (the
    /// simulator's cost report reads both).
    pub fn collect_output(&mut self) -> (SampleHandle, PhaseTimes, u32) {
        let mut times = PhaseTimes::default();
        let fin = self.finalize(&mut times);
        let mut items = Vec::with_capacity(fin.keep as usize);
        self.backend
            .local_items_le(fin.threshold.as_ref(), &mut items, &mut times);
        debug_assert_eq!(items.len() as u64, fin.keep);
        let placement = self.place(fin.keep, &mut times);
        let handle = SampleHandle::from_parts(
            items,
            placement,
            self.backend.rank(),
            self.backend.size(),
            fin.threshold.map(|t| t.key),
        );
        if self.cfg.continuous == ContinuousMode::EveryBatch {
            // The collection itself is the freshest possible view; expose
            // it to snapshot readers too, reusing the collectives already
            // run above (a pure local pointer swap).
            let epoch_no = self.publisher.next_epoch();
            self.publisher.publish(SampleEpoch::new(
                epoch_no,
                handle.local_items().to_vec(),
                placement.offset,
                placement.total,
                self.backend.rank(),
                self.backend.size(),
                handle.threshold(),
                fin.rounds,
            ));
            obs_metrics::record_epoch(self.backend.rank(), epoch_no, placement.total);
        }
        self.phases.accumulate(&times);
        obs_metrics::record_phases(&times);
        (handle, times, fin.rounds)
    }

    /// The unified pipeline driver: drain mini-batches from a push-based
    /// ingestion channel (`reservoir_stream::ingest`), [`Self::step`]
    /// each, and finish with one [`Self::collect_output`].
    ///
    /// The drain is collective via one 1-word vote per round: an endpoint
    /// whose channel is closed and drained contributes empty batches as
    /// long as any other endpoint still has input, and the loop ends only
    /// when every channel is exhausted — so `step`'s
    /// same-number-of-calls-everywhere contract holds across unequal
    /// stream lengths. Time blocked on the channel plus the vote accrues
    /// in [`PhaseTimes::ingest`]; the report's `times` carries this
    /// drain's full phase decomposition on every backend policy.
    pub fn run_pipeline(&mut self, batches: &Receiver<MiniBatch>) -> PipelineReport {
        let before = self.phases;
        let mut inserted = 0u64;
        let mut select_rounds = 0u64;
        let (mut drained, mut rounds, mut records) = (0u64, 0u64, 0u64);
        let mut ingest_wait_s = 0.0f64;
        let mut open = true;
        loop {
            let t0 = Instant::now();
            // `recv` blocks until the producer cuts the next batch or
            // closes; after a close the channel stays empty forever, so
            // skip straight to empty contributions.
            let next = if open {
                match batches.recv() {
                    Ok(batch) => Some(batch),
                    Err(_) => {
                        open = false;
                        None
                    }
                }
            } else {
                None
            };
            let active = self.backend.vote(next.is_some() as u64);
            ingest_wait_s += t0.elapsed().as_secs_f64();
            if active == 0 {
                break;
            }
            let items = next.map(|b| {
                drained += 1;
                records += b.items.len() as u64;
                b.items
            });
            let report = self.step(items.as_deref().unwrap_or(&[]));
            inserted += report.inserted;
            select_rounds += report.select_rounds as u64;
            rounds += 1;
        }
        self.phases.ingest += ingest_wait_s;
        let (handle, _, _) = self.collect_output();
        PipelineReport {
            batches: drained,
            rounds,
            records,
            inserted,
            select_rounds,
            ingest_wait_s,
            times: self.phases.delta_since(&before),
            handle,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reservoir_select::SelectParams;

    /// A minimal in-process backend over one sorted key set: enough to
    /// exercise the engine's step sequencing without a communicator.
    struct LoneBackend {
        keys: Vec<(SampleKey, f64)>,
        next_id: u64,
        rng: reservoir_rng::DefaultRng,
    }

    impl LoneBackend {
        fn new(seed: u64) -> Self {
            LoneBackend {
                keys: Vec::new(),
                next_id: 0,
                rng: reservoir_rng::default_rng(seed),
            }
        }
    }

    impl SamplerBackend for LoneBackend {
        fn insert(
            &mut self,
            _mode: SamplingMode,
            items: &[Item],
            threshold: Option<SampleKey>,
            _times: &mut PhaseTimes,
        ) -> InsertOutcome {
            use reservoir_rng::Rng64;
            let mut stats = ScanStats {
                processed: items.len() as u64,
                ..ScanStats::default()
            };
            for _ in items {
                let key = SampleKey::new(self.rng.rand_oc(), self.next_id);
                self.next_id += 1;
                if threshold.is_none_or(|t| key <= t) {
                    self.keys.push((key, 1.0));
                    stats.inserted += 1;
                }
            }
            self.keys.sort_unstable_by_key(|(k, _)| *k);
            InsertOutcome { stats }
        }

        fn count(&mut self, _times: &mut PhaseTimes, _charge: Charge) -> u64 {
            self.keys.len() as u64
        }

        fn select(
            &mut self,
            target: TargetRank,
            union: u64,
            pivots: usize,
            _times: &mut PhaseTimes,
            _charge: Charge,
        ) -> SelectResult {
            let set =
                reservoir_select::SortedKeys::new(self.keys.iter().map(|(k, _)| *k).collect());
            let report = reservoir_select::select_conductor(
                &[&set],
                target,
                SelectParams::with_pivots(pivots),
                std::slice::from_mut(&mut self.rng),
            );
            assert_eq!(union, self.keys.len() as u64);
            report.result
        }

        fn prune(&mut self, t: &SampleKey, _times: &mut PhaseTimes, _charge: Charge) {
            self.keys.retain(|(k, _)| k <= t);
        }

        fn place(&mut self, local: u64, _times: &mut PhaseTimes) -> Placement {
            Placement {
                offset: 0,
                total: local,
            }
        }

        fn local_len(&self) -> u64 {
            self.keys.len() as u64
        }

        fn local_count_le(&self, t: &SampleKey) -> u64 {
            self.keys.iter().filter(|(k, _)| k <= t).count() as u64
        }

        fn local_items_le(
            &self,
            t: Option<&SampleKey>,
            buf: &mut Vec<SampleItem>,
            _times: &mut PhaseTimes,
        ) {
            buf.clear();
            buf.extend(
                self.keys
                    .iter()
                    .filter(|(k, _)| t.is_none_or(|t| *k <= *t))
                    .map(|(k, w)| SampleItem::from_entry(k, *w)),
            );
        }

        fn rank(&self) -> usize {
            0
        }

        fn size(&self) -> usize {
            1
        }

        fn select_rng_state(&self) -> Vec<reservoir_rng::DefaultRng> {
            vec![self.rng.clone()]
        }

        fn restore_select_rng(&mut self, mut state: Vec<reservoir_rng::DefaultRng>) {
            self.rng = state.pop().expect("one endpoint, one generator");
        }
    }

    fn items(n: u64) -> Vec<Item> {
        (0..n).map(|i| Item::new(i, 1.0)).collect()
    }

    #[test]
    fn step_establishes_and_tightens_the_threshold() {
        let cfg = DistConfig::weighted(10, 1);
        let mut p = ReservoirProtocol::new(LoneBackend::new(7), cfg);
        assert!(p.threshold().is_none());
        let r1 = p.step(&items(50));
        assert_eq!(r1.sample_size, 10);
        let t1 = p.threshold().expect("filled past k");
        let r2 = p.step(&items(200));
        assert!(r2.select_rounds >= 1);
        let t2 = p.threshold().expect("still established");
        assert!(t2 <= t1, "threshold must tighten: {t2} vs {t1}");
        assert_eq!(p.backend().local_len(), 10);
    }

    #[test]
    fn window_mode_waits_for_overflow_then_selects_into_window() {
        let cfg = DistConfig::weighted(10, 1).with_size_window(10, 30);
        let mut p = ReservoirProtocol::new(LoneBackend::new(3), cfg);
        let r = p.step(&items(25));
        // 25 keys ≤ k̄ = 30: no selection yet, no threshold.
        assert_eq!(r.select_rounds, 0);
        assert!(p.threshold().is_none());
        let r = p.step(&items(25));
        assert!(r.select_rounds >= 1, "50 keys overflow the window");
        assert!((10..=30).contains(&r.sample_size));
    }

    #[test]
    fn finalize_cuts_a_window_sample_to_exactly_k_without_pruning() {
        let cfg = DistConfig::weighted(10, 1).with_size_window(10, 40);
        let mut p = ReservoirProtocol::new(LoneBackend::new(5), cfg);
        p.step(&items(30));
        let held = p.backend().local_len();
        assert!(held > 10, "mid-window state expected, got {held}");
        let (handle, times, rounds) = p.collect_output();
        assert_eq!(handle.total_len(), 10);
        assert_eq!(handle.local_len(), 10);
        assert!(rounds >= 1, "mid-window finalization must select");
        assert!(times.select == 0.0, "finalization bills output, not select");
        assert_eq!(p.backend().local_len(), held, "snapshot must not prune");
        let t = handle.threshold().expect("finalized");
        assert!(handle.local_items().iter().all(|m| m.key <= t));
    }

    #[test]
    fn collect_output_before_fill_keeps_everything() {
        let cfg = DistConfig::uniform(100, 1);
        let mut p = ReservoirProtocol::new(LoneBackend::new(9), cfg);
        p.step(&items(20));
        let (handle, _, rounds) = p.collect_output();
        assert_eq!(handle.total_len(), 20);
        assert_eq!(rounds, 0);
        assert_eq!(handle.threshold(), None);
    }
}
